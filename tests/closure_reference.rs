//! Property tests pinning the engine's structural Kleene-closure operator
//! (`MicroOp::Closure`) against the reference evaluators: on random small ITPGs and
//! random star / bounded-repetition contact-chain queries, the engine's binding
//! table — expanded to `(x, t) → (y, t)` pairs — must equal the relation computed by
//! the polynomial-time TPG evaluator on the expanded graph, membership must agree
//! with `trpq::eval::eval_contains_itpg` (the ground-truth dispatcher over the
//! interval representation), and the hash and merge join strategies must produce
//! identical tables.
//!
//! The generated graphs are referentially consistent (an edge exists only while both
//! endpoints exist), as produced by every loader in this repository; on such graphs
//! the engine's row-based navigation — which implicitly requires traversed objects to
//! exist — coincides with the formal axis semantics for the label-tested bodies the
//! surface language produces.

use std::collections::BTreeSet;

use proptest::prelude::*;

use engine::{ExecutionOptions, GraphRelations, JoinStrategy, TimeRef};
use tgraph::{Interval, IntervalSet, Itpg, ItpgBuilder, TemporalObject, Time};
use trpq::eval::quad_table::Quad;
use trpq::eval::{eval_contains_itpg, tpg::eval_path};
use trpq::parser::parse_match;
use trpq::rewrite::rewrite_match;

const MAX_TIME: Time = 5;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0..=MAX_TIME, 0..=3u64)
        .prop_map(|(start, len)| Interval::of(start, (start + len).min(MAX_TIME)))
}

/// A compact description of a random contact graph: person nodes with existence
/// intervals and `meets` / `visits` edges clamped to their endpoints' joint lifetime.
#[derive(Debug, Clone)]
struct GraphSpec {
    nodes: Vec<Vec<Interval>>,
    edges: Vec<(usize, usize, Interval, bool)>,
}

fn graph_spec_strategy() -> impl Strategy<Value = GraphSpec> {
    let nodes = prop::collection::vec(prop::collection::vec(interval_strategy(), 1..3), 2..5);
    let edges =
        prop::collection::vec((0..4usize, 0..4usize, interval_strategy(), any::<bool>()), 0..6);
    (nodes, edges).prop_map(|(nodes, edges)| GraphSpec { nodes, edges })
}

fn build_graph(spec: &GraphSpec) -> Itpg {
    let mut b = ItpgBuilder::new().domain(Interval::of(0, MAX_TIME));
    let mut node_ids = Vec::new();
    for (i, intervals) in spec.nodes.iter().enumerate() {
        let id = b.add_node(&format!("n{i}"), "Person").unwrap();
        let mut existence = IntervalSet::empty();
        for iv in intervals {
            b.add_existence(id, *iv).unwrap();
            existence.insert(*iv);
        }
        node_ids.push((id, existence));
    }
    let mut edge_count = 0usize;
    for (src, tgt, desired, meets) in &spec.edges {
        let (src_id, src_exist) = &node_ids[src % node_ids.len()];
        let (tgt_id, tgt_exist) = &node_ids[tgt % node_ids.len()];
        let joint = src_exist.intersection(tgt_exist);
        let clamped = joint.clamp(desired);
        if clamped.is_empty() {
            continue;
        }
        let label = if *meets { "meets" } else { "visits" };
        let id = b.add_edge(&format!("e{edge_count}"), label, *src_id, *tgt_id).unwrap();
        edge_count += 1;
        for iv in clamped.intervals() {
            b.add_existence(id, *iv).unwrap();
        }
    }
    b.build().expect("generated graphs are well formed by construction")
}

/// Random star / bounded-repetition queries over structural contact-chain bodies,
/// including degenerate ([1,1], [0,0]) and unsatisfiable ([2,1]) indicators.
fn closure_query_strategy() -> impl Strategy<Value = String> {
    let body = prop_oneof![
        Just("FWD/:meets/FWD"),
        Just("BWD/:meets/BWD"),
        Just("FWD/:meets/FWD + BWD/:meets/BWD"),
        Just("FWD/:meets/FWD/FWD/:meets/FWD"),
        Just("FWD/:meets/FWD + FWD/:visits/FWD"),
    ];
    let repetition = prop_oneof![
        Just("*".to_owned()),
        Just("[1,_]".to_owned()),
        Just("[1,1]".to_owned()),
        Just("[0,0]".to_owned()),
        Just("[2,1]".to_owned()),
        (0..3u32, 0..3u32).prop_map(|(n, d)| format!("[{n},{}]", n + d)),
    ];
    (body, repetition)
        .prop_map(|(body, rep)| format!("MATCH (x:Person)-/({body}){rep}/-(y:Person) ON g"))
}

/// Random *mixed* structural/temporal repetition queries, `(FWD/NEXT)*`-style: each
/// body interleaves contact hops with temporal steps (possibly carrying their own
/// indicators, unions, or purely temporal alternatives), and the whole group is
/// repeated — the engine's time-aware closure.
fn mixed_query_strategy() -> impl Strategy<Value = String> {
    let body = prop_oneof![
        Just("FWD/:meets/FWD/NEXT"),
        Just("FWD/:meets/FWD/PREV"),
        Just("BWD/:meets/BWD/PREV"),
        Just("NEXT/FWD/:meets/FWD"),
        Just("FWD/:meets/FWD/NEXT[0,2]"),
        Just("FWD/:meets/FWD/NEXT*"),
        Just("FWD/:meets/FWD/NEXT + BWD/:meets/BWD/PREV"),
        Just("FWD/:meets/FWD/NEXT + PREV"),
    ];
    let repetition = prop_oneof![
        Just("*".to_owned()),
        Just("[1,_]".to_owned()),
        Just("[1,1]".to_owned()),
        Just("[0,0]".to_owned()),
        Just("[2,1]".to_owned()),
        (0..3u32, 0..3u32).prop_map(|(n, d)| format!("[{n},{}]", n + d)),
    ];
    (body, repetition)
        .prop_map(|(body, rep)| format!("MATCH (x:Person)-/({body}){rep}/-(y:Person) ON g"))
}

/// The engine's binding table expanded to `(x, t) → (y, t′)` temporal-object pairs.
/// Purely structural results bind snapshot intervals (`t = t′`); time-crossing
/// results (mixed repetition) bind points on both sides.
fn engine_pairs(
    graph: &GraphRelations,
    query: &str,
    strategy: JoinStrategy,
) -> BTreeSet<(TemporalObject, TemporalObject)> {
    let out = engine::Query::parse(query)
        .expect("closure queries compile onto the engine")
        .with_options(ExecutionOptions::sequential().with_strategy(strategy))
        .run(graph)
        .into_output()
        .expect("the default mode materialises");
    let mut pairs = BTreeSet::new();
    for row in out.table.rows() {
        let (x, y) = (&row[0], &row[1]);
        match (x.time, y.time) {
            (TimeRef::Interval(ix), TimeRef::Interval(iy)) => {
                assert_eq!(ix, iy, "structural bindings share the snapshot interval");
                for t in ix.points() {
                    pairs.insert((
                        TemporalObject::new(x.object, t),
                        TemporalObject::new(y.object, t),
                    ));
                }
            }
            (TimeRef::Point(tx), TimeRef::Point(ty)) => {
                pairs
                    .insert((TemporalObject::new(x.object, tx), TemporalObject::new(y.object, ty)));
            }
            other => panic!("unexpected mixed binding kinds {other:?}"),
        }
    }
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn closure_engine_agrees_with_the_reference_evaluators(
        spec in graph_spec_strategy(),
        query in closure_query_strategy(),
    ) {
        let itpg = build_graph(&spec);
        let relations = GraphRelations::from_itpg(&itpg);

        // Reference: the full relation over the expanded point-based graph.
        let clause = parse_match(&query).unwrap();
        let rewritten = rewrite_match(&clause).unwrap();
        let reference: BTreeSet<(TemporalObject, TemporalObject)> =
            eval_path(&rewritten.path, &itpg.to_tpg())
                .iter()
                .map(|q| (q.src, q.dst))
                .collect();

        // Engine under the hash strategy must equal the reference…
        let hash = engine_pairs(&relations, &query, JoinStrategy::Hash);
        prop_assert_eq!(&hash, &reference, "engine (hash) vs TPG reference on {}", query);

        // …and the merge / auto strategies must equal the hash strategy.
        for strategy in [JoinStrategy::Merge, JoinStrategy::Auto] {
            let alt = engine_pairs(&relations, &query, strategy);
            prop_assert_eq!(&alt, &reference, "engine ({:?}) disagrees on {}", strategy, query);
        }

        // Membership spot-checks against the ITPG ground-truth dispatcher: a few
        // pairs in the relation and a few outside it.
        let tpg_table = eval_path(&rewritten.path, &itpg.to_tpg());
        let mut checked = 0usize;
        for &(src, dst) in reference.iter().take(3) {
            prop_assert!(
                eval_contains_itpg(&rewritten.path, &itpg, src, dst).unwrap(),
                "eval_contains_itpg misses ({:?}, {:?}) for {}", src, dst, query
            );
            checked += 1;
        }
        'outer: for o1 in itpg.objects() {
            for t in [0u64, 2, MAX_TIME] {
                let src = TemporalObject::new(o1, t);
                let dst = TemporalObject::new(o1, t);
                if !tpg_table.contains(&Quad::new(src, dst)) {
                    prop_assert!(
                        !eval_contains_itpg(&rewritten.path, &itpg, src, dst).unwrap(),
                        "eval_contains_itpg spuriously accepts ({:?}, {:?}) for {}", src, dst, query
                    );
                    checked += 1;
                    if checked >= 6 {
                        break 'outer;
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mixed_closure_engine_agrees_with_the_reference_evaluators(
        spec in graph_spec_strategy(),
        query in mixed_query_strategy(),
    ) {
        let itpg = build_graph(&spec);
        let relations = GraphRelations::from_itpg(&itpg);

        // Reference: the full relation over the expanded point-based graph, under
        // the practical-language convention that repetition (including everything
        // inside a repeated group) walks only through existing temporal objects.
        let clause = parse_match(&query).unwrap();
        let rewritten = rewrite_match(&clause).unwrap();
        let reference: BTreeSet<(TemporalObject, TemporalObject)> =
            eval_path(&rewritten.path, &itpg.to_tpg())
                .iter()
                .map(|q| (q.src, q.dst))
                .collect();

        // Engine under the hash strategy must equal the reference…
        let hash = engine_pairs(&relations, &query, JoinStrategy::Hash);
        prop_assert_eq!(&hash, &reference, "engine (hash) vs TPG reference on {}", query);

        // …and the merge / auto strategies must equal it too.
        for strategy in [JoinStrategy::Merge, JoinStrategy::Auto] {
            let alt = engine_pairs(&relations, &query, strategy);
            prop_assert_eq!(&alt, &reference, "engine ({:?}) disagrees on {}", strategy, query);
        }

        // Membership spot-checks against the ITPG ground-truth dispatcher.
        for &(src, dst) in reference.iter().take(2) {
            prop_assert!(
                eval_contains_itpg(&rewritten.path, &itpg, src, dst).unwrap(),
                "eval_contains_itpg misses ({:?}, {:?}) for {}", src, dst, query
            );
        }
    }
}

/// A deterministic end-to-end case: the iconic multi-hop contact chain
/// `(FWD/:meets/FWD)*` on a 4-person chain with staggered meeting windows.
#[test]
fn contact_chain_example_matches_reference() {
    let mut b = ItpgBuilder::new().domain(Interval::of(0, 9));
    let ids: Vec<_> = (0..4).map(|i| b.add_node(&format!("p{i}"), "Person").unwrap()).collect();
    for &id in &ids {
        b.add_existence(id, Interval::of(0, 9)).unwrap();
    }
    for (i, window) in
        [(0usize, Interval::of(1, 6)), (1, Interval::of(4, 8)), (2, Interval::of(5, 5))]
    {
        let e = b.add_edge(&format!("m{i}"), "meets", ids[i], ids[i + 1]).unwrap();
        b.add_existence(e, window).unwrap();
    }
    let itpg = b.build().unwrap();
    let relations = GraphRelations::from_itpg(&itpg);
    let query = "MATCH (x:Person)-/(FWD/:meets/FWD)*/-(y:Person) ON g";

    let clause = parse_match(query).unwrap();
    let rewritten = rewrite_match(&clause).unwrap();
    let reference: BTreeSet<(TemporalObject, TemporalObject)> =
        eval_path(&rewritten.path, &itpg.to_tpg()).iter().map(|q| (q.src, q.dst)).collect();
    for strategy in [JoinStrategy::Hash, JoinStrategy::Merge, JoinStrategy::Auto] {
        assert_eq!(engine_pairs(&relations, query, strategy), reference, "{strategy}");
    }
    // The three-hop chain p0 → p3 is only live at the single instant where all
    // meeting windows intersect.
    let p0 = TemporalObject::new(tgraph::Object::Node(ids[0]), 5);
    let p3 = TemporalObject::new(tgraph::Object::Node(ids[3]), 5);
    assert!(reference.contains(&(p0, p3)));
    assert!(eval_contains_itpg(&rewritten.path, &itpg, p0, p3).unwrap());
}

/// A deterministic time-crossing case: the recurring-contact chain
/// `(FWD/:meets/FWD/NEXT)*` — each meeting is followed by exactly one step forward in
/// time — on the same 4-person graph.
#[test]
fn recurring_contact_chain_matches_reference() {
    let mut b = ItpgBuilder::new().domain(Interval::of(0, 9));
    let ids: Vec<_> = (0..4).map(|i| b.add_node(&format!("p{i}"), "Person").unwrap()).collect();
    for &id in &ids {
        b.add_existence(id, Interval::of(0, 9)).unwrap();
    }
    for (i, window) in
        [(0usize, Interval::of(1, 6)), (1, Interval::of(4, 8)), (2, Interval::of(5, 5))]
    {
        let e = b.add_edge(&format!("m{i}"), "meets", ids[i], ids[i + 1]).unwrap();
        b.add_existence(e, window).unwrap();
    }
    let itpg = b.build().unwrap();
    let relations = GraphRelations::from_itpg(&itpg);
    let query = "MATCH (x)-/(FWD/:meets/FWD/NEXT)*/-(y) ON g";

    let clause = parse_match(query).unwrap();
    let rewritten = rewrite_match(&clause).unwrap();
    let reference: BTreeSet<(TemporalObject, TemporalObject)> =
        eval_path(&rewritten.path, &itpg.to_tpg()).iter().map(|q| (q.src, q.dst)).collect();
    for strategy in [JoinStrategy::Hash, JoinStrategy::Merge, JoinStrategy::Auto] {
        assert_eq!(engine_pairs(&relations, query, strategy), reference, "{strategy}");
    }
    // The full three-meeting recurrence threads p0@3 → p1@4 → p2@5 → p3@6: the last
    // meeting only happens at 5, forcing the whole schedule.
    let p0 = TemporalObject::new(tgraph::Object::Node(ids[0]), 3);
    let p3 = TemporalObject::new(tgraph::Object::Node(ids[3]), 6);
    assert!(reference.contains(&(p0, p3)));
    // One step later at the start and the schedule no longer fits.
    let late = TemporalObject::new(tgraph::Object::Node(ids[0]), 4);
    assert!(!reference.contains(&(late, p3)));
    assert!(eval_contains_itpg(&rewritten.path, &itpg, p0, p3).unwrap());
}
