//! Smoke test keeping the README entry path working: `cargo run --example
//! quickstart` must exit 0 and print the Figure 1 answer. Runs in CI as part of
//! `cargo test`.

use std::process::Command;

#[test]
fn quickstart_example_runs_and_answers_figure1() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", "quickstart"])
        .env("CARGO_TERM_COLOR", "never")
        .output()
        .expect("failed to spawn cargo run --example quickstart");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status.code()
    );
    // The quickstart answers the introduction's motivating question with the
    // three at-risk bindings of the Figure 1 graph.
    assert!(stdout.contains("3 bindings"), "unexpected quickstart output:\n{stdout}");
}
