//! Smoke tests keeping the README entry paths working: `cargo run --example
//! quickstart` and `cargo run --example live_tracing` must exit 0 and print the
//! Figure 1 answer. Runs in CI as part of `cargo test`.

use std::process::Command;

fn run_example(example: &str) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", example])
        .env("CARGO_TERM_COLOR", "never")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo run --example {example}: {e}"));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "{example} exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status.code()
    );
    stdout.into_owned()
}

#[test]
fn quickstart_example_runs_and_answers_figure1() {
    // The quickstart answers the introduction's motivating question with the
    // three at-risk bindings of the Figure 1 graph.
    let stdout = run_example("quickstart");
    assert!(stdout.contains("3 bindings"), "unexpected quickstart output:\n{stdout}");
}

#[test]
fn paging_example_serves_lazy_and_compact_answers() {
    // The paging example pulls one page through the enumeration cursor and then
    // prints the compact per-pair interval answers of the same query.
    let stdout = run_example("paging");
    assert!(stdout.contains("first 5 answers"), "unexpected paging output:\n{stdout}");
    assert!(stdout.contains("rows yielded: 5"), "the cursor must stop at one page:\n{stdout}");
    assert!(stdout.contains("compact answers ("), "compact answers missing:\n{stdout}");
}

#[test]
fn live_tracing_example_streams_figure1() {
    // The live example streams the same story and must converge to the same
    // three bindings once the positive test arrives.
    let stdout = run_example("live_tracing");
    assert!(stdout.contains("3 bindings"), "unexpected live_tracing output:\n{stdout}");
    assert!(stdout.contains("epoch 9"), "the positive test epoch must be ingested:\n{stdout}");
}
