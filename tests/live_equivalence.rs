//! Property tests pinning the live-graph subsystem to the batch engine:
//!
//! * **(a) ingestion** — applying a randomly chunked (and rotated-within-epoch)
//!   batch sequence yields an `Itpg` independent of the chunking and a
//!   `GraphRelations` whose canonical snapshot is identical to a bulk
//!   `from_itpg` build of the final graph;
//! * **(b) maintenance** — after every batch, every maintained query answer
//!   (Q1–Q12 plus the REACH structural closure and the RECUR time-aware
//!   closure) equals a from-scratch `execute` on the materialized graph, under
//!   the hash, merge and auto join strategies alike.

use proptest::prelude::*;

use engine::{compile, execute, ExecutionOptions, GraphRelations, JoinStrategy};
use live::LiveGraph;
use tgraph::{Batch, Interval, IntervalSet, Itpg, Mutation};
use trpq::queries::QueryId;

const MAX_TIME: u64 = 14;

const REACH: &str = "MATCH (x:Person {risk = 'high'})-/(FWD/:meets/FWD)*/-(y:Person) ON live";
const RECUR: &str = "MATCH (x:Person {risk = 'high'})\
                     -/(FWD/:meets/FWD/NEXT)*/NEXT*/-({test = 'pos'}) ON live";

/// Raw generator output for one node: existence layout plus property draws.
#[derive(Debug, Clone)]
struct NodeSpec {
    start: u64,
    len: u64,
    second_gap: Option<(u64, u64)>,
    room: bool,
    high_risk: bool,
    /// Positive test: offset into the existence, as a fraction index.
    test_offset: Option<u64>,
}

/// Raw generator output for one edge: endpoint indices plus where within the
/// endpoints' common existence the edge lives.
#[derive(Debug, Clone)]
struct EdgeSpec {
    src: usize,
    tgt: usize,
    label: usize,
    offset: u64,
    len: u64,
}

fn node_spec() -> impl Strategy<Value = NodeSpec> {
    (
        0..8u64,
        0..5u64,
        (any::<bool>(), 1..3u64, 0..3u64).prop_map(|(s, gap, len)| s.then_some((gap, len))),
        any::<bool>(),
        any::<bool>(),
        (any::<bool>(), 0..6u64).prop_map(|(s, offset)| s.then_some(offset)),
    )
        .prop_map(|(start, len, second_gap, room, high_risk, test_offset)| NodeSpec {
            start,
            len,
            second_gap,
            room,
            high_risk,
            test_offset,
        })
}

fn edge_spec() -> impl Strategy<Value = EdgeSpec> {
    (0..6usize, 0..6usize, 0..3usize, 0..4u64, 0..4u64)
        .prop_map(|(src, tgt, label, offset, len)| EdgeSpec { src, tgt, label, offset, len })
}

/// Expands the raw specs into a canonical, validity-ordered mutation list: all
/// nodes (creation, existence, properties) first, then all edges.  Any chunking
/// of this list is valid batch by batch, because everything an edge depends on
/// precedes it.
fn build_mutations(nodes: &[NodeSpec], edges: &[EdgeSpec]) -> Vec<Mutation> {
    let mut out: Vec<Mutation> = Vec::new();
    let mut existence: Vec<IntervalSet> = Vec::new();
    for (index, spec) in nodes.iter().enumerate() {
        let name = format!("n{index}");
        let mut set = IntervalSet::empty();
        let first = Interval::of(spec.start, (spec.start + spec.len).min(MAX_TIME));
        set.insert(first);
        if let Some((gap, len2)) = spec.second_gap {
            let start2 = first.end() + 1 + gap;
            if start2 <= MAX_TIME {
                set.insert(Interval::of(start2, (start2 + len2).min(MAX_TIME)));
            }
        }
        out.push(Mutation::AddNode {
            name: name.clone(),
            label: if spec.room { "Room".into() } else { "Person".into() },
        });
        let risk = if spec.high_risk { "high" } else { "low" };
        for &interval in set.intervals() {
            out.push(Mutation::AddExistence { object: name.clone(), interval });
            if !spec.room {
                out.push(Mutation::SetProperty {
                    object: name.clone(),
                    prop: "risk".into(),
                    value: risk.into(),
                    interval,
                });
            }
        }
        if let (false, Some(offset)) = (spec.room, spec.test_offset) {
            // Positive from an offset into the lifespan to the end of life.
            let last = set.max().expect("non-empty existence");
            let from = set.min().expect("non-empty existence").saturating_add(offset);
            if from <= last {
                let tail = IntervalSet::from_interval(Interval::of(from, last));
                for &interval in set.intersection(&tail).intervals() {
                    out.push(Mutation::SetProperty {
                        object: name.clone(),
                        prop: "test".into(),
                        value: "pos".into(),
                        interval,
                    });
                }
            }
        }
        existence.push(set);
    }
    let labels = ["meets", "visits", "cohabits"];
    for (index, spec) in edges.iter().enumerate() {
        let (src, tgt) = (spec.src % nodes.len(), spec.tgt % nodes.len());
        if src == tgt {
            continue;
        }
        let name = format!("e{index}");
        out.push(Mutation::AddEdge {
            name: name.clone(),
            label: labels[spec.label].into(),
            src: format!("n{src}"),
            tgt: format!("n{tgt}"),
        });
        // The edge exists over a sub-interval of the first common existence
        // interval of its endpoints, when there is one.
        let common = existence[src].intersection(&existence[tgt]);
        if let Some(&window) = common.intervals().first() {
            let start = (window.start() + spec.offset).min(window.end());
            let end = (start + spec.len).min(window.end());
            out.push(Mutation::AddExistence {
                object: name.clone(),
                interval: Interval::of(start, end),
            });
        }
    }
    out
}

/// Splits a mutation list into consecutive batches at the given cut fractions
/// and rotates each batch's mutations — exercising both "how the stream is
/// chunked" and "in what order mutations arrive within an epoch".
fn chunk(mutations: &[Mutation], cuts: &[usize], rotations: &[usize]) -> Vec<Batch> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (mutations.len() + 1)).collect();
    bounds.push(0);
    bounds.push(mutations.len());
    bounds.sort_unstable();
    bounds.dedup();
    let mut out = Vec::new();
    for (index, window) in bounds.windows(2).enumerate() {
        let mut batch = Batch::new(index as u64 + 1);
        batch.mutations = mutations[window[0]..window[1]].to_vec();
        let len = batch.mutations.len();
        if len > 1 {
            batch.mutations.rotate_left(rotations.get(index).copied().unwrap_or(0) % len);
        }
        if !batch.is_empty() {
            out.push(batch);
        }
    }
    out
}

fn ingest(batches: &[Batch]) -> Itpg {
    let mut graph = Itpg::empty(Interval::of(0, MAX_TIME));
    for batch in batches {
        graph.apply_batch(batch).expect("generated batches are valid");
    }
    graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property (a): chunking and within-epoch order do not matter, and the
    /// incrementally maintained relations are canonically identical to a bulk
    /// build of the final graph.
    #[test]
    fn chunked_ingestion_equals_the_bulk_build(
        nodes in prop::collection::vec(node_spec(), 2..6),
        edges in prop::collection::vec(edge_spec(), 0..8),
        cuts_a in prop::collection::vec(0..64usize, 0..4),
        cuts_b in prop::collection::vec(0..64usize, 0..4),
        rotations in prop::collection::vec(0..16usize, 8),
    ) {
        let mutations = build_mutations(&nodes, &edges);
        let batches_a = chunk(&mutations, &cuts_a, &rotations);
        let batches_b = chunk(&mutations, &cuts_b, &[]);

        // The final graph is independent of chunking and within-epoch order.
        let final_a = ingest(&batches_a);
        let final_b = ingest(&batches_b);
        prop_assert_eq!(&final_a, &final_b);
        final_a.validate().expect("live graphs stay well-formed");

        // Incrementally maintained relations == bulk from_itpg, canonically.
        let mut live = LiveGraph::new(Interval::of(0, MAX_TIME));
        for batch in &batches_a {
            live.apply(batch).expect("generated batches are valid");
        }
        let bulk = GraphRelations::from_itpg(&final_a);
        prop_assert_eq!(
            live.relations().canonical_snapshot(),
            bulk.canonical_snapshot()
        );
        prop_assert_eq!(live.relations().stats(), bulk.stats());
    }

    /// Property (b): maintained answers equal from-scratch execution for the
    /// full benchmark suite under every join strategy, at every epoch.
    #[test]
    fn maintained_answers_equal_from_scratch_execution(
        nodes in prop::collection::vec(node_spec(), 2..5),
        edges in prop::collection::vec(edge_spec(), 0..7),
        cuts in prop::collection::vec(0..64usize, 1..3),
        rotations in prop::collection::vec(0..16usize, 4),
    ) {
        let mutations = build_mutations(&nodes, &edges);
        let batches = chunk(&mutations, &cuts, &rotations);

        let mut plan_sets = Vec::new();
        let mut names = Vec::new();
        for id in QueryId::ALL {
            plan_sets.push(engine::queries::plan_for(id));
            names.push(id.name().to_string());
        }
        for (name, text) in [("REACH", REACH), ("RECUR", RECUR)] {
            let clause = trpq::parser::parse_match(text).expect("closure queries parse");
            plan_sets.push(compile(&clause).expect("closure queries compile"));
            names.push(name.to_string());
        }

        for strategy in JoinStrategy::ALL {
            let options = ExecutionOptions::sequential().with_strategy(strategy);
            let mut live = LiveGraph::with_options(
                Itpg::empty(Interval::of(0, MAX_TIME)),
                options,
            );
            let handles: Vec<_> =
                plan_sets.iter().map(|p| live.register(p.clone())).collect();
            for batch in &batches {
                live.apply(batch).expect("generated batches are valid");
                let refreshed = live.refresh_all();
                let scratch = GraphRelations::from_itpg(live.itpg());
                for (index, (plan_set, name)) in plan_sets.iter().zip(&names).enumerate() {
                    let expected = execute(plan_set, &scratch, &options);
                    prop_assert_eq!(
                        live.table(handles[index]),
                        &expected.table,
                        "{} under {} at epoch {:?} diverged",
                        name,
                        strategy,
                        live.epoch()
                    );
                    prop_assert_eq!(refreshed[index].output_rows, expected.table.len());
                }
            }
        }
    }
}
