//! Integration tests reproducing, verbatim, the binding tables printed in the paper
//! for the running example of Figure 1 (Sections I, IV and VI).

use engine::{ExecutionOptions, GraphRelations, QueryOutput, TimeRef};
use tgraph::{Interval, Object};
use trpq::queries::QueryId;
use workload::figure1;

fn graph() -> GraphRelations {
    GraphRelations::from_itpg(&figure1())
}

fn run(id: QueryId, graph: &GraphRelations) -> QueryOutput {
    engine::Query::benchmark(id)
        .with_options(ExecutionOptions::sequential())
        .run(graph)
        .into_output()
        .expect("the default mode materialises")
}

fn run_text(text: &str, graph: &GraphRelations) -> QueryOutput {
    engine::Query::parse(text)
        .expect("query runs")
        .with_options(ExecutionOptions::sequential())
        .run(graph)
        .into_output()
        .expect("the default mode materialises")
}

/// Renders the binding table as rows of `(name, time)` strings for easy comparison
/// with the tables in the paper.
fn rows(graph: &GraphRelations, output: &QueryOutput) -> Vec<Vec<String>> {
    output.table.render(|o| graph.object_name(o).to_owned())
}

fn point_rows(graph: &GraphRelations, output: &QueryOutput) -> Vec<Vec<(String, u64)>> {
    // Expands interval rows into point rows (snapshot interpretation) so that the
    // result can be compared against the point-based tables of Section IV.
    let mut out = Vec::new();
    for row in output.table.rows() {
        match row.first().map(|b| b.time) {
            Some(TimeRef::Interval(iv)) => {
                for t in iv.points() {
                    out.push(
                        row.iter()
                            .map(|b| (graph.object_name(b.object).to_owned(), t))
                            .collect::<Vec<_>>(),
                    );
                }
            }
            _ => out.push(
                row.iter()
                    .map(|b| {
                        (
                            graph.object_name(b.object).to_owned(),
                            b.time.as_point().expect("point binding"),
                        )
                    })
                    .collect(),
            ),
        }
    }
    out.sort();
    out.dedup();
    out
}

#[test]
fn q1_returns_every_person_at_every_existing_time() {
    let g = graph();
    let out = run(QueryId::Q1, &g);
    // n1 [1,9], n2 [1,9], n3 [1,7], n6 [2,11], n7 [1,8]: 9+9+7+10+8 = 43 point tuples.
    assert_eq!(out.table.point_tuple_count(), 43);
    let pts = point_rows(&g, &out);
    assert_eq!(pts.len(), 43);
    assert!(pts.contains(&vec![("n1".to_string(), 1)]));
    assert!(pts.contains(&vec![("n1".to_string(), 9)]));
    assert!(pts.contains(&vec![("n7".to_string(), 8)]));
    assert!(!pts.contains(&vec![("n7".to_string(), 9)]));
    // Rooms are never returned.
    assert!(!pts.iter().any(|r| r[0].0.starts_with('r') || r[0].0 == "n4" || r[0].0 == "n5"));
}

#[test]
fn q2_low_risk_people() {
    let g = graph();
    let out = run(QueryId::Q2, &g);
    let pts = point_rows(&g, &out);
    // n1 at 1..9, n2 at 1..4, n6 at 2..11 — exactly the three groups shown in the paper.
    let expected: Vec<Vec<(String, u64)>> = (1..=9)
        .map(|t| vec![("n1".to_string(), t)])
        .chain((1..=4).map(|t| vec![("n2".to_string(), t)]))
        .chain((2..=11).map(|t| vec![("n6".to_string(), t)]))
        .collect::<Vec<_>>()
        .into_iter()
        .collect();
    let mut expected = expected;
    expected.sort();
    assert_eq!(pts, expected);
}

#[test]
fn q3_low_risk_at_time_1() {
    let g = graph();
    let out = run(QueryId::Q3, &g);
    let pts = point_rows(&g, &out);
    assert_eq!(pts, vec![vec![("n1".to_string(), 1)], vec![("n2".to_string(), 1)]]);
}

#[test]
fn q4_low_risk_before_time_10() {
    let g = graph();
    let out = run(QueryId::Q4, &g);
    let pts = point_rows(&g, &out);
    // Same as Q2 but n6 is cut off at time 9.
    assert_eq!(pts.len(), 9 + 4 + 8);
    assert!(pts.contains(&vec![("n6".to_string(), 9)]));
    assert!(!pts.contains(&vec![("n6".to_string(), 10)]));
}

#[test]
fn q5_low_risk_meets_high_risk() {
    let g = graph();
    let out = run(QueryId::Q5, &g);
    // Section VI: the coalesced table has exactly two rows.
    let coalesced = rows(&g, &out);
    assert_eq!(
        coalesced,
        vec![
            vec![
                "n1".to_string(),
                "[5, 6]".into(),
                "e1".into(),
                "[5, 6]".into(),
                "n2".into(),
                "[5, 6]".into()
            ],
            vec![
                "n2".to_string(),
                "[1, 2]".into(),
                "e2".into(),
                "[1, 2]".into(),
                "n3".into(),
                "[1, 2]".into()
            ],
        ]
    );
    // Section IV: the point-based interpretation has four rows.
    let pts = point_rows(&g, &out);
    assert_eq!(
        pts,
        vec![
            vec![("n1".to_string(), 5), ("e1".to_string(), 5), ("n2".to_string(), 5)],
            vec![("n1".to_string(), 6), ("e1".to_string(), 6), ("n2".to_string(), 6)],
            vec![("n2".to_string(), 1), ("e2".to_string(), 1), ("n3".to_string(), 1)],
            vec![("n2".to_string(), 2), ("e2".to_string(), 2), ("n3".to_string(), 2)],
        ]
    );
}

#[test]
fn q6_state_immediately_before_a_positive_test() {
    let g = graph();
    let out = run(QueryId::Q6, &g);
    assert_eq!(rows(&g, &out), vec![vec!["n6".to_string(), "9".into(), "n6".into(), "8".into()]]);
}

#[test]
fn q7_room_visited_immediately_before_a_positive_test() {
    let g = graph();
    let out = run(QueryId::Q7, &g);
    assert_eq!(rows(&g, &out), vec![vec!["n6".to_string(), "9".into(), "n4".into(), "8".into()]]);
}

#[test]
fn q8_rooms_visited_at_or_before_a_positive_test() {
    let g = graph();
    let out = run(QueryId::Q8, &g);
    let mut expected = vec![
        vec!["n6".to_string(), "9".into(), "n4".into(), "8".into()],
        vec!["n6".to_string(), "9".into(), "n4".into(), "7".into()],
        vec!["n6".to_string(), "9".into(), "n5".into(), "6".into()],
        vec!["n6".to_string(), "9".into(), "n5".into(), "5".into()],
    ];
    expected.sort();
    let mut actual = rows(&g, &out);
    actual.sort();
    assert_eq!(actual, expected);
}

#[test]
fn q9_high_risk_people_who_met_someone_who_later_tested_positive() {
    let g = graph();
    let out = run(QueryId::Q9, &g);
    let mut actual = rows(&g, &out);
    actual.sort();
    assert_eq!(
        actual,
        vec![
            vec!["n3".to_string(), "4".into()],
            vec!["n7".to_string(), "5".into()],
            vec!["n7".to_string(), "6".into()],
        ]
    );
}

#[test]
fn q10_requires_the_positive_test_before_the_meeting() {
    // Q10 looks for a positive test up to one hour *before* the meeting; in Figure 1
    // Eve only tests positive after all her meetings, so the result is empty, and in
    // particular it is a subset of the Q9 result.
    let g = graph();
    let q10 = run(QueryId::Q10, &g);
    assert!(q10.table.is_empty());
    let q9 = run(QueryId::Q9, &g);
    assert!(q10.table.iter().all(|r| q9.table.rows().contains(r)));
}

#[test]
fn q11_close_contact_through_a_shared_room() {
    let g = graph();
    let out = run(QueryId::Q11, &g);
    let mut actual = rows(&g, &out);
    actual.sort();
    assert_eq!(
        actual,
        vec![
            vec!["n3".to_string(), "7".into()],
            vec!["n7".to_string(), "7".into()],
            vec!["n7".to_string(), "8".into()],
        ]
    );
}

#[test]
fn q12_union_of_both_close_contact_definitions() {
    let g = graph();
    let out = run(QueryId::Q12, &g);
    let mut actual = rows(&g, &out);
    actual.sort_by(|a, b| {
        (a[0].clone(), a[1].parse::<u64>().unwrap())
            .cmp(&(b[0].clone(), b[1].parse::<u64>().unwrap()))
    });
    assert_eq!(
        actual,
        vec![
            vec!["n3".to_string(), "4".into()],
            vec!["n3".to_string(), "7".into()],
            vec!["n7".to_string(), "5".into()],
            vec!["n7".to_string(), "6".into()],
            vec!["n7".to_string(), "7".into()],
            vec!["n7".to_string(), "8".into()],
        ]
    );
}

#[test]
fn section_iv_intermediate_examples() {
    let g = graph();
    // "which room was person x visiting immediately before she received a positive
    // test result", with the intermediate variable y kept.
    let with_y = run_text(
        "MATCH (x:Person {test = 'pos'})-/PREV/-(y:Person)-[:visits]->(z:Room) ON contact_tracing",
        &g,
    );
    assert_eq!(
        rows(&g, &with_y),
        vec![vec!["n6".to_string(), "9".into(), "n6".into(), "8".into(), "n4".into(), "8".into()]]
    );
    // The simplified variant without the intermediate variable.
    let without_y = run_text(
        "MATCH (x:Person {test = 'pos'})-/PREV/-()-[:visits]->(z:Room) ON contact_tracing",
        &g,
    );
    assert_eq!(
        rows(&g, &without_y),
        vec![vec!["n6".to_string(), "9".into(), "n4".into(), "8".into()]]
    );
    // The contact-tracing query of Section I-A (same as Q9 up to variable naming).
    let intro = run_text(
        "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-(y:Person {test = 'pos'}) \
         ON contact_tracing",
        &g,
    );
    let mut actual = rows(&g, &intro);
    actual.sort();
    assert_eq!(
        actual,
        vec![
            vec!["n3".to_string(), "4".into(), "n6".into(), "9".into()],
            vec!["n7".to_string(), "5".into(), "n6".into(), "9".into()],
            vec!["n7".to_string(), "6".into(), "n6".into(), "9".into()],
        ]
    );
}

#[test]
fn queries_without_temporal_navigation_have_equal_interval_and_total_work() {
    let g = graph();
    for id in [QueryId::Q1, QueryId::Q2, QueryId::Q3, QueryId::Q4, QueryId::Q5] {
        let out = run(id, &g);
        // Interval rows equal output rows: nothing is expanded.
        assert_eq!(out.stats.interval_rows, out.stats.output_rows, "{}", id.name());
        assert!(out.table.iter().all(|r| r.iter().all(|b| matches!(b.time, TimeRef::Interval(_)))));
    }
    for id in [QueryId::Q6, QueryId::Q7, QueryId::Q8, QueryId::Q9, QueryId::Q11, QueryId::Q12] {
        let out = run(id, &g);
        assert!(
            out.table.iter().all(|r| r.iter().all(|b| matches!(b.time, TimeRef::Point(_)))),
            "{}",
            id.name()
        );
    }
}

#[test]
fn domain_restriction_still_answers_queries() {
    // Restricting the graph to the first eight time points removes Eve's positive test
    // and with it every contact-tracing answer.
    let restricted = figure1().restrict_to(Interval::of(1, 8));
    let g = GraphRelations::from_itpg(&restricted);
    assert!(run(QueryId::Q9, &g).table.is_empty());
    assert!(!run(QueryId::Q5, &g).table.is_empty());
    // Sanity: names survive restriction.
    assert_eq!(g.object_name(Object::Node(restricted.node_by_name("n6").unwrap())), "n6");
}
