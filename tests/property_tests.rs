//! Property-based tests of the core invariants:
//!
//! * interval sets behave like sets of time points and stay coalesced;
//! * the point-based and interval-based graph representations are interchangeable;
//! * the fragment-specific ITPG evaluators agree with the polynomial-time TPG
//!   evaluator of Theorem C.1 on randomly generated graphs and expressions.

use proptest::prelude::*;

use tgraph::{Interval, IntervalSet, Itpg, ItpgBuilder, TemporalObject, Time};
use trpq::ast::{Axis, Path, TestExpr};
use trpq::eval::itpg_anoi::eval_contains_anoi;
use trpq::eval::itpg_full::eval_contains_full;
use trpq::eval::itpg_pc::eval_contains_pc;
use trpq::eval::quad_table::Quad;
use trpq::eval::tpg::eval_path;

const MAX_TIME: Time = 7;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0..=MAX_TIME, 0..=3u64)
        .prop_map(|(start, len)| Interval::of(start, (start + len).min(MAX_TIME)))
}

prop_compose! {
    fn intervals_strategy()(intervals in prop::collection::vec(interval_strategy(), 0..6)) -> Vec<Interval> {
        intervals
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interval_sets_behave_like_point_sets(a in intervals_strategy(), b in intervals_strategy()) {
        let set_a = IntervalSet::from_intervals(a.clone());
        let set_b = IntervalSet::from_intervals(b.clone());
        prop_assert!(set_a.is_coalesced());
        prop_assert!(set_b.is_coalesced());
        let union = set_a.union(&set_b);
        let intersection = set_a.intersection(&set_b);
        prop_assert!(union.is_coalesced());
        prop_assert!(intersection.is_coalesced());
        for t in 0..=MAX_TIME {
            let in_a = a.iter().any(|iv| iv.contains(t));
            let in_b = b.iter().any(|iv| iv.contains(t));
            prop_assert_eq!(set_a.contains(t), in_a);
            prop_assert_eq!(union.contains(t), in_a || in_b);
            prop_assert_eq!(intersection.contains(t), in_a && in_b);
        }
        // Point counts agree with the point-set view.
        let count = (0..=MAX_TIME).filter(|&t| a.iter().any(|iv| iv.contains(t))).count() as u64;
        prop_assert_eq!(set_a.num_points(), count);
        // Containment relation is consistent with point membership.
        if set_a.contained_in(&set_b) {
            for t in 0..=MAX_TIME {
                if set_a.contains(t) {
                    prop_assert!(set_b.contains(t));
                }
            }
        }
    }

    #[test]
    fn insertion_order_does_not_matter(mut intervals in intervals_strategy()) {
        let bulk = IntervalSet::from_intervals(intervals.clone());
        let mut incremental = IntervalSet::empty();
        intervals.reverse();
        for iv in intervals {
            incremental.insert(iv);
        }
        prop_assert_eq!(bulk, incremental);
    }
}

/// A compact description of a random temporal graph, turned into an [`Itpg`] by
/// [`build_graph`].
#[derive(Debug, Clone)]
struct GraphSpec {
    nodes: Vec<(Vec<Interval>, bool)>, // existence intervals, high-risk flag
    edges: Vec<(usize, usize, Interval, u8)>, // src, tgt, desired interval, label choice
}

fn graph_spec_strategy() -> impl Strategy<Value = GraphSpec> {
    let nodes = prop::collection::vec(
        (prop::collection::vec(interval_strategy(), 1..3), any::<bool>()),
        2..5,
    );
    let edges = prop::collection::vec((0..4usize, 0..4usize, interval_strategy(), 0..2u8), 0..5);
    (nodes, edges).prop_map(|(nodes, edges)| GraphSpec { nodes, edges })
}

fn build_graph(spec: &GraphSpec) -> Itpg {
    let mut b = ItpgBuilder::new().domain(Interval::of(0, MAX_TIME));
    let mut node_ids = Vec::new();
    for (i, (intervals, high)) in spec.nodes.iter().enumerate() {
        let label = if i % 2 == 0 { "Person" } else { "Room" };
        let id = b.add_node(&format!("n{i}"), label).unwrap();
        let mut existence = IntervalSet::empty();
        for iv in intervals {
            b.add_existence(id, *iv).unwrap();
            existence.insert(*iv);
        }
        let risk = if *high { "high" } else { "low" };
        for iv in existence.intervals() {
            b.set_property(id, "risk", risk, *iv).unwrap();
        }
        node_ids.push((id, existence));
    }
    let mut edge_count = 0usize;
    for (src, tgt, desired, label_choice) in &spec.edges {
        let (src_id, src_exist) = &node_ids[src % node_ids.len()];
        let (tgt_id, tgt_exist) = &node_ids[tgt % node_ids.len()];
        let joint = src_exist.intersection(tgt_exist);
        let clamped = joint.clamp(desired);
        if clamped.is_empty() {
            continue;
        }
        let label = if *label_choice == 0 { "meets" } else { "visits" };
        let id = b.add_edge(&format!("e{edge_count}"), label, *src_id, *tgt_id).unwrap();
        edge_count += 1;
        for iv in clamped.intervals() {
            b.add_existence(id, *iv).unwrap();
        }
    }
    b.build().expect("generated graphs are well formed by construction")
}

/// Random expressions of `NavL[PC]` (no occurrence indicators).
fn pc_path_strategy() -> impl Strategy<Value = Path> {
    let leaf = prop_oneof![
        Just(Path::axis(Axis::Fwd)),
        Just(Path::axis(Axis::Bwd)),
        Just(Path::axis(Axis::Next)),
        Just(Path::axis(Axis::Prev)),
        Just(Path::test(TestExpr::Node)),
        Just(Path::test(TestExpr::Edge)),
        Just(Path::test(TestExpr::Exists)),
        Just(Path::test(TestExpr::label("Person"))),
        Just(Path::test(TestExpr::label("meets"))),
        Just(Path::test(TestExpr::prop("risk", "high"))),
        (0..=MAX_TIME).prop_map(|k| Path::test(TestExpr::TimeLt(k))),
        Just(Path::test(TestExpr::Exists.not())),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.then(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|p| Path::test(TestExpr::path_test(p))),
        ]
    })
}

/// Random expressions of `NavL[ANOI]` (indicators only on axes, no path conditions).
fn anoi_path_strategy() -> impl Strategy<Value = Path> {
    let axis = prop_oneof![Just(Axis::Fwd), Just(Axis::Bwd), Just(Axis::Next), Just(Axis::Prev)];
    let leaf = prop_oneof![
        (axis.clone(), 0..3u32, 0..3u32)
            .prop_map(|(a, n, extra)| Path::axis(a).repeat(n, n + extra)),
        axis.prop_map(Path::axis),
        Just(Path::test(TestExpr::Exists)),
        Just(Path::test(TestExpr::label("Person"))),
        Just(Path::test(TestExpr::prop("risk", "low"))),
        Just(Path::axis(Axis::Next).repeat_at_least(1)),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.then(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
        ]
    })
}

fn sample_temporal_objects(graph: &Itpg) -> Vec<TemporalObject> {
    let mut out = Vec::new();
    for o in graph.objects() {
        for t in [0u64, 2, 5, MAX_TIME] {
            out.push(TemporalObject::new(o, t));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn point_and_interval_representations_are_interchangeable(spec in graph_spec_strategy()) {
        let itpg = build_graph(&spec);
        let tpg = itpg.to_tpg();
        prop_assert!(tgraph::convert::equivalent(&tpg, &itpg));
        prop_assert_eq!(tpg.to_itpg(), itpg.clone());
        // Snapshots agree at every time point.
        for t in 0..=MAX_TIME {
            prop_assert_eq!(itpg.snapshot(t), tpg.snapshot(t));
        }
    }

    #[test]
    fn pc_evaluators_agree_with_the_tpg_reference(
        spec in graph_spec_strategy(),
        path in pc_path_strategy(),
    ) {
        let itpg = build_graph(&spec);
        let tpg = itpg.to_tpg();
        let reference = eval_path(&path, &tpg);
        let samples = sample_temporal_objects(&itpg);
        for (i, &src) in samples.iter().enumerate() {
            // Keep the quadratic sampling small.
            for &dst in samples.iter().skip(i % 3).step_by(3) {
                let expected = reference.contains(&Quad::new(src, dst));
                let via_pc = eval_contains_pc(&path, &itpg, src, dst).unwrap();
                prop_assert_eq!(via_pc, expected, "PC evaluator disagrees on {:?} -> {:?}", src, dst);
                let via_full = eval_contains_full(&path, &itpg, src, dst);
                prop_assert_eq!(via_full, expected, "full evaluator disagrees on {:?} -> {:?}", src, dst);
            }
        }
    }

    #[test]
    fn anoi_evaluator_agrees_with_the_tpg_reference(
        spec in graph_spec_strategy(),
        path in anoi_path_strategy(),
    ) {
        let itpg = build_graph(&spec);
        let tpg = itpg.to_tpg();
        let reference = eval_path(&path, &tpg);
        let samples = sample_temporal_objects(&itpg);
        for (i, &src) in samples.iter().enumerate() {
            for &dst in samples.iter().skip(i % 4).step_by(4) {
                let expected = reference.contains(&Quad::new(src, dst));
                let via_anoi = eval_contains_anoi(&path, &itpg, src, dst).unwrap();
                prop_assert_eq!(via_anoi, expected, "ANOI evaluator disagrees on {:?} -> {:?}", src, dst);
            }
        }
    }
}
