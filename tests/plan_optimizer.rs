//! Property tests pinning the semantic optimizer's defining invariant:
//! **optimized ≡ unoptimized**.  The pass (`engine::plan::analyze`) may drop
//! statically-empty plans, prune dead closure alternatives, and tighten
//! closure `[n, m]` windows — but on the graph its schema summary came from,
//! the rewritten plan set must produce byte-identical answers in every answer
//! mode (materialised table, enumeration cursor, compact intervals) and under
//! every join strategy, for all benchmark queries Q1–Q12 plus the REACH /
//! RECUR closure workloads, on randomly generated ITPGs.
//!
//! Alongside the equivalence, the analyzer's cardinality claim is pinned: the
//! `PlanBounds::max_rows` upper bound must dominate the actual Step-1/2
//! interval row count.

use proptest::prelude::*;

use engine::{
    analyze, AnswerMode, Binding, DiagnosticKind, ExecutionOptions, GraphRelations, JoinStrategy,
    Query, SchemaSummary,
};
use tgraph::{Interval, IntervalSet, Itpg, ItpgBuilder, Time};
use trpq::queries::QueryId;

const MAX_TIME: Time = 7;

/// The closure workloads of the perf harness (`bench::REACH_QUERY_TEXT` /
/// `RECUR_QUERY_TEXT`): REACH exercises the unbounded structural star the
/// optimizer must leave alone, RECUR the time-advancing closure whose window
/// it tightens to the domain span.
const REACH: &str =
    "MATCH (x:Person {risk = 'high'})-/(FWD/:meets/FWD)*/-(y:Person) ON contact_tracing";
const RECUR: &str = "MATCH (x:Person {risk = 'high'})\
                     -/(FWD/:meets/FWD/NEXT)*/NEXT*/-({test = 'pos'}) ON contact_tracing";

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0..=MAX_TIME, 0..=3u64)
        .prop_map(|(start, len)| Interval::of(start, (start + len).min(MAX_TIME)))
}

/// A compact description of a random temporal graph: per node its existence
/// intervals, a high-risk flag, and a positive-test flag; per edge the
/// endpoints, a desired interval, and the label choice.
#[derive(Debug, Clone)]
struct GraphSpec {
    nodes: Vec<(Vec<Interval>, bool, bool)>,
    edges: Vec<(usize, usize, Interval, u8)>,
}

fn graph_spec_strategy() -> impl Strategy<Value = GraphSpec> {
    let nodes = prop::collection::vec(
        (prop::collection::vec(interval_strategy(), 1..3), any::<bool>(), any::<bool>()),
        2..5,
    );
    let edges = prop::collection::vec((0..4usize, 0..4usize, interval_strategy(), 0..2u8), 0..6);
    (nodes, edges).prop_map(|(nodes, edges)| GraphSpec { nodes, edges })
}

fn build_graph(spec: &GraphSpec) -> Itpg {
    let mut b = ItpgBuilder::new().domain(Interval::of(0, MAX_TIME));
    let mut node_ids = Vec::new();
    for (i, (intervals, high, positive)) in spec.nodes.iter().enumerate() {
        let label = if i % 3 == 2 { "Room" } else { "Person" };
        let id = b.add_node(&format!("n{i}"), label).unwrap();
        let mut existence = IntervalSet::empty();
        for iv in intervals {
            b.add_existence(id, *iv).unwrap();
            existence.insert(*iv);
        }
        let risk = if *high { "high" } else { "low" };
        for iv in existence.intervals() {
            b.set_property(id, "risk", risk, *iv).unwrap();
            if *positive {
                b.set_property(id, "test", "pos", *iv).unwrap();
            }
        }
        node_ids.push((id, existence));
    }
    let mut edge_count = 0usize;
    for (src, tgt, desired, label_choice) in &spec.edges {
        let (src_id, src_exist) = &node_ids[src % node_ids.len()];
        let (tgt_id, tgt_exist) = &node_ids[tgt % node_ids.len()];
        let joint = src_exist.intersection(tgt_exist);
        let clamped = joint.clamp(desired);
        if clamped.is_empty() {
            continue;
        }
        let label = if *label_choice == 0 { "meets" } else { "visits" };
        let id = b.add_edge(&format!("e{edge_count}"), label, *src_id, *tgt_id).unwrap();
        edge_count += 1;
        for iv in clamped.intervals() {
            b.add_existence(id, *iv).unwrap();
        }
    }
    b.build().expect("generated graphs are well formed by construction")
}

/// Runs one query with and without the optimizer pass in all three answer
/// modes and asserts the outputs are identical.
fn check_equivalence(query: &Query, graph: &GraphRelations, label: &str) {
    let modes = |optimize: bool| {
        let on = |mode: AnswerMode| {
            query.clone().with_options(query.options().with_optimize(optimize).with_mode(mode))
        };
        let table = on(AnswerMode::Materialized)
            .run(graph)
            .into_table()
            .expect("materialised mode returns a table");
        let mut answers = on(AnswerMode::Enumerate).run(graph);
        let streamed: Vec<Vec<Binding>> =
            answers.cursor_mut().expect("enumerate mode returns a cursor").collect();
        let compact_answers = on(AnswerMode::Compact).run(graph);
        let compact = compact_answers.compact().expect("compact mode returns intervals").clone();
        (table, streamed, compact)
    };
    let (table_opt, cursor_opt, compact_opt) = modes(true);
    let (table_raw, cursor_raw, compact_raw) = modes(false);
    assert_eq!(table_opt, table_raw, "{label}: materialised tables must agree");
    assert_eq!(cursor_opt, cursor_raw, "{label}: cursor streams must agree");
    assert_eq!(compact_opt, compact_raw, "{label}: compact answers must agree");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn optimized_equals_unoptimized_on_random_graphs(spec in graph_spec_strategy()) {
        let graph = GraphRelations::from_itpg(&build_graph(&spec));
        for strategy in JoinStrategy::ALL {
            let options = ExecutionOptions::sequential().with_strategy(strategy);
            for id in QueryId::ALL {
                let query = Query::benchmark(id).with_options(options);
                check_equivalence(&query, &graph, &format!("{} under {strategy}", id.name()));
            }
            for (name, text) in [("REACH", REACH), ("RECUR", RECUR)] {
                let query = Query::parse(text)
                    .expect("closure workloads compile")
                    .with_options(options);
                check_equivalence(&query, &graph, &format!("{name} under {strategy}"));
            }
        }
    }

    #[test]
    fn cardinality_bounds_dominate_actual_rows(spec in graph_spec_strategy()) {
        let graph = GraphRelations::from_itpg(&build_graph(&spec));
        let schema = SchemaSummary::of(&graph);
        let options = ExecutionOptions::sequential().with_optimize(false);
        for id in QueryId::ALL {
            let plan_set = engine::queries::plan_for(id);
            let analysis = analyze(&plan_set, &schema);
            let budget: u128 = analysis
                .bounds
                .iter()
                .fold(0u128, |acc, b| acc.saturating_add(b.max_rows));
            let output = engine::execute(&plan_set, &graph, &options);
            prop_assert!(
                (output.stats.interval_rows as u128) <= budget,
                "{}: {} interval rows exceed the analyzer's bound {}",
                id.name(),
                output.stats.interval_rows,
                budget
            );
        }
    }
}

/// A tiny fixed graph whose schema is fully known, for exercising each
/// diagnostic kind through the public API.
fn diagnostic_graph() -> GraphRelations {
    let mut b = ItpgBuilder::new().domain(Interval::of(0, MAX_TIME));
    let all = Interval::of(0, MAX_TIME);
    let ann = b.add_node("ann", "Person").unwrap();
    let bob = b.add_node("bob", "Person").unwrap();
    let m = b.add_edge("m", "meets", ann, bob).unwrap();
    b.add_existence(ann, all).unwrap();
    b.add_existence(bob, all).unwrap();
    b.add_existence(m, all).unwrap();
    GraphRelations::from_itpg(&b.build().unwrap())
}

fn diagnose(text: &str) -> Vec<DiagnosticKind> {
    let clause = trpq::parse_match(text).unwrap();
    let plan_set = engine::compile(&clause).unwrap();
    let analysis = analyze(&plan_set, &SchemaSummary::of(&diagnostic_graph()));
    analysis.diagnostics.iter().map(|d| d.kind).collect()
}

#[test]
fn empty_plan_diagnostic_fires_on_unknown_labels() {
    assert!(diagnose("MATCH (x:Robot)-[e:meets]->(y) ON g").contains(&DiagnosticKind::EmptyPlan));
}

#[test]
fn dead_alternative_diagnostic_fires_on_unmatchable_branches() {
    let kinds = diagnose("MATCH (x:Person)-/(FWD/:meets/FWD + FWD/:warps/FWD)*/-(y:Person) ON g");
    assert!(kinds.contains(&DiagnosticKind::DeadAlternative), "{kinds:?}");
}

#[test]
fn infeasible_band_diagnostic_fires_on_overwide_shifts() {
    let kinds = diagnose("MATCH (x:Person)-/NEXT[50,60]/-(y) ON g");
    assert!(kinds.contains(&DiagnosticKind::InfeasibleBand), "{kinds:?}");
}

#[test]
fn unbounded_closure_note_fires_on_structural_stars() {
    let kinds = diagnose("MATCH (x:Person)-/(FWD/:meets/FWD)*/-(y:Person) ON g");
    assert!(kinds.contains(&DiagnosticKind::UnboundedClosure), "{kinds:?}");
}

#[test]
fn clean_queries_have_no_diagnostics_at_all() {
    assert!(diagnose("MATCH (x:Person)-[e:meets]->(y:Person) ON g").is_empty());
}
