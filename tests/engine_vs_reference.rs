//! Cross-validation of the interval-based engine against the reference evaluators of
//! the `trpq` crate: the engine's binding tables, projected onto the first and last
//! bound variables, must agree with the relation `⟦path⟧_G` computed by the
//! polynomial-time evaluator of Theorem C.1 over the expanded point-based graph.

use std::collections::BTreeSet;

use engine::{ExecutionOptions, GraphRelations, JoinStrategy, TimeRef};
use tgraph::{Itpg, TemporalObject};
use trpq::eval::tpg::eval_path;
use trpq::queries::QueryId;
use trpq::rewrite::rewrite_match;
use workload::{figure1, ContactTracingConfig};

/// Runs a benchmark query through the `Query` builder, materialised.
fn run_query(
    id: QueryId,
    graph: &GraphRelations,
    options: &ExecutionOptions,
) -> engine::QueryOutput {
    let answers = engine::Query::benchmark(id).with_options(*options).run(graph);
    answers.into_output().expect("the default mode materialises")
}

/// The engine's first-variable bindings, expanded to `(object, time)` points.
fn engine_sources(graph: &GraphRelations, id: QueryId) -> BTreeSet<TemporalObject> {
    let out = run_query(id, graph, &ExecutionOptions::sequential());
    let mut set = BTreeSet::new();
    for row in out.table.rows() {
        let first = &row[0];
        match first.time {
            TimeRef::Point(t) => {
                set.insert(TemporalObject::new(first.object, t));
            }
            TimeRef::Interval(iv) => {
                for t in iv.points() {
                    set.insert(TemporalObject::new(first.object, t));
                }
            }
        }
    }
    set
}

/// The reference evaluator's sources for the same query: the distinct `(o, t)` that
/// start a path satisfying the rewritten `NavL` expression.
fn reference_sources(itpg: &Itpg, id: QueryId) -> BTreeSet<TemporalObject> {
    let rewritten = rewrite_match(&id.clause()).expect("benchmark queries rewrite");
    let tpg = itpg.to_tpg();
    eval_path(&rewritten.path, &tpg).sources().into_iter().collect()
}

fn compare_all_queries(itpg: &Itpg, label: &str) {
    let relations = GraphRelations::from_itpg(itpg);
    for id in QueryId::ALL {
        let engine_side = engine_sources(&relations, id);
        let reference_side = reference_sources(itpg, id);
        assert_eq!(
            engine_side,
            reference_side,
            "{label}: engine and reference evaluator disagree on {}",
            id.name()
        );
    }
}

#[test]
fn figure1_agrees_with_the_reference_evaluator() {
    compare_all_queries(&figure1(), "figure 1");
}

#[test]
fn small_synthetic_graphs_agree_with_the_reference_evaluator() {
    for seed in [1u64, 2, 3] {
        let mut config = ContactTracingConfig::with_persons(14).with_seed(seed);
        config.positivity_rate = 0.3;
        config.trajectories.num_rooms = 4;
        config.trajectories.num_meeting_locations = 5;
        config.trajectories.num_time_points = 16;
        let graph = workload::generate(&config);
        compare_all_queries(&graph, &format!("synthetic seed {seed}"));
    }
}

#[test]
fn engine_pairs_match_reference_pairs_for_two_variable_queries() {
    // For queries whose last pattern binds a variable, the full (source, destination)
    // relation must match, not just the sources.
    let itpg = figure1();
    let tpg = itpg.to_tpg();
    let relations = GraphRelations::from_itpg(&itpg);
    for id in [QueryId::Q5, QueryId::Q6, QueryId::Q7, QueryId::Q8] {
        let rewritten = rewrite_match(&id.clause()).unwrap();
        let reference: BTreeSet<(TemporalObject, TemporalObject)> =
            eval_path(&rewritten.path, &tpg).iter().map(|q| (q.src, q.dst)).collect();

        let out = run_query(id, &relations, &ExecutionOptions::sequential());
        let mut engine_pairs = BTreeSet::new();
        for row in out.table.rows() {
            let first = &row[0];
            let last = &row[row.len() - 1];
            match (first.time, last.time) {
                (TimeRef::Point(a), TimeRef::Point(b)) => {
                    engine_pairs.insert((
                        TemporalObject::new(first.object, a),
                        TemporalObject::new(last.object, b),
                    ));
                }
                (TimeRef::Interval(iv), TimeRef::Interval(_)) => {
                    // Structural queries: the whole row shares each snapshot time.
                    for t in iv.points() {
                        engine_pairs.insert((
                            TemporalObject::new(first.object, t),
                            TemporalObject::new(last.object, t),
                        ));
                    }
                }
                other => panic!("unexpected mixed binding {other:?}"),
            }
        }
        assert_eq!(engine_pairs, reference, "pair mismatch for {}", id.name());
    }
}

#[test]
fn parallel_and_sequential_execution_agree_on_synthetic_data() {
    let config = ContactTracingConfig::with_persons(200).with_seed(77).with_positivity_rate(0.1);
    let graph = GraphRelations::from_itpg(&workload::generate(&config));
    for id in QueryId::ALL {
        let seq = run_query(id, &graph, &ExecutionOptions::sequential());
        let par = run_query(id, &graph, &ExecutionOptions::with_threads(8));
        assert_eq!(seq.table, par.table, "{}", id.name());
    }
}

#[test]
fn all_join_strategies_agree_on_synthetic_data() {
    // The hash and sort-merge join implementations (and the adaptive Auto mode) must
    // produce identical binding tables, sequentially and chunked across workers.
    let config = ContactTracingConfig::with_persons(150).with_seed(41).with_positivity_rate(0.15);
    let graph = GraphRelations::from_itpg(&workload::generate(&config));
    for id in QueryId::ALL {
        let reference = run_query(
            id,
            &graph,
            &ExecutionOptions::sequential().with_strategy(JoinStrategy::Hash),
        );
        for strategy in [JoinStrategy::Merge, JoinStrategy::Auto] {
            for options in [
                ExecutionOptions::sequential().with_strategy(strategy),
                ExecutionOptions::with_threads(4).with_strategy(strategy),
            ] {
                let alt = run_query(id, &graph, &options);
                assert_eq!(
                    reference.table,
                    alt.table,
                    "{} disagrees under {strategy} with {} threads",
                    id.name(),
                    options.parallelism.threads()
                );
                assert_eq!(reference.stats.interval_rows, alt.stats.interval_rows);
                assert_eq!(reference.stats.output_rows, alt.stats.output_rows);
            }
        }
    }
}

#[test]
fn itpg_membership_checks_agree_with_the_tpg_relation() {
    // Spot-check the fragment-specific ITPG evaluators against the TPG evaluator on
    // the rewritten benchmark queries (membership of a sample of tuples).
    let itpg = figure1();
    let tpg = itpg.to_tpg();
    for id in [QueryId::Q1, QueryId::Q2, QueryId::Q6, QueryId::Q7, QueryId::Q9, QueryId::Q12] {
        let rewritten = rewrite_match(&id.clause()).unwrap();
        let reference = eval_path(&rewritten.path, &tpg);
        // Every tuple of the reference relation must be accepted by the ITPG evaluator…
        for quad in reference.iter().take(50) {
            assert!(
                trpq::eval::eval_contains_itpg(&rewritten.path, &itpg, quad.src, quad.dst).unwrap(),
                "{}: reference tuple rejected over the ITPG",
                id.name()
            );
        }
        // …and a few non-tuples must be rejected.
        let objects: Vec<_> = itpg.objects().collect();
        let mut rejected = 0;
        'outer: for &o1 in objects.iter().take(6) {
            for &o2 in objects.iter().take(6) {
                for t in [1u64, 5, 9] {
                    let src = TemporalObject::new(o1, t);
                    let dst = TemporalObject::new(o2, t);
                    if !reference.contains(&trpq::eval::quad_table::Quad::new(src, dst)) {
                        assert!(
                            !trpq::eval::eval_contains_itpg(&rewritten.path, &itpg, src, dst)
                                .unwrap(),
                            "{}: non-tuple accepted over the ITPG",
                            id.name()
                        );
                        rejected += 1;
                        if rejected > 20 {
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(rejected > 0);
    }
}
