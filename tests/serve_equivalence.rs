//! Serving-path equivalence: every snapshot read served by the MVCC layer —
//! maintained tables of registered queries and ad-hoc executions in all three
//! answer modes, including reads submitted concurrently through the worker
//! pool while the writer ingests — equals a from-scratch `execute` on the
//! graph materialised at the pinned epoch.
//!
//! The suite covers the paper's Q1–Q12 plus the REACH structural closure and
//! the RECUR time-aware closure, under the hash, merge and auto join
//! strategies.  Set `TPATH_JOIN_STRATEGY=hash|merge|auto` to pin one strategy
//! (what the CI concurrency matrix does); unset, all three run.

use std::collections::BTreeMap;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use engine::plan::PlanSet;
use engine::{
    compile, execute, execute_answers, AnswerMode, ExecutionOptions, GraphRelations, JoinStrategy,
};
use live::serve::{Request, ServeGraph, Server};
use tgraph::{Batch, Interval, Itpg};
use trpq::queries::QueryId;
use workload::{stream_contact_batches, ContactTracingConfig};

const REACH: &str = "MATCH (x:Person {risk = 'high'})-/(FWD/:meets/FWD)*/-(y:Person) ON live";
const RECUR: &str = "MATCH (x:Person {risk = 'high'})\
                     -/(FWD/:meets/FWD/NEXT)*/NEXT*/-({test = 'pos'}) ON live";

/// Q1–Q12 plus the two closure queries, with display names.
fn suite() -> Vec<(String, PlanSet)> {
    let mut out: Vec<(String, PlanSet)> = QueryId::ALL
        .into_iter()
        .map(|id| (id.name().to_string(), engine::queries::plan_for(id)))
        .collect();
    for (name, text) in [("REACH", REACH), ("RECUR", RECUR)] {
        let clause = trpq::parser::parse_match(text).expect("closure queries parse");
        out.push((name.to_string(), compile(&clause).expect("closure queries compile")));
    }
    out
}

/// The strategies to run: the one named by `TPATH_JOIN_STRATEGY`, or all three.
fn strategies() -> Vec<JoinStrategy> {
    match std::env::var("TPATH_JOIN_STRATEGY") {
        Ok(name) => vec![JoinStrategy::from_str(&name).expect("valid TPATH_JOIN_STRATEGY")],
        Err(_) => JoinStrategy::ALL.to_vec(),
    }
}

fn workload_batches() -> Vec<Batch> {
    let config = ContactTracingConfig::with_persons(28)
        .with_seed(11)
        .with_time_points(10)
        .with_positivity_rate(0.25);
    stream_contact_batches(&config)
}

/// Sequential half: pin every epoch of the stream, and require that reading
/// each pinned snapshot — the maintained table of every registered query and
/// a direct execution over the pinned relations — equals a from-scratch
/// `execute` on a bulk rebuild of the graph at that epoch.
#[test]
fn pinned_snapshot_reads_equal_from_scratch_execution() {
    let batches = workload_batches();
    let suite = suite();
    for strategy in strategies() {
        let options = ExecutionOptions::sequential().with_strategy(strategy);
        let graph = ServeGraph::with_options(Itpg::empty(Interval::of(0, 1)), options);
        let ids: Vec<_> = suite.iter().map(|(_, plan)| graph.register(plan.clone())).collect();

        // Stream the workload, keeping one pin and one reference graph per epoch.
        let mut reference = Itpg::empty(Interval::of(0, 1));
        let mut checkpoints = Vec::new();
        for batch in &batches {
            graph.ingest(batch).unwrap();
            reference.apply_batch(batch).unwrap();
            checkpoints.push((graph.pin(), reference.clone()));
        }

        for (pin, reference) in &checkpoints {
            let scratch = GraphRelations::from_itpg(reference);
            for (index, (name, plan)) in suite.iter().enumerate() {
                let expected = execute(plan, &scratch, &options);
                let direct = execute(plan, pin.relations(), &options);
                assert_eq!(
                    direct.table,
                    expected.table,
                    "{name} under {strategy} at epoch {:?}: snapshot execution diverged",
                    pin.epoch()
                );
                assert_eq!(
                    pin.table(ids[index]).unwrap().as_ref(),
                    &expected.table,
                    "{name} under {strategy} at epoch {:?}: maintained table diverged",
                    pin.epoch()
                );
            }
        }
    }
}

/// Concurrent half: worker threads serve registered reads and ad-hoc queries
/// in every answer mode while the writer streams batches.  Each response is
/// verified against a from-scratch execution on the graph materialised at the
/// response's *own* pinned epoch.
#[test]
fn concurrent_serving_agrees_with_the_pinned_epoch() {
    let batches = workload_batches();
    let suite = suite();
    for strategy in strategies() {
        let options = ExecutionOptions::sequential().with_strategy(strategy);

        // From-scratch reference relations per epoch, computed up front.
        let mut reference = Itpg::empty(Interval::of(0, 1));
        let mut scratch_at: BTreeMap<Option<u64>, GraphRelations> = BTreeMap::new();
        scratch_at.insert(None, GraphRelations::from_itpg(&reference));
        for batch in &batches {
            reference.apply_batch(batch).unwrap();
            scratch_at.insert(Some(batch.epoch), GraphRelations::from_itpg(&reference));
        }

        let graph = Arc::new(ServeGraph::with_options(Itpg::empty(Interval::of(0, 1)), options));
        let ids: Vec<_> = suite.iter().map(|(_, plan)| graph.register(plan.clone())).collect();
        let plans: Vec<Arc<PlanSet>> =
            suite.iter().map(|(_, plan)| Arc::new(plan.clone())).collect();
        let server = Server::start(Arc::clone(&graph), 4);

        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for reader in 0..3usize {
                let server = &server;
                let done = &done;
                let scratch_at = &scratch_at;
                let suite = &suite;
                let ids = &ids;
                let plans = &plans;
                scope.spawn(move || {
                    let modes =
                        [AnswerMode::Materialized, AnswerMode::Compact, AnswerMode::Enumerate];
                    let mut round = 0usize;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let index = (reader + round) % suite.len();
                        let mode = modes[round % modes.len()];
                        let (name, _) = &suite[index];

                        // A registered read and an ad-hoc execution, both
                        // verified against the epoch each response pinned.
                        let maintained =
                            server.submit(Request::Registered(ids[index])).wait().unwrap();
                        let scratch = &scratch_at[&maintained.epoch.epoch()];
                        let expected = execute(&plans[index], scratch, &options);
                        assert_eq!(
                            maintained.answer.rows().unwrap(),
                            &expected.table,
                            "{name} under {strategy}: maintained read diverged at epoch {:?}",
                            maintained.epoch.epoch()
                        );

                        let adhoc = server
                            .submit(Request::Compiled { plan: Arc::clone(&plans[index]), mode })
                            .wait()
                            .unwrap();
                        let scratch = &scratch_at[&adhoc.epoch.epoch()];
                        let served_options = options.with_mode(mode);
                        match mode {
                            AnswerMode::Materialized | AnswerMode::Enumerate => {
                                let expected = execute(&plans[index], scratch, &options);
                                assert_eq!(
                                    adhoc.answer.rows().unwrap(),
                                    &expected.table,
                                    "{name} under {strategy} ({mode:?}) diverged at epoch {:?}",
                                    adhoc.epoch.epoch()
                                );
                            }
                            AnswerMode::Compact => {
                                let expected =
                                    execute_answers(&plans[index], scratch, &served_options)
                                        .into_compact()
                                        .expect("compact answers");
                                assert_eq!(
                                    adhoc.answer.compact().unwrap(),
                                    &expected,
                                    "{name} under {strategy} (compact) diverged at epoch {:?}",
                                    adhoc.epoch.epoch()
                                );
                            }
                        }
                        round += 1;
                        if finished {
                            break;
                        }
                    }
                });
            }
            for batch in &batches {
                graph.ingest(batch).unwrap();
            }
            done.store(true, Ordering::Release);
        });

        // The writer was never starved by the readers: every batch landed and
        // the final epoch is the stream's last.
        assert_eq!(graph.batches_applied(), batches.len());
        assert_eq!(graph.pin().epoch(), Some(batches.last().unwrap().epoch));
        assert_eq!(graph.stats().pinned_readers, 0, "every response released its pin");
        server.shutdown();
    }
}
