//! Fuzzed plan-audit tests: the static analyzer (`engine::plan::audit`) must
//! accept every plan the compiler produces — over randomly generated surface
//! queries spanning the whole practical fragment — and must reject every
//! random structural mutation that breaks one of the invariants the executor
//! and live maintenance rely on.

use engine::plan::audit::{audit, hop_depth};
use engine::plan::{ClosureOp, MicroOp, PlanSet, Shift, TemporalLink};
use engine::{compile, ExecutionOptions, GraphRelations};
use proptest::prelude::*;
use tgraph::{Interval, ItpgBuilder};
use trpq::parser::parse_match;

/// A random repetition indicator: `*`, `[n,m]` (possibly degenerate or
/// unsatisfiable at the surface level — normalization must handle it), or
/// `[n,_]`.
fn indicator() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("*".to_string()),
        (0..3u32, 0..4u32).prop_map(|(n, len)| format!("[{},{}]", n, n + len)),
        (0..4u32, 0..3u32).prop_map(|(n, m)| format!("[{n},{m}]")),
        (0..3u32).prop_map(|n| format!("[{n},_]")),
    ]
}

/// A random path expression of the practical fragment, as surface syntax:
/// structural hops, label tests, temporal indicators, unions and repetitions
/// (nested up to depth 3).
fn path_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("FWD".to_string()),
        Just("BWD".to_string()),
        Just("FWD/:meets/FWD".to_string()),
        Just("BWD/:meets/BWD".to_string()),
        Just("NEXT".to_string()),
        Just("PREV".to_string()),
        indicator().prop_map(|i| format!("NEXT{i}")),
        indicator().prop_map(|i| format!("PREV{i}")),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}/{b}")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner, indicator()).prop_map(|(p, i)| format!("({p}){i}")),
        ]
    })
}

fn tiny_graph() -> GraphRelations {
    let mut b = ItpgBuilder::new();
    let mia = b.add_node("mia", "Person").unwrap();
    let eve = b.add_node("eve", "Person").unwrap();
    let meets = b.add_edge("meets1", "meets", mia, eve).unwrap();
    b.add_existence(mia, Interval::of(1, 8)).unwrap();
    b.add_existence(eve, Interval::of(1, 8)).unwrap();
    b.add_existence(meets, Interval::of(2, 3)).unwrap();
    GraphRelations::from_itpg(&b.domain(Interval::of(1, 8)).build().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every compilable query yields a plan set the audit certifies: the
    /// compiler's normalization (degenerate/unsatisfiable indicators dropped,
    /// closures placed by time-crossing, links matching segment arity) is
    /// exactly what the analyzer checks.
    #[test]
    fn compiled_plans_always_pass_the_audit(path in path_strategy()) {
        let text = format!("MATCH (x:Person)-/{path}/-(y) ON g");
        let clause = parse_match(&text).expect("generated query is well-formed");
        // Some surface forms are rejected at compile time (e.g. a path that is
        // pure time navigation under an outer star); those never reach the
        // executor, so only successful compilations are audited.
        if let Ok(plan_set) = compile(&clause) {
            let report = audit(&plan_set)
                .unwrap_or_else(|e| panic!("compiled plan set failed the audit for {text}: {e}"));
            prop_assert_eq!(report.hop_depths.len(), plan_set.plans.len());
            for (plan, hops) in plan_set.plans.iter().zip(&report.hop_depths) {
                prop_assert_eq!(hop_depth(plan), *hops);
            }
        }
    }

    /// An audited plan set executes without panicking (the executor's own
    /// debug-assertion audit agrees with the standalone one).
    #[test]
    fn audited_plans_execute(path in path_strategy()) {
        let text = format!("MATCH (x:Person)-/{path}/-(y) ON g");
        let clause = parse_match(&text).expect("generated query is well-formed");
        if let Ok(plan_set) = compile(&clause) {
            let graph = tiny_graph();
            engine::execute(&plan_set, &graph, &ExecutionOptions::sequential());
        }
    }

    /// Every invariant-breaking mutation of a well-formed plan is rejected
    /// with a diagnostic naming the defect.
    #[test]
    fn mutated_plans_always_fail_the_audit(mutation in 0..8usize, path in path_strategy()) {
        let text = format!("MATCH (x:Person)-/{path}/-(y) ON g");
        let clause = parse_match(&text).expect("generated query is well-formed");
        let Ok(plan_set) = compile(&clause) else { return Ok(()) };
        if plan_set.plans.is_empty() {
            return Ok(());
        }
        let broken = break_plan(plan_set, mutation);
        let error = audit(&broken).expect_err("a broken plan must be rejected");
        prop_assert!(!error.issues.is_empty());
        for issue in &error.issues {
            prop_assert!(issue.plan.is_some(), "issues name the offending plan");
            prop_assert!(!issue.message.is_empty());
        }
    }
}

/// Applies one of eight invariant-breaking mutations to the first plan.
fn break_plan(mut plan_set: PlanSet, mutation: usize) -> PlanSet {
    let unsat = Shift { forward: true, min: 3, max: Some(1) };
    let plan = &mut plan_set.plans[0];
    match mutation {
        // Link-arity violations.
        0 => plan.segments.push(engine::plan::Segment::default()),
        1 => plan.links.push(TemporalLink::Shift(unsat)),
        // Unsatisfiable / degenerate operators the compiler normalizes away.
        2 => {
            plan.segments.push(engine::plan::Segment::default());
            plan.links.push(TemporalLink::Shift(unsat));
        }
        3 => plan.segments[0].ops.push(MicroOp::Closure(ClosureOp::structural(
            vec![vec![]],
            0,
            None,
        ))),
        4 => plan.segments[0].ops.push(MicroOp::Closure(ClosureOp {
            alternatives: vec![],
            min: 0,
            max: None,
        })),
        5 => plan.segments[0].ops.push(MicroOp::Closure(ClosureOp::structural(
            vec![vec![MicroOp::Hop(engine::plan::HopDirection::Forward)]],
            1,
            Some(1),
        ))),
        // Binding violations: out-of-range slot, then a duplicate bind.
        6 => plan.segments[0].ops.push(MicroOp::Bind(usize::MAX)),
        _ => {
            plan.segments[0].ops.push(MicroOp::Bind(0));
            plan.segments[0].ops.push(MicroOp::Bind(0));
        }
    }
    plan_set
}
