//! Property tests of the answer-mode contract, on randomly generated ITPGs:
//!
//! * `AnswerMode::Enumerate` streams exactly the rows of the materialised
//!   `BindingTable`, in its canonical order;
//! * `AnswerMode::Compact` equals the projection of the materialised table onto
//!   `(first object, last object, last binding time)`, coalesced;
//!
//! for all benchmark queries Q1–Q12 plus the REACH / RECUR closure workloads,
//! under every join strategy.

use proptest::prelude::*;

use engine::{
    AnswerMode, Binding, CompactAnswers, ExecutionOptions, GraphRelations, JoinStrategy, Query,
};
use tgraph::{Interval, IntervalSet, Itpg, ItpgBuilder, Time};
use trpq::queries::QueryId;

const MAX_TIME: Time = 7;

/// The closure workloads of the perf harness (`bench::REACH_QUERY_TEXT` /
/// `RECUR_QUERY_TEXT`), the queries whose output most rewards lazy answers.
const REACH: &str =
    "MATCH (x:Person {risk = 'high'})-/(FWD/:meets/FWD)*/-(y:Person) ON contact_tracing";
const RECUR: &str = "MATCH (x:Person {risk = 'high'})\
                     -/(FWD/:meets/FWD/NEXT)*/NEXT*/-({test = 'pos'}) ON contact_tracing";

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0..=MAX_TIME, 0..=3u64)
        .prop_map(|(start, len)| Interval::of(start, (start + len).min(MAX_TIME)))
}

/// A compact description of a random temporal graph: per node its existence
/// intervals, a high-risk flag, and a positive-test flag; per edge the endpoints,
/// a desired interval, and the label choice.
#[derive(Debug, Clone)]
struct GraphSpec {
    nodes: Vec<(Vec<Interval>, bool, bool)>,
    edges: Vec<(usize, usize, Interval, u8)>,
}

fn graph_spec_strategy() -> impl Strategy<Value = GraphSpec> {
    let nodes = prop::collection::vec(
        (prop::collection::vec(interval_strategy(), 1..3), any::<bool>(), any::<bool>()),
        2..5,
    );
    let edges = prop::collection::vec((0..4usize, 0..4usize, interval_strategy(), 0..2u8), 0..6);
    (nodes, edges).prop_map(|(nodes, edges)| GraphSpec { nodes, edges })
}

fn build_graph(spec: &GraphSpec) -> Itpg {
    let mut b = ItpgBuilder::new().domain(Interval::of(0, MAX_TIME));
    let mut node_ids = Vec::new();
    for (i, (intervals, high, positive)) in spec.nodes.iter().enumerate() {
        let label = if i % 3 == 2 { "Room" } else { "Person" };
        let id = b.add_node(&format!("n{i}"), label).unwrap();
        let mut existence = IntervalSet::empty();
        for iv in intervals {
            b.add_existence(id, *iv).unwrap();
            existence.insert(*iv);
        }
        let risk = if *high { "high" } else { "low" };
        for iv in existence.intervals() {
            b.set_property(id, "risk", risk, *iv).unwrap();
            if *positive {
                b.set_property(id, "test", "pos", *iv).unwrap();
            }
        }
        node_ids.push((id, existence));
    }
    let mut edge_count = 0usize;
    for (src, tgt, desired, label_choice) in &spec.edges {
        let (src_id, src_exist) = &node_ids[src % node_ids.len()];
        let (tgt_id, tgt_exist) = &node_ids[tgt % node_ids.len()];
        let joint = src_exist.intersection(tgt_exist);
        let clamped = joint.clamp(desired);
        if clamped.is_empty() {
            continue;
        }
        let label = if *label_choice == 0 { "meets" } else { "visits" };
        let id = b.add_edge(&format!("e{edge_count}"), label, *src_id, *tgt_id).unwrap();
        edge_count += 1;
        for iv in clamped.intervals() {
            b.add_existence(id, *iv).unwrap();
        }
    }
    b.build().expect("generated graphs are well formed by construction")
}

/// Checks all three answer modes of one compiled query against each other.
fn check_modes(query: &Query, graph: &GraphRelations, label: &str) {
    let table = query
        .clone()
        .with_mode(AnswerMode::Materialized)
        .run(graph)
        .into_table()
        .expect("materialised mode returns a table");

    let mut answers = query.clone().with_mode(AnswerMode::Enumerate).run(graph);
    let cursor = answers.cursor_mut().expect("enumerate mode returns a cursor");
    let streamed: Vec<Vec<Binding>> = cursor.by_ref().collect();
    assert_eq!(
        streamed.as_slice(),
        table.rows(),
        "{label}: cursor must stream the canonical table"
    );
    assert_eq!(answers.stats().output_rows, table.len(), "{label}: honest cursor stats");

    let answers = query.clone().with_mode(AnswerMode::Compact).run(graph);
    let compact = answers.compact().expect("compact mode returns interval answers");
    assert_eq!(
        compact,
        &CompactAnswers::from_table(&table),
        "{label}: compact answers must equal the coalesced table projection"
    );
    assert_eq!(answers.stats().output_rows, compact.num_pairs(), "{label}: honest pair stats");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn answer_modes_agree_on_random_graphs(spec in graph_spec_strategy()) {
        let graph = GraphRelations::from_itpg(&build_graph(&spec));
        for strategy in JoinStrategy::ALL {
            let options = ExecutionOptions::sequential().with_strategy(strategy);
            for id in QueryId::ALL {
                let query = Query::benchmark(id).with_options(options);
                check_modes(&query, &graph, &format!("{} under {strategy}", id.name()));
            }
            for (name, text) in [("REACH", REACH), ("RECUR", RECUR)] {
                let query = Query::parse(text)
                    .expect("closure workloads compile")
                    .with_options(options);
                check_modes(&query, &graph, &format!("{name} under {strategy}"));
            }
        }
    }
}
