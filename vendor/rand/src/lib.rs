//! Offline shim for `rand` 0.8.
//!
//! Implements exactly the API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over integer and
//! float ranges, and `distributions::Distribution` — on top of a xoshiro256++
//! generator seeded through splitmix64. The streams differ from the real
//! `rand::StdRng` (which is ChaCha12), but every consumer in this workspace only
//! relies on determinism-for-a-fixed-seed and decent uniformity, both of which
//! xoshiro256++ provides.

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Converts a `u64` stream into a uniform `f64` in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high-quality bits → the standard mantissa trick.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

pub mod distributions {
    //! The `Distribution` trait, for types that sample values from a generator.

    use super::Rng;

    /// Types that produce values of `T` from a source of randomness.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++, seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let mut c = StdRng::seed_from_u64(12);
        let sa: Vec<u64> = (0..16).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
            let x = rng.gen_range(2..=4u32);
            assert!((2..=4).contains(&x));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
