//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::scope` with the 0.8 calling convention — the spawn
//! closure receives a `&Scope` argument, and both `scope` and `join` return
//! `Result` — implemented on top of `std::thread::scope`, which has subsumed
//! crossbeam's scoped threads since Rust 1.63.

use std::any::Any;

/// The error half of [`Result`]: a captured thread panic payload.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// Result type of [`scope`] and [`ScopedJoinHandle::join`].
pub type Result<T> = std::result::Result<T, PanicPayload>;

/// A scope in which threads borrowing non-`'static` data can be spawned.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope again so it can
    /// spawn further threads, as in crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
    }
}

/// Handle to a thread spawned inside a [`scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its panic payload on panic.
    pub fn join(self) -> Result<T> {
        self.inner.join()
    }
}

/// Creates a scope for spawning threads that borrow from the caller's stack.
///
/// Unlike crossbeam, a panic in an unjoined child propagates out of the
/// enclosing `std::thread::scope` instead of being returned as `Err`; every
/// caller in this workspace joins all of its handles, so the difference is
/// unobservable here.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawns_work() {
        let n = scope(|s| s.spawn(|s2| s2.spawn(|_| 21u32).join().unwrap() * 2).join().unwrap())
            .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn child_panic_is_captured_by_join() {
        let joined = scope(|s| s.spawn(|_| panic!("boom")).join());
        assert!(joined.unwrap().is_err());
    }
}
