//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest 1.x surface the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive`
//! and `boxed`; `Just`, tuple and range strategies; `prop::collection::vec`;
//! `any::<T>()`; and the `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert!` and `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion message; rerun
//!   with the printed case number context to debug.
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG seed from
//!   the test's name, so CI failures reproduce locally without a persistence
//!   file.

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            U: 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            from_fn(move |rng| f(self.new_value(rng)))
        }

        /// Builds a recursive strategy: `f` receives the strategy for the
        /// previous depth and returns the strategy for one level deeper.
        /// `depth` bounds the recursion; the sizing hints are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = f(current).boxed();
                let leaf = leaf.clone();
                // Half leaves, half recursive cases keeps generated sizes small.
                current = from_fn(move |rng| {
                    if rng.next_u64() % 2 == 0 {
                        leaf.new_value(rng)
                    } else {
                        deeper.new_value(rng)
                    }
                });
            }
            current
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Wraps a generation closure as a [`BoxedStrategy`].
    pub fn from_fn<V, F>(f: F) -> BoxedStrategy<V>
    where
        F: Fn(&mut TestRng) -> V + 'static,
    {
        BoxedStrategy(Rc::new(f))
    }

    /// Uniformly picks one of `arms` each time a value is generated.
    /// Backs the `prop_oneof!` macro.
    pub fn union<V: 'static>(arms: Vec<BoxedStrategy<V>>) -> BoxedStrategy<V> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        from_fn(move |rng| {
            let i = (rng.next_u64() % arms.len() as u64) as usize;
            arms[i].new_value(rng)
        })
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot generate from empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot generate from empty range");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and the [`any`] entry point.

    use crate::strategy::{from_fn, BoxedStrategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() % 2 == 0
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for any value of `T`.
    pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
        from_fn(T::arbitrary)
    }
}

pub mod collection {
    //! Strategies for collections.

    use std::ops::{Range, RangeInclusive};

    use crate::strategy::{from_fn, BoxedStrategy, Strategy};

    /// Bounds on the size of a generated collection (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        let size = size.into();
        from_fn(move |rng| {
            let span = (size.max - size.min + 1) as u64;
            let len = size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| element.new_value(rng)).collect()
        })
    }
}

pub mod test_runner {
    //! The deterministic RNG and per-test configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl From<String> for TestCaseError {
        fn from(s: String) -> Self {
            TestCaseError(s)
        }
    }

    /// splitmix64-seeded xoshiro256++ — deterministic per test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Derives a generator from an arbitrary label (the test's name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label gives a stable 64-bit seed.
            let mut seed = 0xcbf29ce484222325u64;
            for b in label.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Returns the next uniform `u64`.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests: each `fn` runs `cases` times over freshly
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let strategy = ($($strategy,)*);
                for case in 0..config.cases {
                    let ($($pat,)*) =
                        $crate::strategy::Strategy::new_value(&strategy, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(err) = outcome {
                        panic!("property failed on case {} of {}: {}", case + 1, config.cases, err);
                    }
                }
            }
        )*
    };
}

/// Declares a function returning a composed strategy, mirroring
/// `proptest::prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($params:tt)*)
        ($($pat:pat in $strategy:expr),* $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])* $vis fn $name($($params)*) -> $crate::strategy::BoxedStrategy<$ret> {
            let strategy = ($($strategy,)*);
            $crate::strategy::from_fn(move |rng| {
                let ($($pat,)*) = $crate::strategy::Strategy::new_value(&strategy, rng);
                $body
            })
        }
    };
}

/// Uniformly chooses between several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Fails the current generated case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current generated case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn small_vec()(v in prop::collection::vec(0..10u64, 0..4)) -> Vec<u64> {
            v
        }
    }

    fn recursive_depth_strategy() -> BoxedStrategy<u32> {
        Just(0u32).prop_recursive(3, 8, 2, |inner| inner.prop_map(|d| d + 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds((a, b) in (0..5u64, 2..=4usize), flag in any::<bool>()) {
            prop_assert!(a < 5);
            prop_assert!((2..=4).contains(&b));
            let _ = flag;
        }

        #[test]
        fn composed_vectors_respect_their_size(mut v in small_vec()) {
            v.push(0);
            prop_assert!(v.len() <= 4);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_recursion_bound_depth(d in recursive_depth_strategy(), pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(d <= 3, "depth {} exceeds recursion bound", d);
            prop_assert!(pick == 1 || pick == 2);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_label() {
        let mut a = crate::test_runner::TestRng::deterministic("label");
        let mut b = crate::test_runner::TestRng::deterministic("label");
        let mut c = crate::test_runner::TestRng::deterministic("other");
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }
}
