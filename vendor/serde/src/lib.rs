//! Offline shim for `serde`.
//!
//! The real crates.io registry is unreachable in the build environment, so this
//! crate provides just the surface the workspace uses: the `Serialize` /
//! `Deserialize` trait names and the matching derive macros. The derives expand to
//! nothing, and the traits carry no methods; swap this shim for the real `serde`
//! by pointing the `serde` entry of `[workspace.dependencies]` in the workspace
//! manifest at the pinned registry version once a registry is reachable (see
//! `vendor/README.md`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
