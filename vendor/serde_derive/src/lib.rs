//! Offline shim for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward-looking
//! markers — nothing serializes yet — so the derives expand to nothing. The
//! `attributes(serde)` declaration keeps field/container `#[serde(...)]` attributes
//! legal if they appear later.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
