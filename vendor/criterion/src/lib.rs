//! Offline shim for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the slice of the
//! criterion 0.5 API the workspace's `[[bench]]` targets use: `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. It reports mean / min / max
//! per benchmark instead of criterion's full statistics. Like real criterion,
//! it only measures when invoked with `--bench` (which `cargo bench` passes to
//! `harness = false` targets); in any other invocation — `cargo test --benches`,
//! running the binary by hand — every benchmark body runs exactly once, as a
//! smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark manager handed to every `criterion_group!` target.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Only `cargo bench` passes `--bench` to harness = false targets; any
        // other invocation gets test mode, where each body runs once so
        // `cargo test --benches` stays fast.
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(900),
            warm_up_time: Duration::from_millis(200),
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target warm-up duration.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the target measurement duration.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        self.run(&label, &mut f);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.run(&label, &mut |b| f(b, input));
        self
    }

    /// Finishes the group. Reports were already printed per benchmark.
    pub fn finish(self) {}

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        if self.criterion.test_mode {
            f(&mut bencher);
            println!("test {label} ... ok");
            return;
        }
        // Warm-up: run batches until the warm-up budget is spent, so the
        // measurement phase starts on warmed caches.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64);
            if measure_start.elapsed() > self.measurement_time.mul_f64(4.0) {
                break; // keep pathological benches bounded
            }
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{label:<60} time: [{} {} {}] ({} samples)",
            format_time(min),
            format_time(mean),
            format_time(max),
            samples.len()
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // A small fixed batch keeps per-sample noise down without criterion's
        // adaptive iteration planning.
        self.iters = 3;
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// A benchmark identifier made of a function name and an input parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an identifier like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Declares a group of benchmark targets, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the harness `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut criterion = Criterion { test_mode: true };
        let mut ran = 0u32;
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(5).measurement_time(Duration::from_millis(10));
        group.bench_function("counter", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2);
        });
        ran += 1;
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("Q5", 200).to_string(), "Q5/200");
    }
}
