//! Quickstart: build the paper's Figure 1 contact-tracing graph and answer the
//! motivating question of the introduction — *which high-risk people met someone who
//! subsequently tested positive?*
//!
//! Run with `cargo run --release --example quickstart`.

use tpath::engine::{ExecutionOptions, GraphRelations};
use tpath::trpq::queries::QueryId;
use tpath::workload::figure1;

fn main() {
    // 1. The temporal property graph of Figure 1 (interval-timestamped).
    let itpg = figure1();
    println!(
        "Figure 1 graph: {} nodes, {} edges, domain {}",
        itpg.num_nodes(),
        itpg.num_edges(),
        itpg.domain()
    );

    // 2. Load it into the interval-based engine.
    let graph = GraphRelations::from_itpg(&itpg);
    let stats = graph.stats();
    println!(
        "Relational form: {} temporal node states, {} temporal edge states\n",
        stats.temporal_nodes, stats.temporal_edges
    );

    // 3. The contact-tracing query of Section I-A, written in the practical syntax.
    let query =
        "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-(y:Person {test = 'pos'}) \
                 ON contact_tracing";
    println!("{query}\n");
    let out = tpath::engine::execute_text(query, &graph, &ExecutionOptions::default())
        .expect("the quickstart query is inside the engine fragment");
    println!("{}", out.table.display(|o| graph.object_name(o).to_owned()));
    println!(
        "{} bindings in {:?} ({:?} interval-based)\n",
        out.stats.output_rows, out.stats.total_time, out.stats.interval_time
    );

    // 4. The same pattern is available as the named benchmark query Q9, and every
    //    other query of the paper can be run the same way.
    for id in [QueryId::Q5, QueryId::Q8, QueryId::Q11] {
        let out = tpath::engine::execute_query(id, &graph, &ExecutionOptions::default());
        println!("{}: {} rows", id.name(), out.stats.output_rows);
        for row in out.table.render(|o| graph.object_name(o).to_owned()) {
            println!("    {}", row.join("  "));
        }
    }
}
