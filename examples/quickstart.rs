//! Quickstart: build the paper's Figure 1 contact-tracing graph and answer the
//! motivating question of the introduction — *which high-risk people met someone who
//! subsequently tested positive?*
//!
//! Run with `cargo run --release --example quickstart`.

use tpath::engine::{ExecutionOptions, GraphRelations, Query};
use tpath::trpq::queries::QueryId;
use tpath::workload::figure1;

fn main() {
    // 1. The temporal property graph of Figure 1 (interval-timestamped).
    let itpg = figure1();
    println!(
        "Figure 1 graph: {} nodes, {} edges, domain {}",
        itpg.num_nodes(),
        itpg.num_edges(),
        itpg.domain()
    );

    // 2. Load it into the interval-based engine.
    let graph = GraphRelations::from_itpg(&itpg);
    let stats = graph.stats();
    println!(
        "Relational form: {} temporal node states, {} temporal edge states\n",
        stats.temporal_nodes, stats.temporal_edges
    );

    // 3. The contact-tracing query of Section I-A, written in the practical syntax.
    let query =
        "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-(y:Person {test = 'pos'}) \
                 ON contact_tracing";
    println!("{query}\n");
    let out = Query::parse(query)
        .expect("the quickstart query is inside the engine fragment")
        .with_options(ExecutionOptions::default())
        .run(&graph);
    let table = out.table().expect("the default mode materialises");
    println!("{}", table.display(|o| graph.object_name(o).to_owned()));
    let stats = out.stats();
    println!(
        "{} bindings in {:?} ({:?} interval-based)\n",
        stats.output_rows, stats.total_time, stats.interval_time
    );

    // 4. The same pattern is available as the named benchmark query Q9, and every
    //    other query of the paper can be run the same way.
    for id in [QueryId::Q5, QueryId::Q8, QueryId::Q11] {
        let out = Query::benchmark(id).run(&graph);
        println!("{}: {} rows", id.name(), out.stats().output_rows);
        for row in out.table().expect("materialised").render(|o| graph.object_name(o).to_owned()) {
            println!("    {}", row.join("  "));
        }
    }
}
