//! Live contact tracing: the Figure 1 story replayed as a stream of epoched
//! mutation batches against a `LiveGraph` with *maintained* queries.
//!
//! The batch engine answers "which high-risk people met someone who later
//! tested positive?" over a frozen graph; here the same graph arrives epoch by
//! epoch — people first, then meetings and room visits, and finally Eve's
//! positive test — and the registered queries are refreshed incrementally
//! instead of re-run.  The at-risk answer is empty until the positive test
//! lands, at which point the maintained table grows to the three bindings the
//! quickstart example computes in one shot.
//!
//! Run with `cargo run --release --example live_tracing`.

use tpath::live::{LiveGraph, LiveQueryId};
use tpath::tgraph::{Batch, Interval};

const AT_RISK: &str = "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-\
                       (y:Person {test = 'pos'}) ON live_tracing";
const EVERYONE: &str = "MATCH (x:Person) ON live_tracing";

fn main() {
    let iv = Interval::of;
    let mut graph = LiveGraph::new(iv(1, 11));

    // Register the queries up front; the engine maintains them from here on.
    let everyone = graph.register_text(EVERYONE).expect("query compiles");
    let at_risk = graph.register_text(AT_RISK).expect("query compiles");
    println!("registered 2 live queries over an empty graph\n{AT_RISK}\n");

    // Epoch 1: the people and rooms of Figure 1 check in, with their risk
    // profiles and lifespans.
    let mut people = Batch::new(1);
    for (name, label, (a, b)) in [
        ("n1", "Person", (1, 9)),
        ("n2", "Person", (1, 9)),
        ("n3", "Person", (1, 7)),
        ("n4", "Room", (3, 8)),
        ("n5", "Room", (3, 7)),
        ("n6", "Person", (2, 11)),
        ("n7", "Person", (1, 8)),
    ] {
        people.add_node(name, label).add_existence(name, iv(a, b));
    }
    people
        .set_property("n1", "risk", "low", iv(1, 9))
        .set_property("n2", "risk", "low", iv(1, 4))
        .set_property("n2", "risk", "high", iv(5, 9))
        .set_property("n3", "risk", "high", iv(1, 7))
        .set_property("n6", "risk", "low", iv(2, 11))
        .set_property("n7", "risk", "high", iv(1, 8));
    ingest(&mut graph, people, "people and rooms check in");
    report(&mut graph, everyone, "everyone");
    report(&mut graph, at_risk, "at-risk");

    // Epoch 2: the meetings and visits of the figure stream in.
    let mut contacts = Batch::new(2);
    for (name, label, src, tgt, (a, b)) in [
        ("e1", "meets", "n1", "n2", (3, 3)),
        ("e2", "meets", "n2", "n3", (1, 2)),
        ("e3", "visits", "n3", "n4", (6, 7)),
        ("e5", "cohabits", "n2", "n3", (3, 7)),
        ("e6", "visits", "n6", "n5", (5, 6)),
        ("e7", "visits", "n1", "n5", (5, 6)),
        ("e8", "visits", "n6", "n4", (7, 8)),
        ("e9", "visits", "n7", "n4", (6, 8)),
        ("e10", "meets", "n7", "n6", (5, 6)),
        ("e11", "meets", "n3", "n6", (4, 4)),
    ] {
        contacts.add_edge(name, label, src, tgt).add_existence(name, iv(a, b));
    }
    contacts.add_existence("e1", iv(5, 6));
    ingest(&mut graph, contacts, "meetings and room visits stream in");
    report(&mut graph, at_risk, "at-risk");

    // Epoch 9: Eve's positive test arrives — the maintained answer grows.
    let mut test = Batch::new(9);
    test.set_property("n6", "test", "pos", iv(9, 9));
    ingest(&mut graph, test, "a positive test result arrives for Eve (n6)");
    report(&mut graph, at_risk, "at-risk");

    let answer = graph.table(at_risk);
    println!("\n{}", answer.display(|o| graph.relations().object_name(o).to_owned()));
    println!("{} bindings — the same three the batch quickstart computes.", answer.len());
    assert_eq!(answer.len(), 3, "the Figure 1 answer has three at-risk bindings");
}

/// Applies one batch and prints what the ingestion did.
fn ingest(graph: &mut LiveGraph, batch: Batch, what: &str) {
    let stats = graph.apply(&batch).expect("the Figure 1 batches are valid");
    println!(
        "epoch {}: {} — {} mutations, +{} node rows / +{} edge rows (-{} retracted)",
        batch.epoch,
        what,
        stats.mutations,
        stats.delta.node_rows_added,
        stats.delta.edge_rows_added,
        stats.delta.node_rows_retracted + stats.delta.edge_rows_retracted,
    );
}

/// Refreshes one maintained query and prints what changed.
fn report(graph: &mut LiveGraph, id: LiveQueryId, name: &str) {
    let stats = graph.refresh(id);
    println!(
        "    {name}: {} rows (+{} / -{}), {} seeds re-evaluated{} in {:?}",
        stats.output_rows,
        stats.rows_added,
        stats.rows_retracted,
        stats.affected_seeds,
        if stats.fallback_full { " (full fallback)" } else { "" },
        stats.duration,
    );
}
