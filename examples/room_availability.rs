//! Navigating through *non-existing* temporal objects: the room-availability example
//! of Section V.A.
//!
//! The formal language does not force traversed objects to exist, which makes queries
//! such as "from a time at which the room is unavailable, find the next time it
//! becomes available" expressible:
//!
//! ```text
//! (Room ∧ ¬∃) / (N / ¬∃)[0, _] / N / (Room ∧ ∃)
//! ```
//!
//! This example uses the reference evaluator of Theorem C.1 directly on a point-based
//! graph of lecture-room bookings.
//!
//! Run with `cargo run --release --example room_availability`.

use tpath::tgraph::{Interval, ItpgBuilder, Object, TemporalObject};
use tpath::trpq::ast::{Axis, Path, TestExpr};
use tpath::trpq::eval::tpg::eval_path;

fn main() {
    // Three rooms with different booking patterns over a 12-slot day: a room "exists"
    // when it is available (not booked).
    let mut b = ItpgBuilder::new().domain(Interval::of(0, 11));
    let lecture_hall = b.add_node("lecture_hall", "Room").unwrap();
    b.add_existence(lecture_hall, Interval::of(0, 2)).unwrap();
    b.add_existence(lecture_hall, Interval::of(8, 11)).unwrap();
    let seminar_room = b.add_node("seminar_room", "Room").unwrap();
    b.add_existence(seminar_room, Interval::of(0, 4)).unwrap();
    b.add_existence(seminar_room, Interval::of(6, 6)).unwrap();
    b.add_existence(seminar_room, Interval::of(9, 11)).unwrap();
    let lab = b.add_node("lab", "Room").unwrap();
    b.add_existence(lab, Interval::of(5, 11)).unwrap();
    let graph = b.build().unwrap();
    let tpg = graph.to_tpg();

    // From an unavailable slot, skip forward over unavailable slots until the room
    // becomes available again.
    let next_available = Path::test(TestExpr::label("Room").and(TestExpr::Exists.not()))
        .then(Path::axis(Axis::Next).then(Path::test(TestExpr::Exists.not())).star())
        .then(Path::axis(Axis::Next))
        .then(Path::test(TestExpr::label("Room").and(TestExpr::Exists)));
    let relation = eval_path(&next_available, &tpg);

    println!("next availability per (room, blocked slot):");
    for room in [lecture_hall, seminar_room, lab] {
        let object = Object::Node(room);
        for t in graph.domain().points() {
            if graph.exists_at(object, t) {
                continue;
            }
            let next = relation
                .iter()
                .filter(|q| q.src == TemporalObject::new(object, t))
                .map(|q| q.dst.time)
                .min();
            match next {
                Some(next) => println!(
                    "  {:<14} blocked at {:>2} → free again at {next}",
                    tpg.name(object),
                    t
                ),
                None => println!(
                    "  {:<14} blocked at {:>2} → not available again today",
                    tpg.name(object),
                    t
                ),
            }
        }
    }

    // The dual query: how long does an availability streak last?  From an available
    // slot, walk forward while the room stays available.
    let still_available = Path::test(TestExpr::label("Room").and(TestExpr::Exists))
        .then(Path::axis(Axis::Next).then(Path::test(TestExpr::Exists)).star());
    let streaks = eval_path(&still_available, &tpg);
    println!("\nlongest availability streak starting at slot 0:");
    for room in [lecture_hall, seminar_room, lab] {
        let object = Object::Node(room);
        let reach = streaks
            .iter()
            .filter(|q| q.src == TemporalObject::new(object, 0))
            .map(|q| q.dst.time)
            .max();
        match reach {
            Some(until) => println!("  {:<14} available from 0 through {until}", tpg.name(object)),
            None => println!("  {:<14} not available at slot 0", tpg.name(object)),
        }
    }
}
