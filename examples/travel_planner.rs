//! Temporal journeys over a travel-scheduling graph — the expressiveness example of
//! Section V.C, where the paper argues that T-GQL's "consecutive paths" cannot combine
//! different transportation services while TRPQs can.
//!
//! Cities are nodes; flights, trains and buses are edges whose validity interval is
//! the span of the trip.  A journey hops on a service, rides it (structurally), waits
//! at the destination (temporally, `NEXT*`), and repeats — freely mixing services.
//!
//! Run with `cargo run --release --example travel_planner`.

use tpath::engine::{ExecutionOptions, GraphRelations, Query};
use tpath::tgraph::{Interval, ItpgBuilder};

fn main() {
    // Time unit: hours of one day, 0..24.
    let day = Interval::of(0, 23);
    let mut b = ItpgBuilder::new().domain(day);

    let tokyo = b.add_node("tokyo", "City").unwrap();
    let osaka = b.add_node("osaka", "City").unwrap();
    let singapore = b.add_node("singapore", "City").unwrap();
    let sydney = b.add_node("sydney", "City").unwrap();
    let buenos_aires = b.add_node("buenos_aires", "City").unwrap();
    for city in [tokyo, osaka, singapore, sydney, buenos_aires] {
        b.add_existence(city, day).unwrap();
    }

    // Services: label encodes the mode, the validity interval the departure→arrival
    // hours, and `dep`/`arr` properties carry the schedule for display.
    let mut service = |name: &str, label: &str, from, to, dep: u64, arr: u64| {
        let e = b.add_edge(name, label, from, to).unwrap();
        b.add_existence(e, Interval::of(dep, arr)).unwrap();
        b.set_property(e, "dep", dep as i64, Interval::of(dep, arr)).unwrap();
        b.set_property(e, "arr", arr as i64, Interval::of(dep, arr)).unwrap();
    };
    service("shinkansen_1", "train", tokyo, osaka, 6, 8);
    service("flight_os_sg", "flight", osaka, singapore, 10, 16);
    service("flight_tk_sg", "flight", tokyo, singapore, 2, 9);
    service("flight_sg_sy", "flight", singapore, sydney, 18, 23);
    service("bus_sg_airport", "bus", singapore, buenos_aires, 11, 12); // placeholder leg
    service("flight_sy_ba", "flight", sydney, buenos_aires, 1, 3); // departs too early today

    let graph = GraphRelations::from_itpg(&b.build().unwrap());
    let options = ExecutionOptions::default();

    // A journey from Tokyo towards Sydney mixing train + flight + flight:
    // ride a service (FWD/FWD), wait at the stopover (NEXT*), ride the next one.
    let query =
        "MATCH (a:City)-/FWD/:train/FWD/NEXT*/FWD/:flight/FWD/NEXT*/FWD/:flight/FWD/-(b:City) \
                 ON travel";
    println!("{query}\n");
    let out = Query::parse(query).unwrap().with_options(options).run(&graph);
    let table = out.table().expect("the default mode materialises");
    println!("multi-modal journeys (origin at departure time, destination at arrival time):");
    for row in table.render(|o| graph.object_name(o).to_owned()) {
        println!("  {} departs {}  →  {} arrives {}", row[0], row[1], row[2], row[3]);
    }

    // The same question restricted to a single mode has no answer — there is no
    // all-flight itinerary from Tokyo that reaches Sydney today.
    let flights_only = "MATCH (a:City {time = '6'})-/FWD/:flight/FWD/NEXT*/FWD/:flight/FWD/NEXT*/FWD/:flight/FWD/-(b:City) \
                        ON travel";
    let out = Query::parse(flights_only).unwrap().with_options(options).run(&graph);
    println!(
        "\nall-flight three-leg journeys starting at hour 6: {} results",
        out.stats().output_rows
    );

    // Journeys that also move *backwards* in time ("which earlier departures would
    // have made this connection?") are expressible too, something T-GQL's consecutive
    // paths cannot state.
    let backwards = "MATCH (a:City)-/FWD/:flight/FWD/PREV*/FWD/:train/FWD/-(b:City) ON travel";
    let out = Query::parse(backwards).unwrap().with_options(options).run(&graph);
    println!(
        "journeys combining a flight with an earlier train connection: {} results",
        out.stats().output_rows
    );
}
