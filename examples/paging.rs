//! Paging: serve the first answers of a closure-heavy query without materialising
//! the full binding table, using `AnswerMode::Enumerate`, and compare against the
//! compact per-pair interval answers of `AnswerMode::Compact`.
//!
//! Run with `cargo run --release --example paging`.

use tpath::engine::{AnswerMode, GraphRelations, Query};
use tpath::workload::figure1;

const PAGE: usize = 5;

fn main() {
    // Transitive contact tracing over Figure 1: everyone reachable from a
    // high-risk person through a chain of meetings — the kind of closure query
    // whose output can dwarf the graph.
    let graph = GraphRelations::from_itpg(&figure1());
    let query = "MATCH (x:Person {risk = 'high'})-/(FWD/:meets/FWD)*/-(y:Person) \
                 ON contact_tracing";
    println!("{query}\n");
    let q = Query::parse(query).expect("the paging query is inside the engine fragment");

    // Enumerate: pull the first page only.  Step-3 expansion runs lazily, chain by
    // chain, and the stats stay honest — output_rows counts what was yielded.
    let mut answers = q.clone().with_mode(AnswerMode::Enumerate).run(&graph);
    let cursor = answers.cursor_mut().expect("enumerate mode hands out a cursor");
    println!("first {PAGE} answers (of an undisclosed total):");
    for row in cursor.page(PAGE) {
        let cells: Vec<String> =
            row.iter().map(|b| format!("{} @ {}", graph.object_name(b.object), b.time)).collect();
        println!("  {}", cells.join("  "));
    }
    let stats = answers.stats();
    println!(
        "rows yielded: {}   peak rows buffered: {}\n",
        stats.output_rows,
        answers.cursor_mut().expect("still a cursor").peak_buffered_rows()
    );

    // Compact: skip point expansion entirely and report, per (source, target)
    // pair, the coalesced intervals over which the answer holds.
    let answers = q.with_mode(AnswerMode::Compact).run(&graph);
    let compact = answers.compact().expect("compact mode hands out interval answers");
    println!("compact answers ({} pairs):", compact.num_pairs());
    for ((source, target), set) in compact.iter() {
        let windows: Vec<String> =
            set.intervals().iter().map(|interval| interval.to_string()).collect();
        println!(
            "  {} -> {}  during {}",
            graph.object_name(*source),
            graph.object_name(*target),
            windows.join(" ∪ ")
        );
    }
}
