//! Contact tracing at scale: generate a synthetic campus contact-tracing graph (the
//! workload of Section VII), run the full Q1–Q12 suite over it, and report sizes and
//! timings — a miniature version of Table II.
//!
//! Run with `cargo run --release --example contact_tracing [num_persons]`.

use std::time::Instant;

use tpath::engine::{ExecutionOptions, GraphRelations, Query};
use tpath::trpq::queries::QueryId;
use tpath::workload::ContactTracingConfig;

fn main() {
    let num_persons: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2_000);

    let config = ContactTracingConfig::with_persons(num_persons).with_positivity_rate(0.02);
    let started = Instant::now();
    let itpg = tpath::workload::generate(&config);
    println!(
        "generated {} persons / {} nodes / {} edges in {:?}",
        num_persons,
        itpg.num_nodes(),
        itpg.num_edges(),
        started.elapsed()
    );

    let graph = GraphRelations::from_itpg(&itpg);
    let stats = graph.stats();
    println!(
        "temporal nodes: {}   temporal edges: {}\n",
        stats.temporal_nodes, stats.temporal_edges
    );

    println!("{:<6} {:>14} {:>14} {:>12}", "query", "interval (ms)", "total (ms)", "output size");
    let options = ExecutionOptions::default();
    for id in QueryId::ALL {
        let out = Query::benchmark(id).with_options(options).run(&graph);
        let stats = out.stats();
        println!(
            "{:<6} {:>14.3} {:>14.3} {:>12}",
            id.name(),
            stats.interval_time.as_secs_f64() * 1e3,
            stats.total_time.as_secs_f64() * 1e3,
            stats.output_rows
        );
    }

    // Zoom in on the most selective contact-tracing question: who should be alerted?
    let table = Query::benchmark(QueryId::Q9)
        .with_options(options)
        .run(&graph)
        .into_table()
        .expect("the default mode materialises");
    let mut alerted: Vec<&str> = table.iter().map(|row| graph.object_name(row[0].object)).collect();
    alerted.sort_unstable();
    alerted.dedup();
    println!("\n{} high-risk individuals met someone who later tested positive", alerted.len());
}
