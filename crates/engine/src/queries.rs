//! Pre-compiled plans for the paper's benchmark queries Q1–Q12 and helpers for running
//! the whole suite, used by the benchmark harness.
//!
//! The plans are compiled once into a static table the first time they are needed.
//! The whole table is exercised by `cargo test` (see `the_query_table_compiles`
//! below), so a query text that stops compiling fails the test suite instead of
//! panicking at first use inside a binary.

use std::sync::OnceLock;

use trpq::queries::QueryId;
use trpq::Result;

use crate::compiler::compile;
use crate::executor::{execute, ExecutionOptions, QueryOutput};
use crate::plan::PlanSet;
use crate::relations::GraphRelations;

/// Compiles the full Q1–Q12 plan table, reporting the first query that fails with a
/// message naming it.  This is the fallible path behind [`plan_for`]; tests call it
/// directly so a broken built-in query is caught by `cargo test`.
pub fn compile_query_table() -> Result<Vec<PlanSet>> {
    QueryId::ALL
        .iter()
        .map(|&id| {
            compile(&id.clause()).map_err(|e| match e {
                trpq::QueryError::UnsupportedFragment { expression, reason } => {
                    trpq::QueryError::UnsupportedFragment {
                        expression,
                        reason: format!("{}: {reason}", id.name()),
                    }
                }
                other => other,
            })
        })
        .collect()
}

fn query_table() -> &'static [PlanSet] {
    static TABLE: OnceLock<Vec<PlanSet>> = OnceLock::new();
    TABLE.get_or_init(|| {
        compile_query_table().expect("the built-in query table compiles (tested in cargo test)")
    })
}

/// The compiled plan for one of the benchmark queries, from the precompiled table.
pub fn plan_for(id: QueryId) -> PlanSet {
    let index = QueryId::ALL.iter().position(|&q| q == id).expect("all query ids are in ALL");
    query_table()[index].clone()
}

/// The compiled plan for a benchmark query with the temporal-navigation upper bound
/// replaced by `m` (the Figure 4 sweep).
pub fn plan_with_temporal_bound(id: QueryId, m: u32) -> PlanSet {
    let clause = id.with_temporal_bound(m).expect("bound substitution parses");
    compile(&clause).expect("the built-in queries compile")
}

/// Runs every benchmark query and returns the outputs in query order.
pub fn run_all(graph: &GraphRelations, options: &ExecutionOptions) -> Vec<(QueryId, QueryOutput)> {
    QueryId::ALL.iter().map(|&id| (id, execute(&plan_for(id), graph, options))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_query_table_compiles() {
        // The fallible path behind the static table: a bad built-in query text fails
        // here, in `cargo test`, rather than at first use inside a binary.
        let table = compile_query_table().expect("every built-in query compiles");
        assert_eq!(table.len(), QueryId::ALL.len());
    }

    #[test]
    fn every_query_has_a_plan() {
        for id in QueryId::ALL {
            let plan = plan_for(id);
            assert!(!plan.plans.is_empty());
            assert_eq!(plan.graph, "contact_tracing");
        }
    }

    #[test]
    fn temporal_bound_substitution_changes_the_shift() {
        let base = plan_for(QueryId::Q10);
        let widened = plan_with_temporal_bound(QueryId::Q10, 48);
        assert_eq!(base.plans[0].links[0].as_shift().unwrap().max, Some(12));
        assert_eq!(widened.plans[0].links[0].as_shift().unwrap().max, Some(48));
    }
}
