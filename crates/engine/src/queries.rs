//! Pre-compiled plans for the paper's benchmark queries Q1–Q12 and helpers for running
//! the whole suite, used by the benchmark harness.

use trpq::queries::QueryId;

use crate::compiler::compile;
use crate::executor::{execute, ExecutionOptions, QueryOutput};
use crate::plan::PlanSet;
use crate::relations::GraphRelations;

/// The compiled plan for one of the benchmark queries.
pub fn plan_for(id: QueryId) -> PlanSet {
    compile(&id.clause()).expect("the built-in queries compile")
}

/// The compiled plan for a benchmark query with the temporal-navigation upper bound
/// replaced by `m` (the Figure 4 sweep).
pub fn plan_with_temporal_bound(id: QueryId, m: u32) -> PlanSet {
    let clause = id.with_temporal_bound(m).expect("bound substitution parses");
    compile(&clause).expect("the built-in queries compile")
}

/// Runs every benchmark query and returns the outputs in query order.
pub fn run_all(graph: &GraphRelations, options: &ExecutionOptions) -> Vec<(QueryId, QueryOutput)> {
    QueryId::ALL.iter().map(|&id| (id, execute(&plan_for(id), graph, options))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_query_has_a_plan() {
        for id in QueryId::ALL {
            let plan = plan_for(id);
            assert!(!plan.plans.is_empty());
            assert_eq!(plan.graph, "contact_tracing");
        }
    }

    #[test]
    fn temporal_bound_substitution_changes_the_shift() {
        let base = plan_for(QueryId::Q10);
        let widened = plan_with_temporal_bound(QueryId::Q10, 48);
        assert_eq!(base.plans[0].shifts[0].max, Some(12));
        assert_eq!(widened.plans[0].shifts[0].max, Some(48));
    }
}
