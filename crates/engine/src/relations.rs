//! The interval-timestamped relational representation of a temporal property graph
//! used by the engine (Section VI of the paper):
//!
//! ```text
//! Nodes(id, label, properties, time)
//! Edges(id, src, tgt, label, properties, time)
//! ```
//!
//! Each row describes one maximal "no change occurred" state of a node or an edge: the
//! object's label and property values are constant over the row's validity interval,
//! and the rows of one object are temporally coalesced.  The row counts of these two
//! relations are exactly the "# temp. nodes" / "# temp. edges" columns of Table I.

use std::collections::HashMap;
use std::sync::Arc;

use dataflow::SortedRelation;
use tgraph::{EdgeId, Interval, IntervalSet, Itpg, NodeId, Object, Time, Value};

/// One temporally-constant state of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRow {
    /// The node this row describes.
    pub node: NodeId,
    /// Label of the node.
    pub label: Arc<str>,
    /// Property values holding over the whole validity interval, sorted by name.
    pub props: Vec<(Arc<str>, Value)>,
    /// Validity interval of this state.
    pub interval: Interval,
}

/// One temporally-constant state of an edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeRow {
    /// The edge this row describes.
    pub edge: EdgeId,
    /// Source node of the edge.
    pub src: NodeId,
    /// Target node of the edge.
    pub tgt: NodeId,
    /// Label of the edge.
    pub label: Arc<str>,
    /// Property values holding over the whole validity interval, sorted by name.
    pub props: Vec<(Arc<str>, Value)>,
    /// Validity interval of this state.
    pub interval: Interval,
}

impl NodeRow {
    /// Looks up a property value of this row.
    pub fn prop(&self, name: &str) -> Option<&Value> {
        self.props.iter().find(|(k, _)| k.as_ref() == name).map(|(_, v)| v)
    }
}

impl EdgeRow {
    /// Looks up a property value of this row.
    pub fn prop(&self, name: &str) -> Option<&Value> {
        self.props.iter().find(|(k, _)| k.as_ref() == name).map(|(_, v)| v)
    }
}

/// Summary statistics of the relational representation (one row of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationStats {
    /// Number of distinct nodes.
    pub nodes: usize,
    /// Number of distinct edges.
    pub edges: usize,
    /// Number of temporal node states (rows of the Nodes relation).
    pub temporal_nodes: usize,
    /// Number of temporal edge states (rows of the Edges relation).
    pub temporal_edges: usize,
}

/// Row-level change summary of one [`GraphRelations::apply_delta`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Node rows appended by the delta.
    pub node_rows_added: usize,
    /// Node rows retracted (tombstoned) by the delta.
    pub node_rows_retracted: usize,
    /// Edge rows appended by the delta.
    pub edge_rows_added: usize,
    /// Edge rows retracted (tombstoned) by the delta.
    pub edge_rows_retracted: usize,
}

/// A canonical, tombstone-free view of the relations, used to check that an
/// incrementally maintained [`GraphRelations`] is equivalent to one bulk-loaded
/// with [`GraphRelations::from_itpg`] (row *indices* differ between the two —
/// deltas append rows — but the logical content must not).
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalRelations {
    /// The temporal domain.
    pub domain: Interval,
    /// Live node rows, sorted by `(node, interval)`.
    pub nodes: Vec<NodeRow>,
    /// Live edge rows, sorted by `(edge, interval)`.
    pub edges: Vec<EdgeRow>,
    /// Per-node coalesced existence.
    pub node_existence: Vec<IntervalSet>,
    /// Per-edge coalesced existence.
    pub edge_existence: Vec<IntervalSet>,
    /// Node display names, by id.
    pub node_names: Vec<String>,
    /// Edge display names, by id.
    pub edge_names: Vec<String>,
}

/// The pair of interval-timestamped relations plus the indexes the engine navigates
/// with.
///
/// Every column is held behind an [`Arc`], which makes the whole structure
/// **copy-on-write**: [`GraphRelations::snapshot`] (and plain `clone()`) is a
/// handful of reference-count bumps, and [`GraphRelations::apply_delta`] clones
/// only the columns it actually writes — and only when a snapshot still shares
/// them.  This is what makes epoch-based MVCC serving (`crates/live`) cheap: a
/// reader pins an immutable snapshot while the writer diverges the next epoch
/// from it, and a batch touching only edges never copies any node column.
#[derive(Debug, Clone)]
pub struct GraphRelations {
    domain: Interval,
    nodes: Arc<Vec<NodeRow>>,
    edges: Arc<Vec<EdgeRow>>,
    node_names: Arc<Vec<String>>,
    edge_names: Arc<Vec<String>>,
    node_rows_by_id: Arc<Vec<Vec<u32>>>,
    edge_rows_by_id: Arc<Vec<Vec<u32>>>,
    edge_rows_by_src: Arc<Vec<Vec<u32>>>,
    edge_rows_by_tgt: Arc<Vec<Vec<u32>>>,
    node_existence: Arc<Vec<IntervalSet>>,
    edge_existence: Arc<Vec<IntervalSet>>,
    // Key-sorted permutations of the two relations, precomputed at load time so
    // merge joins can scan them without sorting (see the `sorted_*` accessors).
    node_rows_by_id_sorted: Arc<Vec<u32>>,
    edge_rows_by_src_sorted: Arc<Vec<u32>>,
    edge_rows_by_tgt_sorted: Arc<Vec<u32>>,
    // Liveness of every row.  `from_itpg` produces all-live relations;
    // `apply_delta` tombstones the rows of touched objects instead of compacting
    // the row vectors, so row indices of *untouched* objects stay stable (which is
    // what lets live query maintenance reuse cached results).  Tombstoned rows are
    // unreachable through every index and permutation; only direct slice access
    // (`node_rows()` / `edge_rows()`) can still observe them.
    node_row_live: Arc<Vec<bool>>,
    edge_row_live: Arc<Vec<bool>>,
    dead_node_rows: usize,
    dead_edge_rows: usize,
}

impl GraphRelations {
    /// Builds the relational representation from an interval-timestamped graph.
    pub fn from_itpg(graph: &Itpg) -> Self {
        let mut label_cache: HashMap<String, Arc<str>> = HashMap::new();
        let mut prop_name_cache: HashMap<String, Arc<str>> = HashMap::new();
        let mut intern_label = |s: &str| -> Arc<str> {
            label_cache.entry(s.to_owned()).or_insert_with(|| Arc::from(s)).clone()
        };
        let mut intern_prop = |s: &str| -> Arc<str> {
            prop_name_cache.entry(s.to_owned()).or_insert_with(|| Arc::from(s)).clone()
        };

        let mut nodes = Vec::new();
        let mut node_rows_by_id = vec![Vec::new(); graph.num_nodes()];
        let mut node_names = Vec::with_capacity(graph.num_nodes());
        let mut node_existence = Vec::with_capacity(graph.num_nodes());
        for n in graph.node_ids() {
            let o = Object::Node(n);
            node_names.push(graph.name(o).to_owned());
            node_existence.push(graph.existence(o).clone());
            let label = intern_label(graph.label(o));
            for segment in object_segments(graph, o) {
                let props = props_at(graph, o, segment.start(), &mut intern_prop);
                node_rows_by_id[n.index()].push(nodes.len() as u32);
                nodes.push(NodeRow { node: n, label: label.clone(), props, interval: segment });
            }
        }

        let mut edges = Vec::new();
        let mut edge_rows_by_id = vec![Vec::new(); graph.num_edges()];
        let mut edge_rows_by_src = vec![Vec::new(); graph.num_nodes()];
        let mut edge_rows_by_tgt = vec![Vec::new(); graph.num_nodes()];
        let mut edge_names = Vec::with_capacity(graph.num_edges());
        let mut edge_existence = Vec::with_capacity(graph.num_edges());
        for e in graph.edge_ids() {
            let o = Object::Edge(e);
            edge_names.push(graph.name(o).to_owned());
            edge_existence.push(graph.existence(o).clone());
            let label = intern_label(graph.label(o));
            let (src, tgt) = (graph.src(e), graph.tgt(e));
            for segment in object_segments(graph, o) {
                let props = props_at(graph, o, segment.start(), &mut intern_prop);
                let row_index = edges.len() as u32;
                edge_rows_by_id[e.index()].push(row_index);
                edge_rows_by_src[src.index()].push(row_index);
                edge_rows_by_tgt[tgt.index()].push(row_index);
                edges.push(EdgeRow {
                    edge: e,
                    src,
                    tgt,
                    label: label.clone(),
                    props,
                    interval: segment,
                });
            }
        }

        // Flatten the adjacency lists into key-sorted permutations.  The lists are
        // already grouped by ascending key; within one key group the rows are ordered
        // by interval start (ties broken by row index for determinism).
        let node_rows_by_id_sorted =
            sorted_permutation(&node_rows_by_id, |r| nodes[r as usize].interval);
        let edge_rows_by_src_sorted =
            sorted_permutation(&edge_rows_by_src, |r| edges[r as usize].interval);
        let edge_rows_by_tgt_sorted =
            sorted_permutation(&edge_rows_by_tgt, |r| edges[r as usize].interval);

        let node_row_live = vec![true; nodes.len()];
        let edge_row_live = vec![true; edges.len()];
        GraphRelations {
            domain: graph.domain(),
            nodes: Arc::new(nodes),
            edges: Arc::new(edges),
            node_names: Arc::new(node_names),
            edge_names: Arc::new(edge_names),
            node_rows_by_id: Arc::new(node_rows_by_id),
            edge_rows_by_id: Arc::new(edge_rows_by_id),
            edge_rows_by_src: Arc::new(edge_rows_by_src),
            edge_rows_by_tgt: Arc::new(edge_rows_by_tgt),
            node_existence: Arc::new(node_existence),
            edge_existence: Arc::new(edge_existence),
            node_rows_by_id_sorted: Arc::new(node_rows_by_id_sorted),
            edge_rows_by_src_sorted: Arc::new(edge_rows_by_src_sorted),
            edge_rows_by_tgt_sorted: Arc::new(edge_rows_by_tgt_sorted),
            node_row_live: Arc::new(node_row_live),
            edge_row_live: Arc::new(edge_row_live),
            dead_node_rows: 0,
            dead_edge_rows: 0,
        }
    }

    /// An immutable copy-on-write snapshot of the relations: the returned value
    /// shares every column with `self` until one of the two diverges through
    /// [`GraphRelations::apply_delta`].  Taking a snapshot is O(number of
    /// columns), not O(graph); this is the read view MVCC epochs in
    /// `crates/live` hand to concurrent readers.
    pub fn snapshot(&self) -> GraphRelations {
        self.clone()
    }

    /// The number of physical columns `self` still shares with `other` — a
    /// diagnostic for copy-on-write behaviour (15 right after
    /// [`GraphRelations::snapshot`], decreasing only as deltas diverge the
    /// copies column by column).
    pub fn shared_columns(&self, other: &GraphRelations) -> usize {
        usize::from(Arc::ptr_eq(&self.nodes, &other.nodes))
            + usize::from(Arc::ptr_eq(&self.edges, &other.edges))
            + usize::from(Arc::ptr_eq(&self.node_names, &other.node_names))
            + usize::from(Arc::ptr_eq(&self.edge_names, &other.edge_names))
            + usize::from(Arc::ptr_eq(&self.node_rows_by_id, &other.node_rows_by_id))
            + usize::from(Arc::ptr_eq(&self.edge_rows_by_id, &other.edge_rows_by_id))
            + usize::from(Arc::ptr_eq(&self.edge_rows_by_src, &other.edge_rows_by_src))
            + usize::from(Arc::ptr_eq(&self.edge_rows_by_tgt, &other.edge_rows_by_tgt))
            + usize::from(Arc::ptr_eq(&self.node_existence, &other.node_existence))
            + usize::from(Arc::ptr_eq(&self.edge_existence, &other.edge_existence))
            + usize::from(Arc::ptr_eq(&self.node_rows_by_id_sorted, &other.node_rows_by_id_sorted))
            + usize::from(Arc::ptr_eq(
                &self.edge_rows_by_src_sorted,
                &other.edge_rows_by_src_sorted,
            ))
            + usize::from(Arc::ptr_eq(
                &self.edge_rows_by_tgt_sorted,
                &other.edge_rows_by_tgt_sorted,
            ))
            + usize::from(Arc::ptr_eq(&self.node_row_live, &other.node_row_live))
            + usize::from(Arc::ptr_eq(&self.edge_row_live, &other.edge_row_live))
    }

    /// Applies one batch worth of changes to the relations *in place*, given the
    /// post-batch graph and the set of objects the batch touched (as reported by
    /// [`tgraph::Itpg::apply_batch`]).
    ///
    /// The contract: `graph` must be exactly `self`'s previous graph plus the
    /// changes covered by `touched` — every object whose existence or properties
    /// changed (including newly created objects) must appear in `touched`.  The
    /// rows of touched objects are retracted (tombstoned, see the field docs) and
    /// recomputed from `graph`; rows of untouched objects keep their indices and
    /// content.  The key-sorted permutations are maintained by filtering the
    /// retracted entries out of the old (still sorted) permutation and
    /// [`SortedRelation::union_merge`]-ing the new rows in — no re-sort of the
    /// surviving entries, no segment recomputation for untouched objects.
    pub fn apply_delta(&mut self, graph: &Itpg, touched: &[Object]) -> DeltaStats {
        debug_assert!(graph.num_nodes() >= self.node_names.len());
        debug_assert!(graph.num_edges() >= self.edge_names.len());
        let mut stats = DeltaStats::default();
        self.domain = graph.domain();

        // The columns are copy-on-write (see the struct docs): every write below
        // goes through `Arc::make_mut`, which is a no-op while the column is
        // uniquely owned and clones it exactly once when a pinned snapshot still
        // shares it.  The delta is applied in two passes — nodes, then edges — so
        // a batch touching only one relation never copies the other's columns.
        // The two relations append to disjoint row vectors, so the pass order
        // does not change any row index.
        let touched_nodes: Vec<NodeId> =
            touched.iter().copied().filter_map(Object::as_node).collect();
        let touched_edges: Vec<EdgeId> =
            touched.iter().copied().filter_map(Object::as_edge).collect();

        // Extend the per-object tables for objects created since the last delta.
        if graph.num_nodes() > self.node_names.len() {
            let node_names = Arc::make_mut(&mut self.node_names);
            let node_existence = Arc::make_mut(&mut self.node_existence);
            let node_rows_by_id = Arc::make_mut(&mut self.node_rows_by_id);
            let edge_rows_by_src = Arc::make_mut(&mut self.edge_rows_by_src);
            let edge_rows_by_tgt = Arc::make_mut(&mut self.edge_rows_by_tgt);
            for index in node_names.len()..graph.num_nodes() {
                node_names.push(graph.name(Object::Node(NodeId(index as u32))).to_owned());
                node_existence.push(IntervalSet::empty());
                node_rows_by_id.push(Vec::new());
                edge_rows_by_src.push(Vec::new());
                edge_rows_by_tgt.push(Vec::new());
            }
        }
        if graph.num_edges() > self.edge_names.len() {
            let edge_names = Arc::make_mut(&mut self.edge_names);
            let edge_existence = Arc::make_mut(&mut self.edge_existence);
            let edge_rows_by_id = Arc::make_mut(&mut self.edge_rows_by_id);
            for index in edge_names.len()..graph.num_edges() {
                edge_names.push(graph.name(Object::Edge(EdgeId(index as u32))).to_owned());
                edge_existence.push(IntervalSet::empty());
                edge_rows_by_id.push(Vec::new());
            }
        }

        let mut label_cache: HashMap<String, Arc<str>> = HashMap::new();
        let mut prop_name_cache: HashMap<String, Arc<str>> = HashMap::new();
        // New permutation entries, accumulated as (key, interval, row) triples.
        let mut new_by_node: Vec<(usize, Interval, u32)> = Vec::new();
        let mut new_by_src: Vec<(usize, Interval, u32)> = Vec::new();
        let mut new_by_tgt: Vec<(usize, Interval, u32)> = Vec::new();

        if !touched_nodes.is_empty() {
            let nodes = Arc::make_mut(&mut self.nodes);
            let node_rows_by_id = Arc::make_mut(&mut self.node_rows_by_id);
            let node_existence = Arc::make_mut(&mut self.node_existence);
            let node_row_live = Arc::make_mut(&mut self.node_row_live);
            for &n in &touched_nodes {
                let object = Object::Node(n);
                for &row in &node_rows_by_id[n.index()] {
                    debug_assert!(node_row_live[row as usize]);
                    node_row_live[row as usize] = false;
                    self.dead_node_rows += 1;
                    stats.node_rows_retracted += 1;
                }
                node_rows_by_id[n.index()].clear();
                node_existence[n.index()] = graph.existence(object).clone();
                let label = label_cache
                    .entry(graph.label(object).to_owned())
                    .or_insert_with(|| Arc::from(graph.label(object)))
                    .clone();
                for segment in object_segments(graph, object) {
                    let props = props_at(graph, object, segment.start(), &mut |s| {
                        prop_name_cache.entry(s.to_owned()).or_insert_with(|| Arc::from(s)).clone()
                    });
                    let row = nodes.len() as u32;
                    node_rows_by_id[n.index()].push(row);
                    new_by_node.push((n.index(), segment, row));
                    nodes.push(NodeRow { node: n, label: label.clone(), props, interval: segment });
                    node_row_live.push(true);
                    stats.node_rows_added += 1;
                }
            }
        }

        if !touched_edges.is_empty() {
            let edges = Arc::make_mut(&mut self.edges);
            let edge_rows_by_id = Arc::make_mut(&mut self.edge_rows_by_id);
            let edge_rows_by_src = Arc::make_mut(&mut self.edge_rows_by_src);
            let edge_rows_by_tgt = Arc::make_mut(&mut self.edge_rows_by_tgt);
            let edge_existence = Arc::make_mut(&mut self.edge_existence);
            let edge_row_live = Arc::make_mut(&mut self.edge_row_live);
            for &e in &touched_edges {
                let object = Object::Edge(e);
                let (src, tgt) = (graph.src(e), graph.tgt(e));
                let old_rows = std::mem::take(&mut edge_rows_by_id[e.index()]);
                for &row in &old_rows {
                    debug_assert!(edge_row_live[row as usize]);
                    edge_row_live[row as usize] = false;
                    self.dead_edge_rows += 1;
                    stats.edge_rows_retracted += 1;
                }
                edge_rows_by_src[src.index()].retain(|r| !old_rows.contains(r));
                edge_rows_by_tgt[tgt.index()].retain(|r| !old_rows.contains(r));
                edge_existence[e.index()] = graph.existence(object).clone();
                let label = label_cache
                    .entry(graph.label(object).to_owned())
                    .or_insert_with(|| Arc::from(graph.label(object)))
                    .clone();
                for segment in object_segments(graph, object) {
                    let props = props_at(graph, object, segment.start(), &mut |s| {
                        prop_name_cache.entry(s.to_owned()).or_insert_with(|| Arc::from(s)).clone()
                    });
                    let row = edges.len() as u32;
                    edge_rows_by_id[e.index()].push(row);
                    edge_rows_by_src[src.index()].push(row);
                    edge_rows_by_tgt[tgt.index()].push(row);
                    new_by_src.push((src.index(), segment, row));
                    new_by_tgt.push((tgt.index(), segment, row));
                    edges.push(EdgeRow {
                        edge: e,
                        src,
                        tgt,
                        label: label.clone(),
                        props,
                        interval: segment,
                    });
                    edge_row_live.push(true);
                    stats.edge_rows_added += 1;
                }
            }
        }

        // The permutations are only rebuilt for the relation that changed, so a
        // node-only batch leaves both edge permutations shared with snapshots.
        if stats.node_rows_added + stats.node_rows_retracted > 0 {
            let nodes = &self.nodes;
            self.node_rows_by_id_sorted = Arc::new(merge_permutation(
                &self.node_rows_by_id_sorted,
                &self.node_row_live,
                new_by_node,
                |r| (nodes[r as usize].node.index(), nodes[r as usize].interval),
            ));
        }
        if stats.edge_rows_added + stats.edge_rows_retracted > 0 {
            let edges = &self.edges;
            self.edge_rows_by_src_sorted = Arc::new(merge_permutation(
                &self.edge_rows_by_src_sorted,
                &self.edge_row_live,
                new_by_src,
                |r| (edges[r as usize].src.index(), edges[r as usize].interval),
            ));
            self.edge_rows_by_tgt_sorted = Arc::new(merge_permutation(
                &self.edge_rows_by_tgt_sorted,
                &self.edge_row_live,
                new_by_tgt,
                |r| (edges[r as usize].tgt.index(), edges[r as usize].interval),
            ));
        }
        stats
    }

    /// The temporal domain of the graph.
    pub fn domain(&self) -> Interval {
        self.domain
    }

    /// The physical rows of the Nodes relation.  After [`GraphRelations::apply_delta`]
    /// the slice may contain tombstoned rows (see [`GraphRelations::is_node_row_live`]);
    /// rows reached through the indexes and permutations are always live.
    pub fn node_rows(&self) -> &[NodeRow] {
        &self.nodes
    }

    /// The physical rows of the Edges relation (see [`GraphRelations::node_rows`] on
    /// tombstones).
    pub fn edge_rows(&self) -> &[EdgeRow] {
        &self.edges
    }

    /// True if the node row at this index has not been retracted by a delta.
    pub fn is_node_row_live(&self, row: u32) -> bool {
        self.node_row_live[row as usize]
    }

    /// True if the edge row at this index has not been retracted by a delta.
    pub fn is_edge_row_live(&self, row: u32) -> bool {
        self.edge_row_live[row as usize]
    }

    /// The indices of all live node rows — the seed rows of Step 1 evaluation.
    pub fn seed_rows(&self) -> Vec<u32> {
        if self.dead_node_rows == 0 {
            (0..self.nodes.len() as u32).collect()
        } else {
            (0..self.nodes.len() as u32).filter(|&r| self.node_row_live[r as usize]).collect()
        }
    }

    /// A canonical, tombstone-free snapshot for equivalence checks between
    /// incrementally maintained and bulk-loaded relations.
    pub fn canonical_snapshot(&self) -> CanonicalRelations {
        let mut nodes: Vec<NodeRow> = self
            .nodes
            .iter()
            .zip(self.node_row_live.iter())
            .filter(|(_, &live)| live)
            .map(|(row, _)| row.clone())
            .collect();
        nodes.sort_by_key(|row| (row.node, row.interval));
        let mut edges: Vec<EdgeRow> = self
            .edges
            .iter()
            .zip(self.edge_row_live.iter())
            .filter(|(_, &live)| live)
            .map(|(row, _)| row.clone())
            .collect();
        edges.sort_by_key(|row| (row.edge, row.interval));
        CanonicalRelations {
            domain: self.domain,
            nodes,
            edges,
            node_existence: self.node_existence.as_ref().clone(),
            edge_existence: self.edge_existence.as_ref().clone(),
            node_names: self.node_names.as_ref().clone(),
            edge_names: self.edge_names.as_ref().clone(),
        }
    }

    /// Row indices of the Nodes relation describing the given node.
    pub fn rows_of_node(&self, node: NodeId) -> &[u32] {
        &self.node_rows_by_id[node.index()]
    }

    /// Row indices of the Edges relation describing the given edge.
    pub fn rows_of_edge(&self, edge: EdgeId) -> &[u32] {
        &self.edge_rows_by_id[edge.index()]
    }

    /// Row indices of edges whose source is the given node.
    pub fn out_edge_rows(&self, node: NodeId) -> &[u32] {
        &self.edge_rows_by_src[node.index()]
    }

    /// Row indices of edges whose target is the given node.
    pub fn in_edge_rows(&self, node: NodeId) -> &[u32] {
        &self.edge_rows_by_tgt[node.index()]
    }

    /// Row indices of the Nodes relation sorted by `(node id, interval start)` — the
    /// key-sorted permutation merge joins scan when hopping onto nodes.
    pub fn node_rows_sorted_by_id(&self) -> &[u32] {
        &self.node_rows_by_id_sorted
    }

    /// Row indices of the Edges relation sorted by `(source node, interval start)`.
    pub fn edge_rows_sorted_by_src(&self) -> &[u32] {
        &self.edge_rows_by_src_sorted
    }

    /// Row indices of the Edges relation sorted by `(target node, interval start)`.
    pub fn edge_rows_sorted_by_tgt(&self) -> &[u32] {
        &self.edge_rows_by_tgt_sorted
    }

    /// The coalesced existence intervals of an object.
    pub fn existence(&self, object: Object) -> &IntervalSet {
        match object {
            Object::Node(n) => &self.node_existence[n.index()],
            Object::Edge(e) => &self.edge_existence[e.index()],
        }
    }

    /// The maximal existence interval of an object containing the time point `t`,
    /// if the object exists at `t`.
    pub fn existence_interval_at(&self, object: Object, t: Time) -> Option<Interval> {
        self.existence(object).intervals().iter().find(|iv| iv.contains(t)).copied()
    }

    /// The display name of an object (e.g. `"n7"`).
    pub fn object_name(&self, object: Object) -> &str {
        match object {
            Object::Node(n) => &self.node_names[n.index()],
            Object::Edge(e) => &self.edge_names[e.index()],
        }
    }

    /// The number of distinct nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// The number of distinct edges.
    pub fn num_edges(&self) -> usize {
        self.edge_names.len()
    }

    /// Summary statistics of the relational representation (Table I).  Tombstoned
    /// rows are not counted.
    pub fn stats(&self) -> RelationStats {
        RelationStats {
            nodes: self.num_nodes(),
            edges: self.num_edges(),
            temporal_nodes: self.nodes.len() - self.dead_node_rows,
            temporal_edges: self.edges.len() - self.dead_edge_rows,
        }
    }
}

/// Maintains one key-sorted permutation across a delta: the surviving entries of
/// the old permutation (which stay `(key, start)`-sorted — tombstoning preserves
/// relative order) are [`SortedRelation::union_merge`]d with the sorted entries of
/// the newly appended rows, so no re-sort of the old permutation is ever paid.
fn merge_permutation(
    old: &[u32],
    live: &[bool],
    mut added: Vec<(usize, Interval, u32)>,
    key_of: impl Fn(u32) -> (usize, Interval),
) -> Vec<u32> {
    added.sort_unstable_by_key(|&(key, interval, row)| (key, interval, row));
    let survivors: Vec<(usize, Interval, u32)> = old
        .iter()
        .filter(|&&row| live[row as usize])
        .map(|&row| {
            let (key, interval) = key_of(row);
            (key, interval, row)
        })
        .collect();
    let old_rel = SortedRelation::from_sorted(survivors)
        .expect("surviving permutation entries stay key/start-sorted");
    let new_rel =
        SortedRelation::from_sorted(added).expect("freshly sorted entries satisfy the invariant");
    old_rel.union_merge(new_rel).into_rows().into_iter().map(|(_, _, row)| row).collect()
}

/// Splits the lifetime of an object into maximal intervals during which none of its
/// property values change, staying within its existence intervals.
fn object_segments(graph: &Itpg, object: Object) -> Vec<Interval> {
    let existence = graph.existence(object);
    let mut boundaries: Vec<Time> = Vec::new();
    for iv in existence.intervals() {
        boundaries.push(iv.start());
        boundaries.push(iv.end() + 1);
    }
    for (_, history) in graph.properties(object) {
        for (_, iv) in history.entries() {
            boundaries.push(iv.start());
            boundaries.push(iv.end() + 1);
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    boundaries
        .windows(2)
        .filter(|w| existence.contains(w[0]))
        .map(|w| Interval::of(w[0], w[1] - 1))
        .collect()
}

/// Flattens per-key adjacency lists (indexed by ascending key) into one key-sorted
/// row permutation, ordering each key group by interval start and then row index.
fn sorted_permutation<F: Fn(u32) -> Interval>(by_key: &[Vec<u32>], interval: F) -> Vec<u32> {
    let mut out = Vec::with_capacity(by_key.iter().map(Vec::len).sum());
    for rows in by_key {
        let mut group = rows.clone();
        group.sort_by_key(|&r| (interval(r), r));
        out.extend(group);
    }
    out
}

fn props_at(
    graph: &Itpg,
    object: Object,
    t: Time,
    intern: &mut impl FnMut(&str) -> Arc<str>,
) -> Vec<(Arc<str>, Value)> {
    let mut props: Vec<(Arc<str>, Value)> = graph
        .properties(object)
        .filter_map(|(name, history)| history.value_at(t).map(|v| (intern(name), v.clone())))
        .collect();
    props.sort_by(|a, b| a.0.cmp(&b.0));
    props
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::ItpgBuilder;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    fn sample() -> Itpg {
        let mut b = ItpgBuilder::new();
        let n1 = b.add_node("n1", "Person").unwrap();
        let n2 = b.add_node("n2", "Person").unwrap();
        let e1 = b.add_edge("e1", "meets", n1, n2).unwrap();
        b.add_existence(n1, iv(1, 9)).unwrap();
        b.add_existence(n2, iv(1, 9)).unwrap();
        b.add_existence(e1, iv(3, 3)).unwrap();
        b.add_existence(e1, iv(5, 6)).unwrap();
        b.set_property(n1, "name", "Ann", iv(1, 9)).unwrap();
        b.set_property(n1, "risk", "low", iv(1, 9)).unwrap();
        b.set_property(n2, "name", "Bob", iv(1, 9)).unwrap();
        b.set_property(n2, "risk", "low", iv(1, 4)).unwrap();
        b.set_property(n2, "risk", "high", iv(5, 9)).unwrap();
        b.set_property(e1, "loc", "cafe", iv(3, 3)).unwrap();
        b.set_property(e1, "loc", "park", iv(5, 6)).unwrap();
        b.domain(iv(1, 11)).build().unwrap()
    }

    #[test]
    fn rows_match_the_papers_example_tables() {
        // Section VI shows the Nodes rows for n2 and the Edges rows for e1.
        let rel = GraphRelations::from_itpg(&sample());
        let n2_rows: Vec<&NodeRow> =
            rel.rows_of_node(NodeId(1)).iter().map(|&i| &rel.node_rows()[i as usize]).collect();
        assert_eq!(n2_rows.len(), 2);
        assert_eq!(n2_rows[0].interval, iv(1, 4));
        assert_eq!(n2_rows[0].prop("risk"), Some(&Value::str("low")));
        assert_eq!(n2_rows[0].prop("name"), Some(&Value::str("Bob")));
        assert_eq!(n2_rows[1].interval, iv(5, 9));
        assert_eq!(n2_rows[1].prop("risk"), Some(&Value::str("high")));

        let e1_rows: Vec<&EdgeRow> =
            rel.rows_of_edge(EdgeId(0)).iter().map(|&i| &rel.edge_rows()[i as usize]).collect();
        assert_eq!(e1_rows.len(), 2);
        assert_eq!(e1_rows[0].interval, iv(3, 3));
        assert_eq!(e1_rows[0].prop("loc"), Some(&Value::str("cafe")));
        assert_eq!(e1_rows[1].interval, iv(5, 6));
        assert_eq!(e1_rows[1].prop("loc"), Some(&Value::str("park")));
        assert_eq!(e1_rows[0].src, NodeId(0));
        assert_eq!(e1_rows[0].tgt, NodeId(1));
    }

    #[test]
    fn statistics_count_temporal_states() {
        let rel = GraphRelations::from_itpg(&sample());
        let stats = rel.stats();
        assert_eq!(stats.nodes, 2);
        assert_eq!(stats.edges, 1);
        assert_eq!(stats.temporal_nodes, 3); // n1 has one state, n2 has two.
        assert_eq!(stats.temporal_edges, 2);
    }

    #[test]
    fn sorted_permutations_cover_all_rows_in_key_order() {
        let rel = GraphRelations::from_itpg(&sample());
        let by_src = rel.edge_rows_sorted_by_tgt();
        assert_eq!(by_src.len(), rel.edge_rows().len());
        assert!(by_src.windows(2).all(|w| {
            let (a, b) = (&rel.edge_rows()[w[0] as usize], &rel.edge_rows()[w[1] as usize]);
            (a.tgt, a.interval.start()) <= (b.tgt, b.interval.start())
        }));
        let by_node = rel.node_rows_sorted_by_id();
        assert_eq!(by_node.len(), rel.node_rows().len());
        assert!(by_node.windows(2).all(|w| {
            let (a, b) = (&rel.node_rows()[w[0] as usize], &rel.node_rows()[w[1] as usize]);
            (a.node, a.interval.start()) <= (b.node, b.interval.start())
        }));
        assert_eq!(rel.edge_rows_sorted_by_src().len(), rel.edge_rows().len());
    }

    /// Asserts the invariants a delta must preserve: permutations cover exactly the
    /// live rows in `(key, start)` order, and the per-object index lists agree with
    /// the liveness bitmap.
    fn assert_delta_invariants(rel: &GraphRelations) {
        let live_nodes =
            (0..rel.node_rows().len() as u32).filter(|&r| rel.is_node_row_live(r)).count();
        let live_edges =
            (0..rel.edge_rows().len() as u32).filter(|&r| rel.is_edge_row_live(r)).count();
        assert_eq!(rel.node_rows_sorted_by_id().len(), live_nodes);
        assert_eq!(rel.edge_rows_sorted_by_src().len(), live_edges);
        assert_eq!(rel.edge_rows_sorted_by_tgt().len(), live_edges);
        assert_eq!(rel.seed_rows().len(), live_nodes);
        assert_eq!(rel.stats().temporal_nodes, live_nodes);
        assert_eq!(rel.stats().temporal_edges, live_edges);
        assert!(rel.node_rows_sorted_by_id().windows(2).all(|w| {
            let (a, b) = (&rel.node_rows()[w[0] as usize], &rel.node_rows()[w[1] as usize]);
            (a.node, a.interval.start()) <= (b.node, b.interval.start())
        }));
        assert!(rel.edge_rows_sorted_by_src().windows(2).all(|w| {
            let (a, b) = (&rel.edge_rows()[w[0] as usize], &rel.edge_rows()[w[1] as usize]);
            (a.src, a.interval.start()) <= (b.src, b.interval.start())
        }));
        assert!(rel.edge_rows_sorted_by_tgt().windows(2).all(|w| {
            let (a, b) = (&rel.edge_rows()[w[0] as usize], &rel.edge_rows()[w[1] as usize]);
            (a.tgt, a.interval.start()) <= (b.tgt, b.interval.start())
        }));
        assert!(rel.node_rows_sorted_by_id().iter().all(|&r| rel.is_node_row_live(r)));
        assert!(rel.edge_rows_sorted_by_src().iter().all(|&r| rel.is_edge_row_live(r)));
        assert!(rel.edge_rows_sorted_by_tgt().iter().all(|&r| rel.is_edge_row_live(r)));
    }

    #[test]
    fn deltas_match_a_bulk_rebuild() {
        let mut itpg = sample();
        let mut rel = GraphRelations::from_itpg(&itpg);

        // Extend Bob's existence (coalesces his [5,9] row away), flip his risk, add
        // a new person with an edge to him, and extend the old edge's existence.
        let mut batch = tgraph::Batch::new(1);
        batch
            .add_existence("n2", iv(10, 12))
            .set_property("n2", "risk", "low", iv(10, 12))
            .add_node("n9", "Person")
            .add_existence("n9", iv(2, 8))
            .set_property("n9", "name", "Zed", iv(2, 8))
            .add_edge("e9", "meets", "n9", "n2")
            .add_existence("e9", iv(6, 7))
            .add_existence("e1", iv(7, 8));
        let applied = itpg.apply_batch(&batch).unwrap();
        let stats = rel.apply_delta(&itpg, &applied.touched);
        assert!(stats.node_rows_added > 0 && stats.node_rows_retracted > 0);
        assert!(stats.edge_rows_added > 0 && stats.edge_rows_retracted > 0);

        assert_delta_invariants(&rel);
        let bulk = GraphRelations::from_itpg(&itpg);
        assert_eq!(rel.canonical_snapshot(), bulk.canonical_snapshot());
        assert_eq!(rel.stats(), bulk.stats());

        // Untouched objects keep their physical rows: n1 had one row before and
        // still points at the same index.
        assert_eq!(rel.rows_of_node(NodeId(0)), bulk.rows_of_node(NodeId(0)));

        // A second delta on top of the first behaves the same.
        let mut second = tgraph::Batch::new(2);
        second.set_property("n9", "risk", "high", iv(3, 4)).add_existence("e9", iv(3, 3));
        let applied = itpg.apply_batch(&second).unwrap();
        rel.apply_delta(&itpg, &applied.touched);
        assert_delta_invariants(&rel);
        assert_eq!(rel.canonical_snapshot(), GraphRelations::from_itpg(&itpg).canonical_snapshot());
    }

    #[test]
    fn deltas_starting_from_an_empty_graph_match_a_bulk_build() {
        let mut itpg = Itpg::empty(iv(1, 11));
        let mut rel = GraphRelations::from_itpg(&itpg);
        assert_eq!(rel.stats().temporal_nodes, 0);
        let mut batch = tgraph::Batch::new(1);
        batch
            .add_node("a", "Person")
            .add_node("b", "Person")
            .add_existence("a", iv(1, 9))
            .add_existence("b", iv(2, 6))
            .set_property("a", "risk", "high", iv(1, 4))
            .add_edge("e", "meets", "a", "b")
            .add_existence("e", iv(3, 5));
        let applied = itpg.apply_batch(&batch).unwrap();
        rel.apply_delta(&itpg, &applied.touched);
        assert_delta_invariants(&rel);
        let bulk = GraphRelations::from_itpg(&itpg);
        assert_eq!(rel.canonical_snapshot(), bulk.canonical_snapshot());
        // With no prior rows, delta loading is literally a bulk build: indices agree.
        assert_eq!(rel.node_rows(), bulk.node_rows());
        assert_eq!(rel.edge_rows(), bulk.edge_rows());
        assert_eq!(rel.node_rows_sorted_by_id(), bulk.node_rows_sorted_by_id());
    }

    #[test]
    fn snapshots_are_copy_on_write() {
        let mut itpg = sample();
        let mut rel = GraphRelations::from_itpg(&itpg);
        let pinned = rel.snapshot();
        assert_eq!(pinned.shared_columns(&rel), 15, "a fresh snapshot shares every column");

        // An edge-only batch must not copy any node column: the writer diverges
        // the edge storage while the snapshot keeps the old version.
        let before = rel.canonical_snapshot();
        let mut batch = tgraph::Batch::new(1);
        batch.add_existence("e1", iv(7, 8));
        let applied = itpg.apply_batch(&batch).unwrap();
        rel.apply_delta(&itpg, &applied.touched);

        let shared = pinned.shared_columns(&rel);
        assert!(shared < 15, "the edge columns must have diverged");
        assert!(shared >= 6, "the six node columns (and edge names) must still be shared");
        // The pinned snapshot is immutable: it still shows the pre-batch state,
        // while the live relations show the post-batch state.
        assert_eq!(pinned.canonical_snapshot(), before);
        assert_eq!(rel.canonical_snapshot(), GraphRelations::from_itpg(&itpg).canonical_snapshot());
        assert_ne!(pinned.canonical_snapshot(), rel.canonical_snapshot());

        // Dropping the snapshot and applying another delta writes in place again
        // (unique ownership — no second copy), and a fresh snapshot re-shares.
        drop(pinned);
        let again = rel.snapshot();
        assert_eq!(again.shared_columns(&rel), 15);
    }

    #[test]
    fn indexes_are_consistent() {
        let rel = GraphRelations::from_itpg(&sample());
        assert_eq!(rel.out_edge_rows(NodeId(0)).len(), 2);
        assert!(rel.in_edge_rows(NodeId(0)).is_empty());
        assert_eq!(rel.in_edge_rows(NodeId(1)).len(), 2);
        assert_eq!(rel.object_name(Object::Node(NodeId(1))), "n2");
        assert_eq!(rel.object_name(Object::Edge(EdgeId(0))), "e1");
        assert_eq!(rel.existence(Object::Edge(EdgeId(0))).intervals(), &[iv(3, 3), iv(5, 6)]);
        assert_eq!(rel.existence_interval_at(Object::Node(NodeId(0)), 5), Some(iv(1, 9)));
        assert_eq!(rel.existence_interval_at(Object::Edge(EdgeId(0)), 4), None);
        assert_eq!(rel.domain(), iv(1, 11));
    }
}
