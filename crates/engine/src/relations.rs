//! The interval-timestamped relational representation of a temporal property graph
//! used by the engine (Section VI of the paper):
//!
//! ```text
//! Nodes(id, label, properties, time)
//! Edges(id, src, tgt, label, properties, time)
//! ```
//!
//! Each row describes one maximal "no change occurred" state of a node or an edge: the
//! object's label and property values are constant over the row's validity interval,
//! and the rows of one object are temporally coalesced.  The row counts of these two
//! relations are exactly the "# temp. nodes" / "# temp. edges" columns of Table I.

use std::collections::HashMap;
use std::sync::Arc;

use tgraph::{EdgeId, Interval, IntervalSet, Itpg, NodeId, Object, Time, Value};

/// One temporally-constant state of a node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRow {
    /// The node this row describes.
    pub node: NodeId,
    /// Label of the node.
    pub label: Arc<str>,
    /// Property values holding over the whole validity interval, sorted by name.
    pub props: Vec<(Arc<str>, Value)>,
    /// Validity interval of this state.
    pub interval: Interval,
}

/// One temporally-constant state of an edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeRow {
    /// The edge this row describes.
    pub edge: EdgeId,
    /// Source node of the edge.
    pub src: NodeId,
    /// Target node of the edge.
    pub tgt: NodeId,
    /// Label of the edge.
    pub label: Arc<str>,
    /// Property values holding over the whole validity interval, sorted by name.
    pub props: Vec<(Arc<str>, Value)>,
    /// Validity interval of this state.
    pub interval: Interval,
}

impl NodeRow {
    /// Looks up a property value of this row.
    pub fn prop(&self, name: &str) -> Option<&Value> {
        self.props.iter().find(|(k, _)| k.as_ref() == name).map(|(_, v)| v)
    }
}

impl EdgeRow {
    /// Looks up a property value of this row.
    pub fn prop(&self, name: &str) -> Option<&Value> {
        self.props.iter().find(|(k, _)| k.as_ref() == name).map(|(_, v)| v)
    }
}

/// Summary statistics of the relational representation (one row of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationStats {
    /// Number of distinct nodes.
    pub nodes: usize,
    /// Number of distinct edges.
    pub edges: usize,
    /// Number of temporal node states (rows of the Nodes relation).
    pub temporal_nodes: usize,
    /// Number of temporal edge states (rows of the Edges relation).
    pub temporal_edges: usize,
}

/// The pair of interval-timestamped relations plus the indexes the engine navigates
/// with.
#[derive(Debug, Clone)]
pub struct GraphRelations {
    domain: Interval,
    nodes: Vec<NodeRow>,
    edges: Vec<EdgeRow>,
    node_names: Vec<String>,
    edge_names: Vec<String>,
    node_rows_by_id: Vec<Vec<u32>>,
    edge_rows_by_id: Vec<Vec<u32>>,
    edge_rows_by_src: Vec<Vec<u32>>,
    edge_rows_by_tgt: Vec<Vec<u32>>,
    node_existence: Vec<IntervalSet>,
    edge_existence: Vec<IntervalSet>,
    // Key-sorted permutations of the two relations, precomputed at load time so
    // merge joins can scan them without sorting (see the `sorted_*` accessors).
    node_rows_by_id_sorted: Vec<u32>,
    edge_rows_by_src_sorted: Vec<u32>,
    edge_rows_by_tgt_sorted: Vec<u32>,
}

impl GraphRelations {
    /// Builds the relational representation from an interval-timestamped graph.
    pub fn from_itpg(graph: &Itpg) -> Self {
        let mut label_cache: HashMap<String, Arc<str>> = HashMap::new();
        let mut prop_name_cache: HashMap<String, Arc<str>> = HashMap::new();
        let mut intern_label = |s: &str| -> Arc<str> {
            label_cache.entry(s.to_owned()).or_insert_with(|| Arc::from(s)).clone()
        };
        let mut intern_prop = |s: &str| -> Arc<str> {
            prop_name_cache.entry(s.to_owned()).or_insert_with(|| Arc::from(s)).clone()
        };

        let mut nodes = Vec::new();
        let mut node_rows_by_id = vec![Vec::new(); graph.num_nodes()];
        let mut node_names = Vec::with_capacity(graph.num_nodes());
        let mut node_existence = Vec::with_capacity(graph.num_nodes());
        for n in graph.node_ids() {
            let o = Object::Node(n);
            node_names.push(graph.name(o).to_owned());
            node_existence.push(graph.existence(o).clone());
            let label = intern_label(graph.label(o));
            for segment in object_segments(graph, o) {
                let props = props_at(graph, o, segment.start(), &mut intern_prop);
                node_rows_by_id[n.index()].push(nodes.len() as u32);
                nodes.push(NodeRow { node: n, label: label.clone(), props, interval: segment });
            }
        }

        let mut edges = Vec::new();
        let mut edge_rows_by_id = vec![Vec::new(); graph.num_edges()];
        let mut edge_rows_by_src = vec![Vec::new(); graph.num_nodes()];
        let mut edge_rows_by_tgt = vec![Vec::new(); graph.num_nodes()];
        let mut edge_names = Vec::with_capacity(graph.num_edges());
        let mut edge_existence = Vec::with_capacity(graph.num_edges());
        for e in graph.edge_ids() {
            let o = Object::Edge(e);
            edge_names.push(graph.name(o).to_owned());
            edge_existence.push(graph.existence(o).clone());
            let label = intern_label(graph.label(o));
            let (src, tgt) = (graph.src(e), graph.tgt(e));
            for segment in object_segments(graph, o) {
                let props = props_at(graph, o, segment.start(), &mut intern_prop);
                let row_index = edges.len() as u32;
                edge_rows_by_id[e.index()].push(row_index);
                edge_rows_by_src[src.index()].push(row_index);
                edge_rows_by_tgt[tgt.index()].push(row_index);
                edges.push(EdgeRow {
                    edge: e,
                    src,
                    tgt,
                    label: label.clone(),
                    props,
                    interval: segment,
                });
            }
        }

        // Flatten the adjacency lists into key-sorted permutations.  The lists are
        // already grouped by ascending key; within one key group the rows are ordered
        // by interval start (ties broken by row index for determinism).
        let node_rows_by_id_sorted =
            sorted_permutation(&node_rows_by_id, |r| nodes[r as usize].interval);
        let edge_rows_by_src_sorted =
            sorted_permutation(&edge_rows_by_src, |r| edges[r as usize].interval);
        let edge_rows_by_tgt_sorted =
            sorted_permutation(&edge_rows_by_tgt, |r| edges[r as usize].interval);

        GraphRelations {
            domain: graph.domain(),
            nodes,
            edges,
            node_names,
            edge_names,
            node_rows_by_id,
            edge_rows_by_id,
            edge_rows_by_src,
            edge_rows_by_tgt,
            node_existence,
            edge_existence,
            node_rows_by_id_sorted,
            edge_rows_by_src_sorted,
            edge_rows_by_tgt_sorted,
        }
    }

    /// The temporal domain of the graph.
    pub fn domain(&self) -> Interval {
        self.domain
    }

    /// The rows of the Nodes relation.
    pub fn node_rows(&self) -> &[NodeRow] {
        &self.nodes
    }

    /// The rows of the Edges relation.
    pub fn edge_rows(&self) -> &[EdgeRow] {
        &self.edges
    }

    /// Row indices of the Nodes relation describing the given node.
    pub fn rows_of_node(&self, node: NodeId) -> &[u32] {
        &self.node_rows_by_id[node.index()]
    }

    /// Row indices of the Edges relation describing the given edge.
    pub fn rows_of_edge(&self, edge: EdgeId) -> &[u32] {
        &self.edge_rows_by_id[edge.index()]
    }

    /// Row indices of edges whose source is the given node.
    pub fn out_edge_rows(&self, node: NodeId) -> &[u32] {
        &self.edge_rows_by_src[node.index()]
    }

    /// Row indices of edges whose target is the given node.
    pub fn in_edge_rows(&self, node: NodeId) -> &[u32] {
        &self.edge_rows_by_tgt[node.index()]
    }

    /// Row indices of the Nodes relation sorted by `(node id, interval start)` — the
    /// key-sorted permutation merge joins scan when hopping onto nodes.
    pub fn node_rows_sorted_by_id(&self) -> &[u32] {
        &self.node_rows_by_id_sorted
    }

    /// Row indices of the Edges relation sorted by `(source node, interval start)`.
    pub fn edge_rows_sorted_by_src(&self) -> &[u32] {
        &self.edge_rows_by_src_sorted
    }

    /// Row indices of the Edges relation sorted by `(target node, interval start)`.
    pub fn edge_rows_sorted_by_tgt(&self) -> &[u32] {
        &self.edge_rows_by_tgt_sorted
    }

    /// The coalesced existence intervals of an object.
    pub fn existence(&self, object: Object) -> &IntervalSet {
        match object {
            Object::Node(n) => &self.node_existence[n.index()],
            Object::Edge(e) => &self.edge_existence[e.index()],
        }
    }

    /// The maximal existence interval of an object containing the time point `t`,
    /// if the object exists at `t`.
    pub fn existence_interval_at(&self, object: Object, t: Time) -> Option<Interval> {
        self.existence(object).intervals().iter().find(|iv| iv.contains(t)).copied()
    }

    /// The display name of an object (e.g. `"n7"`).
    pub fn object_name(&self, object: Object) -> &str {
        match object {
            Object::Node(n) => &self.node_names[n.index()],
            Object::Edge(e) => &self.edge_names[e.index()],
        }
    }

    /// The number of distinct nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// The number of distinct edges.
    pub fn num_edges(&self) -> usize {
        self.edge_names.len()
    }

    /// Summary statistics of the relational representation (Table I).
    pub fn stats(&self) -> RelationStats {
        RelationStats {
            nodes: self.num_nodes(),
            edges: self.num_edges(),
            temporal_nodes: self.nodes.len(),
            temporal_edges: self.edges.len(),
        }
    }
}

/// Splits the lifetime of an object into maximal intervals during which none of its
/// property values change, staying within its existence intervals.
fn object_segments(graph: &Itpg, object: Object) -> Vec<Interval> {
    let existence = graph.existence(object);
    let mut boundaries: Vec<Time> = Vec::new();
    for iv in existence.intervals() {
        boundaries.push(iv.start());
        boundaries.push(iv.end() + 1);
    }
    for (_, history) in graph.properties(object) {
        for (_, iv) in history.entries() {
            boundaries.push(iv.start());
            boundaries.push(iv.end() + 1);
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    boundaries
        .windows(2)
        .filter(|w| existence.contains(w[0]))
        .map(|w| Interval::of(w[0], w[1] - 1))
        .collect()
}

/// Flattens per-key adjacency lists (indexed by ascending key) into one key-sorted
/// row permutation, ordering each key group by interval start and then row index.
fn sorted_permutation<F: Fn(u32) -> Interval>(by_key: &[Vec<u32>], interval: F) -> Vec<u32> {
    let mut out = Vec::with_capacity(by_key.iter().map(Vec::len).sum());
    for rows in by_key {
        let mut group = rows.clone();
        group.sort_by_key(|&r| (interval(r), r));
        out.extend(group);
    }
    out
}

fn props_at(
    graph: &Itpg,
    object: Object,
    t: Time,
    intern: &mut impl FnMut(&str) -> Arc<str>,
) -> Vec<(Arc<str>, Value)> {
    let mut props: Vec<(Arc<str>, Value)> = graph
        .properties(object)
        .filter_map(|(name, history)| history.value_at(t).map(|v| (intern(name), v.clone())))
        .collect();
    props.sort_by(|a, b| a.0.cmp(&b.0));
    props
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::ItpgBuilder;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    fn sample() -> Itpg {
        let mut b = ItpgBuilder::new();
        let n1 = b.add_node("n1", "Person").unwrap();
        let n2 = b.add_node("n2", "Person").unwrap();
        let e1 = b.add_edge("e1", "meets", n1, n2).unwrap();
        b.add_existence(n1, iv(1, 9)).unwrap();
        b.add_existence(n2, iv(1, 9)).unwrap();
        b.add_existence(e1, iv(3, 3)).unwrap();
        b.add_existence(e1, iv(5, 6)).unwrap();
        b.set_property(n1, "name", "Ann", iv(1, 9)).unwrap();
        b.set_property(n1, "risk", "low", iv(1, 9)).unwrap();
        b.set_property(n2, "name", "Bob", iv(1, 9)).unwrap();
        b.set_property(n2, "risk", "low", iv(1, 4)).unwrap();
        b.set_property(n2, "risk", "high", iv(5, 9)).unwrap();
        b.set_property(e1, "loc", "cafe", iv(3, 3)).unwrap();
        b.set_property(e1, "loc", "park", iv(5, 6)).unwrap();
        b.domain(iv(1, 11)).build().unwrap()
    }

    #[test]
    fn rows_match_the_papers_example_tables() {
        // Section VI shows the Nodes rows for n2 and the Edges rows for e1.
        let rel = GraphRelations::from_itpg(&sample());
        let n2_rows: Vec<&NodeRow> =
            rel.rows_of_node(NodeId(1)).iter().map(|&i| &rel.node_rows()[i as usize]).collect();
        assert_eq!(n2_rows.len(), 2);
        assert_eq!(n2_rows[0].interval, iv(1, 4));
        assert_eq!(n2_rows[0].prop("risk"), Some(&Value::str("low")));
        assert_eq!(n2_rows[0].prop("name"), Some(&Value::str("Bob")));
        assert_eq!(n2_rows[1].interval, iv(5, 9));
        assert_eq!(n2_rows[1].prop("risk"), Some(&Value::str("high")));

        let e1_rows: Vec<&EdgeRow> =
            rel.rows_of_edge(EdgeId(0)).iter().map(|&i| &rel.edge_rows()[i as usize]).collect();
        assert_eq!(e1_rows.len(), 2);
        assert_eq!(e1_rows[0].interval, iv(3, 3));
        assert_eq!(e1_rows[0].prop("loc"), Some(&Value::str("cafe")));
        assert_eq!(e1_rows[1].interval, iv(5, 6));
        assert_eq!(e1_rows[1].prop("loc"), Some(&Value::str("park")));
        assert_eq!(e1_rows[0].src, NodeId(0));
        assert_eq!(e1_rows[0].tgt, NodeId(1));
    }

    #[test]
    fn statistics_count_temporal_states() {
        let rel = GraphRelations::from_itpg(&sample());
        let stats = rel.stats();
        assert_eq!(stats.nodes, 2);
        assert_eq!(stats.edges, 1);
        assert_eq!(stats.temporal_nodes, 3); // n1 has one state, n2 has two.
        assert_eq!(stats.temporal_edges, 2);
    }

    #[test]
    fn sorted_permutations_cover_all_rows_in_key_order() {
        let rel = GraphRelations::from_itpg(&sample());
        let by_src = rel.edge_rows_sorted_by_tgt();
        assert_eq!(by_src.len(), rel.edge_rows().len());
        assert!(by_src.windows(2).all(|w| {
            let (a, b) = (&rel.edge_rows()[w[0] as usize], &rel.edge_rows()[w[1] as usize]);
            (a.tgt, a.interval.start()) <= (b.tgt, b.interval.start())
        }));
        let by_node = rel.node_rows_sorted_by_id();
        assert_eq!(by_node.len(), rel.node_rows().len());
        assert!(by_node.windows(2).all(|w| {
            let (a, b) = (&rel.node_rows()[w[0] as usize], &rel.node_rows()[w[1] as usize]);
            (a.node, a.interval.start()) <= (b.node, b.interval.start())
        }));
        assert_eq!(rel.edge_rows_sorted_by_src().len(), rel.edge_rows().len());
    }

    #[test]
    fn indexes_are_consistent() {
        let rel = GraphRelations::from_itpg(&sample());
        assert_eq!(rel.out_edge_rows(NodeId(0)).len(), 2);
        assert!(rel.in_edge_rows(NodeId(0)).is_empty());
        assert_eq!(rel.in_edge_rows(NodeId(1)).len(), 2);
        assert_eq!(rel.object_name(Object::Node(NodeId(1))), "n2");
        assert_eq!(rel.object_name(Object::Edge(EdgeId(0))), "e1");
        assert_eq!(rel.existence(Object::Edge(EdgeId(0))).intervals(), &[iv(3, 3), iv(5, 6)]);
        assert_eq!(rel.existence_interval_at(Object::Node(NodeId(0)), 5), Some(iv(1, 9)));
        assert_eq!(rel.existence_interval_at(Object::Edge(EdgeId(0)), 4), None);
        assert_eq!(rel.domain(), iv(1, 11));
    }
}
