//! Static analysis of compiled plans: every invariant the executor, Step-3
//! expansion and live delta seeding rely on, checked *before* execution.
//!
//! The compiler ([`crate::compiler`]) upholds these invariants by construction,
//! but plans can also be built by hand ([`EnginePlan`]'s fields are public) or
//! arrive from a cache, and the executor indexes into `links`, the Step-3
//! expansion pairs segment intervals through [`TimeLag`](crate::chain::TimeLag)s
//! recorded per time-crossing closure, and live maintenance
//! ([`crate::executor::run_plan_seeded`] callers) trusts the statically derived
//! hop count.  A malformed plan therefore fails *late* and far from its cause —
//! this module fails it *early* with a diagnostic naming the offending segment,
//! link or operation.
//!
//! The audit is wired into the executor as a debug assertion (every
//! `cargo test` execution audits every plan it runs) and is exposed through
//! [`audit`] / [`audit_plan`] for standalone use: the workspace analyzer
//! (`cargo run -p check -- --plans`) audits the precompiled Q1–Q12 table plus
//! the benchmark closure queries on every CI run.

use std::fmt;

use crate::plan::{ClosureOp, ClosureStep, EnginePlan, MicroOp, PlanSet, Segment, TemporalLink};

/// The deepest closure nesting the audit accepts.  The surface syntax has no
/// practical use for repetition towers beyond a couple of levels; anything
/// deeper than this is almost certainly a plan-construction bug (or an
/// adversarial input) and would make the fixpoint state space explode.
pub const MAX_CLOSURE_DEPTH: usize = 8;

/// The largest statically-known hop count the audit accepts.  Live delta
/// seeding runs a breadth-first sweep of the object graph to this depth on
/// every refresh ([`hop_depth`]), so an absurd hop count turns each refresh
/// into a full traversal; real plans stay in the single digits.
pub const MAX_STATIC_HOPS: usize = 256;

/// One defect found in a plan, with enough location context to act on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditIssue {
    /// Index of the offending plan within the audited [`PlanSet`] (`None` when
    /// a single [`EnginePlan`] was audited on its own).
    pub plan: Option<usize>,
    /// Where in the plan the defect sits (`"segment 2, op 0"`, `"link 1"`, …).
    pub location: String,
    /// What is wrong and what the invariant requires instead.
    pub message: String,
}

impl fmt::Display for AuditIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.plan {
            Some(p) => write!(f, "plan {p}, {}: {}", self.location, self.message),
            None => write!(f, "{}: {}", self.location, self.message),
        }
    }
}

/// The error of a failed [`audit`]: every issue found, not just the first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// The defects, in plan order.
    pub issues: Vec<AuditIssue>,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan audit failed with {} issue(s):", self.issues.len())?;
        for issue in &self.issues {
            writeln!(f, "  - {issue}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AuditError {}

/// What a successful audit certifies, per plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// The statically-known structural hop count of each plan, in plan order;
    /// `None` marks plans containing a closure fixpoint (unbounded reach —
    /// live maintenance must take its conservative full-recompute path).
    pub hop_depths: Vec<Option<usize>>,
    /// The deepest closure nesting seen across all plans.
    pub max_closure_depth: usize,
}

/// Audits a compiled plan set against every executor/expansion/maintenance
/// invariant.  Returns a certificate of the statically derived facts on
/// success and the full list of defects on failure.
///
/// An *empty* plan set (zero plans) is valid: the compiler produces it for
/// queries whose every alternative is unsatisfiable, and the executor returns
/// an empty answer for it.
pub fn audit(plan_set: &PlanSet) -> Result<AuditReport, AuditError> {
    let mut issues = Vec::new();
    let mut hop_depths = Vec::with_capacity(plan_set.plans.len());
    let mut max_depth = 0usize;
    for (index, plan) in plan_set.plans.iter().enumerate() {
        let found = audit_plan(plan, Some(plan_set.variables.len()));
        issues.extend(found.into_iter().map(|mut issue| {
            issue.plan = Some(index);
            issue
        }));
        hop_depths.push(hop_depth(plan));
        max_depth = max_depth.max(closure_depth(plan));
    }
    if issues.is_empty() {
        Ok(AuditReport { hop_depths, max_closure_depth: max_depth })
    } else {
        Err(AuditError { issues })
    }
}

/// Audits a single plan.  `num_slots` is the number of variable slots of the
/// surrounding plan set; pass `None` to skip the slot-range check when the
/// plan is audited without its plan set (e.g. from
/// [`crate::executor::run_plan_seeded`]).
pub fn audit_plan(plan: &EnginePlan, num_slots: Option<usize>) -> Vec<AuditIssue> {
    let mut issues = Vec::new();
    // Link arity: the executor walks `links[index - 1]` for every segment
    // index > 0, so a mismatch is an out-of-bounds panic (or silently dropped
    // links) at execution time.
    if plan.segments.is_empty() {
        issues.push(issue(
            "plan",
            "a plan must have at least one segment; the compiler always starts \
             from one empty segment",
        ));
    }
    let expected_links = plan.segments.len().saturating_sub(1);
    if plan.links.len() != expected_links {
        issues.push(issue(
            "links",
            &format!(
                "{} segments require exactly {} temporal link(s), found {}; every \
                 consecutive segment pair must be joined by exactly one link",
                plan.segments.len(),
                expected_links,
                plan.links.len()
            ),
        ));
    }
    for (index, link) in plan.links.iter().enumerate() {
        audit_link(index, link, &mut issues);
    }
    let mut bound = Vec::new();
    for (seg_index, segment) in plan.segments.iter().enumerate() {
        audit_segment(seg_index, segment, num_slots, &mut bound, &mut issues);
    }
    let depth = closure_depth(plan);
    if depth > MAX_CLOSURE_DEPTH {
        issues.push(issue(
            "plan",
            &format!(
                "closure nesting depth {depth} exceeds the supported maximum of \
                 {MAX_CLOSURE_DEPTH}; flatten the repetition tower or raise \
                 MAX_CLOSURE_DEPTH deliberately"
            ),
        ));
    }
    if let Some(hops) = hop_depth(plan) {
        if hops > MAX_STATIC_HOPS {
            issues.push(issue(
                "plan",
                &format!(
                    "statically-known hop count {hops} exceeds {MAX_STATIC_HOPS}; \
                     live delta seeding sweeps the object graph to this depth on \
                     every refresh, so a plan this deep must be a construction bug"
                ),
            ));
        }
    }
    issues
}

/// The number of structural hops a plan performs, or `None` if the plan
/// contains a closure fixpoint (whose reach is not statically bounded).
///
/// This is the bound live delta seeding depends on: a chain seeded at a node
/// can only observe objects within this many structural hops of it, so a
/// refresh only needs to re-evaluate seeds within that distance of a touched
/// object ([`crate::executor::run_plan_seeded`]).
pub fn hop_depth(plan: &EnginePlan) -> Option<usize> {
    if plan.links.iter().any(|link| matches!(link, TemporalLink::Closure(_))) {
        return None;
    }
    let mut hops = 0usize;
    for segment in &plan.segments {
        for op in &segment.ops {
            match op {
                MicroOp::Hop(_) => hops += 1,
                MicroOp::Closure(_) => return None,
                MicroOp::Filter(_) | MicroOp::Bind(_) => {}
            }
        }
    }
    Some(hops)
}

fn issue(location: &str, message: &str) -> AuditIssue {
    AuditIssue { plan: None, location: location.to_owned(), message: message.to_owned() }
}

fn audit_link(index: usize, link: &TemporalLink, issues: &mut Vec<AuditIssue>) {
    let location = format!("link {index}");
    match link {
        TemporalLink::Shift(shift) => {
            if shift.is_unsatisfiable() {
                issues.push(issue(
                    &location,
                    &format!(
                        "unsatisfiable shift [{}, {}]: the compiler drops n > m \
                         indicators (the whole alternative relates nothing), so an \
                         executed plan must never contain one",
                        shift.min,
                        shift.max.map_or_else(|| "_".into(), |m| m.to_string())
                    ),
                ));
            }
        }
        TemporalLink::Closure(closure) => {
            if !closure.is_time_crossing() {
                issues.push(issue(
                    &location,
                    "purely structural closure used as a temporal link: Step-3 \
                     expansion expects every closure link to record a TimeLag per \
                     chain, which only time-crossing bodies produce; structural \
                     repetition belongs inside a segment as MicroOp::Closure",
                ));
            }
            audit_closure(&location, closure, issues);
        }
    }
}

fn audit_segment(
    seg_index: usize,
    segment: &Segment,
    num_slots: Option<usize>,
    bound: &mut Vec<usize>,
    issues: &mut Vec<AuditIssue>,
) {
    for (op_index, op) in segment.ops.iter().enumerate() {
        let location = format!("segment {seg_index}, op {op_index}");
        match op {
            MicroOp::Bind(slot) => {
                if num_slots.is_some_and(|n| *slot >= n) {
                    issues.push(issue(
                        &location,
                        &format!(
                            "bind targets slot {slot} but the plan set declares only \
                             {} variable(s); slots index PlanSet::variables",
                            num_slots.unwrap_or(0)
                        ),
                    ));
                }
                if bound.contains(slot) {
                    issues.push(issue(
                        &location,
                        &format!(
                            "slot {slot} is bound twice; the compiler rejects \
                             duplicate variables, so each slot is bound at most once \
                             per plan"
                        ),
                    ));
                }
                bound.push(*slot);
            }
            MicroOp::Closure(closure) => {
                if closure.is_time_crossing() {
                    issues.push(issue(
                        &location,
                        "time-crossing closure inside a structural segment: a body \
                         containing shifts relates different time points and must \
                         compile to a TemporalLink::Closure splitting the segments",
                    ));
                }
                audit_closure(&location, closure, issues);
            }
            MicroOp::Hop(_) | MicroOp::Filter(_) => {}
        }
    }
}

fn audit_closure(location: &str, closure: &ClosureOp, issues: &mut Vec<AuditIssue>) {
    if closure.alternatives.is_empty() {
        issues.push(issue(
            location,
            "closure with no alternatives: the fixpoint body would be the empty \
             union, which matches nothing — the compiler drops such repetitions \
             entirely",
        ));
    }
    for (alt_index, alternative) in closure.alternatives.iter().enumerate() {
        if alternative.is_empty() {
            issues.push(issue(
                location,
                &format!(
                    "closure alternative {alt_index} is empty: an empty body makes \
                     every iteration a no-op and the fixpoint either trivial or \
                     non-terminating; degenerate repetitions are normalised away \
                     during compilation"
                ),
            ));
        }
        for step in alternative {
            match step {
                ClosureStep::Micro(MicroOp::Bind(slot)) => {
                    issues.push(issue(
                        location,
                        &format!(
                            "closure alternative {alt_index} binds slot {slot}: the \
                             surface language cannot bind variables inside a repeated \
                             group, and Step-3 expansion does not model per-iteration \
                             bindings"
                        ),
                    ));
                }
                ClosureStep::Micro(MicroOp::Closure(inner)) => {
                    audit_closure(location, inner, issues);
                }
                ClosureStep::Shift(shift) => {
                    if shift.is_unsatisfiable() {
                        issues.push(issue(
                            location,
                            &format!(
                                "closure alternative {alt_index} contains an \
                                 unsatisfiable shift [{}, {}]; the compiler drops \
                                 n > m indicators before they reach a plan",
                                shift.min,
                                shift.max.map_or_else(|| "_".into(), |m| m.to_string())
                            ),
                        ));
                    }
                }
                ClosureStep::Micro(MicroOp::Hop(_) | MicroOp::Filter(_)) => {}
            }
        }
    }
    if closure.max.is_some_and(|m| m < closure.min) {
        issues.push(issue(
            location,
            &format!(
                "unsatisfiable repetition bounds [{}, {}]: n > m relates nothing and \
                 is dropped during compilation",
                closure.min,
                closure.max.unwrap_or(0)
            ),
        ));
    }
    if closure.min == closure.max.unwrap_or(u32::MAX) && closure.min <= 1 {
        issues.push(issue(
            location,
            &format!(
                "degenerate repetition bounds [{n}, {n}]: p[0,0] is the empty path \
                 and p[1,1] is p itself — both are normalised away during \
                 compilation and must not reach the fixpoint operator",
                n = closure.min
            ),
        ));
    }
}

/// The deepest closure nesting in the plan (0 for closure-free plans).
fn closure_depth(plan: &EnginePlan) -> usize {
    fn op_depth(op: &MicroOp) -> usize {
        match op {
            MicroOp::Closure(c) => closure_op_depth(c),
            _ => 0,
        }
    }
    fn closure_op_depth(closure: &ClosureOp) -> usize {
        1 + closure
            .alternatives
            .iter()
            .flatten()
            .map(|step| match step {
                ClosureStep::Micro(op) => op_depth(op),
                ClosureStep::Shift(_) => 0,
            })
            .max()
            .unwrap_or(0)
    }
    let segment_depth =
        plan.segments.iter().flat_map(|s| s.ops.iter()).map(op_depth).max().unwrap_or(0);
    let link_depth = plan
        .links
        .iter()
        .map(|link| match link {
            TemporalLink::Closure(c) => closure_op_depth(c),
            TemporalLink::Shift(_) => 0,
        })
        .max()
        .unwrap_or(0);
    segment_depth.max(link_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::plan::{HopDirection, ObjFilter, Shift};
    use trpq::parser::parse_match;
    use trpq::queries::QueryId;

    fn hop() -> MicroOp {
        MicroOp::Hop(HopDirection::Forward)
    }

    fn shift(min: u32, max: Option<u32>) -> Shift {
        Shift { forward: true, min, max }
    }

    #[test]
    fn benchmark_queries_pass_the_audit() {
        for id in QueryId::ALL {
            let plan_set = crate::queries::plan_for(id);
            let report = audit(&plan_set).unwrap_or_else(|e| panic!("{}: {e}", id.name()));
            assert_eq!(report.hop_depths.len(), plan_set.plans.len(), "{}", id.name());
        }
    }

    #[test]
    fn closure_queries_pass_and_report_unbounded_hops() {
        for text in [
            "MATCH (x:Person)-/(FWD/:meets/FWD)*/-(y:Person) ON g",
            "MATCH (x)-/(FWD/:meets/FWD/NEXT)*/-(y) ON g",
            "MATCH (x)-/((FWD/NEXT)[1,2]/BWD)*/-(y) ON g",
        ] {
            let plan_set = compile(&parse_match(text).unwrap()).unwrap();
            let report = audit(&plan_set).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert!(
                report.hop_depths.iter().all(Option::is_none),
                "{text}: closures have no static hop bound"
            );
            assert!(report.max_closure_depth >= 1, "{text}");
        }
    }

    #[test]
    fn empty_plan_sets_are_valid() {
        let plan_set = compile(&parse_match("MATCH (x)-/NEXT[3,1]/-(y) ON g").unwrap()).unwrap();
        assert!(plan_set.plans.is_empty());
        assert_eq!(
            audit(&plan_set).unwrap(),
            AuditReport { hop_depths: vec![], max_closure_depth: 0 }
        );
    }

    fn base() -> PlanSet {
        compile(&parse_match("MATCH (x:Person)-/FWD/:meets/FWD/NEXT*/-(y) ON g").unwrap()).unwrap()
    }

    #[test]
    fn link_arity_mismatch_is_rejected() {
        let mut broken = base();
        broken.plans[0].links.clear();
        let err = audit(&broken).unwrap_err();
        assert_eq!(err.issues.len(), 1);
        assert!(err.issues[0].message.contains("exactly 1 temporal link(s), found 0"), "{err}");
        assert_eq!(err.issues[0].plan, Some(0));

        let mut extra = base();
        extra.plans[0].links.push(TemporalLink::Shift(shift(0, None)));
        assert!(audit(&extra).unwrap_err().issues[0].message.contains("found 2"));

        let no_segments =
            PlanSet { plans: vec![EnginePlan { segments: vec![], links: vec![] }], ..base() };
        let err = audit(&no_segments).unwrap_err();
        assert!(err.issues.iter().any(|i| i.message.contains("at least one segment")), "{err}");
    }

    #[test]
    fn unsatisfiable_and_degenerate_indicators_are_rejected() {
        let mut broken = base();
        broken.plans[0].links[0] = TemporalLink::Shift(shift(3, Some(1)));
        let err = audit(&broken).unwrap_err();
        assert!(err.issues[0].message.contains("unsatisfiable shift [3, 1]"), "{err}");

        let unsat_closure = ClosureOp::structural(vec![vec![hop()]], 4, Some(2));
        let mut closure_plan = base();
        closure_plan.plans[0].segments[0].ops.push(MicroOp::Closure(unsat_closure));
        let err = audit(&closure_plan).unwrap_err();
        assert!(err.issues[0].message.contains("unsatisfiable repetition bounds [4, 2]"), "{err}");

        let degenerate = ClosureOp::structural(vec![vec![hop()]], 1, Some(1));
        let mut degenerate_plan = base();
        degenerate_plan.plans[0].segments[0].ops.push(MicroOp::Closure(degenerate));
        let err = audit(&degenerate_plan).unwrap_err();
        assert!(err.issues[0].message.contains("degenerate repetition bounds [1, 1]"), "{err}");
    }

    #[test]
    fn closure_placement_is_checked() {
        // A time-crossing closure smuggled into a segment.
        let mixed = ClosureOp {
            alternatives: vec![vec![hop().into(), ClosureStep::Shift(shift(1, Some(1)))]],
            min: 0,
            max: None,
        };
        let mut in_segment = base();
        in_segment.plans[0].segments[0].ops.push(MicroOp::Closure(mixed.clone()));
        let err = audit(&in_segment).unwrap_err();
        assert!(
            err.issues[0].message.contains("time-crossing closure inside a structural segment"),
            "{err}"
        );

        // A structural closure masquerading as a temporal link.
        let structural = ClosureOp::structural(vec![vec![hop()]], 0, None);
        let mut as_link = base();
        as_link.plans[0].links[0] = TemporalLink::Closure(structural);
        let err = audit(&as_link).unwrap_err();
        assert!(
            err.issues[0].message.contains("structural closure used as a temporal link"),
            "{err}"
        );
    }

    #[test]
    fn closure_bodies_are_checked() {
        let empty_union = ClosureOp { alternatives: vec![], min: 0, max: None };
        let mut plan = base();
        plan.plans[0].segments[0].ops.push(MicroOp::Closure(empty_union));
        let err = audit(&plan).unwrap_err();
        assert!(err.issues[0].message.contains("no alternatives"), "{err}");

        let empty_body = ClosureOp { alternatives: vec![vec![]], min: 0, max: None };
        let mut plan = base();
        plan.plans[0].segments[0].ops.push(MicroOp::Closure(empty_body));
        let err = audit(&plan).unwrap_err();
        assert!(err.issues[0].message.contains("alternative 0 is empty"), "{err}");

        let binding = ClosureOp {
            alternatives: vec![vec![hop().into(), MicroOp::Bind(0).into()]],
            min: 0,
            max: None,
        };
        let mut plan = base();
        plan.plans[0].segments[0].ops.push(MicroOp::Closure(binding));
        let err = audit(&plan).unwrap_err();
        assert!(err.issues[0].message.contains("binds slot 0"), "{err}");
    }

    #[test]
    fn bind_slots_are_range_and_uniqueness_checked() {
        let mut out_of_range = base();
        out_of_range.plans[0].segments[0].ops.push(MicroOp::Bind(9));
        let err = audit(&out_of_range).unwrap_err();
        assert!(err.issues[0].message.contains("slot 9"), "{err}");

        let mut duplicate = base();
        duplicate.plans[0].segments[1].ops.push(MicroOp::Bind(0));
        let err = audit(&duplicate).unwrap_err();
        assert!(err.issues[0].message.contains("bound twice"), "{err}");

        // Without a plan set the slot-range check is skipped but structure is
        // still audited.
        let mut lone = base().plans.remove(0);
        lone.segments[0].ops.push(MicroOp::Bind(9));
        assert!(audit_plan(&lone, None).is_empty());
        lone.links.clear();
        assert!(!audit_plan(&lone, None).is_empty());
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let mut closure = ClosureOp::structural(vec![vec![hop()]], 0, None);
        for _ in 0..MAX_CLOSURE_DEPTH {
            closure = ClosureOp {
                alternatives: vec![vec![ClosureStep::Micro(MicroOp::Closure(closure))]],
                min: 0,
                max: None,
            };
        }
        let mut plan = base();
        plan.plans[0].segments[0].ops.push(MicroOp::Closure(closure));
        let err = audit(&plan).unwrap_err();
        assert!(err.issues.iter().any(|i| i.message.contains("nesting depth")), "{err}");
    }

    #[test]
    fn hop_depth_counts_hops_and_rejects_closures() {
        let filter = MicroOp::Filter(ObjFilter::default());
        let plain = EnginePlan {
            segments: vec![Segment { ops: vec![filter, hop(), hop()] }],
            links: vec![],
        };
        assert_eq!(hop_depth(&plain), Some(2));
        let shifted = EnginePlan {
            segments: vec![Segment { ops: vec![hop()] }, Segment { ops: vec![hop()] }],
            links: vec![TemporalLink::Shift(shift(0, None))],
        };
        assert_eq!(hop_depth(&shifted), Some(2));
        let closure = ClosureOp::structural(vec![vec![hop()]], 0, None);
        let with_closure = EnginePlan {
            segments: vec![Segment { ops: vec![MicroOp::Closure(closure.clone())] }],
            links: vec![],
        };
        assert_eq!(hop_depth(&with_closure), None);
        let with_time_closure = EnginePlan {
            segments: vec![Segment::default(), Segment::default()],
            links: vec![TemporalLink::Closure(closure)],
        };
        assert_eq!(hop_depth(&with_time_closure), None);
    }

    #[test]
    fn diagnostics_render_with_plan_and_location() {
        let mut broken = base();
        broken.plans[0].links.clear();
        let err = audit(&broken).unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains("plan audit failed with 1 issue(s)"), "{rendered}");
        assert!(rendered.contains("plan 0, links:"), "{rendered}");
    }
}
