//! Semantic analysis of compiled plans: abstract interpretation over the graph
//! schema, temporal feasibility of shift/closure bands, and sound execution
//! bounds.
//!
//! Where [`super::audit`] checks *structural* well-formedness (arity, slot
//! bounds, placement), this module asks whether a well-formed plan can produce
//! anything at all on a given graph, and how much work it can possibly do:
//!
//! * **Satisfiability** — an abstract interpreter runs each plan over a
//!   [`SchemaSummary`] (the label alphabet of the graph plus label-level
//!   adjacency), constant-folding `time` filters against the domain.  A plan
//!   whose abstract state empties is *statically empty*
//!   ([`DiagnosticKind::EmptyPlan`]); a closure alternative that can never fire
//!   from any reachable abstract state is *dead*
//!   ([`DiagnosticKind::DeadAlternative`]).
//! * **Temporal feasibility** — every link contributes a signed displacement
//!   band (the same 1-D [`TimeLag`] windows Step 2's time-aware closure
//!   composes per chain, see [`crate::steps::closure`]); the bands are composed
//!   across links Helly-style into per-segment absolute time windows.  An empty
//!   window ([`DiagnosticKind::InfeasibleBand`]) proves the plan, or one
//!   closure alternative, relates nothing.
//! * **Bounds** — [`PlanBounds`]: a sound structural hop count (generalising
//!   [`super::audit::hop_depth`] to closures whose iteration count the analysis
//!   bounds — e.g. a `(FWD/…/NEXT)*` body that must advance time every round
//!   can iterate at most `domain span` times) and a coarse upper bound on the
//!   Step-1/2 chain count.  Live maintenance (`crates/live`) seeds its delta
//!   refresh from `max_hops`.
//!
//! [`analyze`] reports diagnostics and also returns the *optimized* plan set:
//! statically-empty plans dropped, dead alternatives pruned, and closure
//! `[n, m]` windows tightened.  Every rewrite is justified by the abstract
//! semantics, so optimized and unoptimized execution are output-equivalent on
//! the graph the [`SchemaSummary`] came from (pinned by property tests in
//! `tests/plan_optimizer.rs`).  The executor applies the pass behind
//! [`ExecutionOptions::optimize`](crate::executor::ExecutionOptions::optimize).

use std::collections::BTreeSet;
use std::fmt;

use tgraph::{Interval, Value};

use crate::chain::TimeLag;
use crate::plan::{
    ClosureOp, ClosureStep, EnginePlan, HopDirection, MicroOp, ObjFilter, PlanSet, Segment, Shift,
    TemporalLink,
};
use crate::relations::GraphRelations;

/// Sentinel for an unbounded band endpoint.  A quarter of the `i128` range
/// keeps every saturating sum/product of finite contributions well clear of
/// overflow while still comparing correctly against real displacements.
const INF: i128 = i128::MAX / 4;

/// The most closure iterations the per-iteration emptiness simulation runs
/// before giving up on tightening.  Death beyond this depth is possible but
/// irrelevant: the simulation only exists to shrink small windows.
const MAX_SIMULATED_ITERATIONS: u32 = 128;

// ---------------------------------------------------------------------------
// Schema summary
// ---------------------------------------------------------------------------

/// The label alphabet of a graph with label-level adjacency: everything the
/// abstract interpreter needs to decide whether a sequence of hops and filters
/// can match *anything*, without touching rows.
///
/// Built once per analysis by [`SchemaSummary::of`] (one pass over the live
/// rows), or label-free by [`SchemaSummary::universal`] for callers that need
/// graph-independent bounds (live registration caches those per domain).
#[derive(Debug, Clone)]
pub struct SchemaSummary {
    /// False for [`SchemaSummary::universal`]: label and property filters are
    /// assumed satisfiable, only object-kind and time reasoning applies.
    exact: bool,
    /// The temporal domain of the graph.
    domain: Interval,
    /// Distinct node labels; indices are the abstract node objects.
    node_labels: Vec<String>,
    /// Distinct edge labels; indices are the abstract edge objects.
    edge_labels: Vec<String>,
    /// Distinct `(property, value)` pairs seen on rows of each node label.
    node_props: Vec<Vec<(String, Value)>>,
    /// Distinct `(property, value)` pairs seen on rows of each edge label.
    edge_props: Vec<Vec<(String, Value)>>,
    /// `(node label, edge label)`: some node of that label has an outgoing
    /// edge of that label.
    out_adj: BTreeSet<(u32, u32)>,
    /// `(node label, edge label)`: some node of that label has an incoming
    /// edge of that label.
    in_adj: BTreeSet<(u32, u32)>,
    /// `(edge label, node label)`: some edge of that label has a source node
    /// of that label.
    src_of: BTreeSet<(u32, u32)>,
    /// `(edge label, node label)`: some edge of that label has a target node
    /// of that label.
    tgt_of: BTreeSet<(u32, u32)>,
    /// Live node row count (Step-1 seed count).
    node_rows: u128,
    /// Live edge row count.
    edge_rows: u128,
}

impl SchemaSummary {
    /// Summarises the live rows of a graph.
    pub fn of(relations: &GraphRelations) -> Self {
        let mut schema = SchemaSummary {
            exact: true,
            domain: relations.domain(),
            node_labels: Vec::new(),
            edge_labels: Vec::new(),
            node_props: Vec::new(),
            edge_props: Vec::new(),
            out_adj: BTreeSet::new(),
            in_adj: BTreeSet::new(),
            src_of: BTreeSet::new(),
            tgt_of: BTreeSet::new(),
            node_rows: 0,
            edge_rows: 0,
        };
        // Nodes have one label for their whole lifetime, so a dense id → label
        // map is enough to label edge endpoints.
        let mut label_of_node: Vec<Option<u32>> = vec![None; relations.num_nodes()];
        for (index, row) in relations.node_rows().iter().enumerate() {
            if !relations.is_node_row_live(index as u32) {
                continue;
            }
            schema.node_rows += 1;
            let label = intern(&mut schema.node_labels, &mut schema.node_props, &row.label);
            label_of_node[row.node.index()] = Some(label);
            note_props(&mut schema.node_props[label as usize], &row.props);
        }
        for (index, row) in relations.edge_rows().iter().enumerate() {
            if !relations.is_edge_row_live(index as u32) {
                continue;
            }
            schema.edge_rows += 1;
            let label = intern(&mut schema.edge_labels, &mut schema.edge_props, &row.label);
            note_props(&mut schema.edge_props[label as usize], &row.props);
            if let Some(src) = label_of_node[row.src.index()] {
                schema.out_adj.insert((src, label));
                schema.src_of.insert((label, src));
            }
            if let Some(tgt) = label_of_node[row.tgt.index()] {
                schema.in_adj.insert((tgt, label));
                schema.tgt_of.insert((label, tgt));
            }
        }
        schema
    }

    /// A label-free summary over the given domain: one abstract node, one
    /// abstract edge, full adjacency, every label/property filter assumed
    /// satisfiable.  Analysis against it is sound for *any* graph with this
    /// domain — it can only reason about object kinds and time.
    pub fn universal(domain: Interval) -> Self {
        SchemaSummary {
            exact: false,
            domain,
            node_labels: vec!["*".to_owned()],
            edge_labels: vec!["*".to_owned()],
            node_props: vec![Vec::new()],
            edge_props: vec![Vec::new()],
            out_adj: BTreeSet::from([(0, 0)]),
            in_adj: BTreeSet::from([(0, 0)]),
            src_of: BTreeSet::from([(0, 0)]),
            tgt_of: BTreeSet::from([(0, 0)]),
            node_rows: u128::MAX,
            edge_rows: u128::MAX,
        }
    }

    /// The temporal domain the summary was built for.
    pub fn domain(&self) -> Interval {
        self.domain
    }

    /// The domain width as a signed displacement bound: no two bound time
    /// points can be further apart.
    fn span(&self) -> i128 {
        (self.domain.end() - self.domain.start()) as i128
    }

    fn all_nodes(&self) -> AbsState {
        (0..self.node_labels.len() as u32).map(AbsObj::Node).collect()
    }

    fn hop(&self, obj: AbsObj, direction: HopDirection) -> impl Iterator<Item = AbsObj> + '_ {
        let (table, node_side): (&BTreeSet<(u32, u32)>, bool) = match (obj, direction) {
            (AbsObj::Node(_), HopDirection::Forward) => (&self.out_adj, false),
            (AbsObj::Node(_), HopDirection::Backward) => (&self.in_adj, false),
            (AbsObj::Edge(_), HopDirection::Forward) => (&self.tgt_of, true),
            (AbsObj::Edge(_), HopDirection::Backward) => (&self.src_of, true),
        };
        let key = match obj {
            AbsObj::Node(label) | AbsObj::Edge(label) => label,
        };
        table.range((key, 0)..=(key, u32::MAX)).map(move |&(_, other)| {
            if node_side {
                AbsObj::Node(other)
            } else {
                AbsObj::Edge(other)
            }
        })
    }

    /// Whether an object of this abstract label can satisfy the kind, label
    /// and property parts of a filter (time is folded separately).
    fn passes(&self, obj: AbsObj, filter: &ObjFilter) -> bool {
        let (is_node, label) = match obj {
            AbsObj::Node(l) => (true, l),
            AbsObj::Edge(l) => (false, l),
        };
        if filter.require_node.is_some_and(|required| required != is_node) {
            return false;
        }
        if !self.exact {
            return true;
        }
        let (labels, props) = if is_node {
            (&self.node_labels, &self.node_props[label as usize])
        } else {
            (&self.edge_labels, &self.edge_props[label as usize])
        };
        if filter.label.as_ref().is_some_and(|required| required != &labels[label as usize]) {
            return false;
        }
        filter.props.iter().all(|(name, value)| props.iter().any(|(p, v)| p == name && v == value))
    }
}

fn intern(labels: &mut Vec<String>, props: &mut Vec<Vec<(String, Value)>>, label: &str) -> u32 {
    match labels.iter().position(|l| l == label) {
        Some(index) => index as u32,
        None => {
            labels.push(label.to_owned());
            props.push(Vec::new());
            (labels.len() - 1) as u32
        }
    }
}

fn note_props(seen: &mut Vec<(String, Value)>, props: &[(std::sync::Arc<str>, Value)]) {
    for (name, value) in props {
        if !seen.iter().any(|(p, v)| p.as_str() == name.as_ref() && v == value) {
            seen.push((name.as_ref().to_owned(), value.clone()));
        }
    }
}

/// One abstract object: a node or edge known only by its label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum AbsObj {
    Node(u32),
    Edge(u32),
}

type AbsState = BTreeSet<AbsObj>;

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// The kind of semantic defect (or note) the analyzer found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// The plan's abstract state emptied: no concrete execution can produce a
    /// chain, so the plan relates nothing on this graph.
    EmptyPlan,
    /// A closure alternative that can never fire from any reachable abstract
    /// state; pruning it cannot change any answer.
    DeadAlternative,
    /// An admissible-lag window emptied: the temporal displacements demanded
    /// by the links (or by one closure alternative) do not fit the domain.
    InfeasibleBand,
    /// A closure whose iteration count the analysis could not bound; live
    /// maintenance must take its conservative full-refresh path.  A note, not
    /// an error: reachability queries are legitimately unbounded.
    UnboundedClosure,
}

impl DiagnosticKind {
    /// Short stable tag used in rendered diagnostics (`[empty-plan]` …).
    pub fn tag(self) -> &'static str {
        match self {
            DiagnosticKind::EmptyPlan => "empty-plan",
            DiagnosticKind::DeadAlternative => "dead-alternative",
            DiagnosticKind::InfeasibleBand => "infeasible-band",
            DiagnosticKind::UnboundedClosure => "unbounded-closure",
        }
    }

    /// Whether this kind indicates a defect ([`Severity::Error`]) or merely
    /// documents a property ([`Severity::Note`]).
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticKind::UnboundedClosure => Severity::Note,
            _ => Severity::Error,
        }
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The plan (or part of it) provably relates nothing — worth failing a
    /// lint run over a query corpus.
    Error,
    /// An informational property of the plan.
    Note,
}

/// One semantic finding, with plan-path provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Index of the plan within the analyzed [`PlanSet`] (`None` when a single
    /// [`EnginePlan`] was analyzed on its own).
    pub plan: Option<usize>,
    /// Where in the plan the finding sits (`"segment 1, op 2"`, `"link 0,
    /// alternative 1"`, …).
    pub location: String,
    /// What was found.
    pub kind: DiagnosticKind,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// The severity of this diagnostic (determined by its kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.plan {
            Some(p) => {
                write!(f, "plan {p}, {}: [{}] {}", self.location, self.kind.tag(), self.message)
            }
            None => write!(f, "{}: [{}] {}", self.location, self.kind.tag(), self.message),
        }
    }
}

// ---------------------------------------------------------------------------
// Bounds
// ---------------------------------------------------------------------------

/// Sound static execution bounds for one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanBounds {
    /// Upper bound on the structural hops any chain of this plan traverses,
    /// or `None` when a closure's iteration count could not be bounded.  This
    /// generalises [`super::audit::hop_depth`]: a closure whose every
    /// alternative must advance time can iterate at most `domain span` times,
    /// which makes mixed structural/temporal reachability plans finitely
    /// seeded for live maintenance.
    pub max_hops: Option<usize>,
    /// Coarse upper bound on the Step-1/2 chain count (saturating): the seed
    /// count times a per-operator fan-out factor bounded by the relation
    /// sizes.  Orders of magnitude loose by design — its job is to be
    /// *provably* an upper bound, which `tests/plan_optimizer.rs` pins.
    pub max_rows: u128,
}

impl PlanBounds {
    fn empty() -> Self {
        PlanBounds { max_hops: Some(0), max_rows: 0 }
    }

    fn unknown() -> Self {
        PlanBounds { max_hops: None, max_rows: u128::MAX }
    }
}

// ---------------------------------------------------------------------------
// Analysis result
// ---------------------------------------------------------------------------

/// The result of [`analyze`]: diagnostics, per-plan bounds, and the optimized
/// plan set the findings justify.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Every finding, in plan order.
    pub diagnostics: Vec<Diagnostic>,
    /// Bounds per *original* plan (statically-empty plans get zero bounds).
    pub bounds: Vec<PlanBounds>,
    /// The rewritten plan set: empty plans dropped, dead alternatives pruned,
    /// closure windows tightened.  Output-equivalent to the input on the
    /// analyzed graph.
    pub optimized: PlanSet,
    /// Plans dropped as statically empty.
    pub pruned_plans: usize,
    /// Closure alternatives pruned as dead or band-infeasible.
    pub pruned_alternatives: usize,
    /// Closures whose `[n, m]` window the pass tightened.
    pub tightened_closures: usize,
}

impl Analysis {
    /// True if any diagnostic is an error (statically-empty plan, dead
    /// alternative or infeasible band).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity() == Severity::Error)
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Error)
    }
}

/// Analyzes every plan of a set against a schema summary.
pub fn analyze(plan_set: &PlanSet, schema: &SchemaSummary) -> Analysis {
    let mut pass = Pass::new(schema);
    let mut bounds = Vec::with_capacity(plan_set.plans.len());
    let mut optimized_plans = Vec::with_capacity(plan_set.plans.len());
    let mut diagnostics = Vec::new();
    let mut pruned_plans = 0usize;
    for (index, plan) in plan_set.plans.iter().enumerate() {
        let (rewritten, plan_bounds) = pass.analyze_plan(plan);
        diagnostics.extend(pass.diagnostics.drain(..).map(|mut d| {
            d.plan = Some(index);
            d
        }));
        bounds.push(plan_bounds);
        match rewritten {
            Some(plan) => optimized_plans.push(plan),
            None => pruned_plans += 1,
        }
    }
    Analysis {
        diagnostics,
        bounds,
        optimized: PlanSet { plans: optimized_plans, ..plan_set.clone() },
        pruned_plans,
        pruned_alternatives: pass.pruned_alternatives,
        tightened_closures: pass.tightened_closures,
    }
}

/// Convenience: summarises `graph` and returns the optimized plan set.  This
/// is what the executor applies behind
/// [`ExecutionOptions::optimize`](crate::executor::ExecutionOptions::optimize).
pub fn optimized_for(plan_set: &PlanSet, graph: &GraphRelations) -> PlanSet {
    analyze(plan_set, &SchemaSummary::of(graph)).optimized
}

/// Graph-independent bounds for a single plan over a domain, via the
/// [`SchemaSummary::universal`] schema.  Live maintenance caches this per
/// registered plan (recomputing when the domain grows, since the closure
/// iteration bound depends on the domain span).
pub fn static_bounds(plan: &EnginePlan, domain: Interval) -> PlanBounds {
    let schema = SchemaSummary::universal(domain);
    let mut pass = Pass::new(&schema);
    let (_, bounds) = pass.analyze_plan(plan);
    bounds
}

// ---------------------------------------------------------------------------
// Band arithmetic (1-D Helly composition on TimeLag windows)
// ---------------------------------------------------------------------------

fn cap(x: i128) -> i128 {
    x.clamp(-INF, INF)
}

fn band(lo: i128, hi: i128) -> TimeLag {
    TimeLag { lo: cap(lo), hi: cap(hi) }
}

fn band_add(a: TimeLag, b: TimeLag) -> TimeLag {
    band(a.lo.saturating_add(b.lo), a.hi.saturating_add(b.hi))
}

fn band_hull(a: TimeLag, b: TimeLag) -> TimeLag {
    band(a.lo.min(b.lo), a.hi.max(b.hi))
}

/// The hull of `k · w` over `k ∈ [min, max]` (`max = None` meaning unbounded):
/// the displacement window of iterating a body with per-iteration window `w`.
fn band_scale(w: TimeLag, min: u32, max: Option<u32>) -> TimeLag {
    let kmin = min as i128;
    let lo = if w.lo >= 0 {
        cap(w.lo.saturating_mul(kmin))
    } else {
        match max {
            Some(m) => cap(w.lo.saturating_mul(m as i128)),
            None => -INF,
        }
    };
    let hi = if w.hi <= 0 {
        cap(w.hi.saturating_mul(kmin))
    } else {
        match max {
            Some(m) => cap(w.hi.saturating_mul(m as i128)),
            None => INF,
        }
    };
    band(lo, hi)
}

/// The signed displacement window of a single shift.
fn shift_band(shift: &Shift) -> TimeLag {
    if shift.forward {
        band(shift.min as i128, shift.max.map_or(INF, |m| m as i128))
    } else {
        band(-shift.max.map_or(INF, |m| m as i128), -(shift.min as i128))
    }
}

/// Advances an absolute time window by a displacement band, clamped to the
/// domain.  `None` means no time point survives.
fn apply_band(window: Interval, w: TimeLag, domain: Interval) -> Option<Interval> {
    let lo = (window.start() as i128).saturating_add(w.lo).max(domain.start() as i128);
    let hi = (window.end() as i128).saturating_add(w.hi).min(domain.end() as i128);
    if lo > hi {
        None
    } else {
        Some(Interval::of(lo as u64, hi as u64))
    }
}

fn render_band(w: TimeLag) -> String {
    let show = |x: i128, unbounded: &str| {
        if x.abs() >= INF {
            unbounded.to_owned()
        } else {
            x.to_string()
        }
    };
    format!("[{}, {}]", show(w.lo, "-inf"), show(w.hi, "+inf"))
}

// ---------------------------------------------------------------------------
// The analysis pass
// ---------------------------------------------------------------------------

struct Pass<'a> {
    schema: &'a SchemaSummary,
    diagnostics: Vec<Diagnostic>,
    pruned_alternatives: usize,
    tightened_closures: usize,
}

/// What a closure analysis concluded.
struct ClosureOutcome {
    /// Over-approximation of the states after the closure; empty means the
    /// closure (and with it the plan) relates nothing here.
    exit: AbsState,
    /// The rewritten operator: `None` when the closure reduces to the
    /// identity (tightened to `[0, 0]`) and should be removed entirely.
    rewritten: Option<ClosureOp>,
    /// Plan-level displacement window contributed by the closure.
    window: TimeLag,
    /// Structural hops per chain through the whole closure, if bounded.
    hops: Option<usize>,
}

impl<'a> Pass<'a> {
    fn new(schema: &'a SchemaSummary) -> Self {
        Pass { schema, diagnostics: Vec::new(), pruned_alternatives: 0, tightened_closures: 0 }
    }

    fn diag(&mut self, location: &str, kind: DiagnosticKind, message: String) {
        self.diagnostics.push(Diagnostic {
            plan: None,
            location: location.to_owned(),
            kind,
            message,
        });
    }

    /// Analyzes (and rewrites) a single plan.  Returns `None` instead of a
    /// rewritten plan when the plan is statically empty.
    fn analyze_plan(&mut self, plan: &EnginePlan) -> (Option<EnginePlan>, PlanBounds) {
        // Malformed plans (wrong link arity) are the audit's business; the
        // analyzer stays conservative and claims nothing about them.
        if plan.segments.is_empty() || plan.links.len() + 1 != plan.segments.len() {
            return (Some(plan.clone()), PlanBounds::unknown());
        }
        let domain = self.schema.domain;
        let mut state = self.schema.all_nodes();
        let mut window = domain;
        let mut hops: Option<usize> = Some(0);
        let mut rows: u128 = self.schema.node_rows;
        let total_rows = self.schema.node_rows.saturating_add(self.schema.edge_rows);
        let mut segments: Vec<Segment> = Vec::with_capacity(plan.segments.len());
        let mut links: Vec<TemporalLink> = Vec::with_capacity(plan.links.len());

        for (seg_index, segment) in plan.segments.iter().enumerate() {
            if seg_index > 0 {
                let location = format!("link {}", seg_index - 1);
                let link_band = match &plan.links[seg_index - 1] {
                    TemporalLink::Shift(shift) => {
                        rows = rows.saturating_mul(total_rows);
                        links.push(TemporalLink::Shift(*shift));
                        shift_band(shift)
                    }
                    TemporalLink::Closure(closure) => {
                        let outcome = self.closure_pass(closure, &state, &location, true);
                        if outcome.exit.is_empty() {
                            return (None, PlanBounds::empty());
                        }
                        state = outcome.exit;
                        hops = add_hops(hops, outcome.hops);
                        let lag_pairs = (2 * self.schema.span() as u128 + 2).saturating_mul(2);
                        rows = rows
                            .saturating_mul(total_rows)
                            .saturating_mul(lag_pairs)
                            .saturating_mul(lag_pairs);
                        match outcome.rewritten {
                            Some(rewritten) => links.push(TemporalLink::Closure(rewritten)),
                            // Tightened to [0, 0]: the identity on (row, time),
                            // i.e. a zero-step shift.
                            None => links.push(TemporalLink::Shift(Shift {
                                forward: true,
                                min: 0,
                                max: Some(0),
                            })),
                        }
                        outcome.window
                    }
                };
                window = match apply_band(window, link_band, domain) {
                    Some(next) => next,
                    None => {
                        self.diag(
                            &format!("link {}", seg_index - 1),
                            DiagnosticKind::InfeasibleBand,
                            format!(
                                "the admissible lag window {} empties the reachable \
                                 time range: no arrival time inside the domain {:?} \
                                 satisfies the accumulated shift bounds",
                                render_band(link_band),
                                domain
                            ),
                        );
                        return (None, PlanBounds::empty());
                    }
                };
            }

            // The segment's own time constraints: every op of a segment is
            // evaluated at the same snapshot time, so the constraints of all
            // its filters intersect into one window.
            let mut local = Some(domain);
            for op in &segment.ops {
                if let MicroOp::Filter(filter) = op {
                    local = local.and_then(|w| filter.clamp_interval(w));
                }
            }
            let location = format!("segment {seg_index}");
            let Some(local) = local else {
                self.diag(
                    &location,
                    DiagnosticKind::EmptyPlan,
                    "the segment's time constraints admit no time point of the \
                     domain (constant-folded): the plan relates nothing"
                        .to_owned(),
                );
                return (None, PlanBounds::empty());
            };
            window = match window.intersect(&local) {
                Some(next) => next,
                None => {
                    self.diag(
                        &location,
                        DiagnosticKind::InfeasibleBand,
                        format!(
                            "the segment's time constraints restrict its snapshot to \
                             {local:?}, but the lag windows of the preceding links \
                             only reach {window:?}: no consistent assignment of \
                             snapshot times exists"
                        ),
                    );
                    return (None, PlanBounds::empty());
                }
            };

            let mut ops: Vec<MicroOp> = Vec::with_capacity(segment.ops.len());
            for (op_index, op) in segment.ops.iter().enumerate() {
                let location = format!("segment {seg_index}, op {op_index}");
                match op {
                    MicroOp::Hop(direction) => {
                        state = state
                            .iter()
                            .flat_map(|&obj| self.schema.hop(obj, *direction))
                            .collect();
                        hops = add_hops(hops, Some(1));
                        rows = rows.saturating_mul(total_rows);
                        ops.push(op.clone());
                    }
                    MicroOp::Filter(filter) => {
                        state = self.filter_state(&state, filter);
                        ops.push(op.clone());
                    }
                    MicroOp::Bind(_) => ops.push(op.clone()),
                    MicroOp::Closure(closure) => {
                        let outcome = self.closure_pass(closure, &state, &location, false);
                        if outcome.exit.is_empty() {
                            return (None, PlanBounds::empty());
                        }
                        state = outcome.exit;
                        hops = add_hops(hops, outcome.hops);
                        rows = rows
                            .saturating_mul(total_rows)
                            .saturating_mul(self.schema.span() as u128 + 1);
                        if let Some(rewritten) = outcome.rewritten {
                            ops.push(MicroOp::Closure(rewritten));
                        }
                    }
                }
                if state.is_empty() {
                    self.diag(
                        &location,
                        DiagnosticKind::EmptyPlan,
                        "no object of the graph schema survives this operation: the \
                         label-alphabet reachability analysis proves the plan empty"
                            .to_owned(),
                    );
                    return (None, PlanBounds::empty());
                }
            }
            segments.push(Segment { ops });
        }
        (Some(EnginePlan { segments, links }), PlanBounds { max_hops: hops, max_rows: rows })
    }

    fn filter_state(&self, state: &AbsState, filter: &ObjFilter) -> AbsState {
        // Constant-fold the time constraints against the domain: `time < 0`
        // and friends kill every object.
        if filter.clamp_interval(self.schema.domain).is_none() {
            return AbsState::new();
        }
        state.iter().copied().filter(|&obj| self.schema.passes(obj, filter)).collect()
    }

    /// Analyzes one closure (a segment `MicroOp::Closure` or a
    /// `TemporalLink::Closure`), pruning dead alternatives and tightening the
    /// iteration window where the abstract semantics justifies it.
    fn closure_pass(
        &mut self,
        closure: &ClosureOp,
        entry: &AbsState,
        location: &str,
        is_link: bool,
    ) -> ClosureOutcome {
        let span = self.schema.span();
        // Per-alternative displacement windows (the body's shifts composed).
        let windows: Vec<TimeLag> =
            closure.alternatives.iter().map(|alt| self.alt_band(alt)).collect();
        // Reachable abstract states at *any* iteration: the collecting
        // fixpoint of the (monotone) one-iteration transformer.
        let reach = self.collecting_reach(entry, &closure.alternatives);
        let mut live = Vec::with_capacity(closure.alternatives.len());
        for (index, alternative) in closure.alternatives.iter().enumerate() {
            let structurally_live = !self.apply_alt(&reach, alternative).is_empty();
            let band_feasible = windows[index].lo <= span && windows[index].hi >= -span;
            if !structurally_live {
                self.diag(
                    &format!("{location}, alternative {index}"),
                    DiagnosticKind::DeadAlternative,
                    "the alternative matches no object reachable at any iteration \
                     (label-alphabet reachability): it can never fire and pruning it \
                     cannot change any answer"
                        .to_owned(),
                );
            } else if !band_feasible {
                self.diag(
                    &format!("{location}, alternative {index}"),
                    DiagnosticKind::InfeasibleBand,
                    format!(
                        "one application of the alternative displaces time by \
                         {}, which cannot fit inside a domain of width {span}: \
                         the alternative can never fire",
                        render_band(windows[index])
                    ),
                );
            }
            live.push(structurally_live && band_feasible);
        }
        let live_alts: Vec<Vec<ClosureStep>> = closure
            .alternatives
            .iter()
            .zip(&live)
            .filter(|(_, &l)| l)
            .map(|(alt, _)| alt.clone())
            .collect();
        let live_windows: Vec<TimeLag> =
            windows.iter().zip(&live).filter(|(_, &l)| l).map(|(w, _)| *w).collect();

        // All alternatives dead: k ≥ 1 iterations produce nothing, so the
        // closure is the identity if zero iterations are allowed and empty
        // otherwise.
        if live_alts.is_empty() {
            return if closure.min == 0 {
                ClosureOutcome {
                    exit: entry.clone(),
                    rewritten: None,
                    window: TimeLag::zero(),
                    hops: Some(0),
                }
            } else {
                self.diag(
                    location,
                    DiagnosticKind::EmptyPlan,
                    format!(
                        "every alternative of the closure is dead but at least {} \
                         iteration(s) are required: the closure relates nothing",
                        closure.min
                    ),
                );
                ClosureOutcome {
                    exit: AbsState::new(),
                    rewritten: None,
                    window: TimeLag::zero(),
                    hops: Some(0),
                }
            };
        }

        // Tightening 1: per-iteration emptiness.  Simulate the abstract state
        // iteration by iteration; once it empties it stays empty (the
        // transformer is monotone), so max can shrink to the last non-empty
        // round.
        let mut max = closure.max;
        let sim_cap =
            closure.max.map_or(MAX_SIMULATED_ITERATIONS, |m| m.min(MAX_SIMULATED_ITERATIONS));
        let mut died_at: Option<u32> = None;
        let mut sim = entry.clone();
        for k in 1..=sim_cap {
            let next: AbsState = live_alts
                .iter()
                .map(|alt| self.apply_alt(&sim, alt))
                .fold(AbsState::new(), |a, b| a.union(&b).copied().collect());
            if next.is_empty() {
                died_at = Some(k);
                break;
            }
            if next == sim {
                break;
            }
            sim = next;
        }
        if let Some(k) = died_at {
            if k <= closure.min {
                self.diag(
                    location,
                    DiagnosticKind::EmptyPlan,
                    format!(
                        "the abstract state empties after {k} iteration(s) but the \
                         closure requires at least {}: it relates nothing",
                        closure.min
                    ),
                );
                return ClosureOutcome {
                    exit: AbsState::new(),
                    rewritten: None,
                    window: TimeLag::zero(),
                    hops: Some(0),
                };
            }
            max = Some(max.map_or(k - 1, |m| m.min(k - 1)));
        }

        // Tightening 2: every live alternative advances time in the same
        // direction by at least one step, so the iteration count is bounded by
        // the domain span (this is what makes `(FWD/…/NEXT)*` finite).
        let hull = live_windows.iter().copied().fold(live_windows[0], band_hull);
        let advance = if hull.lo >= 1 {
            Some(hull.lo)
        } else if hull.hi <= -1 {
            Some(-hull.hi)
        } else {
            None
        };
        if let Some(step) = advance {
            let by_span = (span / step) as u32;
            if by_span < closure.min {
                self.diag(
                    location,
                    DiagnosticKind::InfeasibleBand,
                    format!(
                        "every iteration displaces time by at least {step}, so at most \
                         {by_span} iteration(s) fit inside a domain of width {span} — \
                         fewer than the required minimum of {}",
                        closure.min
                    ),
                );
                return ClosureOutcome {
                    exit: AbsState::new(),
                    rewritten: None,
                    window: TimeLag::zero(),
                    hops: Some(0),
                };
            }
            max = Some(max.map_or(by_span, |m| m.min(by_span)));
        }
        if max.is_none() {
            self.diag(
                location,
                DiagnosticKind::UnboundedClosure,
                "the closure's iteration count has no static bound (its body can \
                 repeat without net time displacement); live maintenance falls back \
                 to full refresh for this plan"
                    .to_owned(),
            );
        }

        // Assemble the rewritten operator, keeping it audit-clean: never emit
        // degenerate `[0,0]` / `[1,1]` bounds (bump the window by one — sound,
        // since the extra iteration provably contributes nothing), and never
        // let pruning strip a temporal link of its time-crossing alternatives.
        let tightened = max != closure.max;
        let pruned = live_alts.len() != closure.alternatives.len();
        let mut rewritten_alts = if pruned { live_alts } else { closure.alternatives.clone() };
        if is_link
            && pruned
            && !(ClosureOp { alternatives: rewritten_alts.clone(), min: closure.min, max })
                .is_time_crossing()
        {
            // Pruning would demote the link to a structural closure, which the
            // executor cannot run as a link; keep the original body.
            rewritten_alts = closure.alternatives.clone();
        } else if pruned {
            self.pruned_alternatives += closure.alternatives.len() - rewritten_alts.len();
        }
        let mut final_max = max;
        if let Some(m) = final_max {
            if m == closure.min && m <= 1 && closure.max != Some(m) {
                // Would be degenerate; widen by one unless the original was
                // already this tight.
                final_max = Some(m + 1).min(closure.max.or(Some(m + 1)));
            }
        }
        if final_max == Some(0) && closure.min == 0 {
            // The whole closure is the identity.
            if tightened {
                self.tightened_closures += 1;
            }
            return ClosureOutcome {
                exit: entry.clone(),
                rewritten: None,
                window: TimeLag::zero(),
                hops: Some(0),
            };
        }
        if tightened && final_max != closure.max {
            self.tightened_closures += 1;
        }

        // Exit state: reachable states at any admissible iteration count
        // (over-approximated by the collecting fixpoint, which includes the
        // entry — harmless when min ≥ 1).
        let per_iter_hops = rewritten_alts
            .iter()
            .map(|alt| self.alt_hops(alt))
            .try_fold(0usize, |acc, hops| hops.map(|h| acc.max(h)));
        let hops = match (per_iter_hops, final_max) {
            (Some(0), _) => Some(0),
            (Some(h), Some(m)) => Some(h.saturating_mul(m as usize)),
            _ => None,
        };
        ClosureOutcome {
            exit: reach,
            rewritten: Some(ClosureOp {
                alternatives: rewritten_alts,
                min: closure.min,
                max: final_max,
            }),
            window: band_scale(hull, closure.min, final_max),
            hops,
        }
    }

    /// The collecting fixpoint `R = entry ∪ F(R)` of the one-iteration
    /// transformer: every abstract state reachable at any iteration count.
    fn collecting_reach(&self, entry: &AbsState, alternatives: &[Vec<ClosureStep>]) -> AbsState {
        let mut reach = entry.clone();
        loop {
            let mut next = reach.clone();
            for alternative in alternatives {
                next.extend(self.apply_alt(&reach, alternative));
            }
            if next == reach {
                return reach;
            }
            reach = next;
        }
    }

    fn apply_alt(&self, state: &AbsState, steps: &[ClosureStep]) -> AbsState {
        let mut current = state.clone();
        for step in steps {
            if current.is_empty() {
                return current;
            }
            current = match step {
                ClosureStep::Shift(shift) => {
                    if shift.is_unsatisfiable() {
                        AbsState::new()
                    } else {
                        current
                    }
                }
                ClosureStep::Micro(MicroOp::Hop(direction)) => {
                    current.iter().flat_map(|&obj| self.schema.hop(obj, *direction)).collect()
                }
                ClosureStep::Micro(MicroOp::Filter(filter)) => self.filter_state(&current, filter),
                ClosureStep::Micro(MicroOp::Bind(_)) => current,
                ClosureStep::Micro(MicroOp::Closure(inner)) => {
                    // Nested closures are not rewritten here; their reach is
                    // over-approximated by the collecting fixpoint.
                    if inner.max.is_some_and(|m| m < inner.min) {
                        AbsState::new()
                    } else if inner.min == 0 {
                        self.collecting_reach(&current, &inner.alternatives)
                    } else {
                        let reach = self.collecting_reach(&current, &inner.alternatives);
                        let mut after = AbsState::new();
                        for alternative in &inner.alternatives {
                            after.extend(self.apply_alt(&reach, alternative));
                        }
                        after
                    }
                }
            };
        }
        current
    }

    /// The displacement window of one traversal of an alternative's body.
    fn alt_band(&self, steps: &[ClosureStep]) -> TimeLag {
        let mut total = TimeLag::zero();
        for step in steps {
            let w = match step {
                ClosureStep::Shift(shift) => shift_band(shift),
                ClosureStep::Micro(MicroOp::Closure(inner)) => {
                    let inner_windows: Vec<TimeLag> =
                        inner.alternatives.iter().map(|alt| self.alt_band(alt)).collect();
                    match inner_windows.split_first() {
                        None => TimeLag::zero(),
                        Some((&first, rest)) => {
                            let hull = rest.iter().copied().fold(first, band_hull);
                            band_scale(hull, inner.min, inner.max)
                        }
                    }
                }
                ClosureStep::Micro(_) => TimeLag::zero(),
            };
            total = band_add(total, w);
        }
        total
    }

    /// Structural hops of one traversal of an alternative's body, if bounded.
    fn alt_hops(&self, steps: &[ClosureStep]) -> Option<usize> {
        let mut total = 0usize;
        for step in steps {
            match step {
                ClosureStep::Micro(MicroOp::Hop(_)) => total += 1,
                ClosureStep::Micro(MicroOp::Closure(inner)) => {
                    let per_iter = inner
                        .alternatives
                        .iter()
                        .map(|alt| self.alt_hops(alt))
                        .try_fold(0usize, |acc, h| h.map(|h| acc.max(h)))?;
                    if per_iter > 0 {
                        total = total.saturating_add(per_iter.saturating_mul(inner.max? as usize));
                    }
                }
                ClosureStep::Micro(_) | ClosureStep::Shift(_) => {}
            }
        }
        Some(total)
    }
}

fn add_hops(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    Some(a?.saturating_add(b?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use tgraph::ItpgBuilder;
    use trpq::parser::parse_match;

    fn graph() -> GraphRelations {
        let mut b = ItpgBuilder::new();
        let ann = b.add_node("ann", "Person").unwrap();
        let bob = b.add_node("bob", "Person").unwrap();
        let lab = b.add_node("lab", "Room").unwrap();
        let m = b.add_edge("m", "meets", ann, bob).unwrap();
        let v = b.add_edge("v", "visits", ann, lab).unwrap();
        let all = Interval::of(0, 10);
        for node in [ann, bob, lab] {
            b.add_existence(node, all).unwrap();
        }
        b.add_existence(m, all).unwrap();
        b.add_existence(v, all).unwrap();
        b.set_property(ann, "risk", "high", all).unwrap();
        b.set_property(bob, "risk", "low", all).unwrap();
        let itpg = b.domain(all).build().unwrap();
        GraphRelations::from_itpg(&itpg)
    }

    fn analyze_text(text: &str) -> Analysis {
        let plan_set = compile(&parse_match(text).unwrap()).unwrap();
        analyze(&plan_set, &SchemaSummary::of(&graph()))
    }

    #[test]
    fn satisfiable_queries_have_no_errors() {
        for text in [
            "MATCH (x:Person {risk = 'high'})-[z:meets]->(y:Person) ON g",
            "MATCH (x:Person)-/FWD/:visits/FWD/-(y:Room) ON g",
            "MATCH (x:Person)-/NEXT[0,5]/-(y) ON g",
        ] {
            let analysis = analyze_text(text);
            assert!(!analysis.has_errors(), "{text}: {:?}", analysis.diagnostics);
            assert_eq!(analysis.pruned_plans, 0, "{text}");
        }
    }

    #[test]
    fn unknown_labels_prove_the_plan_empty() {
        let analysis = analyze_text("MATCH (x:Robot)-[z:meets]->(y) ON g");
        assert!(analysis.has_errors());
        assert_eq!(analysis.pruned_plans, 1);
        assert!(analysis.optimized.plans.is_empty());
        let d = &analysis.diagnostics[0];
        assert_eq!(d.kind, DiagnosticKind::EmptyPlan);
        assert_eq!(d.plan, Some(0));
        assert!(d.location.starts_with("segment 0"), "{}", d.location);
    }

    #[test]
    fn schema_adjacency_rejects_impossible_hops() {
        // No edge points *into* a Person from a Room-visiting edge pattern:
        // visits goes Person → Room, so Room-[visits]->Person is empty.
        let analysis = analyze_text("MATCH (x:Room)-[z:visits]->(y:Person) ON g");
        assert!(analysis.has_errors(), "{:?}", analysis.diagnostics);
        assert!(analysis.optimized.plans.is_empty());
    }

    #[test]
    fn property_values_are_checked_against_the_schema() {
        let analysis = analyze_text("MATCH (x:Person {risk = 'radioactive'}) ON g");
        assert!(analysis.has_errors());
        // A value that does occur is fine.
        let ok = analyze_text("MATCH (x:Person {risk = 'low'}) ON g");
        assert!(!ok.has_errors(), "{:?}", ok.diagnostics);
    }

    #[test]
    fn time_constraints_constant_fold_against_the_domain() {
        let analysis = analyze_text("MATCH (x:Person {time > '10'}) ON g");
        assert!(analysis.has_errors(), "{:?}", analysis.diagnostics);
        assert_eq!(analysis.diagnostics[0].kind, DiagnosticKind::EmptyPlan);
        let ok = analyze_text("MATCH (x:Person {time = '10'}) ON g");
        assert!(!ok.has_errors());
    }

    #[test]
    fn infeasible_shift_bands_are_flagged() {
        // The domain is 11 points wide; a shift of at least 20 cannot land.
        let analysis = analyze_text("MATCH (x:Person)-/NEXT[20,30]/-(y) ON g");
        assert!(analysis.has_errors());
        let d = &analysis.diagnostics[0];
        assert_eq!(d.kind, DiagnosticKind::InfeasibleBand);
        assert!(d.location.starts_with("link 0"), "{}", d.location);
        assert!(analysis.optimized.plans.is_empty());
    }

    #[test]
    fn contradictory_segment_times_are_an_infeasible_band() {
        // Segment 0 pinned at time 2, NEXT[5, _] forward, segment 1 pinned at
        // time 3 — unreachable.
        let analysis = analyze_text("MATCH (x {time = '2'})-/NEXT[5,8]/-(y {time = '3'}) ON g");
        assert!(analysis.has_errors(), "{:?}", analysis.diagnostics);
        assert_eq!(analysis.diagnostics[0].kind, DiagnosticKind::InfeasibleBand);
    }

    #[test]
    fn dead_closure_alternatives_are_pruned() {
        let analysis = analyze_text(
            "MATCH (x:Person)-/(FWD/:meets/FWD + FWD/:teleports/FWD)*/-(y:Person) ON g",
        );
        assert!(
            analysis.diagnostics.iter().any(|d| d.kind == DiagnosticKind::DeadAlternative),
            "{:?}",
            analysis.diagnostics
        );
        assert_eq!(analysis.pruned_alternatives, 1);
        assert_eq!(analysis.optimized.plans.len(), 1);
        // The surviving closure has exactly one alternative.
        let seg = &analysis.optimized.plans[0].segments[0];
        let closure = seg
            .ops
            .iter()
            .find_map(|op| match op {
                MicroOp::Closure(c) => Some(c),
                _ => None,
            })
            .expect("closure survives");
        assert_eq!(closure.alternatives.len(), 1);
    }

    #[test]
    fn unbounded_structural_closures_are_noted_not_errored() {
        let analysis = analyze_text("MATCH (x:Person)-/(FWD/:meets/FWD)*/-(y:Person) ON g");
        assert!(!analysis.has_errors(), "{:?}", analysis.diagnostics);
        assert!(analysis.diagnostics.iter().any(|d| d.kind == DiagnosticKind::UnboundedClosure));
        assert_eq!(analysis.bounds[0].max_hops, None);
    }

    #[test]
    fn time_advancing_closures_are_bounded_by_the_span() {
        // Every iteration takes NEXT at least once, so at most span = 10
        // iterations fit; the plan becomes finitely seeded.
        let analysis = analyze_text("MATCH (x:Person)-/(FWD/:meets/FWD/NEXT)*/-(y) ON g");
        assert!(!analysis.has_errors(), "{:?}", analysis.diagnostics);
        assert!(analysis.tightened_closures >= 1);
        assert!(
            !analysis.diagnostics.iter().any(|d| d.kind == DiagnosticKind::UnboundedClosure),
            "{:?}",
            analysis.diagnostics
        );
        // 2 hops per iteration × at most 10 iterations.
        assert_eq!(analysis.bounds[0].max_hops, Some(20));
        let link = &analysis.optimized.plans[0].links[0];
        match link {
            TemporalLink::Closure(c) => assert_eq!(c.max, Some(10)),
            other => panic!("unexpected link {other:?}"),
        }
    }

    #[test]
    fn closures_that_must_overrun_the_domain_are_infeasible() {
        // Each iteration advances ≥ 5; 3 iterations need ≥ 15 > 10.
        let analysis = analyze_text("MATCH (x)-/(FWD/BWD/NEXT[5,6])[3,9]/-(y) ON g");
        assert!(analysis.has_errors(), "{:?}", analysis.diagnostics);
        assert!(analysis.diagnostics.iter().any(|d| d.kind == DiagnosticKind::InfeasibleBand));
        assert!(analysis.optimized.plans.is_empty());
    }

    #[test]
    fn static_bounds_are_domain_generic() {
        let plan_set =
            compile(&parse_match("MATCH (x)-/(FWD/:meets/FWD/NEXT)*/-(y) ON g").unwrap()).unwrap();
        let bounds = static_bounds(&plan_set.plans[0], Interval::of(0, 10));
        assert_eq!(bounds.max_hops, Some(20));
        // A wider domain weakens the bound but keeps it finite.
        let wide = static_bounds(&plan_set.plans[0], Interval::of(0, 1000));
        assert_eq!(wide.max_hops, Some(2000));
        // Purely structural reachability stays unbounded.
        let reach =
            compile(&parse_match("MATCH (x)-/(FWD/:meets/FWD)*/-(y) ON g").unwrap()).unwrap();
        assert_eq!(static_bounds(&reach.plans[0], Interval::of(0, 10)).max_hops, None);
        // Label filters are assumed satisfiable by the universal schema: no
        // diagnostics-driven pruning can happen without exact labels.
        let labelled =
            compile(&parse_match("MATCH (x:Ghost)-[e:phantom]->(y) ON g").unwrap()).unwrap();
        assert_eq!(static_bounds(&labelled.plans[0], Interval::of(0, 10)).max_hops, Some(2));
    }

    #[test]
    fn row_bounds_dominate_actual_row_counts() {
        let g = graph();
        let schema = SchemaSummary::of(&g);
        for text in [
            "MATCH (x:Person)-[z:meets]->(y:Person) ON g",
            "MATCH (x:Person)-/FWD/:visits/FWD/-(y:Room) ON g",
            "MATCH (x:Person)-/NEXT[0,5]/-(y) ON g",
        ] {
            let plan_set = compile(&parse_match(text).unwrap()).unwrap();
            let analysis = analyze(&plan_set, &schema);
            let output = crate::executor::execute(
                &plan_set,
                &g,
                &crate::executor::ExecutionOptions::sequential(),
            );
            assert!(
                (output.stats.interval_rows as u128) <= analysis.bounds[0].max_rows,
                "{text}: {} > {}",
                output.stats.interval_rows,
                analysis.bounds[0].max_rows
            );
        }
    }

    #[test]
    fn diagnostics_render_with_provenance() {
        let analysis = analyze_text("MATCH (x:Robot) ON g");
        let rendered = analysis.diagnostics[0].to_string();
        assert!(rendered.contains("plan 0"), "{rendered}");
        assert!(rendered.contains("[empty-plan]"), "{rendered}");
    }

    #[test]
    fn empty_plan_sets_analyze_cleanly() {
        let plan_set = compile(&parse_match("MATCH (x)-/NEXT[3,1]/-(y) ON g").unwrap()).unwrap();
        assert!(plan_set.plans.is_empty());
        let analysis = analyze(&plan_set, &SchemaSummary::of(&graph()));
        assert!(analysis.diagnostics.is_empty());
        assert!(analysis.optimized.plans.is_empty());
    }
}
