//! The layered answer surface of the engine: one [`Query`] entry point, three
//! [`AnswerMode`]s, and output-sensitive evaluation underneath the lazy two.
//!
//! Closure-heavy queries materialise binding tables that can dwarf the graph (the
//! Figure-7 output-size blowup of the paper), yet most callers page the first few
//! answers or only need per-pair reachability windows.  The [`Answers`] returned by
//! [`Query::run`] therefore comes in three shapes:
//!
//! * **[`AnswerMode::Materialized`]** (default) — the full [`BindingTable`], exactly
//!   what [`crate::executor::execute`] produces.
//! * **[`AnswerMode::Enumerate`]** — an [`AnswerCursor`]: a pull-based iterator that
//!   runs Steps 1–2 eagerly but performs Step-3 expansion lazily, one
//!   [`Chain`] batch at a time, k-way-merging the sorted per-chain runs so rows
//!   stream out in the table's canonical order with bounded delay and without ever
//!   buffering more than the chains whose outputs overlap the current position.
//! * **[`AnswerMode::Compact`]** — [`CompactAnswers`]: per-`(source, target)`
//!   coalesced [`IntervalSet`]s computed straight from the interval-level chains,
//!   skipping Step-3 entirely (the compressed answer sets of *Compact Answers to
//!   Temporal Path Queries*).
//!
//! The enumeration order and the compact projection are both pinned against the
//! materialised table by `tests/answer_modes.rs` on random graphs under every join
//! strategy.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use tgraph::{Interval, IntervalSet, Object};
use trpq::parser::MatchClause;
use trpq::queries::QueryId;
use trpq::Result;

use crate::bindings::{Binding, BindingTable, TimeRef};
use crate::chain::Chain;
use crate::executor::{execute_answers, ExecutionOptions, QueryOutput, QueryStats};
use crate::plan::{EnginePlan, PlanSet, TemporalLink};
use crate::relations::GraphRelations;
use crate::steps::expand::expand_chunk_sorted;
use dataflow::{kway_merge_dedup, JoinStrategy};

/// How [`Query::run`] shapes its answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnswerMode {
    /// Materialise the full binding table (Step 3 runs eagerly).
    #[default]
    Materialized,
    /// Skip Step 3: return per-`(source, target)` coalesced interval sets.
    Compact,
    /// Defer Step 3: return a cursor that expands chains on demand, streaming rows
    /// in the table's canonical order.
    Enumerate,
}

impl AnswerMode {
    /// The mode's name as it appears in perf reports (`full` / `compact` / `enum`).
    pub fn name(self) -> &'static str {
        match self {
            AnswerMode::Materialized => "full",
            AnswerMode::Compact => "compact",
            AnswerMode::Enumerate => "enum",
        }
    }
}

/// A compiled query plus the options to run it with — the single entry point that
/// replaces the deprecated `execute_clause` / `execute_text` / `execute_query`
/// trio.
///
/// ```
/// use engine::{GraphRelations, Query};
/// use tgraph::{Interval, ItpgBuilder};
///
/// let mut b = ItpgBuilder::new();
/// let ann = b.add_node("ann", "Person").unwrap();
/// b.add_existence(ann, Interval::of(1, 9)).unwrap();
/// let graph = GraphRelations::from_itpg(&b.build().unwrap());
///
/// let answers = Query::parse("MATCH (x:Person) ON g").unwrap().run(&graph);
/// assert_eq!(answers.stats().output_rows, 1);
/// assert_eq!(answers.table().unwrap().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Query {
    plan_set: PlanSet,
    options: ExecutionOptions,
}

impl Query {
    /// Parses and compiles a query given in the practical surface syntax.
    pub fn parse(text: &str) -> Result<Self> {
        Query::from_clause(&trpq::parser::parse_match(text)?)
    }

    /// Compiles a parsed `MATCH` clause.
    pub fn from_clause(clause: &MatchClause) -> Result<Self> {
        // Compilation happens before any `ExecutionOptions` exist, so the
        // compile span is gated on the default telemetry setting (on): it is
        // a cold path, entered once per query text.
        let _span = obs::Span::enter(
            ExecutionOptions::default()
                .telemetry
                .then(|| &crate::telemetry::metrics().span_compile),
        );
        Ok(Query::from_plan_set(crate::compiler::compile(clause)?))
    }

    /// One of the paper's benchmark queries Q1–Q12, from the precompiled plan table
    /// of [`crate::queries`].
    pub fn benchmark(id: QueryId) -> Self {
        Query::from_plan_set(crate::queries::plan_for(id))
    }

    /// Wraps an already-compiled plan set.
    pub fn from_plan_set(plan_set: PlanSet) -> Self {
        Query { plan_set, options: ExecutionOptions::default() }
    }

    /// Replaces the execution options wholesale.
    pub fn with_options(mut self, options: ExecutionOptions) -> Self {
        self.options = options;
        self
    }

    /// Pins the join strategy.
    pub fn with_strategy(mut self, strategy: JoinStrategy) -> Self {
        self.options = self.options.with_strategy(strategy);
        self
    }

    /// Selects the answer mode.
    pub fn with_mode(mut self, mode: AnswerMode) -> Self {
        self.options = self.options.with_mode(mode);
        self
    }

    /// The compiled plan set.
    pub fn plan_set(&self) -> &PlanSet {
        &self.plan_set
    }

    /// The options the query will run with.
    pub fn options(&self) -> &ExecutionOptions {
        &self.options
    }

    /// Runs the query over a graph, shaping the answers according to
    /// [`ExecutionOptions::answer_mode`].
    pub fn run(&self, graph: &GraphRelations) -> Answers {
        execute_answers(&self.plan_set, graph, &self.options)
    }
}

/// The answers of one query execution, in the shape selected by the
/// [`AnswerMode`], plus honest statistics.
#[derive(Debug)]
pub struct Answers {
    set: AnswerSet,
    base: QueryStats,
}

/// The mode-specific payload of an [`Answers`].
#[derive(Debug)]
pub enum AnswerSet {
    /// The materialised binding table.
    Table(BindingTable),
    /// Per-`(source, target)` coalesced interval answers.
    Compact(CompactAnswers),
    /// A lazy cursor over the binding table's canonical order.
    Cursor(AnswerCursor),
}

impl Answers {
    pub(crate) fn new(set: AnswerSet, base: QueryStats) -> Self {
        Answers { set, base }
    }

    /// The mode these answers were produced under.
    pub fn mode(&self) -> AnswerMode {
        match &self.set {
            AnswerSet::Table(_) => AnswerMode::Materialized,
            AnswerSet::Compact(_) => AnswerMode::Compact,
            AnswerSet::Cursor(_) => AnswerMode::Enumerate,
        }
    }

    /// Mode-aware statistics: `output_rows` is the table's row count when
    /// materialised, the number of `(source, target)` pairs for compact answers,
    /// and the number of rows yielded *so far* for a cursor (it grows as the
    /// cursor drains — lazy evaluation cannot know the total without doing the
    /// work).  `total_time` likewise covers only the work done eagerly: for the
    /// lazy modes that is Steps 1–2 plus answer construction, never Step 3.
    pub fn stats(&self) -> QueryStats {
        let mut stats = self.base;
        match &self.set {
            AnswerSet::Table(_) => {}
            AnswerSet::Compact(compact) => stats.output_rows = compact.num_pairs(),
            AnswerSet::Cursor(cursor) => {
                stats.output_rows = cursor.rows_yielded();
                // Keep the cursor's buffering high-water mark in the stats:
                // without this, the measurement was lost as soon as the
                // cursor was consumed or dropped mid-drain.
                stats.peak_buffered_rows = cursor.peak_buffered_rows();
            }
        }
        stats
    }

    /// The mode-specific payload.
    pub fn set(&self) -> &AnswerSet {
        &self.set
    }

    /// The binding table, if the mode was [`AnswerMode::Materialized`].
    pub fn table(&self) -> Option<&BindingTable> {
        match &self.set {
            AnswerSet::Table(table) => Some(table),
            _ => None,
        }
    }

    /// The compact answers, if the mode was [`AnswerMode::Compact`].
    pub fn compact(&self) -> Option<&CompactAnswers> {
        match &self.set {
            AnswerSet::Compact(compact) => Some(compact),
            _ => None,
        }
    }

    /// The cursor, if the mode was [`AnswerMode::Enumerate`].
    pub fn cursor_mut(&mut self) -> Option<&mut AnswerCursor> {
        match &mut self.set {
            AnswerSet::Cursor(cursor) => Some(cursor),
            _ => None,
        }
    }

    /// Consumes the answers, returning the binding table if materialised.
    pub fn into_table(self) -> Option<BindingTable> {
        match self.set {
            AnswerSet::Table(table) => Some(table),
            _ => None,
        }
    }

    /// Consumes the answers, returning the cursor if enumerating.
    pub fn into_cursor(self) -> Option<AnswerCursor> {
        match self.set {
            AnswerSet::Cursor(cursor) => Some(cursor),
            _ => None,
        }
    }

    /// Consumes the answers, returning the compact answer set if compact.
    pub fn into_compact(self) -> Option<CompactAnswers> {
        match self.set {
            AnswerSet::Compact(compact) => Some(compact),
            _ => None,
        }
    }

    /// Consumes materialised answers into the classic `{ table, stats }` output.
    pub fn into_output(self) -> Option<QueryOutput> {
        let stats = self.stats();
        self.into_table().map(|table| QueryOutput { table, stats })
    }
}

// ---------------------------------------------------------------------------
// Compact answers
// ---------------------------------------------------------------------------

/// Per-`(source, target)` coalesced interval answers, computed without Step-3
/// expansion.
///
/// The source is the object bound to the query's first variable and the target the
/// object bound to its last; the interval set collects every time point the last
/// variable can be bound at in some full match of that pair — exactly the
/// projection of the materialised table onto `(first object, last object, last
/// binding time)`, coalesced (see [`CompactAnswers::from_table`], which computes
/// that projection and is what the property tests compare against).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompactAnswers {
    /// Variable names of the source and target columns.
    columns: (String, String),
    pairs: BTreeMap<(Object, Object), IntervalSet>,
}

impl CompactAnswers {
    /// The `(source, target)` variable names.
    pub fn columns(&self) -> (&str, &str) {
        (&self.columns.0, &self.columns.1)
    }

    /// The number of `(source, target)` pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pair has answers.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The answer intervals for one pair, if any.
    pub fn get(&self, source: Object, target: Object) -> Option<&IntervalSet> {
        self.pairs.get(&(source, target))
    }

    /// Iterates over the pairs and their coalesced answer intervals, in
    /// `(source, target)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&(Object, Object), &IntervalSet)> {
        self.pairs.iter()
    }

    /// The total number of time points across all pairs.
    pub fn num_points(&self) -> u64 {
        self.pairs.values().map(IntervalSet::num_points).sum()
    }

    /// The projection of a materialised binding table onto
    /// `(first object, last object, last binding time)`, coalesced — the reference
    /// semantics of compact answers, used to pin the chain-level construction.
    pub fn from_table(table: &BindingTable) -> Self {
        let columns = (
            table.columns.first().cloned().unwrap_or_default(),
            table.columns.last().cloned().unwrap_or_default(),
        );
        let mut pairs: BTreeMap<(Object, Object), IntervalSet> = BTreeMap::new();
        for row in table.iter() {
            let (Some(first), Some(last)) = (row.first(), row.last()) else { continue };
            let interval = match last.time {
                TimeRef::Point(t) => Interval::point(t),
                TimeRef::Interval(iv) => iv,
            };
            pairs.entry((first.object, last.object)).or_default().insert(interval);
        }
        CompactAnswers { columns, pairs }
    }

    fn insert(&mut self, source: Object, target: Object, interval: Interval) {
        self.pairs.entry((source, target)).or_default().insert(interval);
    }
}

/// Builds compact answers from the interval-level chains of every plan, without
/// expanding a single row.
///
/// Per chain, the target's answer times are the *feasible* time points of its
/// segment: the segment's interval intersected with the backward-propagated
/// admissibility window of all later segments.  Forward feasibility needs no
/// check — the executor's interval construction guarantees every point of a
/// segment's final interval is reachable from some point of its predecessor
/// (shift windows are unions of per-departure windows; time-closure bands are
/// normalised so every arrival has an admissible departure) — so interval-wise
/// backward propagation is exact.
pub(crate) fn compact_from_chains(
    plan_set: &PlanSet,
    per_plan_chains: &[Vec<Chain>],
) -> CompactAnswers {
    let num_slots = plan_set.variables.len();
    let mut compact = CompactAnswers {
        columns: (
            plan_set.variables.first().cloned().unwrap_or_default(),
            plan_set.variables.last().cloned().unwrap_or_default(),
        ),
        pairs: BTreeMap::new(),
    };
    if num_slots == 0 {
        return compact;
    }
    for (plan, chains) in plan_set.plans.iter().zip(per_plan_chains) {
        let lag_indices = closure_lag_indices(plan);
        for chain in chains {
            let (Some(source), Some(target)) = (
                chain.bound.iter().find(|b| b.slot == 0),
                chain.bound.iter().find(|b| b.slot as usize == num_slots - 1),
            ) else {
                debug_assert!(false, "first or last variable slot was never bound");
                continue;
            };
            if plan.is_purely_structural() {
                compact.insert(source.object, target.object, chain.interval);
                continue;
            }
            let intervals = chain.all_segment_intervals();
            if let Some(window) =
                feasible_window(plan, chain, &lag_indices, &intervals, target.segment as usize)
            {
                compact.insert(source.object, target.object, window);
            }
        }
    }
    compact
}

/// Per link, the index into a chain's recorded lags (closure links only) — the same
/// scan [`crate::steps::expand`] performs per expansion.
fn closure_lag_indices(plan: &EnginePlan) -> Vec<Option<usize>> {
    plan.links
        .iter()
        .scan(0usize, |next, link| match link {
            TemporalLink::Shift(_) => Some(None),
            TemporalLink::Closure(_) => {
                let index = *next;
                *next += 1;
                Some(Some(index))
            }
        })
        .collect()
}

/// The time points of `segment` from which all *later* segments can be assigned
/// consistent time points: interval-wise backward propagation of the link
/// constraints from the last segment, exact because each link's preimage of an
/// interval is an interval.
fn feasible_window(
    plan: &EnginePlan,
    chain: &Chain,
    lag_indices: &[Option<usize>],
    intervals: &[Interval],
    segment: usize,
) -> Option<Interval> {
    let mut window = *intervals.last().expect("chains cover at least one segment");
    for i in (segment..intervals.len() - 1).rev() {
        // `window` holds the feasible times of segment i + 1; pull it back through
        // the link between segments i and i + 1 (arrival − departure bounds, as
        // signed arithmetic to survive open-ended and backward links).
        let (lo, hi) = match &plan.links[i] {
            TemporalLink::Shift(shift) => {
                if shift.forward {
                    let lo = match shift.max {
                        Some(m) => window.start() as i128 - m as i128,
                        None => i128::MIN,
                    };
                    (lo, window.end() as i128 - shift.min as i128)
                } else {
                    let hi = match shift.max {
                        Some(m) => window.end() as i128 + m as i128,
                        None => i128::MAX,
                    };
                    (window.start() as i128 + shift.min as i128, hi)
                }
            }
            TemporalLink::Closure(_) => {
                let index = lag_indices[i].expect("closure links carry a lag index");
                let lag = chain.lags[index];
                (window.start() as i128 - lag.hi, window.end() as i128 - lag.lo)
            }
        };
        let own = intervals[i];
        let lo = lo.max(own.start() as i128);
        let hi = hi.min(own.end() as i128);
        if lo > hi {
            return None;
        }
        window = Interval::of(lo as u64, hi as u64);
    }
    Some(window)
}

// ---------------------------------------------------------------------------
// The enumeration cursor
// ---------------------------------------------------------------------------

/// A pull-based cursor over a query's binding rows, in the table's canonical
/// (sorted, deduplicated) order, expanding chains lazily.
///
/// The cursor owns the interval-level chains of Steps 1–2.  Every chain has a
/// cheap *lower bound* on the rows it can produce (its bound objects at each
/// segment interval's start); chains are kept sorted by that bound and expanded
/// only once the merge frontier reaches it.  Chains opened together are merged
/// into a single deduplicated run, and runs are k-way merged through a min-heap —
/// so the delay between two rows is bounded by one chain-batch expansion, and the
/// buffered rows are bounded by the (deduplicated) output of the chains whose row
/// ranges overlap the current position, never the full table.
#[derive(Debug)]
pub struct AnswerCursor {
    columns: Vec<String>,
    num_slots: usize,
    plans: Vec<EnginePlan>,
    /// Unopened chains, ascending by `lower`; `next_pending` indexes the first.
    pending: Vec<PendingChain>,
    next_pending: usize,
    /// Open runs, min-heap by current head row.
    heap: BinaryHeap<OpenRun>,
    last: Option<Vec<Binding>>,
    rows_yielded: usize,
    buffered_rows: usize,
    peak_buffered_rows: usize,
    /// Whether the drop handler folds this cursor's yield count and buffering
    /// high-water mark into the metric registry — the only place those
    /// measurements survive a cursor abandoned mid-drain.
    telemetry: bool,
}

/// An unopened chain: the plan it belongs to plus the lower bound on its rows.
#[derive(Debug)]
struct PendingChain {
    lower: Vec<Binding>,
    plan: usize,
    chain: Chain,
}

/// An opened, sorted, deduplicated run with a cursor; ordered by head row
/// (reversed, so [`BinaryHeap`] pops the minimum).
#[derive(Debug)]
struct OpenRun {
    rows: Vec<Vec<Binding>>,
    next: usize,
}

impl OpenRun {
    fn head(&self) -> &[Binding] {
        &self.rows[self.next]
    }
}

impl PartialEq for OpenRun {
    fn eq(&self, other: &Self) -> bool {
        self.head() == other.head()
    }
}

impl Eq for OpenRun {}

impl PartialOrd for OpenRun {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OpenRun {
    fn cmp(&self, other: &Self) -> Ordering {
        other.head().cmp(self.head())
    }
}

impl AnswerCursor {
    /// Builds a cursor over the chains of every plan alternative.  `plans` and
    /// `chains` are indexed alike; the cursor owns both (expansion needs no graph
    /// access).
    pub(crate) fn new(
        plan_set: &PlanSet,
        per_plan_chains: Vec<Vec<Chain>>,
        telemetry: bool,
    ) -> Self {
        let num_slots = plan_set.variables.len();
        let mut pending = Vec::new();
        for (plan_index, chains) in per_plan_chains.into_iter().enumerate() {
            let plan = &plan_set.plans[plan_index];
            for chain in chains {
                if let Some(lower) = lower_bound_row(plan, num_slots, &chain) {
                    pending.push(PendingChain { lower, plan: plan_index, chain });
                }
            }
        }
        pending.sort_by(|a, b| a.lower.cmp(&b.lower));
        AnswerCursor {
            columns: plan_set.variables.clone(),
            num_slots,
            plans: plan_set.plans.clone(),
            pending,
            next_pending: 0,
            heap: BinaryHeap::new(),
            last: None,
            rows_yielded: 0,
            buffered_rows: 0,
            peak_buffered_rows: 0,
            telemetry,
        }
    }

    /// The variable names, in column order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The number of rows yielded so far.
    pub fn rows_yielded(&self) -> usize {
        self.rows_yielded
    }

    /// The maximum number of rows ever buffered between expansion and emission —
    /// the cursor's answer-memory high-water mark, reported by the perf harness
    /// against the materialised table's row count.
    pub fn peak_buffered_rows(&self) -> usize {
        self.peak_buffered_rows
    }

    /// Pulls the next `n` rows (fewer if the answers run out).
    pub fn page(&mut self, n: usize) -> Vec<Vec<Binding>> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next() {
                Some(row) => out.push(row),
                None => break,
            }
        }
        out
    }

    /// Opens every pending chain whose lower bound does not exceed the merge
    /// frontier, merging the freshly expanded runs into one deduplicated run.
    ///
    /// After this returns, every still-unopened chain has a lower bound strictly
    /// greater than the heap's minimum head — so that head row is safe to emit.
    fn open_due(&mut self) {
        if self.next_pending >= self.pending.len() {
            return;
        }
        // The merge frontier: the smallest row any open run can still produce.
        let mut frontier: Option<Vec<Binding>> = self.heap.peek().map(|run| run.head().to_vec());
        if let Some(ref row) = frontier {
            if self.pending[self.next_pending].lower > *row {
                return;
            }
        }
        let mut batch: Vec<Vec<Vec<Binding>>> = Vec::new();
        while self.next_pending < self.pending.len() {
            let due = match &frontier {
                None => true,
                Some(row) => self.pending[self.next_pending].lower <= *row,
            };
            if !due {
                break;
            }
            let p = &self.pending[self.next_pending];
            self.next_pending += 1;
            let run = expand_chunk_sorted(
                &self.plans[p.plan],
                &self.columns,
                self.num_slots,
                std::slice::from_ref(&p.chain),
            );
            if let Some(first) = run.first() {
                if frontier.as_ref().is_none_or(|row| first < row) {
                    frontier = Some(first.clone());
                }
                batch.push(run);
            }
        }
        if !batch.is_empty() {
            let merged = kway_merge_dedup(batch);
            self.buffered_rows += merged.len();
            self.peak_buffered_rows = self.peak_buffered_rows.max(self.buffered_rows);
            self.heap.push(OpenRun { rows: merged, next: 0 });
        }
    }
}

impl Drop for AnswerCursor {
    /// Retains the cursor's measurements past its lifetime: the yield count
    /// and the buffering high-water mark go to the metric registry, so a
    /// cursor dropped mid-drain (where `Answers::stats` can no longer be
    /// asked) still reports how much memory bounded-delay enumeration used.
    fn drop(&mut self) {
        if self.telemetry {
            let m = crate::telemetry::metrics();
            m.cursor_rows.add(self.rows_yielded as u64);
            m.cursor_peak_buffered.record(self.peak_buffered_rows as u64);
        }
    }
}

impl Iterator for AnswerCursor {
    type Item = Vec<Binding>;

    fn next(&mut self) -> Option<Vec<Binding>> {
        loop {
            self.open_due();
            let mut run = self.heap.pop()?;
            let row = std::mem::take(&mut run.rows[run.next]);
            run.next += 1;
            self.buffered_rows -= 1;
            if run.next < run.rows.len() {
                self.heap.push(run);
            }
            // Runs are deduplicated individually; duplicates across runs arrive
            // consecutively in the (globally non-decreasing) merged stream.
            if self.last.as_ref() != Some(&row) {
                self.last = Some(row.clone());
                self.rows_yielded += 1;
                return Some(row);
            }
        }
    }
}

/// A row that compares less than or equal to every row `chain` can produce.
///
/// Structural plans expand a chain into exactly one row, which is its own bound.
/// Temporal plans bind each slot's object at some time point inside its segment's
/// interval, so binding every slot at its interval's *start* is component-wise (and
/// therefore lexicographically) below every produced row.
fn lower_bound_row(plan: &EnginePlan, num_slots: usize, chain: &Chain) -> Option<Vec<Binding>> {
    let mut row = Vec::with_capacity(num_slots);
    let structural = plan.is_purely_structural();
    let intervals = if structural { Vec::new() } else { chain.all_segment_intervals() };
    for slot in 0..num_slots {
        let Some(var) = chain.bound.iter().find(|b| b.slot as usize == slot) else {
            debug_assert!(false, "variable slot {slot} was never bound");
            return None;
        };
        if structural {
            row.push(Binding::over_interval(var.object, chain.interval));
        } else {
            row.push(Binding::at_point(var.object, intervals[var.segment as usize].start()));
        }
    }
    Some(row)
}

// ---------------------------------------------------------------------------
// A borrowing cursor over an already-materialised table (live queries)
// ---------------------------------------------------------------------------

/// A paging cursor over a maintained, already-materialised [`BindingTable`] —
/// what `LiveGraph::cursor` (in the `live` crate) hands out so serving code can
/// page a live query's answers without cloning the table.
#[derive(Debug, Clone)]
pub struct TableCursor<'a> {
    table: &'a BindingTable,
    next: usize,
}

impl<'a> TableCursor<'a> {
    /// A cursor at the start of the table.
    pub fn new(table: &'a BindingTable) -> Self {
        TableCursor { table, next: 0 }
    }

    /// The variable names, in column order.
    pub fn columns(&self) -> &'a [String] {
        &self.table.columns
    }

    /// The number of rows not yet consumed.
    pub fn remaining(&self) -> usize {
        self.table.len() - self.next
    }

    /// Borrows the next `n` rows (fewer if the table runs out) and advances.
    pub fn page(&mut self, n: usize) -> &'a [Vec<Binding>] {
        let end = (self.next + n).min(self.table.len());
        let page = &self.table.rows()[self.next..end];
        self.next = end;
        page
    }
}

impl<'a> Iterator for TableCursor<'a> {
    type Item = &'a [Binding];

    fn next(&mut self) -> Option<&'a [Binding]> {
        let row = self.table.rows().get(self.next)?;
        self.next += 1;
        Some(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{Interval, Itpg, ItpgBuilder};

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    /// The miniature contact-tracing graph of the executor tests.
    fn tiny() -> Itpg {
        let mut b = ItpgBuilder::new();
        let mia = b.add_node("mia", "Person").unwrap();
        let eve = b.add_node("eve", "Person").unwrap();
        let room = b.add_node("room", "Room").unwrap();
        let meets = b.add_edge("meets1", "meets", mia, eve).unwrap();
        let visits = b.add_edge("visits1", "visits", eve, room).unwrap();
        b.add_existence(mia, iv(1, 10)).unwrap();
        b.add_existence(eve, iv(1, 10)).unwrap();
        b.add_existence(room, iv(1, 10)).unwrap();
        b.add_existence(meets, iv(2, 3)).unwrap();
        b.add_existence(visits, iv(5, 6)).unwrap();
        b.set_property(mia, "risk", "high", iv(1, 10)).unwrap();
        b.set_property(eve, "risk", "low", iv(1, 10)).unwrap();
        b.set_property(eve, "test", "pos", iv(8, 10)).unwrap();
        b.domain(iv(1, 10)).build().unwrap()
    }

    fn relations() -> GraphRelations {
        GraphRelations::from_itpg(&tiny())
    }

    const QUERIES: &[&str] = &[
        "MATCH (x:Person {risk = 'high'}) ON g",
        "MATCH (x:Person {risk = 'high'})-[z:meets]->(y:Person {risk = 'low'}) ON g",
        "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) ON g",
        "MATCH (x:Person {test = 'pos'})-/PREV*/FWD/:visits/FWD/-(z:Room) ON g",
        "MATCH (x:Person)-/(FWD/:meets/FWD)*/-(y:Person) ON g",
        "MATCH (x:Person {risk = 'high'})-/(FWD/:meets/FWD/NEXT*)[1,_]/-({test = 'pos'}) ON g",
        "MATCH (x:Person)-/(FWD/:meets/FWD + FWD/:visits/FWD)*/-(y) ON g",
        "MATCH (x)-/NEXT[3,1]/-(y) ON g",
    ];

    #[test]
    fn cursor_streams_the_materialized_table_in_order() {
        let g = relations();
        for query in QUERIES {
            let q = Query::parse(query).unwrap().with_options(ExecutionOptions::sequential());
            let table = q.run(&g).into_table().expect("default mode materialises");
            let mut cursor =
                q.with_mode(AnswerMode::Enumerate).run(&g).into_cursor().expect("cursor mode");
            let streamed: Vec<Vec<Binding>> = cursor.by_ref().collect();
            assert_eq!(streamed.as_slice(), table.rows(), "{query}");
            assert_eq!(cursor.rows_yielded(), table.len(), "{query}");
            assert!(cursor.next().is_none(), "cursor is fused after draining");
        }
    }

    #[test]
    fn cursor_pages_without_buffering_everything() {
        let g = relations();
        // The structural closure produces one row per chain; paging the first two
        // rows must not expand every chain.
        let q = Query::parse("MATCH (x:Person)-/(FWD/:meets/FWD)*/-(y:Person) ON g")
            .unwrap()
            .with_options(ExecutionOptions::sequential())
            .with_mode(AnswerMode::Enumerate);
        let table = q.clone().with_mode(AnswerMode::Materialized).run(&g).into_table().unwrap();
        let mut answers = q.run(&g);
        let cursor = answers.cursor_mut().unwrap();
        let first = cursor.page(2);
        assert_eq!(first.as_slice(), &table.rows()[..2]);
        assert!(
            cursor.peak_buffered_rows() < table.len(),
            "paging 2 of {} rows buffered {}",
            table.len(),
            cursor.peak_buffered_rows()
        );
        // Honest stats: output_rows tracks what was actually yielded.
        assert_eq!(answers.stats().output_rows, 2);
        let rest: Vec<_> = answers.cursor_mut().unwrap().collect();
        assert_eq!(rest.len(), table.len() - 2);
        assert_eq!(answers.stats().output_rows, table.len());
    }

    #[test]
    fn compact_answers_match_the_table_projection() {
        let g = relations();
        for query in QUERIES {
            let q = Query::parse(query).unwrap().with_options(ExecutionOptions::sequential());
            let table = q.run(&g).into_table().unwrap();
            let answers = q.with_mode(AnswerMode::Compact).run(&g);
            assert_eq!(answers.mode(), AnswerMode::Compact);
            let compact = answers.compact().unwrap();
            assert_eq!(compact, &CompactAnswers::from_table(&table), "{query}");
            assert_eq!(answers.stats().output_rows, compact.num_pairs(), "{query}");
        }
    }

    #[test]
    fn compact_answers_expose_pairs_and_windows() {
        let g = relations();
        let answers = Query::parse(QUERIES[2])
            .unwrap()
            .with_options(ExecutionOptions::sequential())
            .with_mode(AnswerMode::Compact)
            .run(&g);
        let compact = answers.into_compact().unwrap();
        // Mia met Eve at times 2 and 3 — one (mia, mia) pair (the query binds only
        // x), answered over [2, 3].
        assert_eq!(compact.num_pairs(), 1);
        assert_eq!(compact.num_points(), 2);
        let ((source, target), set) = compact.iter().next().unwrap();
        assert_eq!(source, target);
        assert_eq!(set.intervals(), &[iv(2, 3)]);
        assert_eq!(compact.get(*source, *target), Some(set));
        assert_eq!(compact.columns(), ("x", "x"));
    }

    #[test]
    fn table_cursor_pages_a_materialized_table() {
        let g = relations();
        let table = Query::parse(QUERIES[3])
            .unwrap()
            .with_options(ExecutionOptions::sequential())
            .run(&g)
            .into_table()
            .unwrap();
        assert_eq!(table.len(), 6);
        let mut cursor = TableCursor::new(&table);
        assert_eq!(cursor.columns(), table.columns.as_slice());
        assert_eq!(cursor.remaining(), 6);
        let first = cursor.page(4);
        assert_eq!(first, &table.rows()[..4]);
        assert_eq!(cursor.remaining(), 2);
        let rest: Vec<_> = cursor.by_ref().collect();
        assert_eq!(rest.len(), 2);
        assert_eq!(cursor.page(3), &[] as &[Vec<Binding>]);
    }

    #[test]
    fn query_builder_runs_benchmarks_and_plan_sets() {
        let g = relations();
        let by_id = Query::benchmark(QueryId::Q1).run(&g);
        let by_plan = Query::from_plan_set(crate::queries::plan_for(QueryId::Q1)).run(&g);
        assert_eq!(by_id.table(), by_plan.table());
        assert_eq!(by_id.mode(), AnswerMode::Materialized);
        // Builder knobs land in the options.
        let q = Query::benchmark(QueryId::Q1)
            .with_strategy(JoinStrategy::Merge)
            .with_mode(AnswerMode::Compact);
        assert_eq!(q.options().join_strategy, JoinStrategy::Merge);
        assert_eq!(q.options().answer_mode, AnswerMode::Compact);
        assert_eq!(q.plan_set().graph, "contact_tracing");
        assert_eq!(AnswerMode::Enumerate.name(), "enum");
    }
}
