//! The engine's handles into the process-wide metric registry.
//!
//! Handles are resolved once (first telemetry-enabled execution) and cached in
//! a `OnceLock`, so the hot paths never touch the registry's lock — they
//! record straight through the `Arc`s.  Everything here is gated on
//! [`crate::ExecutionOptions::telemetry`] at the call sites: a disabled run
//! never calls [`metrics`] at all.
//!
//! The span tree of one query execution, aggregated per node into the
//! `tpath_engine_span_seconds{span=...}` histogram family:
//!
//! ```text
//! query                      total execution
//! ├── compile                parse + plan compilation (Query::parse)
//! ├── analyze                semantic optimizer pass (optimize = true)
//! ├── step12                 structural + temporal interval evaluation
//! │   └── closure            closure fixpoints inside Steps 1–2
//! └── step3 | compact | cursor_open
//!                            point expansion, compact construction, or
//!                            enumeration-cursor setup (mode-dependent)
//! ```

use std::sync::{Arc, OnceLock};

use obs::{Counter, Histogram};

/// One histogram per span-tree node, plus the engine's counters.
pub(crate) struct EngineMetrics {
    /// `tpath_engine_queries_total` — executions through `execute` /
    /// `execute_answers`, any answer mode.
    pub queries: Arc<Counter>,
    /// `span="query"` — total wall time of one execution.
    pub span_query: Arc<Histogram>,
    /// `span="query/compile"` — parse + compile (recorded by `Query::parse` /
    /// `Query::from_clause`, where no options exist yet).
    pub span_compile: Arc<Histogram>,
    /// `span="query/analyze"` — the semantic optimizer pass.
    pub span_analyze: Arc<Histogram>,
    /// `span="query/step12"` — Steps 1–2 (interval phase).
    pub span_step12: Arc<Histogram>,
    /// `span="query/step12/closure"` — time inside closure fixpoints.
    pub span_closure: Arc<Histogram>,
    /// `span="query/step3"` — Step 3 materialisation.
    pub span_step3: Arc<Histogram>,
    /// `span="query/compact"` — compact answer construction.
    pub span_compact: Arc<Histogram>,
    /// `span="query/cursor_open"` — enumeration cursor setup.
    pub span_cursor_open: Arc<Histogram>,
    /// `tpath_engine_rows_total{stage="interval"}` — interval-level rows out
    /// of Steps 1–2.
    pub rows_interval: Arc<Counter>,
    /// `tpath_engine_rows_total{stage="output"}` — rows reported eagerly
    /// (table length; 0 for lazy modes, whose rows flow through
    /// `cursor_rows`).
    pub rows_output: Arc<Counter>,
    /// `tpath_engine_closure_rounds_total{kind="structural"}`.
    pub closure_rounds: Arc<Counter>,
    /// `tpath_engine_closure_rounds_total{kind="time"}`.
    pub time_rounds: Arc<Counter>,
    /// `tpath_engine_join_decisions_total{algorithm="hash"}` — structural
    /// hops resolved to the hash join.
    pub joins_hash: Arc<Counter>,
    /// `tpath_engine_join_decisions_total{algorithm="merge"}` — structural
    /// hops resolved to the gallop merge join.
    pub joins_merge: Arc<Counter>,
    /// `tpath_engine_cursor_rows_total` — rows yielded by enumeration
    /// cursors (recorded when the cursor drops).
    pub cursor_rows: Arc<Counter>,
    /// `tpath_engine_cursor_peak_buffered_rows` — per-cursor high-water mark
    /// of buffered rows, recorded when the cursor drops so the measurement
    /// survives cursors abandoned mid-drain.
    pub cursor_peak_buffered: Arc<Histogram>,
}

const SPAN_FAMILY: &str = "tpath_engine_span_seconds";
const SPAN_HELP: &str =
    "Wall time of engine execution span-tree nodes, labelled by slash-separated path.";

fn span(reg: &obs::Registry, path: &'static str) -> Arc<Histogram> {
    reg.latency_histogram(SPAN_FAMILY, SPAN_HELP, &[("span", path)])
}

/// The cached handle set, resolved against [`obs::global`] on first use.
pub(crate) fn metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        let rows_help = "Rows produced by query executions, by pipeline stage.";
        let rounds_help = "Closure fixpoint rounds executed, by closure kind.";
        let joins_help = "Structural hop joins, by the algorithm the strategy resolved to.";
        EngineMetrics {
            queries: reg.counter(
                "tpath_engine_queries_total",
                "Query executions, any answer mode.",
                &[],
            ),
            span_query: span(reg, "query"),
            span_compile: span(reg, "query/compile"),
            span_analyze: span(reg, "query/analyze"),
            span_step12: span(reg, "query/step12"),
            span_closure: span(reg, "query/step12/closure"),
            span_step3: span(reg, "query/step3"),
            span_compact: span(reg, "query/compact"),
            span_cursor_open: span(reg, "query/cursor_open"),
            rows_interval: reg.counter(
                "tpath_engine_rows_total",
                rows_help,
                &[("stage", "interval")],
            ),
            rows_output: reg.counter("tpath_engine_rows_total", rows_help, &[("stage", "output")]),
            closure_rounds: reg.counter(
                "tpath_engine_closure_rounds_total",
                rounds_help,
                &[("kind", "structural")],
            ),
            time_rounds: reg.counter(
                "tpath_engine_closure_rounds_total",
                rounds_help,
                &[("kind", "time")],
            ),
            joins_hash: reg.counter(
                "tpath_engine_join_decisions_total",
                joins_help,
                &[("algorithm", "hash")],
            ),
            joins_merge: reg.counter(
                "tpath_engine_join_decisions_total",
                joins_help,
                &[("algorithm", "merge")],
            ),
            cursor_rows: reg.counter(
                "tpath_engine_cursor_rows_total",
                "Rows yielded by enumeration cursors (recorded on cursor drop).",
                &[],
            ),
            cursor_peak_buffered: reg.histogram(
                "tpath_engine_cursor_peak_buffered_rows",
                "Per-cursor high-water mark of rows buffered between expansion and \
                 emission, recorded on cursor drop.",
                &[],
            ),
        }
    })
}
