//! Compilation of parsed `MATCH` clauses into engine plans.
//!
//! The engine implements the whole practical `MATCH` surface syntax: patterns whose
//! regular expressions combine structural steps (`FWD`/`BWD` and label / property
//! tests, optionally under repetition — compiled to the [`MicroOp::Closure`] fixpoint
//! operator) with temporal navigation (`NEXT`/`PREV`, optionally carrying a numerical
//! occurrence indicator or the Kleene star), plus unions.  Repetition of a group that
//! *mixes* structural and temporal navigation (e.g. `(FWD/NEXT)*`) compiles to a
//! [`TemporalLink::Closure`] — the time-aware fixpoint of
//! [`crate::steps::closure`] — which splits the surrounding segments the same way a
//! plain shift does.  Degenerate indicators are normalised during compilation:
//! `p[1,1]` is `p`, `p[0,0]` is the empty path, and an unsatisfiable `p[n,m]` with
//! `n > m` relates nothing (its alternative is dropped).

use dataflow::JoinStrategy;
use trpq::ast::Axis;
use trpq::parser::{
    Direction, EdgePattern, MatchClause, NodePattern, PatternPart, Regex, RegexAtom, RegexItem,
};
use trpq::{QueryError, Result};

use crate::plan::{
    ClosureOp, ClosureStep, EnginePlan, HopDirection, MicroOp, ObjFilter, PlanSet, Segment, Shift,
    TemporalLink,
};

/// Compiles a parsed clause into a set of engine plans (one per union alternative),
/// leaving the join strategy adaptive (`Auto`).
pub fn compile(clause: &MatchClause) -> Result<PlanSet> {
    compile_with_strategy(clause, JoinStrategy::Auto)
}

/// Compiles a parsed clause and bakes a join strategy into the plan set, so callers
/// that pre-compile queries can pin the physical join implementation once instead of
/// deciding per execution.  [`ExecutionOptions`](crate::executor::ExecutionOptions)
/// with a non-`Auto` strategy still takes precedence at run time.
pub fn compile_with_strategy(clause: &MatchClause, strategy: JoinStrategy) -> Result<PlanSet> {
    // Assign variable slots in order of first appearance.
    let mut variables: Vec<String> = Vec::new();
    for part in &clause.parts {
        let var = match part {
            PatternPart::Node(n) => n.var.as_ref(),
            PatternPart::Edge(e) => e.var.as_ref(),
            PatternPart::Regex(_) => None,
        };
        if let Some(name) = var {
            if variables.contains(name) {
                return Err(QueryError::InvalidVariable(name.clone()));
            }
            variables.push(name.clone());
        }
    }

    // Each pattern part contributes a list of alternative op sequences; the plan set
    // is their cartesian product.
    let mut alternatives: Vec<Vec<PlanOp>> = vec![Vec::new()];
    for part in &clause.parts {
        let part_alternatives = compile_part(part, &variables)?;
        let mut next = Vec::with_capacity(alternatives.len() * part_alternatives.len());
        for prefix in &alternatives {
            for suffix in &part_alternatives {
                let mut combined = prefix.clone();
                combined.extend(suffix.iter().cloned());
                next.push(combined);
            }
        }
        alternatives = next;
    }

    let plans = alternatives.into_iter().map(assemble_plan).collect::<Result<Vec<_>>>()?;
    Ok(PlanSet { plans, variables, graph: clause.graph.clone(), join_strategy: strategy })
}

/// Intermediate op used during compilation: a structural micro-op, a temporal shift
/// separating two segments, or a time-crossing closure doing the same.
#[derive(Debug, Clone, PartialEq)]
enum PlanOp {
    Micro(MicroOp),
    Shift(Shift),
    TimeClosure(ClosureOp),
}

fn assemble_plan(ops: Vec<PlanOp>) -> Result<EnginePlan> {
    let mut plan = EnginePlan { segments: vec![Segment::default()], links: Vec::new() };
    for op in ops {
        match op {
            PlanOp::Micro(m) => plan.segments.last_mut().expect("at least one segment").ops.push(m),
            PlanOp::Shift(s) => {
                plan.links.push(TemporalLink::Shift(s));
                plan.segments.push(Segment::default());
            }
            PlanOp::TimeClosure(c) => {
                plan.links.push(TemporalLink::Closure(c));
                plan.segments.push(Segment::default());
            }
        }
    }
    Ok(plan)
}

fn slot_of(variables: &[String], name: &str) -> usize {
    variables
        .iter()
        .position(|v| v == name)
        .expect("variable was registered during slot assignment")
}

fn compile_part(part: &PatternPart, variables: &[String]) -> Result<Vec<Vec<PlanOp>>> {
    match part {
        PatternPart::Node(node) => Ok(vec![compile_node(node, variables)]),
        PatternPart::Edge(edge) => Ok(vec![compile_edge(edge, variables)]),
        PatternPart::Regex(regex) => compile_regex(regex, variables),
    }
}

fn compile_node(node: &NodePattern, variables: &[String]) -> Vec<PlanOp> {
    let filter = ObjFilter::from_pattern(Some(true), node.label.as_deref(), &node.constraints);
    let mut ops = vec![PlanOp::Micro(MicroOp::Filter(filter))];
    if let Some(var) = &node.var {
        ops.push(PlanOp::Micro(MicroOp::Bind(slot_of(variables, var))));
    }
    ops
}

fn compile_edge(edge: &EdgePattern, variables: &[String]) -> Vec<PlanOp> {
    let hop = match edge.direction {
        Direction::Out => HopDirection::Forward,
        Direction::In => HopDirection::Backward,
    };
    let filter = ObjFilter::from_pattern(Some(false), edge.label.as_deref(), &edge.constraints);
    let mut ops = vec![PlanOp::Micro(MicroOp::Hop(hop)), PlanOp::Micro(MicroOp::Filter(filter))];
    if let Some(var) = &edge.var {
        ops.push(PlanOp::Micro(MicroOp::Bind(slot_of(variables, var))));
    }
    ops.push(PlanOp::Micro(MicroOp::Hop(hop)));
    ops
}

/// Expands a regex into alternatives of op sequences (distributing unions).
fn compile_regex(regex: &Regex, variables: &[String]) -> Result<Vec<Vec<PlanOp>>> {
    let mut out = Vec::new();
    for seq in &regex.alternatives {
        // Each item contributes its own alternatives; combine by cartesian product.
        let mut seq_alternatives: Vec<Vec<PlanOp>> = vec![Vec::new()];
        for item in &seq.items {
            let item_alternatives = compile_regex_item(item, variables)?;
            let mut next = Vec::with_capacity(seq_alternatives.len() * item_alternatives.len());
            for prefix in &seq_alternatives {
                for suffix in &item_alternatives {
                    let mut combined = prefix.clone();
                    combined.extend(suffix.iter().cloned());
                    next.push(combined);
                }
            }
            seq_alternatives = next;
        }
        out.extend(seq_alternatives);
    }
    Ok(out)
}

fn compile_regex_item(item: &RegexItem, variables: &[String]) -> Result<Vec<Vec<PlanOp>>> {
    let Some((min, max)) = item.repeat else {
        return compile_regex_atom(&item.atom, variables);
    };
    // Constant-fold the indicator (shared classification with the semantic
    // analyzer, see `trpq::indicator`): an unsatisfiable `n > m` relates nothing,
    // so the whole concatenation containing it is empty (zero alternatives,
    // matching the reference evaluators); `[0,0]` is the zero-repetition identity
    // and `[1,1]` is the body itself.
    match trpq::classify_repeat(min, max) {
        trpq::RepeatClass::Unsatisfiable => return Ok(Vec::new()),
        trpq::RepeatClass::Identity => return Ok(vec![Vec::new()]),
        trpq::RepeatClass::Once => return compile_regex_atom(&item.atom, variables),
        trpq::RepeatClass::Range => {}
    }
    match &item.atom {
        // A repeated temporal axis walks through existing states of the same object:
        // one shift with the indicator's bounds.
        RegexAtom::Axis(axis @ (Axis::Next | Axis::Prev)) => {
            Ok(vec![vec![PlanOp::Shift(Shift { forward: *axis == Axis::Next, min, max })]])
        }
        // A repeated structural axis is a transitive closure over the adjacency.
        RegexAtom::Axis(axis @ (Axis::Fwd | Axis::Bwd)) => {
            let hop =
                if *axis == Axis::Fwd { HopDirection::Forward } else { HopDirection::Backward };
            Ok(vec![vec![PlanOp::Micro(MicroOp::Closure(ClosureOp::structural(
                vec![vec![MicroOp::Hop(hop)]],
                min,
                max,
            )))]])
        }
        // A test is idempotent, so test[n,m] is the test itself when at least one
        // repetition is required; with n = 0 the zero-repetition identity absorbs it.
        RegexAtom::Label(_) | RegexAtom::Props(_) => {
            if min == 0 {
                Ok(vec![Vec::new()])
            } else {
                compile_regex_atom(&item.atom, variables)
            }
        }
        RegexAtom::Group(inner) => {
            // A purely temporal group (a single NEXT/PREV, possibly with an existing
            // indicator), e.g. (NEXT)[0,12], composes into one shift when the set of
            // reachable step counts stays contiguous; otherwise it falls through to
            // the general time-aware closure below.
            if let Some(shift) = purely_temporal_group(inner) {
                if shift.is_unsatisfiable() {
                    // The inner expression relates nothing: the repetition is the
                    // identity when zero iterations are allowed and empty otherwise.
                    return Ok(if min == 0 { vec![Vec::new()] } else { Vec::new() });
                }
                if let Some(s) = combine_repetition(shift, (min, max)) {
                    return Ok(vec![vec![PlanOp::Shift(s)]]);
                }
            }
            // The general case: a closure whose alternatives are the compiled union
            // branches of the inner expression (unions must stay inside the fixpoint:
            // the closure of a union is not the union of the closures).  A purely
            // structural body stays a segment micro-op; a body that moves through
            // time — any shift, or a nested time-crossing closure — becomes a
            // time-aware closure link splitting the surrounding segments.
            let inner_alternatives = compile_regex(inner, variables)?;
            if inner_alternatives.is_empty() {
                // Every inner branch was unsatisfiable.
                return Ok(if min == 0 { vec![Vec::new()] } else { Vec::new() });
            }
            let mut alternatives = Vec::with_capacity(inner_alternatives.len());
            for alternative in inner_alternatives {
                let steps = alternative
                    .into_iter()
                    .map(|op| match op {
                        PlanOp::Micro(m) => ClosureStep::Micro(m),
                        PlanOp::Shift(s) => ClosureStep::Shift(s),
                        PlanOp::TimeClosure(c) => ClosureStep::Micro(MicroOp::Closure(c)),
                    })
                    .collect();
                alternatives.push(steps);
            }
            let closure = ClosureOp { alternatives, min, max };
            if closure.is_time_crossing() {
                Ok(vec![vec![PlanOp::TimeClosure(closure)]])
            } else {
                Ok(vec![vec![PlanOp::Micro(MicroOp::Closure(closure))]])
            }
        }
    }
}

/// Compiles a regex atom without a repetition postfix.
fn compile_regex_atom(atom: &RegexAtom, variables: &[String]) -> Result<Vec<Vec<PlanOp>>> {
    match atom {
        RegexAtom::Axis(Axis::Fwd) => {
            Ok(vec![vec![PlanOp::Micro(MicroOp::Hop(HopDirection::Forward))]])
        }
        RegexAtom::Axis(Axis::Bwd) => {
            Ok(vec![vec![PlanOp::Micro(MicroOp::Hop(HopDirection::Backward))]])
        }
        RegexAtom::Axis(axis @ (Axis::Next | Axis::Prev)) => Ok(vec![vec![PlanOp::Shift(Shift {
            forward: *axis == Axis::Next,
            min: 1,
            max: Some(1),
        })]]),
        RegexAtom::Label(label) => {
            let filter = ObjFilter { label: Some(label.clone()), ..Default::default() };
            Ok(vec![vec![PlanOp::Micro(MicroOp::Filter(filter))]])
        }
        RegexAtom::Props(constraints) => {
            let filter = ObjFilter::from_pattern(None, None, constraints);
            Ok(vec![vec![PlanOp::Micro(MicroOp::Filter(filter))]])
        }
        RegexAtom::Group(inner) => compile_regex(inner, variables),
    }
}

/// If the group consists of exactly one alternative with exactly one temporal axis
/// item, returns the corresponding shift.
fn purely_temporal_group(regex: &Regex) -> Option<Shift> {
    if regex.alternatives.len() != 1 || regex.alternatives[0].items.len() != 1 {
        return None;
    }
    let item = &regex.alternatives[0].items[0];
    match (&item.atom, item.repeat) {
        (RegexAtom::Axis(axis @ (Axis::Next | Axis::Prev)), repeat) => {
            let (min, max) = match repeat {
                None => (1, Some(1)),
                Some((n, m)) => (n, m),
            };
            Some(Shift { forward: *axis == Axis::Next, min, max })
        }
        _ => None,
    }
}

/// Composes an inner shift with an outer repetition: `(NEXT[a,b])[n,m]` moves between
/// `a·n` and `b·m` steps, provided the set of reachable step counts — the union of
/// `[a·k, b·k]` over `k ∈ [n, m]` — is a contiguous range (otherwise a single shift
/// cannot represent it and the construct is rejected).  Open-ended bounds stay
/// open-ended.
fn combine_repetition(inner: Shift, (n, m): (u32, Option<u32>)) -> Option<Shift> {
    let a = inner.min as u64;
    let min = a.checked_mul(n as u64)?;
    let b = match inner.max {
        Some(b) => b as u64,
        // An open-ended inner bound makes every count ≥ a·n reachable.  With n = 0 the
        // zero-repetition case adds the count 0, which is only contiguous with the
        // rest when a ≤ 1.
        None => {
            if n == 0 && a > 1 {
                return None;
            }
            return Some(Shift {
                forward: inner.forward,
                min: u32::try_from(min).ok()?,
                max: None,
            });
        }
    };
    // Contiguity: consecutive repetition counts k and k+1 must produce overlapping or
    // adjacent ranges, i.e. a·(k+1) ≤ b·k + 1.  The gap a·(k+1) − b·k is largest at the
    // smallest k, so checking k = n suffices (for m = None the counts are unbounded and
    // the same check applies).
    let upper_k = m.map(|m| m as u64);
    if upper_k != Some(n as u64) {
        let k = n as u64;
        if a.checked_mul(k + 1)? > b.checked_mul(k)?.checked_add(1)? {
            return None;
        }
    }
    let max = match upper_k {
        Some(m) => Some(u32::try_from(b.checked_mul(m)?).ok()?),
        None => None,
    };
    Some(Shift { forward: inner.forward, min: u32::try_from(min).ok()?, max })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trpq::parser::parse_match;
    use trpq::queries::QueryId;

    fn compile_text(text: &str) -> PlanSet {
        compile(&parse_match(text).unwrap()).unwrap()
    }

    /// The plan's links, asserted to all be plain shifts.
    fn shifts(plan: &EnginePlan) -> Vec<Shift> {
        plan.links.iter().map(|l| *l.as_shift().expect("link is a plain shift")).collect()
    }

    #[test]
    fn q1_compiles_to_a_single_filter_segment() {
        let plan_set = compile_text("MATCH (x:Person) ON contact_tracing");
        assert_eq!(plan_set.variables, vec!["x".to_string()]);
        assert_eq!(plan_set.plans.len(), 1);
        let plan = &plan_set.plans[0];
        assert!(plan.is_purely_structural());
        assert_eq!(plan.segments.len(), 1);
        assert_eq!(plan.segments[0].ops.len(), 2); // Filter + Bind
        assert_eq!(plan.segments[0].bound_slots(), vec![0]);
    }

    #[test]
    fn q5_compiles_to_hop_filter_hop() {
        let plan_set = compile_text(
            "MATCH (x:Person {risk = 'low'})-[z:meets]->(y:Person {risk = 'high'}) ON g",
        );
        assert_eq!(plan_set.variables, vec!["x", "z", "y"]);
        let ops = &plan_set.plans[0].segments[0].ops;
        // x filter, bind, hop, edge filter, bind, hop, y filter, bind.
        assert_eq!(ops.len(), 8);
        assert!(matches!(ops[2], MicroOp::Hop(HopDirection::Forward)));
        assert!(matches!(ops[5], MicroOp::Hop(HopDirection::Forward)));
    }

    #[test]
    fn temporal_operators_split_segments() {
        let plan_set =
            compile_text("MATCH (x:Person {test = 'pos'})-/PREV/FWD/:visits/FWD/-(z:Room) ON g");
        let plan = &plan_set.plans[0];
        assert_eq!(plan.segments.len(), 2);
        assert_eq!(shifts(plan), vec![Shift { forward: false, min: 1, max: Some(1) }]);
        // Segment 1 holds the structural part after PREV plus the Room filter/bind.
        assert!(plan.segments[1].ops.len() >= 4);
        assert_eq!(plan.segments[1].bound_slots(), vec![1]);

        let star =
            compile_text("MATCH (x:Person {test = 'pos'})-/PREV*/FWD/:visits/FWD/-(z:Room) ON g");
        assert_eq!(shifts(&star.plans[0]), vec![Shift { forward: false, min: 0, max: None }]);

        let bounded = compile_text(
            "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT[0,12]/-({test = 'pos'}) ON g",
        );
        assert_eq!(shifts(&bounded.plans[0]), vec![Shift { forward: true, min: 0, max: Some(12) }]);
    }

    #[test]
    fn unions_expand_into_multiple_plans() {
        let plan_set = compile(&QueryId::Q12.clause()).unwrap();
        assert_eq!(plan_set.plans.len(), 2);
        // Both alternatives end with the same NEXT[0,12] shift and a final filter.
        for plan in &plan_set.plans {
            assert_eq!(plan.segments.len(), 2);
            assert_eq!(shifts(plan), vec![Shift { forward: true, min: 0, max: Some(12) }]);
        }
        // The meets alternative is shorter than the visits alternative.
        let lengths: Vec<usize> = plan_set.plans.iter().map(|p| p.segments[0].ops.len()).collect();
        assert!(lengths[0] != lengths[1]);
    }

    #[test]
    fn all_benchmark_queries_compile() {
        for id in QueryId::ALL {
            let plan_set = compile(&id.clause()).unwrap_or_else(|e| panic!("{}: {e}", id.name()));
            assert!(!plan_set.plans.is_empty());
            let expects_shifts = id.uses_temporal_navigation();
            assert_eq!(!plan_set.is_purely_structural(), expects_shifts, "{}", id.name());
        }
    }

    #[test]
    fn mixed_repetition_compiles_to_a_time_aware_closure() {
        // Repetition of a group mixing structural and temporal navigation used to be
        // rejected with `UnsupportedFragment`; it now compiles to a closure *link*
        // splitting the surrounding segments like a shift does.
        for text in [
            "MATCH (x)-/(FWD/NEXT)[0,3]/-(y) ON g",
            "MATCH (x)-/(FWD/:meets/FWD/PREV)*/-(y) ON g",
            "MATCH (x)-/(FWD/:meets/FWD/NEXT)*/-(y) ON g",
        ] {
            let plan_set = compile(&parse_match(text).unwrap()).unwrap();
            assert_eq!(plan_set.plans.len(), 1, "{text}");
            let plan = &plan_set.plans[0];
            assert_eq!(plan.segments.len(), 2, "{text}");
            assert!(!plan.is_purely_structural(), "{text}");
            match &plan.links[0] {
                TemporalLink::Closure(closure) => {
                    assert!(closure.is_time_crossing(), "{text}");
                    assert!(closure
                        .alternatives
                        .iter()
                        .flatten()
                        .any(|s| matches!(s, ClosureStep::Shift(_))));
                }
                other => panic!("{text}: expected a closure link, got {other:?}"),
            }
        }

        // A nested time-crossing closure rides inside the outer closure's steps.
        let nested = compile_text("MATCH (x)-/((FWD/NEXT)[1,2]/BWD)*/-(y) ON g");
        match &nested.plans[0].links[0] {
            TemporalLink::Closure(outer) => {
                assert!(outer.alternatives[0].iter().any(|s| matches!(
                    s,
                    ClosureStep::Micro(MicroOp::Closure(inner)) if inner.is_time_crossing()
                )));
            }
            other => panic!("expected a closure link, got {other:?}"),
        }

        // Non-contiguous nested temporal repetitions, previously rejected, now run as
        // a time-aware closure as well: (NEXT[2,3])[0,2] reaches {0, 2..6} steps.
        let gappy = compile_text("MATCH (x)-/(NEXT[2,3])[0,2]/-(y) ON g");
        assert!(matches!(gappy.plans[0].links[0], TemporalLink::Closure(_)));
    }

    /// The closure op of the first segment of the first plan.
    fn find_closure(plan_set: &PlanSet) -> &ClosureOp {
        plan_set.plans[0].segments[0]
            .ops
            .iter()
            .find_map(|op| match op {
                MicroOp::Closure(c) => Some(c),
                _ => None,
            })
            .expect("the plan contains a closure")
    }

    #[test]
    fn structural_repetition_compiles_to_a_closure() {
        // A repeated structural axis.
        let plan_set = compile_text("MATCH (x)-/FWD*/-(y) ON g");
        let closure = find_closure(&plan_set);
        assert_eq!(closure.min, 0);
        assert_eq!(closure.max, None);
        assert!(!closure.is_time_crossing());
        assert_eq!(
            closure.alternatives,
            vec![vec![ClosureStep::Micro(MicroOp::Hop(HopDirection::Forward))]]
        );

        // The iconic contact-chain query: a repeated structural group.
        let plan_set = compile_text("MATCH (x)-/(FWD/:meets/FWD)*/-(y) ON g");
        let closure = find_closure(&plan_set);
        assert_eq!(closure.alternatives.len(), 1);
        assert_eq!(closure.alternatives[0].len(), 3);
        assert!(plan_set.plans[0].is_purely_structural());

        // Unions stay inside the fixpoint as closure alternatives.
        let plan_set = compile_text("MATCH (x)-/(FWD/:meets/FWD + BWD/:meets/BWD)[1,4]/-(y) ON g");
        assert_eq!(plan_set.plans.len(), 1, "the union must not be distributed");
        let closure = find_closure(&plan_set);
        assert_eq!(closure.alternatives.len(), 2);
        assert_eq!((closure.min, closure.max), (1, Some(4)));

        // Nested repetition of structural groups also stays in the fragment.
        let nested = compile_text("MATCH (x)-/((FWD/:meets/FWD)[1,2])*/-(y) ON g");
        let outer = find_closure(&nested);
        assert!(matches!(outer.alternatives[0][0], ClosureStep::Micro(MicroOp::Closure(_))));
    }

    #[test]
    fn degenerate_repetitions_are_normalised() {
        // p[1,1] is p itself: same plan as the unrepeated atom.
        let repeated = compile_text("MATCH (x)-/:meets[1,1]/-(y) ON g");
        let plain = compile_text("MATCH (x)-/:meets/-(y) ON g");
        assert_eq!(repeated.plans, plain.plans);
        let hop = compile_text("MATCH (x)-/FWD[1,1]/-(y) ON g");
        let plain_hop = compile_text("MATCH (x)-/FWD/-(y) ON g");
        assert_eq!(hop.plans, plain_hop.plans);
        let group = compile_text("MATCH (x)-/(FWD/:meets/FWD)[1,1]/-(y) ON g");
        let plain_group = compile_text("MATCH (x)-/FWD/:meets/FWD/-(y) ON g");
        assert_eq!(group.plans, plain_group.plans);

        // p[0,0] is the empty path: the item vanishes from the pipeline, leaving only
        // the two node patterns (filter + bind each).
        let zero = compile_text("MATCH (x)-/:Room[0,0]/-(y) ON g");
        assert_eq!(zero.plans[0].segments[0].ops.len(), 4);
        let zero_group = compile_text("MATCH (x)-/(FWD/:meets/FWD)[0,0]/-(y) ON g");
        assert_eq!(zero_group.plans, zero.plans);

        // Repeated tests are idempotent.
        let test_rep = compile_text("MATCH (x)-/:Room[2,5]/-(y) ON g");
        let test_plain = compile_text("MATCH (x)-/:Room/-(y) ON g");
        assert_eq!(test_rep.plans, test_plain.plans);
        let test_opt = compile_text("MATCH (x)-/:Room[0,2]/-(y) ON g");
        assert_eq!(test_opt.plans, zero.plans);
    }

    #[test]
    fn unsatisfiable_indicators_drop_the_alternative() {
        // n > m relates nothing: the plan set is empty and execution returns no rows.
        for text in [
            "MATCH (x)-/NEXT[3,1]/-(y) ON g",
            "MATCH (x)-/FWD[3,1]/-(y) ON g",
            "MATCH (x)-/:Room[3,1]/-(y) ON g",
            "MATCH (x)-/(FWD/:meets/FWD)[3,1]/-(y) ON g",
            "MATCH (x)-/(NEXT[2,1])[1,3]/-(y) ON g",
        ] {
            let plan_set = compile(&parse_match(text).unwrap()).unwrap();
            assert!(plan_set.plans.is_empty(), "{text} should compile to no plans");
        }
        // A satisfiable union branch survives next to an unsatisfiable one.
        let plan_set = compile_text("MATCH (x)-/(NEXT[3,1] + FWD)/-(y) ON g");
        assert_eq!(plan_set.plans.len(), 1);
        // Zero repetitions of an unsatisfiable expression is still the identity.
        let zero_of_unsat = compile_text("MATCH (x)-/(NEXT[3,1])[0,5]/-(y) ON g");
        let zero = compile_text("MATCH (x)-/:Room[0,0]/-(y) ON g");
        assert_eq!(zero_of_unsat.plans, zero.plans);
    }

    #[test]
    fn repeated_purely_temporal_groups_compose() {
        let plan_set = compile_text("MATCH (x)-/(NEXT)[0,12]/-(y) ON g");
        assert_eq!(
            shifts(&plan_set.plans[0]),
            vec![Shift { forward: true, min: 0, max: Some(12) }]
        );
        let plan_set = compile_text("MATCH (x)-/(PREV[2,3])[2,2]/-(y) ON g");
        assert_eq!(
            shifts(&plan_set.plans[0]),
            vec![Shift { forward: false, min: 4, max: Some(6) }]
        );
    }

    #[test]
    fn duplicate_variables_are_rejected() {
        let err = compile(&parse_match("MATCH (x)-[x:meets]->(y) ON g").unwrap()).unwrap_err();
        assert!(matches!(err, QueryError::InvalidVariable(_)));
    }
}
