//! Compilation of parsed `MATCH` clauses into engine plans.
//!
//! The engine implements the fragment of `NavL[PC,NOI]` that covers all the queries of
//! Section IV: patterns whose regular expressions combine structural steps
//! (`FWD`/`BWD` and label / property tests) with temporal navigation (`NEXT`/`PREV`,
//! optionally carrying a numerical occurrence indicator or the Kleene star), plus
//! top-level unions.  Structural steps under repetition and nested repetition of
//! groups fall outside this fragment and are rejected with
//! [`QueryError::UnsupportedFragment`]; the reference evaluators in the `trpq` crate
//! cover the full language on point-timestamped graphs.

use dataflow::JoinStrategy;
use trpq::ast::Axis;
use trpq::parser::{
    Direction, EdgePattern, MatchClause, NodePattern, PatternPart, Regex, RegexAtom, RegexItem,
};
use trpq::{QueryError, Result};

use crate::plan::{EnginePlan, HopDirection, MicroOp, ObjFilter, PlanSet, Segment, Shift};

/// Compiles a parsed clause into a set of engine plans (one per union alternative),
/// leaving the join strategy adaptive (`Auto`).
pub fn compile(clause: &MatchClause) -> Result<PlanSet> {
    compile_with_strategy(clause, JoinStrategy::Auto)
}

/// Compiles a parsed clause and bakes a join strategy into the plan set, so callers
/// that pre-compile queries can pin the physical join implementation once instead of
/// deciding per execution.  [`ExecutionOptions`](crate::executor::ExecutionOptions)
/// with a non-`Auto` strategy still takes precedence at run time.
pub fn compile_with_strategy(clause: &MatchClause, strategy: JoinStrategy) -> Result<PlanSet> {
    // Assign variable slots in order of first appearance.
    let mut variables: Vec<String> = Vec::new();
    for part in &clause.parts {
        let var = match part {
            PatternPart::Node(n) => n.var.as_ref(),
            PatternPart::Edge(e) => e.var.as_ref(),
            PatternPart::Regex(_) => None,
        };
        if let Some(name) = var {
            if variables.contains(name) {
                return Err(QueryError::InvalidVariable(name.clone()));
            }
            variables.push(name.clone());
        }
    }

    // Each pattern part contributes a list of alternative op sequences; the plan set
    // is their cartesian product.
    let mut alternatives: Vec<Vec<PlanOp>> = vec![Vec::new()];
    for part in &clause.parts {
        let part_alternatives = compile_part(part, &variables)?;
        let mut next = Vec::with_capacity(alternatives.len() * part_alternatives.len());
        for prefix in &alternatives {
            for suffix in &part_alternatives {
                let mut combined = prefix.clone();
                combined.extend(suffix.iter().cloned());
                next.push(combined);
            }
        }
        alternatives = next;
    }

    let plans = alternatives.into_iter().map(assemble_plan).collect::<Result<Vec<_>>>()?;
    Ok(PlanSet { plans, variables, graph: clause.graph.clone(), join_strategy: strategy })
}

/// Intermediate op used during compilation: either a structural micro-op or a
/// temporal shift separating two segments.
#[derive(Debug, Clone, PartialEq)]
enum PlanOp {
    Micro(MicroOp),
    Shift(Shift),
}

fn assemble_plan(ops: Vec<PlanOp>) -> Result<EnginePlan> {
    let mut plan = EnginePlan { segments: vec![Segment::default()], shifts: Vec::new() };
    for op in ops {
        match op {
            PlanOp::Micro(m) => plan.segments.last_mut().expect("at least one segment").ops.push(m),
            PlanOp::Shift(s) => {
                plan.shifts.push(s);
                plan.segments.push(Segment::default());
            }
        }
    }
    Ok(plan)
}

fn slot_of(variables: &[String], name: &str) -> usize {
    variables
        .iter()
        .position(|v| v == name)
        .expect("variable was registered during slot assignment")
}

fn compile_part(part: &PatternPart, variables: &[String]) -> Result<Vec<Vec<PlanOp>>> {
    match part {
        PatternPart::Node(node) => Ok(vec![compile_node(node, variables)]),
        PatternPart::Edge(edge) => Ok(vec![compile_edge(edge, variables)]),
        PatternPart::Regex(regex) => compile_regex(regex, variables),
    }
}

fn compile_node(node: &NodePattern, variables: &[String]) -> Vec<PlanOp> {
    let filter = ObjFilter::from_pattern(Some(true), node.label.as_deref(), &node.constraints);
    let mut ops = vec![PlanOp::Micro(MicroOp::Filter(filter))];
    if let Some(var) = &node.var {
        ops.push(PlanOp::Micro(MicroOp::Bind(slot_of(variables, var))));
    }
    ops
}

fn compile_edge(edge: &EdgePattern, variables: &[String]) -> Vec<PlanOp> {
    let hop = match edge.direction {
        Direction::Out => HopDirection::Forward,
        Direction::In => HopDirection::Backward,
    };
    let filter = ObjFilter::from_pattern(Some(false), edge.label.as_deref(), &edge.constraints);
    let mut ops = vec![PlanOp::Micro(MicroOp::Hop(hop)), PlanOp::Micro(MicroOp::Filter(filter))];
    if let Some(var) = &edge.var {
        ops.push(PlanOp::Micro(MicroOp::Bind(slot_of(variables, var))));
    }
    ops.push(PlanOp::Micro(MicroOp::Hop(hop)));
    ops
}

/// Expands a regex into alternatives of op sequences (distributing unions).
fn compile_regex(regex: &Regex, variables: &[String]) -> Result<Vec<Vec<PlanOp>>> {
    let mut out = Vec::new();
    for seq in &regex.alternatives {
        // Each item contributes its own alternatives; combine by cartesian product.
        let mut seq_alternatives: Vec<Vec<PlanOp>> = vec![Vec::new()];
        for item in &seq.items {
            let item_alternatives = compile_regex_item(item, variables)?;
            let mut next = Vec::with_capacity(seq_alternatives.len() * item_alternatives.len());
            for prefix in &seq_alternatives {
                for suffix in &item_alternatives {
                    let mut combined = prefix.clone();
                    combined.extend(suffix.iter().cloned());
                    next.push(combined);
                }
            }
            seq_alternatives = next;
        }
        out.extend(seq_alternatives);
    }
    Ok(out)
}

fn compile_regex_item(item: &RegexItem, variables: &[String]) -> Result<Vec<Vec<PlanOp>>> {
    let unsupported = |reason: &str| -> Result<Vec<Vec<PlanOp>>> {
        Err(QueryError::UnsupportedFragment {
            expression: format!("{item:?}"),
            reason: reason.to_owned(),
        })
    };
    match (&item.atom, item.repeat) {
        (RegexAtom::Axis(Axis::Fwd), None) => {
            Ok(vec![vec![PlanOp::Micro(MicroOp::Hop(HopDirection::Forward))]])
        }
        (RegexAtom::Axis(Axis::Bwd), None) => {
            Ok(vec![vec![PlanOp::Micro(MicroOp::Hop(HopDirection::Backward))]])
        }
        (RegexAtom::Axis(Axis::Fwd | Axis::Bwd), Some(_)) => {
            unsupported("structural navigation under a repetition is outside the engine fragment")
        }
        (RegexAtom::Axis(axis @ (Axis::Next | Axis::Prev)), repeat) => {
            let (min, max) = match repeat {
                None => (1, Some(1)),
                Some((n, m)) => (n, m),
            };
            Ok(vec![vec![PlanOp::Shift(Shift { forward: *axis == Axis::Next, min, max })]])
        }
        (RegexAtom::Label(label), None) => {
            let filter = ObjFilter { label: Some(label.clone()), ..Default::default() };
            Ok(vec![vec![PlanOp::Micro(MicroOp::Filter(filter))]])
        }
        (RegexAtom::Props(constraints), None) => {
            let filter = ObjFilter::from_pattern(None, None, constraints);
            Ok(vec![vec![PlanOp::Micro(MicroOp::Filter(filter))]])
        }
        (RegexAtom::Label(_) | RegexAtom::Props(_), Some(_)) => unsupported(
            "repeating a test is a no-op the engine does not accept; drop the indicator",
        ),
        (RegexAtom::Group(inner), None) => compile_regex(inner, variables),
        (RegexAtom::Group(inner), Some(repeat)) => {
            // A repeated group is supported only when it is purely temporal (a single
            // NEXT/PREV possibly with an existing indicator), e.g. (NEXT)[0,12].
            if let Some(shift) = purely_temporal_group(inner) {
                let combined = combine_repetition(shift, repeat);
                match combined {
                    Some(s) => Ok(vec![vec![PlanOp::Shift(s)]]),
                    None => unsupported("nested temporal repetitions with incompatible bounds"),
                }
            } else {
                unsupported("repetition of a composite group is outside the engine fragment")
            }
        }
    }
}

/// If the group consists of exactly one alternative with exactly one temporal axis
/// item, returns the corresponding shift.
fn purely_temporal_group(regex: &Regex) -> Option<Shift> {
    if regex.alternatives.len() != 1 || regex.alternatives[0].items.len() != 1 {
        return None;
    }
    let item = &regex.alternatives[0].items[0];
    match (&item.atom, item.repeat) {
        (RegexAtom::Axis(axis @ (Axis::Next | Axis::Prev)), repeat) => {
            let (min, max) = match repeat {
                None => (1, Some(1)),
                Some((n, m)) => (n, m),
            };
            Some(Shift { forward: *axis == Axis::Next, min, max })
        }
        _ => None,
    }
}

/// Composes an inner shift with an outer repetition: `(NEXT[a,b])[n,m]` moves between
/// `a·n` and `b·m` steps, provided the set of reachable step counts — the union of
/// `[a·k, b·k]` over `k ∈ [n, m]` — is a contiguous range (otherwise a single shift
/// cannot represent it and the construct is rejected).  Open-ended bounds stay
/// open-ended.
fn combine_repetition(inner: Shift, (n, m): (u32, Option<u32>)) -> Option<Shift> {
    let a = inner.min as u64;
    let min = a.checked_mul(n as u64)?;
    let b = match inner.max {
        Some(b) => b as u64,
        // An open-ended inner bound makes every count ≥ a·n reachable.  With n = 0 the
        // zero-repetition case adds the count 0, which is only contiguous with the
        // rest when a ≤ 1.
        None => {
            if n == 0 && a > 1 {
                return None;
            }
            return Some(Shift {
                forward: inner.forward,
                min: u32::try_from(min).ok()?,
                max: None,
            });
        }
    };
    // Contiguity: consecutive repetition counts k and k+1 must produce overlapping or
    // adjacent ranges, i.e. a·(k+1) ≤ b·k + 1.  The gap a·(k+1) − b·k is largest at the
    // smallest k, so checking k = n suffices (for m = None the counts are unbounded and
    // the same check applies).
    let upper_k = m.map(|m| m as u64);
    if upper_k != Some(n as u64) {
        let k = n as u64;
        if a.checked_mul(k + 1)? > b.checked_mul(k)?.checked_add(1)? {
            return None;
        }
    }
    let max = match upper_k {
        Some(m) => Some(u32::try_from(b.checked_mul(m)?).ok()?),
        None => None,
    };
    Some(Shift { forward: inner.forward, min: u32::try_from(min).ok()?, max })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trpq::parser::parse_match;
    use trpq::queries::QueryId;

    fn compile_text(text: &str) -> PlanSet {
        compile(&parse_match(text).unwrap()).unwrap()
    }

    #[test]
    fn q1_compiles_to_a_single_filter_segment() {
        let plan_set = compile_text("MATCH (x:Person) ON contact_tracing");
        assert_eq!(plan_set.variables, vec!["x".to_string()]);
        assert_eq!(plan_set.plans.len(), 1);
        let plan = &plan_set.plans[0];
        assert!(plan.is_purely_structural());
        assert_eq!(plan.segments.len(), 1);
        assert_eq!(plan.segments[0].ops.len(), 2); // Filter + Bind
        assert_eq!(plan.segments[0].bound_slots(), vec![0]);
    }

    #[test]
    fn q5_compiles_to_hop_filter_hop() {
        let plan_set = compile_text(
            "MATCH (x:Person {risk = 'low'})-[z:meets]->(y:Person {risk = 'high'}) ON g",
        );
        assert_eq!(plan_set.variables, vec!["x", "z", "y"]);
        let ops = &plan_set.plans[0].segments[0].ops;
        // x filter, bind, hop, edge filter, bind, hop, y filter, bind.
        assert_eq!(ops.len(), 8);
        assert!(matches!(ops[2], MicroOp::Hop(HopDirection::Forward)));
        assert!(matches!(ops[5], MicroOp::Hop(HopDirection::Forward)));
    }

    #[test]
    fn temporal_operators_split_segments() {
        let plan_set =
            compile_text("MATCH (x:Person {test = 'pos'})-/PREV/FWD/:visits/FWD/-(z:Room) ON g");
        let plan = &plan_set.plans[0];
        assert_eq!(plan.segments.len(), 2);
        assert_eq!(plan.shifts, vec![Shift { forward: false, min: 1, max: Some(1) }]);
        // Segment 1 holds the structural part after PREV plus the Room filter/bind.
        assert!(plan.segments[1].ops.len() >= 4);
        assert_eq!(plan.segments[1].bound_slots(), vec![1]);

        let star =
            compile_text("MATCH (x:Person {test = 'pos'})-/PREV*/FWD/:visits/FWD/-(z:Room) ON g");
        assert_eq!(star.plans[0].shifts, vec![Shift { forward: false, min: 0, max: None }]);

        let bounded = compile_text(
            "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT[0,12]/-({test = 'pos'}) ON g",
        );
        assert_eq!(bounded.plans[0].shifts, vec![Shift { forward: true, min: 0, max: Some(12) }]);
    }

    #[test]
    fn unions_expand_into_multiple_plans() {
        let plan_set = compile(&QueryId::Q12.clause()).unwrap();
        assert_eq!(plan_set.plans.len(), 2);
        // Both alternatives end with the same NEXT[0,12] shift and a final filter.
        for plan in &plan_set.plans {
            assert_eq!(plan.segments.len(), 2);
            assert_eq!(plan.shifts, vec![Shift { forward: true, min: 0, max: Some(12) }]);
        }
        // The meets alternative is shorter than the visits alternative.
        let lengths: Vec<usize> = plan_set.plans.iter().map(|p| p.segments[0].ops.len()).collect();
        assert!(lengths[0] != lengths[1]);
    }

    #[test]
    fn all_benchmark_queries_compile() {
        for id in QueryId::ALL {
            let plan_set = compile(&id.clause()).unwrap_or_else(|e| panic!("{}: {e}", id.name()));
            assert!(!plan_set.plans.is_empty());
            let expects_shifts = id.uses_temporal_navigation();
            assert_eq!(!plan_set.is_purely_structural(), expects_shifts, "{}", id.name());
        }
    }

    #[test]
    fn unsupported_constructs_are_rejected() {
        // Structural navigation under a repetition.
        let err = compile(&parse_match("MATCH (x)-/FWD*/-(y) ON g").unwrap()).unwrap_err();
        assert!(matches!(err, QueryError::UnsupportedFragment { .. }));
        // Repetition of a composite group.
        let err =
            compile(&parse_match("MATCH (x)-/(FWD/NEXT)[0,3]/-(y) ON g").unwrap()).unwrap_err();
        assert!(matches!(err, QueryError::UnsupportedFragment { .. }));
        // Repeating a test.
        let err = compile(&parse_match("MATCH (x)-/:Room[0,2]/-(y) ON g").unwrap()).unwrap_err();
        assert!(matches!(err, QueryError::UnsupportedFragment { .. }));
    }

    #[test]
    fn repeated_purely_temporal_groups_compose() {
        let plan_set = compile_text("MATCH (x)-/(NEXT)[0,12]/-(y) ON g");
        assert_eq!(plan_set.plans[0].shifts, vec![Shift { forward: true, min: 0, max: Some(12) }]);
        let plan_set = compile_text("MATCH (x)-/(PREV[2,3])[2,2]/-(y) ON g");
        assert_eq!(plan_set.plans[0].shifts, vec![Shift { forward: false, min: 4, max: Some(6) }]);
    }

    #[test]
    fn duplicate_variables_are_rejected() {
        let err = compile(&parse_match("MATCH (x)-[x:meets]->(y) ON g").unwrap()).unwrap_err();
        assert!(matches!(err, QueryError::InvalidVariable(_)));
    }
}
