//! Step 3 of query evaluation (Section VI): expansion of interval-based intermediate
//! results into point-based bindings.
//!
//! Queries without temporal navigation keep their (coalesced) interval bindings.  For
//! queries with temporal navigation, the time points of the different segments are
//! correlated through the temporal links, so the final binding table must be
//! point-based: each chain is expanded by enumerating, segment by segment, the time
//! points that satisfy the link constraints — a [`crate::plan::Shift`]'s step bounds
//! for plain temporal moves, or the chain's recorded [`crate::chain::TimeLag`] for
//! time-aware closure boundaries.  Segments that bind no output variable and are not needed to
//! constrain a later bound segment are only checked for feasibility, never enumerated.

use tgraph::Time;

use crate::bindings::{Binding, BindingTable};
use crate::chain::Chain;
use crate::plan::{EnginePlan, TemporalLink};

/// Expands the chains produced by a plan into binding rows and appends them to the
/// table.
pub fn expand_chains(
    plan: &EnginePlan,
    num_slots: usize,
    chains: &[Chain],
    table: &mut BindingTable,
) {
    for chain in chains {
        expand_chain(plan, num_slots, chain, table);
    }
}

/// Expands one chunk of chains into a sorted, deduplicated run of binding rows.
///
/// This is the unit of work on the executor's sorted (merge / auto join strategy)
/// path: each parallel worker returns an ordered run, and the final binding table is
/// assembled with a k-way merge of the runs instead of sorting their concatenation.
pub fn expand_chunk_sorted(
    plan: &EnginePlan,
    columns: &[String],
    num_slots: usize,
    chains: &[Chain],
) -> Vec<Vec<crate::bindings::Binding>> {
    let mut partial = BindingTable::new(columns.to_vec());
    expand_chains(plan, num_slots, chains, &mut partial);
    partial.sort_dedup();
    partial.into_rows()
}

fn expand_chain(plan: &EnginePlan, num_slots: usize, chain: &Chain, table: &mut BindingTable) {
    if plan.is_purely_structural() {
        // All bindings share the chain's final interval, interpreted snapshot-wise.
        let mut row = Vec::with_capacity(num_slots);
        for slot in 0..num_slots {
            let Some(var) = chain.bound.iter().find(|b| b.slot as usize == slot) else {
                debug_assert!(false, "variable slot {slot} was never bound");
                return;
            };
            row.push(Binding::over_interval(var.object, chain.interval));
        }
        table.push_row(row);
        return;
    }

    let intervals = chain.all_segment_intervals();
    // The last segment that actually binds an output variable; later segments only
    // need a feasibility check.
    let last_bound_segment = chain.bound.iter().map(|b| b.segment as usize).max().unwrap_or(0);
    // Per link, the index into the chain's recorded lags (closure links only),
    // precomputed once so the per-point admissibility checks below stay O(1).
    let lag_indices: Vec<Option<usize>> = plan
        .links
        .iter()
        .scan(0usize, |next, link| match link {
            TemporalLink::Shift(_) => Some(None),
            TemporalLink::Closure(_) => {
                let index = *next;
                *next += 1;
                Some(Some(index))
            }
        })
        .collect();
    let ctx = Expansion { plan, chain, intervals: &intervals, lag_indices, last_bound_segment };
    let mut times: Vec<Time> = Vec::with_capacity(intervals.len());
    enumerate(&ctx, num_slots, 0, &mut times, table);
}

/// The per-chain context of one point expansion.
struct Expansion<'a> {
    plan: &'a EnginePlan,
    chain: &'a Chain,
    intervals: &'a [tgraph::Interval],
    lag_indices: Vec<Option<usize>>,
    last_bound_segment: usize,
}

impl Expansion<'_> {
    /// True if the temporal link entering `segment` admits moving from time `from` to
    /// time `to` for this chain: a plain shift checks its step bounds, a time-aware
    /// closure checks the time skew the chain recorded while crossing it.
    fn link_admits(&self, segment: usize, from: Time, to: Time) -> bool {
        match &self.plan.links[segment - 1] {
            TemporalLink::Shift(shift) => shift.admits(from, to),
            TemporalLink::Closure(_) => {
                debug_assert!(
                    self.lag_indices[segment - 1].is_some(),
                    "closure links carry a lag index"
                );
                match self.lag_indices[segment - 1] {
                    Some(index) => self.chain.lags[index].admits(from, to),
                    // Unreachable by construction; admitting keeps the
                    // expansion total without panicking on the hot path.
                    None => true,
                }
            }
        }
    }
}

/// Recursively enumerates the time point of segment `segment`, given the time points
/// chosen for the previous segments, and emits a binding row once every bound segment
/// has a time.
fn enumerate(
    ctx: &Expansion<'_>,
    num_slots: usize,
    segment: usize,
    times: &mut Vec<Time>,
    table: &mut BindingTable,
) {
    if segment > ctx.last_bound_segment {
        // All remaining segments are unbound: check that a consistent completion
        // exists, then emit the row.
        // `segment > last_bound_segment >= 0` implies at least one prior push.
        debug_assert!(!times.is_empty(), "at least one segment enumerated");
        if let Some(&last) = times.last() {
            if feasible(ctx, segment, last) {
                emit_row(ctx.chain, num_slots, times, table);
            }
        }
        return;
    }
    let window = ctx.intervals[segment];
    for t in window.points() {
        if segment > 0 && !ctx.link_admits(segment, times[segment - 1], t) {
            continue;
        }
        times.push(t);
        if segment == ctx.last_bound_segment && segment + 1 >= ctx.intervals.len() {
            emit_row(ctx.chain, num_slots, times, table);
        } else {
            enumerate(ctx, num_slots, segment + 1, times, table);
        }
        times.pop();
    }
}

/// True if segments `segment..` can be assigned time points consistent with the link
/// constraints, given that segment `segment - 1` was assigned `previous`.
fn feasible(ctx: &Expansion<'_>, segment: usize, previous: Time) -> bool {
    if segment >= ctx.intervals.len() {
        return true;
    }
    ctx.intervals[segment]
        .points()
        .any(|t| ctx.link_admits(segment, previous, t) && feasible(ctx, segment + 1, t))
}

fn emit_row(chain: &Chain, num_slots: usize, times: &[Time], table: &mut BindingTable) {
    let mut row = Vec::with_capacity(num_slots);
    for slot in 0..num_slots {
        let Some(var) = chain.bound.iter().find(|b| b.slot as usize == slot) else {
            debug_assert!(false, "variable slot {slot} was never bound");
            return;
        };
        row.push(Binding::at_point(var.object, times[var.segment as usize]));
    }
    table.push_row(row);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::TimeRef;
    use crate::chain::{BoundVar, Position, TimeLag};
    use crate::plan::{ClosureOp, Segment, Shift};
    use tgraph::{Interval, NodeId, Object};

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    fn structural_plan() -> EnginePlan {
        EnginePlan { segments: vec![Segment::default()], links: vec![] }
    }

    fn shifted_plan(shift: Shift) -> EnginePlan {
        EnginePlan {
            segments: vec![Segment::default(), Segment::default()],
            links: vec![TemporalLink::Shift(shift)],
        }
    }

    fn closure_plan() -> EnginePlan {
        EnginePlan {
            segments: vec![Segment::default(), Segment::default()],
            links: vec![TemporalLink::Closure(ClosureOp::structural(vec![vec![]], 0, None))],
        }
    }

    fn obj() -> Object {
        Object::Node(NodeId(0))
    }

    #[test]
    fn structural_chains_keep_interval_bindings() {
        let chain = Chain {
            seed: 0,
            seg_intervals: vec![],
            lags: vec![],
            bound: vec![BoundVar { slot: 0, segment: 0, object: obj() }],
            position: Position::NodeRow(0),
            interval: iv(2, 5),
        };
        let mut table = BindingTable::new(vec!["x".into()]);
        expand_chains(&structural_plan(), 1, &[chain], &mut table);
        assert_eq!(table.len(), 1);
        assert_eq!(table.rows()[0][0].time, TimeRef::Interval(iv(2, 5)));
        assert_eq!(table.point_tuple_count(), 4);
    }

    #[test]
    fn point_expansion_respects_shift_constraints() {
        // Two segments on the same object: seg0 over [3,4], seg1 over [5,9], linked by
        // NEXT[2,4]; both segments bind a variable.
        let chain = Chain {
            seed: 0,
            seg_intervals: vec![iv(3, 4)],
            lags: vec![],
            bound: vec![
                BoundVar { slot: 0, segment: 0, object: obj() },
                BoundVar { slot: 1, segment: 1, object: obj() },
            ],
            position: Position::NodeRow(0),
            interval: iv(5, 9),
        };
        let plan = shifted_plan(Shift { forward: true, min: 2, max: Some(4) });
        let mut table = BindingTable::new(vec!["x".into(), "y".into()]);
        expand_chains(&plan, 2, &[chain], &mut table);
        table.sort_dedup();
        let pairs: Vec<(Time, Time)> = table
            .rows()
            .iter()
            .map(|r| (r[0].time.as_point().unwrap(), r[1].time.as_point().unwrap()))
            .collect();
        // Valid pairs: t0 in [3,4], t1 in [5,9], t1 - t0 in [2,4].
        let expected: Vec<(Time, Time)> = (3..=4u64)
            .flat_map(|t0| (5..=9u64).map(move |t1| (t0, t1)))
            .filter(|(t0, t1)| t1 - t0 >= 2 && t1 - t0 <= 4)
            .collect();
        assert_eq!(pairs.len(), expected.len());
        for p in expected {
            assert!(pairs.contains(&p), "missing pair {p:?}");
        }
    }

    #[test]
    fn trailing_unbound_segments_are_feasibility_checked_not_enumerated() {
        // Only segment 0 binds a variable; segment 1 must merely be reachable.
        let chain = Chain {
            seed: 0,
            seg_intervals: vec![iv(0, 6)],
            lags: vec![],
            bound: vec![BoundVar { slot: 0, segment: 0, object: obj() }],
            position: Position::NodeRow(0),
            interval: iv(8, 9),
        };
        let plan = shifted_plan(Shift { forward: true, min: 0, max: Some(2) });
        let mut table = BindingTable::new(vec!["x".into()]);
        expand_chains(&plan, 1, &[chain], &mut table);
        table.sort_dedup();
        // Only departure times 6, 7 … wait: departures are [0,6] and arrivals [8,9]
        // with a maximum shift of 2, so only t0 = 6 (→ 8) is feasible.
        let times: Vec<Time> = table.rows().iter().map(|r| r[0].time.as_point().unwrap()).collect();
        assert_eq!(times, vec![6]);
    }

    #[test]
    fn backward_shifts_expand_correctly() {
        let chain = Chain {
            seed: 0,
            seg_intervals: vec![iv(7, 8)],
            lags: vec![],
            bound: vec![
                BoundVar { slot: 0, segment: 0, object: obj() },
                BoundVar { slot: 1, segment: 1, object: obj() },
            ],
            position: Position::NodeRow(0),
            interval: iv(2, 6),
        };
        let plan = shifted_plan(Shift { forward: false, min: 1, max: Some(1) });
        let mut table = BindingTable::new(vec!["x".into(), "y".into()]);
        expand_chains(&plan, 2, &[chain], &mut table);
        table.sort_dedup();
        let pairs: Vec<(Time, Time)> = table
            .rows()
            .iter()
            .map(|r| (r[0].time.as_point().unwrap(), r[1].time.as_point().unwrap()))
            .collect();
        assert_eq!(pairs, vec![(7, 6)]);
    }

    #[test]
    fn closure_links_expand_through_the_recorded_lag() {
        // A time-aware closure boundary: the chain carries the admissible skew
        // itself instead of reading it off the plan.
        let chain = Chain {
            seed: 0,
            seg_intervals: vec![iv(3, 5)],
            lags: vec![TimeLag { lo: 2, hi: 3 }],
            bound: vec![
                BoundVar { slot: 0, segment: 0, object: obj() },
                BoundVar { slot: 1, segment: 1, object: obj() },
            ],
            position: Position::NodeRow(0),
            interval: iv(6, 7),
        };
        let mut table = BindingTable::new(vec!["x".into(), "y".into()]);
        expand_chains(&closure_plan(), 2, &[chain], &mut table);
        table.sort_dedup();
        let pairs: Vec<(Time, Time)> = table
            .rows()
            .iter()
            .map(|r| (r[0].time.as_point().unwrap(), r[1].time.as_point().unwrap()))
            .collect();
        // t0 in [3,5], t1 in [6,7], t1 − t0 in [2,3].
        assert_eq!(pairs, vec![(3, 6), (4, 6), (4, 7), (5, 7)]);

        // A negative lag (backward navigation inside the closure).
        let backward = Chain {
            seed: 0,
            seg_intervals: vec![iv(6, 7)],
            lags: vec![TimeLag { lo: -2, hi: -2 }],
            bound: vec![
                BoundVar { slot: 0, segment: 0, object: obj() },
                BoundVar { slot: 1, segment: 1, object: obj() },
            ],
            position: Position::NodeRow(0),
            interval: iv(3, 5),
        };
        let mut table = BindingTable::new(vec!["x".into(), "y".into()]);
        expand_chains(&closure_plan(), 2, &[backward], &mut table);
        table.sort_dedup();
        let pairs: Vec<(Time, Time)> = table
            .rows()
            .iter()
            .map(|r| (r[0].time.as_point().unwrap(), r[1].time.as_point().unwrap()))
            .collect();
        assert_eq!(pairs, vec![(6, 4), (7, 5)]);
    }
}
