//! Step 2 of query evaluation (Section VI): interval-based reasoning for temporal
//! navigation.
//!
//! A [`Shift`] moves the cursor in time on the object the previous
//! segment ended on.  In the practical language every traversed temporal object must
//! exist, so the move is confined to the maximal existence interval containing the
//! departure times; the arrival window is computed with interval arithmetic and
//! intersected with the object's rows, which both starts the next segment and prunes
//! matches that can never satisfy the temporal constraint (the pruning the paper
//! describes for Q7).

use crate::chain::{Chain, Position};
use crate::plan::Shift;
use crate::relations::GraphRelations;

/// Applies a temporal shift to every chain, finishing their current segment and
/// seeding the next one on the same object at the shifted times.
pub fn apply_shift(graph: &GraphRelations, chains: Vec<Chain>, shift: &Shift) -> Vec<Chain> {
    let mut out = Vec::with_capacity(chains.len());
    for chain in chains {
        let object = chain.position.object(graph);
        // The departure interval lies inside a single maximal existence interval of
        // the object (rows never span existence gaps), and the practical language
        // requires every intermediate time point to exist, so arrivals stay inside it.
        let Some(within) = graph.existence_interval_at(object, chain.interval.start()) else {
            continue;
        };
        let Some(arrival) = shift.arrival_from_interval(chain.interval, within) else {
            continue;
        };
        let row_indices: Vec<u32> = match object {
            tgraph::Object::Node(node) => graph.rows_of_node(node).to_vec(),
            tgraph::Object::Edge(edge) => graph.rows_of_edge(edge).to_vec(),
        };
        for row in row_indices {
            let (position, row_interval) = match chain.position {
                Position::NodeRow(_) => {
                    (Position::NodeRow(row), graph.node_rows()[row as usize].interval)
                }
                Position::EdgeRow(_) => {
                    (Position::EdgeRow(row), graph.edge_rows()[row as usize].interval)
                }
            };
            if let Some(interval) = arrival.intersect(&row_interval) {
                let mut next = chain.clone();
                next.seg_intervals.push(chain.interval);
                next.position = position;
                next.interval = interval;
                out.push(next);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{Interval, ItpgBuilder};

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    /// Eve exists on [2,8] and again on [10,11], testing positive on [7,8].
    fn graph() -> GraphRelations {
        let mut b = ItpgBuilder::new();
        let eve = b.add_node("eve", "Person").unwrap();
        b.add_existence(eve, iv(2, 8)).unwrap();
        b.add_existence(eve, iv(10, 11)).unwrap();
        b.set_property(eve, "test", "pos", iv(7, 8)).unwrap();
        GraphRelations::from_itpg(&b.domain(iv(0, 12)).build().unwrap())
    }

    fn chain_at(graph: &GraphRelations, row: usize) -> Chain {
        Chain::seed(row as u32, graph)
    }

    #[test]
    fn backward_shift_stays_within_the_existence_interval() {
        let g = graph();
        // Row 1 is eve's [7,8] "pos" state (row 0 is [2,6], row 2 is [10,11]).
        let pos_row = g
            .node_rows()
            .iter()
            .position(|r| r.prop("test").is_some())
            .expect("positive-test row exists");
        let chain = chain_at(&g, pos_row);
        assert_eq!(chain.interval, iv(7, 8));
        // PREV*: arrival anywhere earlier within the existence interval [2,8].
        let shifted =
            apply_shift(&g, vec![chain.clone()], &Shift { forward: false, min: 0, max: None });
        let intervals: Vec<Interval> = shifted.iter().map(|c| c.interval).collect();
        assert_eq!(intervals.len(), 2); // lands on the [2,6] row and the [7,8] row
        assert!(intervals.contains(&iv(2, 6)));
        assert!(intervals.contains(&iv(7, 8)));
        assert!(shifted.iter().all(|c| c.seg_intervals == vec![iv(7, 8)]));

        // PREV[0,1]: at most one step back.
        let shifted = apply_shift(&g, vec![chain], &Shift { forward: false, min: 0, max: Some(1) });
        let intervals: Vec<Interval> = shifted.iter().map(|c| c.interval).collect();
        assert!(intervals.contains(&iv(6, 6)));
        assert!(intervals.contains(&iv(7, 8)));
    }

    #[test]
    fn forward_shift_cannot_jump_over_an_existence_gap() {
        let g = graph();
        let chain = chain_at(&g, 0); // [2,6] state

        // NEXT*: can reach up to time 8, but never the [10,11] state across the gap.
        let shifted = apply_shift(&g, vec![chain], &Shift { forward: true, min: 0, max: None });
        assert!(shifted.iter().all(|c| c.interval.end() <= 8));
        assert_eq!(shifted.len(), 2);
    }

    #[test]
    fn minimum_step_counts_prune_departures() {
        let g = graph();
        let chain = chain_at(&g, 0); // [2,6]

        // NEXT[5,_]: only departures early enough can move 5 steps while existing.
        let shifted = apply_shift(&g, vec![chain], &Shift { forward: true, min: 5, max: None });
        // Arrival window is [7, 8]: reachable only from departure times 2 or 3.
        assert_eq!(shifted.len(), 1);
        assert_eq!(shifted[0].interval, iv(7, 8));
        // A shift larger than the existence interval yields nothing.
        let none = apply_shift(
            &g,
            vec![chain_at(&g, 0)],
            &Shift { forward: true, min: 12, max: Some(20) },
        );
        assert!(none.is_empty());
    }
}
