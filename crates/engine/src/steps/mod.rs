//! The three evaluation steps of Section VI, plus the closure fixpoint operator.

pub mod closure;
pub mod expand;
pub mod structural;
pub mod temporal;

use std::sync::atomic::{AtomicU64, AtomicUsize};

/// Counters accumulated while running Steps 1–2, shared across the executor's worker
/// threads (hence the atomics).
#[derive(Debug, Default)]
pub struct StepStats {
    /// Number of closure fixpoint rounds executed: one count per application of a
    /// [`crate::plan::ClosureOp`]'s inner pipeline to a frontier.  Zero for plans
    /// without structural repetition.
    pub closure_rounds: AtomicUsize,
    /// Number of *time-crossing* closure rounds executed: applications of a repeated
    /// group mixing structural and temporal navigation (`(FWD/NEXT)*` and friends) to
    /// a band frontier.  Zero for plans without mixed repetition.
    pub time_closure_rounds: AtomicUsize,
    /// Number of structural hop joins resolved to the hash algorithm (per hop batch,
    /// not per cursor) — the decisions `JoinStrategy::Auto` actually took.
    pub hash_joins: AtomicUsize,
    /// Number of structural hop joins resolved to the gallop merge algorithm.
    pub merge_joins: AtomicUsize,
    /// Nanoseconds spent inside closure fixpoints (structural and time-crossing),
    /// accumulated only when [`StepStats::timed`] is set.  Feeds the
    /// `query/step12/closure` span.
    pub closure_nanos: AtomicU64,
    /// Whether the closure entry points read the clock to accumulate
    /// [`StepStats::closure_nanos`].  Off by default; the executor sets it from
    /// `ExecutionOptions::telemetry`, so a telemetry-off run never reads the clock.
    pub timed: bool,
}
