//! The three evaluation steps of Section VI, plus the closure fixpoint operator.

pub mod closure;
pub mod expand;
pub mod structural;
pub mod temporal;

use std::sync::atomic::AtomicUsize;

/// Counters accumulated while running Steps 1–2, shared across the executor's worker
/// threads (hence the atomics).
#[derive(Debug, Default)]
pub struct StepStats {
    /// Number of closure fixpoint rounds executed: one count per application of a
    /// [`crate::plan::ClosureOp`]'s inner pipeline to a frontier.  Zero for plans
    /// without structural repetition.
    pub closure_rounds: AtomicUsize,
    /// Number of *time-crossing* closure rounds executed: applications of a repeated
    /// group mixing structural and temporal navigation (`(FWD/NEXT)*` and friends) to
    /// a band frontier.  Zero for plans without mixed repetition.
    pub time_closure_rounds: AtomicUsize,
}
