//! The three evaluation steps of Section VI.

pub mod expand;
pub mod structural;
pub mod temporal;
