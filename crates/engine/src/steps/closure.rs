//! The interval-aware transitive-closure operator: fixpoint evaluation of
//! `(…)*` / `(…)[n,m]` over structural sub-expressions.
//!
//! A [`ClosureOp`] repeats a purely structural pipeline (hops and filters, possibly
//! with union alternatives) between `min` and `max` times.  Evaluation is *semi-naive*
//! (delta-driven): after the mandatory first `min` iterations, each round applies the
//! inner pipeline only to the `(source, position, interval)` triples discovered in the
//! previous round, subtracts the coverage already reached (per source and row, as a
//! coalesced [`IntervalSet`]), and feeds only the genuinely new intervals into the
//! next round.  Because all structural micro-operations act pointwise in time —
//! filters clamp and hops intersect validity intervals — exploring a time point once,
//! at its first discovery, is sufficient; re-deriving it later can only reproduce
//! already-known results.  The time domain and the row relations are finite, so the
//! accumulated coverage grows monotonically and the loop terminates.
//!
//! `[n, m]` bounds are honoured by tracking iteration depth: rounds 1…n run without
//! accumulation (reaching a row earlier than depth `n` does not make it part of the
//! result), and the semi-naive phase runs at most `m − n` further rounds.  Reaching a
//! time point at its minimal depth maximises the remaining iteration budget, so the
//! semi-naive pruning stays exact even under a finite upper bound.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use dataflow::JoinStrategy;
use tgraph::{Interval, IntervalSet};

use crate::chain::Position;
use crate::plan::ClosureOp;
use crate::relations::GraphRelations;
use crate::steps::structural::{apply_ops, StructuralCursor};
use crate::steps::StepStats;

/// One frontier entry of the fixpoint: the index of the input cursor it descends
/// from, the row it sits on, and the validity interval it covers.  This is the
/// lightweight "delta" cursor the structural pipeline is driven with inside the loop;
/// the full input cursors are only touched again when the results are emitted.
#[derive(Debug, Clone)]
struct FrontierEntry {
    /// Index into the closure's input cursor batch.
    source: u32,
    /// Current row.
    position: Position,
    /// Validity interval of the partial traversal.
    interval: Interval,
}

impl StructuralCursor for FrontierEntry {
    fn position(&self) -> Position {
        self.position
    }

    fn interval(&self) -> Interval {
        self.interval
    }

    fn moved_to(&self, position: Position, interval: Interval) -> Self {
        FrontierEntry { source: self.source, position, interval }
    }

    fn with_interval(mut self, interval: Interval) -> Self {
        self.interval = interval;
        self
    }

    fn record_binding(&mut self, _slot: u32, _graph: &GraphRelations) {
        // Fails identically in debug and release: silently dropping a binding would
        // corrupt query output without a diagnostic.
        unreachable!("the compiler never places a Bind inside a closure");
    }
}

/// Applies a closure operator to a batch of cursors, returning one output cursor per
/// reachable `(source, row, coalesced interval)` triple.  The output is emitted in
/// canonical `(source, position, interval)` order, so its cardinality and content are
/// independent of the join strategy used for the inner hops.
pub fn apply_closure<C: StructuralCursor>(
    graph: &GraphRelations,
    cursors: Vec<C>,
    closure: &ClosureOp,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<C> {
    // An unsatisfiable indicator ([n, m] with n > m) relates nothing.  The compiler
    // normalises these away, but plans can also be built programmatically.
    if cursors.is_empty() || closure.max.is_some_and(|m| m < closure.min) {
        return Vec::new();
    }

    let seed: Vec<FrontierEntry> = cursors
        .iter()
        .enumerate()
        .map(|(i, c)| FrontierEntry {
            source: i as u32,
            position: c.position(),
            interval: c.interval(),
        })
        .collect();
    let mut frontier = coalesce_frontier(seed);

    // Phase 1: exactly `min` applications.  Iteration depth is significant here —
    // reaching a row in fewer than `min` steps does not put it in the result — so the
    // rounds replace the frontier instead of accumulating, coalescing within each
    // depth level only.
    for _ in 0..closure.min {
        frontier = apply_round(graph, frontier, closure, strategy, stats);
        if frontier.is_empty() {
            return Vec::new();
        }
    }

    // Phase 2: semi-naive expansion of up to `max − min` further applications.
    // `reached` is the result accumulator; `delta` holds only the coverage discovered
    // in the previous round.
    let mut reached: BTreeMap<(u32, Position), IntervalSet> = BTreeMap::new();
    for entry in &frontier {
        reached.entry((entry.source, entry.position)).or_default().insert(entry.interval);
    }
    let mut delta = frontier;
    let mut remaining = closure.max.map(|m| u64::from(m - closure.min));
    while !delta.is_empty() && remaining != Some(0) {
        let produced = apply_round(graph, delta, closure, strategy, stats);
        let mut novel = Vec::new();
        for entry in produced {
            let key = (entry.source, entry.position);
            let seen = reached.entry(key).or_default();
            let fresh = IntervalSet::from_interval(entry.interval).difference(seen);
            if fresh.is_empty() {
                continue;
            }
            *seen = seen.union(&fresh);
            novel.extend(fresh.intervals().iter().map(|&interval| FrontierEntry {
                source: entry.source,
                position: entry.position,
                interval,
            }));
        }
        // `novel` is already canonical: `produced` is sorted by (source, position)
        // with per-key coalesced (disjoint, non-adjacent) intervals, and subtracting
        // `seen` only carves pieces out of them in order.
        delta = novel;
        remaining = remaining.map(|r| r - 1);
    }

    let mut out = Vec::new();
    for ((source, position), covered) in &reached {
        let origin = &cursors[*source as usize];
        for &interval in covered.intervals() {
            out.push(origin.moved_to(*position, interval));
        }
    }
    out
}

/// One application of the inner pipeline: every union alternative is applied to the
/// frontier and the results are unioned and coalesced.
fn apply_round(
    graph: &GraphRelations,
    mut frontier: Vec<FrontierEntry>,
    closure: &ClosureOp,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<FrontierEntry> {
    stats.closure_rounds.fetch_add(1, Ordering::Relaxed);
    let mut produced = Vec::new();
    for (index, ops) in closure.alternatives.iter().enumerate() {
        let input = if index + 1 == closure.alternatives.len() {
            std::mem::take(&mut frontier)
        } else {
            frontier.clone()
        };
        produced.extend(apply_ops(graph, input, ops, strategy, stats));
    }
    coalesce_frontier(produced)
}

/// Canonicalises a frontier: groups entries by `(source, position)`, coalesces their
/// intervals, and emits them in sorted order.  This keeps round inputs and outputs
/// identical across join strategies and bounds the frontier size by the number of
/// `(source, row)` pairs times the number of coalesced intervals.
fn coalesce_frontier(entries: Vec<FrontierEntry>) -> Vec<FrontierEntry> {
    let mut grouped: BTreeMap<(u32, Position), IntervalSet> = BTreeMap::new();
    for entry in entries {
        grouped.entry((entry.source, entry.position)).or_default().insert(entry.interval);
    }
    let mut out = Vec::new();
    for ((source, position), set) in grouped {
        out.extend(set.intervals().iter().map(|&interval| FrontierEntry {
            source,
            position,
            interval,
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Chain;
    use crate::plan::{HopDirection, MicroOp, ObjFilter};
    use tgraph::ItpgBuilder;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    /// A meets-chain a → b → c → d with staggered edge validity:
    /// a—b on [1,6], b—c on [4,8], c—d on [5,5].
    fn chain_graph() -> GraphRelations {
        let mut b = ItpgBuilder::new();
        let na = b.add_node("a", "Person").unwrap();
        let nb = b.add_node("b", "Person").unwrap();
        let nc = b.add_node("c", "Person").unwrap();
        let nd = b.add_node("d", "Person").unwrap();
        let e1 = b.add_edge("e1", "meets", na, nb).unwrap();
        let e2 = b.add_edge("e2", "meets", nb, nc).unwrap();
        let e3 = b.add_edge("e3", "meets", nc, nd).unwrap();
        for n in [na, nb, nc, nd] {
            b.add_existence(n, iv(0, 9)).unwrap();
        }
        b.add_existence(e1, iv(1, 6)).unwrap();
        b.add_existence(e2, iv(4, 8)).unwrap();
        b.add_existence(e3, iv(5, 5)).unwrap();
        GraphRelations::from_itpg(&b.domain(iv(0, 9)).build().unwrap())
    }

    fn meets_hop() -> Vec<MicroOp> {
        vec![
            MicroOp::Hop(HopDirection::Forward),
            MicroOp::Filter(ObjFilter { label: Some("meets".into()), ..Default::default() }),
            MicroOp::Hop(HopDirection::Forward),
        ]
    }

    fn star() -> ClosureOp {
        ClosureOp { alternatives: vec![meets_hop()], min: 0, max: None }
    }

    fn row_of(graph: &GraphRelations, name: &str) -> u32 {
        graph
            .node_rows()
            .iter()
            .position(|r| graph.object_name(tgraph::Object::Node(r.node)) == name)
            .unwrap() as u32
    }

    fn reached(graph: &GraphRelations, out: &[Chain]) -> Vec<(String, Interval)> {
        out.iter()
            .map(|c| (graph.object_name(c.position.object(graph)).to_owned(), c.interval))
            .collect()
    }

    fn run(graph: &GraphRelations, seeds: Vec<Chain>, op: &ClosureOp) -> Vec<Chain> {
        let stats = StepStats::default();
        let hash = apply_closure(graph, seeds.clone(), op, JoinStrategy::Hash, &stats);
        for strategy in [JoinStrategy::Merge, JoinStrategy::Auto] {
            let alt = apply_closure(graph, seeds.clone(), op, strategy, &stats);
            let lhs: Vec<String> = hash.iter().map(|c| format!("{c:?}")).collect();
            let rhs: Vec<String> = alt.iter().map(|c| format!("{c:?}")).collect();
            assert_eq!(lhs, rhs, "{strategy} closure disagrees with hash");
        }
        hash
    }

    #[test]
    fn star_reaches_transitively_with_narrowing_intervals() {
        let g = chain_graph();
        let seed = Chain::seed(row_of(&g, "a"), &g);
        let out = run(&g, vec![seed], &star());
        // 0 steps: a on [0,9]; 1 step: b on [1,6]; 2 steps: c on [4,6]; 3: d on [5,5].
        assert_eq!(
            reached(&g, &out),
            vec![
                ("a".to_owned(), iv(0, 9)),
                ("b".to_owned(), iv(1, 6)),
                ("c".to_owned(), iv(4, 6)),
                ("d".to_owned(), iv(5, 5)),
            ]
        );
    }

    #[test]
    fn bounds_control_iteration_depth() {
        let g = chain_graph();
        let seed = || vec![Chain::seed(row_of(&g, "a"), &g)];
        // Exactly two hops: only c, over the intersection [4,6].
        let exact2 = ClosureOp { alternatives: vec![meets_hop()], min: 2, max: Some(2) };
        assert_eq!(reached(&g, &run(&g, seed(), &exact2)), vec![("c".to_owned(), iv(4, 6))]);
        // One to three hops: b, c and d but not the starting point.
        let one_to_three = ClosureOp { alternatives: vec![meets_hop()], min: 1, max: Some(3) };
        assert_eq!(
            reached(&g, &run(&g, seed(), &one_to_three)),
            vec![
                ("b".to_owned(), iv(1, 6)),
                ("c".to_owned(), iv(4, 6)),
                ("d".to_owned(), iv(5, 5)),
            ]
        );
        // Zero iterations only: the identity.
        let zero = ClosureOp { alternatives: vec![meets_hop()], min: 0, max: Some(0) };
        assert_eq!(reached(&g, &run(&g, seed(), &zero)), vec![("a".to_owned(), iv(0, 9))]);
        // Unsatisfiable bounds relate nothing.
        let unsat = ClosureOp { alternatives: vec![meets_hop()], min: 3, max: Some(1) };
        assert!(run(&g, seed(), &unsat).is_empty());
    }

    #[test]
    fn cycles_terminate_and_coalesce_coverage() {
        // a → b → a cycle: the closure must reach the fixpoint and stop.
        let mut b = ItpgBuilder::new();
        let na = b.add_node("a", "Person").unwrap();
        let nb = b.add_node("b", "Person").unwrap();
        let e1 = b.add_edge("e1", "meets", na, nb).unwrap();
        let e2 = b.add_edge("e2", "meets", nb, na).unwrap();
        for o in [na, nb] {
            b.add_existence(o, iv(0, 9)).unwrap();
        }
        b.add_existence(e1, iv(2, 5)).unwrap();
        b.add_existence(e2, iv(4, 7)).unwrap();
        let g = GraphRelations::from_itpg(&b.domain(iv(0, 9)).build().unwrap());
        let stats = StepStats::default();
        let out = apply_closure(
            &g,
            vec![Chain::seed(row_of(&g, "a"), &g)],
            &star(),
            JoinStrategy::Hash,
            &stats,
        );
        // a over its whole row (0 steps; the [4,5] round trip adds no new coverage),
        // b over the edge window [2,5].
        assert_eq!(reached(&g, &out), vec![("a".to_owned(), iv(0, 9)), ("b".to_owned(), iv(2, 5))]);
        assert!(stats.closure_rounds.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn union_alternatives_expand_both_directions() {
        let g = chain_graph();
        let backward = vec![
            MicroOp::Hop(HopDirection::Backward),
            MicroOp::Filter(ObjFilter { label: Some("meets".into()), ..Default::default() }),
            MicroOp::Hop(HopDirection::Backward),
        ];
        let both = ClosureOp { alternatives: vec![meets_hop(), backward], min: 0, max: None };
        let out = run(&g, vec![Chain::seed(row_of(&g, "c"), &g)], &both);
        let names: Vec<String> = reached(&g, &out).into_iter().map(|(n, _)| n).collect();
        // From c, forward reaches d, backward reaches b and then a.
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn existence_gaps_split_coverage() {
        // The edge exists on two disjoint windows; coverage of b stays split.
        let mut b = ItpgBuilder::new();
        let na = b.add_node("a", "Person").unwrap();
        let nb = b.add_node("b", "Person").unwrap();
        let e1 = b.add_edge("e1", "meets", na, nb).unwrap();
        for o in [na, nb] {
            b.add_existence(o, iv(0, 9)).unwrap();
        }
        b.add_existence(e1, iv(1, 2)).unwrap();
        b.add_existence(e1, iv(6, 7)).unwrap();
        let g = GraphRelations::from_itpg(&b.domain(iv(0, 9)).build().unwrap());
        let out = run(&g, vec![Chain::seed(row_of(&g, "a"), &g)], &star());
        assert_eq!(
            reached(&g, &out),
            vec![
                ("a".to_owned(), iv(0, 9)),
                ("b".to_owned(), iv(1, 2)),
                ("b".to_owned(), iv(6, 7)),
            ]
        );
    }
}
