//! The interval-aware transitive-closure operators: fixpoint evaluation of
//! `(…)*` / `(…)[n,m]` over repeated sub-expressions.
//!
//! Two fixpoints live here, sharing the seed handling and the join machinery of
//! [`crate::steps::structural`]:
//!
//! **Structural closure** ([`apply_closure`]).  A purely structural [`ClosureOp`]
//! (hops and filters, possibly with union alternatives) is evaluated *semi-naively*
//! (delta-driven): after the mandatory first `min` iterations, each round applies the
//! inner pipeline only to the `(source, position, interval)` triples discovered in the
//! previous round, subtracts the coverage already reached (per source and row, as a
//! coalesced [`IntervalSet`]), and feeds only the genuinely new intervals into the
//! next round.  Because all structural micro-operations act pointwise in time —
//! filters clamp and hops intersect validity intervals — exploring a time point once,
//! at its first discovery, is sufficient; re-deriving it later can only reproduce
//! already-known results.  The time domain and the row relations are finite, so the
//! accumulated coverage grows monotonically and the loop terminates.
//!
//! **Time-aware closure** ([`apply_time_closure`]).  When the repeated body mixes
//! structural and temporal navigation (`(FWD/NEXT)*`-style, [`ClosureStep::Shift`]s
//! between the hops), the start and end of the traversal sit at *different* time
//! points, so per-snapshot intervals no longer suffice.  The frontier instead tracks
//! interval-annotated reachable states — *bands* `(source, position, departure
//! interval, arrival interval, lag)` describing exactly the relation
//! `{(t, t′) | t ∈ dep, t′ ∈ cur, t′ − t ∈ lag}`.  Structural steps intersect the
//! arrival coordinate, and a shift advances it through the maximal existence interval
//! of the current object via [`Shift::arrival_from_interval`] while widening the lag
//! by the shift bounds.  Composing two such constraints is *exact*: three interval
//! constraints on a line admit a common witness whenever they pairwise intersect
//! (Helly's theorem in dimension one), so no precision is lost between hops.  The
//! semi-naive loop subtracts known coverage per `(source, position, dep, lag)` group
//! with [`IntervalSet::difference`] and coalesces arrival intervals between rounds
//! exactly like the structural fixpoint; normalisation clamps every band to its
//! satisfiable core, which bounds the state space and guarantees termination.
//!
//! `[n, m]` bounds are honoured by tracking iteration depth in both fixpoints:
//! rounds 1…n run without accumulation (reaching a state earlier than depth `n` does
//! not make it part of the result), and the semi-naive phase runs at most `m − n`
//! further rounds.  Reaching a state at its minimal depth maximises the remaining
//! iteration budget, so the semi-naive pruning stays exact even under a finite upper
//! bound.
//!
//! Both fixpoints seed once per *distinct* start state: input cursors sharing their
//! `(position, interval)` — e.g. many chains entering a closure on the same row —
//! share one seed and one `reached` map, so duplicate seeds add no rounds and no
//! re-derivation (the per-seed-chunk duplication previously tracked in ROADMAP.md).

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use dataflow::JoinStrategy;
use tgraph::{Interval, IntervalSet, Time};

use crate::chain::{Chain, Position, TimeLag};
use crate::plan::{ClosureOp, ClosureStep, MicroOp, Shift};
use crate::relations::GraphRelations;
use crate::steps::structural::{apply_op, StructuralCursor};
use crate::steps::StepStats;

/// Maps each input cursor to a seed index, deduplicating cursors that share their
/// start state.  Returns the distinct `(position, interval)` seeds in first-appearance
/// order plus the seed index of every input cursor.
fn dedup_seeds<C: StructuralCursor>(cursors: &[C]) -> (Vec<(Position, Interval)>, Vec<u32>) {
    let mut distinct: Vec<(Position, Interval)> = Vec::new();
    let mut index: BTreeMap<(Position, Interval), u32> = BTreeMap::new();
    let mut seed_of = Vec::with_capacity(cursors.len());
    for cursor in cursors {
        let key = (cursor.position(), cursor.interval());
        let next_id = distinct.len() as u32;
        let id = *index.entry(key).or_insert_with(|| {
            distinct.push(key);
            next_id
        });
        seed_of.push(id);
    }
    (distinct, seed_of)
}

/// One frontier entry of the structural fixpoint: the index of the distinct seed it
/// descends from, the row it sits on, and the validity interval it covers.  This is
/// the lightweight "delta" cursor the structural pipeline is driven with inside the
/// loop; the full input cursors are only touched again when the results are emitted.
#[derive(Debug, Clone)]
struct FrontierEntry {
    /// Index into the closure's distinct seed list.
    source: u32,
    /// Current row.
    position: Position,
    /// Validity interval of the partial traversal.
    interval: Interval,
}

impl StructuralCursor for FrontierEntry {
    fn position(&self) -> Position {
        self.position
    }

    fn interval(&self) -> Interval {
        self.interval
    }

    fn moved_to(&self, position: Position, interval: Interval) -> Self {
        FrontierEntry { source: self.source, position, interval }
    }

    fn with_interval(mut self, interval: Interval) -> Self {
        self.interval = interval;
        self
    }

    fn record_binding(&mut self, _slot: u32, _graph: &GraphRelations) {
        // Fails identically in debug and release: silently dropping a binding would
        // corrupt query output without a diagnostic.
        unreachable!("the compiler never places a Bind inside a closure");
    }
}

/// Applies a purely structural closure operator to a batch of cursors, returning one
/// output cursor per reachable `(source, row, coalesced interval)` triple.  The output
/// is emitted in canonical `(input cursor, position, interval)` order, so its
/// cardinality and content are independent of the join strategy used for the inner
/// hops.
pub fn apply_closure<C: StructuralCursor>(
    graph: &GraphRelations,
    cursors: Vec<C>,
    closure: &ClosureOp,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<C> {
    let watch = stats.timed.then(obs::Stopwatch::start);
    let out = apply_closure_untimed(graph, cursors, closure, strategy, stats);
    if let Some(watch) = watch {
        stats.closure_nanos.fetch_add(watch.elapsed_nanos(), Ordering::Relaxed);
    }
    out
}

fn apply_closure_untimed<C: StructuralCursor>(
    graph: &GraphRelations,
    cursors: Vec<C>,
    closure: &ClosureOp,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<C> {
    debug_assert!(
        !closure.is_time_crossing(),
        "time-crossing closures compile to a TemporalLink, not a segment micro-op"
    );
    // An unsatisfiable indicator ([n, m] with n > m) relates nothing.  The compiler
    // normalises these away, but plans can also be built programmatically.
    if cursors.is_empty() || closure.max.is_some_and(|m| m < closure.min) {
        return Vec::new();
    }

    let (distinct, seed_of) = dedup_seeds(&cursors);
    let seed: Vec<FrontierEntry> = distinct
        .iter()
        .enumerate()
        .map(|(i, &(position, interval))| FrontierEntry { source: i as u32, position, interval })
        .collect();
    let mut frontier = coalesce_frontier(seed);

    // Phase 1: exactly `min` applications.  Iteration depth is significant here —
    // reaching a row in fewer than `min` steps does not put it in the result — so the
    // rounds replace the frontier instead of accumulating, coalescing within each
    // depth level only.
    for _ in 0..closure.min {
        frontier = apply_round(graph, frontier, closure, strategy, stats);
        if frontier.is_empty() {
            return Vec::new();
        }
    }

    // Phase 2: semi-naive expansion of up to `max − min` further applications.
    // `reached` is the result accumulator; `delta` holds only the coverage discovered
    // in the previous round.
    let mut reached: BTreeMap<u32, BTreeMap<Position, IntervalSet>> = BTreeMap::new();
    for entry in &frontier {
        reached
            .entry(entry.source)
            .or_default()
            .entry(entry.position)
            .or_default()
            .insert(entry.interval);
    }
    let mut delta = frontier;
    let mut remaining = closure.max.map(|m| u64::from(m - closure.min));
    while !delta.is_empty() && remaining != Some(0) {
        let produced = apply_round(graph, delta, closure, strategy, stats);
        let mut novel = Vec::new();
        for entry in produced {
            let seen = reached.entry(entry.source).or_default().entry(entry.position).or_default();
            let fresh = IntervalSet::from_interval(entry.interval).difference(seen);
            if fresh.is_empty() {
                continue;
            }
            *seen = seen.union(&fresh);
            novel.extend(fresh.intervals().iter().map(|&interval| FrontierEntry {
                source: entry.source,
                position: entry.position,
                interval,
            }));
        }
        // `novel` is already canonical: `produced` is sorted by (source, position)
        // with per-key coalesced (disjoint, non-adjacent) intervals, and subtracting
        // `seen` only carves pieces out of them in order.
        delta = novel;
        remaining = remaining.map(|r| r - 1);
    }

    // Emit per input cursor, in input order: cursors sharing a seed share the
    // fixpoint's `reached` map instead of having re-derived it.
    let mut out = Vec::new();
    for (cursor, seed) in cursors.iter().zip(&seed_of) {
        let Some(rows) = reached.get(seed) else { continue };
        for (position, covered) in rows {
            for &interval in covered.intervals() {
                out.push(cursor.moved_to(*position, interval));
            }
        }
    }
    out
}

/// One application of the inner pipeline: every union alternative is applied to the
/// frontier and the results are unioned and coalesced.
fn apply_round(
    graph: &GraphRelations,
    mut frontier: Vec<FrontierEntry>,
    closure: &ClosureOp,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<FrontierEntry> {
    stats.closure_rounds.fetch_add(1, Ordering::Relaxed);
    let mut produced = Vec::new();
    for (index, steps) in closure.alternatives.iter().enumerate() {
        let mut current = if index + 1 == closure.alternatives.len() {
            std::mem::take(&mut frontier)
        } else {
            frontier.clone()
        };
        for step in steps {
            if current.is_empty() {
                break;
            }
            match step {
                ClosureStep::Micro(op) => current = apply_op(graph, current, op, strategy, stats),
                ClosureStep::Shift(_) => {
                    unreachable!("structural closures contain no temporal steps")
                }
            }
        }
        produced.extend(current);
    }
    coalesce_frontier(produced)
}

/// Canonicalises a frontier: groups entries by `(source, position)`, coalesces their
/// intervals, and emits them in sorted order.  This keeps round inputs and outputs
/// identical across join strategies and bounds the frontier size by the number of
/// `(source, row)` pairs times the number of coalesced intervals.
fn coalesce_frontier(entries: Vec<FrontierEntry>) -> Vec<FrontierEntry> {
    let mut grouped: BTreeMap<(u32, Position), IntervalSet> = BTreeMap::new();
    for entry in entries {
        grouped.entry((entry.source, entry.position)).or_default().insert(entry.interval);
    }
    let mut out = Vec::new();
    for ((source, position), set) in grouped {
        out.extend(set.intervals().iter().map(|&interval| FrontierEntry {
            source,
            position,
            interval,
        }));
    }
    out
}

// ---------------------------------------------------------------------------------
// The time-aware fixpoint.
// ---------------------------------------------------------------------------------

/// One state of the time-aware fixpoint: an interval-annotated reachable state
/// describing the exact relation `{(t, t′) | t ∈ dep, t′ ∈ cur, t′ − t ∈ lag}`
/// between the departure times of the seed and the arrival times on `position`.
#[derive(Debug, Clone, PartialEq)]
struct BandState {
    /// Index into the closure's distinct seed list.
    source: u32,
    /// Current row.
    position: Position,
    /// Departure times at the seed for which this traversal is possible.
    dep: Interval,
    /// Arrival times on the current row.
    cur: Interval,
    /// Admissible signed arrival − departure differences.
    lag: TimeLag,
}

impl StructuralCursor for BandState {
    fn position(&self) -> Position {
        self.position
    }

    fn interval(&self) -> Interval {
        self.cur
    }

    fn moved_to(&self, position: Position, interval: Interval) -> Self {
        BandState { position, cur: interval, ..self.clone() }
    }

    fn with_interval(mut self, interval: Interval) -> Self {
        self.cur = interval;
        self
    }

    fn record_binding(&mut self, _slot: u32, _graph: &GraphRelations) {
        unreachable!("the compiler never places a Bind inside a closure");
    }
}

/// Intersects an interval with a signed time window, treating out-of-range windows as
/// empty.
fn intersect_signed(interval: Interval, lo: i128, hi: i128) -> Option<Interval> {
    if lo > hi || hi < 0 || lo > Time::MAX as i128 {
        return None;
    }
    let window = Interval::of(lo.max(0) as Time, hi.min(Time::MAX as i128) as Time);
    interval.intersect(&window)
}

/// Clamps a band to its satisfiable core: departure times that have an admissible
/// arrival, arrival times that have an admissible departure, and lag bounds actually
/// realisable between the two.  Returns `None` if the band relates nothing.  The
/// clamping bounds every component by the graph's time domain, which makes the state
/// space finite and the fixpoint terminate.
fn normalize(mut band: BandState) -> Option<BandState> {
    loop {
        let dep = intersect_signed(
            band.dep,
            band.cur.start() as i128 - band.lag.hi,
            band.cur.end() as i128 - band.lag.lo,
        )?;
        let cur = intersect_signed(
            band.cur,
            dep.start() as i128 + band.lag.lo,
            dep.end() as i128 + band.lag.hi,
        )?;
        let lag = TimeLag {
            lo: band.lag.lo.max(cur.start() as i128 - dep.end() as i128),
            hi: band.lag.hi.min(cur.end() as i128 - dep.start() as i128),
        };
        if lag.lo > lag.hi {
            return None;
        }
        let changed = dep != band.dep || cur != band.cur || lag != band.lag;
        band.dep = dep;
        band.cur = cur;
        band.lag = lag;
        if !changed {
            return Some(band);
        }
    }
}

/// Applies a temporal shift to a band: the arrival coordinate advances through the
/// maximal existence interval of the current object (every intermediate time point
/// must exist), the lag widens by the shift bounds, and the result lands on every row
/// of the object intersecting the arrival window.
fn shift_band(graph: &GraphRelations, band: &BandState, shift: &Shift, out: &mut Vec<BandState>) {
    if shift.is_unsatisfiable() {
        return;
    }
    // Normalise *before* widening the lag: the departure window must be tightened
    // against the still-tight pre-shift lag (the exact composition of two bands
    // intersects the departures with `[cur.start − lag.hi, cur.end − lag.lo]`);
    // afterwards the information is gone.
    let Some(band) = normalize(band.clone()) else {
        return;
    };
    let band = &band;
    let object = band.position.object(graph);
    // `cur` is contained in the current row's validity interval, which never spans an
    // existence gap, so one maximal existence interval covers every departure point.
    let Some(within) = graph.existence_interval_at(object, band.cur.start()) else {
        return;
    };
    let Some(arrival) = shift.arrival_from_interval(band.cur, within) else {
        return;
    };
    // An open-ended bound can move at most across the whole existence interval, so
    // using its span keeps the lag window exact.
    let span = (within.end() - within.start()) as i128;
    let (add_lo, add_hi) = if shift.forward {
        (shift.min as i128, shift.max.map_or(span, |m| m as i128))
    } else {
        (-shift.max.map_or(span, |m| m as i128), -(shift.min as i128))
    };
    let lag = TimeLag { lo: band.lag.lo + add_lo, hi: band.lag.hi + add_hi };
    let rows: &[u32] = match object {
        tgraph::Object::Node(node) => graph.rows_of_node(node),
        tgraph::Object::Edge(edge) => graph.rows_of_edge(edge),
    };
    for &row in rows {
        let (position, row_interval) = match band.position {
            Position::NodeRow(_) => {
                (Position::NodeRow(row), graph.node_rows()[row as usize].interval)
            }
            Position::EdgeRow(_) => {
                (Position::EdgeRow(row), graph.edge_rows()[row as usize].interval)
            }
        };
        let Some(cur) = arrival.intersect(&row_interval) else { continue };
        if let Some(next) = normalize(BandState { position, cur, lag, ..band.clone() }) {
            out.push(next);
        }
    }
}

/// Applies one alternative's step sequence to a band batch.
fn apply_band_steps(
    graph: &GraphRelations,
    mut bands: Vec<BandState>,
    steps: &[ClosureStep],
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<BandState> {
    for step in steps {
        if bands.is_empty() {
            break;
        }
        bands = match step {
            // A nested time-crossing closure runs its own band fixpoint over the
            // current states; a structural nested closure is just a micro-op.
            ClosureStep::Micro(MicroOp::Closure(inner)) if inner.is_time_crossing() => {
                run_band_fixpoint(graph, bands, inner, strategy, stats)
            }
            ClosureStep::Micro(op) => apply_op(graph, bands, op, strategy, stats),
            ClosureStep::Shift(shift) => {
                let mut out = Vec::new();
                for band in &bands {
                    shift_band(graph, band, shift, &mut out);
                }
                out
            }
        };
    }
    bands
}

/// One application of a time-crossing closure body: every union alternative is
/// applied to the frontier and the results are unioned and canonicalised.
fn apply_band_round(
    graph: &GraphRelations,
    mut frontier: Vec<BandState>,
    closure: &ClosureOp,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<BandState> {
    stats.time_closure_rounds.fetch_add(1, Ordering::Relaxed);
    let mut produced = Vec::new();
    for (index, steps) in closure.alternatives.iter().enumerate() {
        let input = if index + 1 == closure.alternatives.len() {
            std::mem::take(&mut frontier)
        } else {
            frontier.clone()
        };
        produced.extend(apply_band_steps(graph, input, steps, strategy, stats));
    }
    canonicalize_bands(produced)
}

/// Canonicalises a band batch: normalises every band, groups by
/// `(source, position, dep, lag)`, coalesces the arrival intervals of each group, and
/// emits the groups in sorted order.  Merging arrival intervals of bands that share
/// their departure interval and lag is exact: the merged band relates precisely the
/// union of the merged relations.
fn canonicalize_bands(bands: Vec<BandState>) -> Vec<BandState> {
    let mut grouped: BTreeMap<(u32, Position, Interval, TimeLag), IntervalSet> = BTreeMap::new();
    for band in bands {
        let Some(band) = normalize(band) else { continue };
        grouped
            .entry((band.source, band.position, band.dep, band.lag))
            .or_default()
            .insert(band.cur);
    }
    let mut out = Vec::new();
    for ((source, position, dep, lag), set) in grouped {
        out.extend(set.intervals().iter().map(|&cur| BandState {
            source,
            position,
            dep,
            cur,
            lag,
        }));
    }
    out
}

/// One accumulated band of the `reached` map: the arrival coverage discovered so far
/// for a `(departure interval, lag)` pair.
#[derive(Debug)]
struct StoredBand {
    dep: Interval,
    lag: TimeLag,
    cur: IntervalSet,
}

/// The semi-naive band fixpoint: repeats the closure body over arbitrary input bands
/// between `min` and `max` times and returns every reachable band.  Inputs need not
/// be diagonal, so the same loop serves top-level mixed closures (seeded with
/// zero-lag bands) and nested ones (seeded with the current frontier).
fn run_band_fixpoint(
    graph: &GraphRelations,
    seeds: Vec<BandState>,
    closure: &ClosureOp,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<BandState> {
    if seeds.is_empty() || closure.max.is_some_and(|m| m < closure.min) {
        return Vec::new();
    }
    let mut frontier = canonicalize_bands(seeds);

    // Phase 1: exactly `min` applications, replacing the frontier per depth level.
    for _ in 0..closure.min {
        frontier = apply_band_round(graph, frontier, closure, strategy, stats);
        if frontier.is_empty() {
            return Vec::new();
        }
    }

    // Phase 2: semi-naive expansion.  A produced band is folded into `reached` by
    // subtracting, via `IntervalSet::difference`, the arrival coverage of every
    // stored band that dominates it (wider departure window and wider lag — whose
    // relation therefore contains the overlapping pairs); only the fresh remainder
    // re-enters the loop.
    let mut reached: BTreeMap<(u32, Position), Vec<StoredBand>> = BTreeMap::new();
    for band in &frontier {
        fold_into(&mut reached, band);
    }
    let mut delta = frontier;
    let mut remaining = closure.max.map(|m| u64::from(m - closure.min));
    while !delta.is_empty() && remaining != Some(0) {
        let produced = apply_band_round(graph, delta, closure, strategy, stats);
        let mut novel = Vec::new();
        for band in produced {
            let stored = reached.entry((band.source, band.position)).or_default();
            let mut covering = IntervalSet::empty();
            for sb in stored.iter() {
                if sb.dep.contains_interval(&band.dep)
                    && sb.lag.lo <= band.lag.lo
                    && band.lag.hi <= sb.lag.hi
                {
                    covering = covering.union(&sb.cur);
                }
            }
            let fresh = IntervalSet::from_interval(band.cur).difference(&covering);
            if fresh.is_empty() {
                continue;
            }
            match stored.iter_mut().find(|sb| sb.dep == band.dep && sb.lag == band.lag) {
                Some(sb) => sb.cur = sb.cur.union(&fresh),
                None => {
                    stored.push(StoredBand { dep: band.dep, lag: band.lag, cur: fresh.clone() })
                }
            }
            novel.extend(fresh.intervals().iter().map(|&cur| BandState { cur, ..band.clone() }));
        }
        delta = novel;
        remaining = remaining.map(|r| r - 1);
    }

    // Emit in canonical order so the result is independent of derivation order (and
    // hence of the join strategy).
    let mut out = Vec::new();
    for ((source, position), stored) in &reached {
        for sb in stored {
            out.extend(sb.cur.intervals().iter().map(|&cur| BandState {
                source: *source,
                position: *position,
                dep: sb.dep,
                cur,
                lag: sb.lag,
            }));
        }
    }
    out.sort_by(|a, b| {
        (a.source, a.position, a.dep, a.lag, a.cur)
            .cmp(&(b.source, b.position, b.dep, b.lag, b.cur))
    });
    out
}

fn fold_into(reached: &mut BTreeMap<(u32, Position), Vec<StoredBand>>, band: &BandState) {
    let stored = reached.entry((band.source, band.position)).or_default();
    match stored.iter_mut().find(|sb| sb.dep == band.dep && sb.lag == band.lag) {
        Some(sb) => sb.cur = sb.cur.union(&IntervalSet::from_interval(band.cur)),
        None => stored.push(StoredBand {
            dep: band.dep,
            lag: band.lag,
            cur: IntervalSet::from_interval(band.cur),
        }),
    }
}

/// Applies a time-crossing closure link to a batch of chains: each chain's current
/// segment ends at the departure times for which the closure admits a traversal, a
/// new segment starts on the reached row over the arrival times, and the chain
/// records the admissible time skew as a [`TimeLag`] for Step 3's point expansion.
pub fn apply_time_closure(
    graph: &GraphRelations,
    chains: Vec<Chain>,
    closure: &ClosureOp,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<Chain> {
    let watch = stats.timed.then(obs::Stopwatch::start);
    let out = apply_time_closure_untimed(graph, chains, closure, strategy, stats);
    if let Some(watch) = watch {
        stats.closure_nanos.fetch_add(watch.elapsed_nanos(), Ordering::Relaxed);
    }
    out
}

fn apply_time_closure_untimed(
    graph: &GraphRelations,
    chains: Vec<Chain>,
    closure: &ClosureOp,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<Chain> {
    if chains.is_empty() || closure.max.is_some_and(|m| m < closure.min) {
        return Vec::new();
    }
    let (distinct, seed_of) = dedup_seeds(&chains);
    let seeds: Vec<BandState> = distinct
        .iter()
        .enumerate()
        .map(|(i, &(position, interval))| BandState {
            source: i as u32,
            position,
            dep: interval,
            cur: interval,
            lag: TimeLag::zero(),
        })
        .collect();
    let bands = run_band_fixpoint(graph, seeds, closure, strategy, stats);

    let mut by_source: Vec<Vec<&BandState>> = vec![Vec::new(); distinct.len()];
    for band in &bands {
        by_source[band.source as usize].push(band);
    }
    let mut out = Vec::new();
    for (chain, seed) in chains.iter().zip(&seed_of) {
        for band in &by_source[*seed as usize] {
            let mut next = chain.clone();
            next.seg_intervals.push(band.dep);
            next.lags.push(band.lag);
            next.position = band.position;
            next.interval = band.cur;
            out.push(next);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Chain;
    use crate::plan::{HopDirection, MicroOp, ObjFilter};
    use tgraph::ItpgBuilder;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    /// A meets-chain a → b → c → d with staggered edge validity:
    /// a—b on [1,6], b—c on [4,8], c—d on [5,5].
    fn chain_graph() -> GraphRelations {
        let mut b = ItpgBuilder::new();
        let na = b.add_node("a", "Person").unwrap();
        let nb = b.add_node("b", "Person").unwrap();
        let nc = b.add_node("c", "Person").unwrap();
        let nd = b.add_node("d", "Person").unwrap();
        let e1 = b.add_edge("e1", "meets", na, nb).unwrap();
        let e2 = b.add_edge("e2", "meets", nb, nc).unwrap();
        let e3 = b.add_edge("e3", "meets", nc, nd).unwrap();
        for n in [na, nb, nc, nd] {
            b.add_existence(n, iv(0, 9)).unwrap();
        }
        b.add_existence(e1, iv(1, 6)).unwrap();
        b.add_existence(e2, iv(4, 8)).unwrap();
        b.add_existence(e3, iv(5, 5)).unwrap();
        GraphRelations::from_itpg(&b.domain(iv(0, 9)).build().unwrap())
    }

    fn meets_hop() -> Vec<MicroOp> {
        vec![
            MicroOp::Hop(HopDirection::Forward),
            MicroOp::Filter(ObjFilter { label: Some("meets".into()), ..Default::default() }),
            MicroOp::Hop(HopDirection::Forward),
        ]
    }

    fn star() -> ClosureOp {
        ClosureOp::structural(vec![meets_hop()], 0, None)
    }

    /// `(FWD/:meets/FWD/NEXT)*`: one meets-hop followed by one step forward in time.
    fn mixed_star() -> ClosureOp {
        let mut steps: Vec<ClosureStep> = meets_hop().into_iter().map(ClosureStep::Micro).collect();
        steps.push(ClosureStep::Shift(Shift { forward: true, min: 1, max: Some(1) }));
        ClosureOp { alternatives: vec![steps], min: 0, max: None }
    }

    fn row_of(graph: &GraphRelations, name: &str) -> u32 {
        graph
            .node_rows()
            .iter()
            .position(|r| graph.object_name(tgraph::Object::Node(r.node)) == name)
            .unwrap() as u32
    }

    fn reached(graph: &GraphRelations, out: &[Chain]) -> Vec<(String, Interval)> {
        out.iter()
            .map(|c| (graph.object_name(c.position.object(graph)).to_owned(), c.interval))
            .collect()
    }

    fn run(graph: &GraphRelations, seeds: Vec<Chain>, op: &ClosureOp) -> Vec<Chain> {
        let stats = StepStats::default();
        let hash = apply_closure(graph, seeds.clone(), op, JoinStrategy::Hash, &stats);
        for strategy in [JoinStrategy::Merge, JoinStrategy::Auto] {
            let alt = apply_closure(graph, seeds.clone(), op, strategy, &stats);
            let lhs: Vec<String> = hash.iter().map(|c| format!("{c:?}")).collect();
            let rhs: Vec<String> = alt.iter().map(|c| format!("{c:?}")).collect();
            assert_eq!(lhs, rhs, "{strategy} closure disagrees with hash");
        }
        hash
    }

    fn run_time(graph: &GraphRelations, seeds: Vec<Chain>, op: &ClosureOp) -> Vec<Chain> {
        let stats = StepStats::default();
        let hash = apply_time_closure(graph, seeds.clone(), op, JoinStrategy::Hash, &stats);
        for strategy in [JoinStrategy::Merge, JoinStrategy::Auto] {
            let alt = apply_time_closure(graph, seeds.clone(), op, strategy, &stats);
            let lhs: Vec<String> = hash.iter().map(|c| format!("{c:?}")).collect();
            let rhs: Vec<String> = alt.iter().map(|c| format!("{c:?}")).collect();
            assert_eq!(lhs, rhs, "{strategy} time closure disagrees with hash");
        }
        hash
    }

    #[test]
    fn star_reaches_transitively_with_narrowing_intervals() {
        let g = chain_graph();
        let seed = Chain::seed(row_of(&g, "a"), &g);
        let out = run(&g, vec![seed], &star());
        // 0 steps: a on [0,9]; 1 step: b on [1,6]; 2 steps: c on [4,6]; 3: d on [5,5].
        assert_eq!(
            reached(&g, &out),
            vec![
                ("a".to_owned(), iv(0, 9)),
                ("b".to_owned(), iv(1, 6)),
                ("c".to_owned(), iv(4, 6)),
                ("d".to_owned(), iv(5, 5)),
            ]
        );
    }

    #[test]
    fn bounds_control_iteration_depth() {
        let g = chain_graph();
        let seed = || vec![Chain::seed(row_of(&g, "a"), &g)];
        // Exactly two hops: only c, over the intersection [4,6].
        let exact2 = ClosureOp::structural(vec![meets_hop()], 2, Some(2));
        assert_eq!(reached(&g, &run(&g, seed(), &exact2)), vec![("c".to_owned(), iv(4, 6))]);
        // One to three hops: b, c and d but not the starting point.
        let one_to_three = ClosureOp::structural(vec![meets_hop()], 1, Some(3));
        assert_eq!(
            reached(&g, &run(&g, seed(), &one_to_three)),
            vec![
                ("b".to_owned(), iv(1, 6)),
                ("c".to_owned(), iv(4, 6)),
                ("d".to_owned(), iv(5, 5)),
            ]
        );
        // Zero iterations only: the identity.
        let zero = ClosureOp::structural(vec![meets_hop()], 0, Some(0));
        assert_eq!(reached(&g, &run(&g, seed(), &zero)), vec![("a".to_owned(), iv(0, 9))]);
        // Unsatisfiable bounds relate nothing.
        let unsat = ClosureOp::structural(vec![meets_hop()], 3, Some(1));
        assert!(run(&g, seed(), &unsat).is_empty());
    }

    #[test]
    fn cycles_terminate_and_coalesce_coverage() {
        // a → b → a cycle: the closure must reach the fixpoint and stop.
        let mut b = ItpgBuilder::new();
        let na = b.add_node("a", "Person").unwrap();
        let nb = b.add_node("b", "Person").unwrap();
        let e1 = b.add_edge("e1", "meets", na, nb).unwrap();
        let e2 = b.add_edge("e2", "meets", nb, na).unwrap();
        for o in [na, nb] {
            b.add_existence(o, iv(0, 9)).unwrap();
        }
        b.add_existence(e1, iv(2, 5)).unwrap();
        b.add_existence(e2, iv(4, 7)).unwrap();
        let g = GraphRelations::from_itpg(&b.domain(iv(0, 9)).build().unwrap());
        let stats = StepStats::default();
        let out = apply_closure(
            &g,
            vec![Chain::seed(row_of(&g, "a"), &g)],
            &star(),
            JoinStrategy::Hash,
            &stats,
        );
        // a over its whole row (0 steps; the [4,5] round trip adds no new coverage),
        // b over the edge window [2,5].
        assert_eq!(reached(&g, &out), vec![("a".to_owned(), iv(0, 9)), ("b".to_owned(), iv(2, 5))]);
        assert!(stats.closure_rounds.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn union_alternatives_expand_both_directions() {
        let g = chain_graph();
        let backward = vec![
            MicroOp::Hop(HopDirection::Backward),
            MicroOp::Filter(ObjFilter { label: Some("meets".into()), ..Default::default() }),
            MicroOp::Hop(HopDirection::Backward),
        ];
        let both = ClosureOp::structural(vec![meets_hop(), backward], 0, None);
        let out = run(&g, vec![Chain::seed(row_of(&g, "c"), &g)], &both);
        let names: Vec<String> = reached(&g, &out).into_iter().map(|(n, _)| n).collect();
        // From c, forward reaches d, backward reaches b and then a.
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn existence_gaps_split_coverage() {
        // The edge exists on two disjoint windows; coverage of b stays split.
        let mut b = ItpgBuilder::new();
        let na = b.add_node("a", "Person").unwrap();
        let nb = b.add_node("b", "Person").unwrap();
        let e1 = b.add_edge("e1", "meets", na, nb).unwrap();
        for o in [na, nb] {
            b.add_existence(o, iv(0, 9)).unwrap();
        }
        b.add_existence(e1, iv(1, 2)).unwrap();
        b.add_existence(e1, iv(6, 7)).unwrap();
        let g = GraphRelations::from_itpg(&b.domain(iv(0, 9)).build().unwrap());
        let out = run(&g, vec![Chain::seed(row_of(&g, "a"), &g)], &star());
        assert_eq!(
            reached(&g, &out),
            vec![
                ("a".to_owned(), iv(0, 9)),
                ("b".to_owned(), iv(1, 2)),
                ("b".to_owned(), iv(6, 7)),
            ]
        );
    }

    #[test]
    fn duplicate_seeds_share_the_fixpoint() {
        // Two chains entering the closure on the same (row, interval) must not add
        // rounds: the fixpoint is seeded once per distinct start state.
        let g = chain_graph();
        let seed = || Chain::seed(row_of(&g, "a"), &g);
        let single_stats = StepStats::default();
        let single = apply_closure(&g, vec![seed()], &star(), JoinStrategy::Hash, &single_stats);
        let dup_stats = StepStats::default();
        let dup = apply_closure(&g, vec![seed(), seed()], &star(), JoinStrategy::Hash, &dup_stats);
        assert_eq!(
            single_stats.closure_rounds.load(Ordering::Relaxed),
            dup_stats.closure_rounds.load(Ordering::Relaxed),
            "duplicate seeds added fixpoint rounds"
        );
        // Both input cursors still receive the full result.
        assert_eq!(dup.len(), 2 * single.len());

        // Same for the time-aware fixpoint.
        let single_stats = StepStats::default();
        apply_time_closure(&g, vec![seed()], &mixed_star(), JoinStrategy::Hash, &single_stats);
        let dup_stats = StepStats::default();
        apply_time_closure(&g, vec![seed(), seed()], &mixed_star(), JoinStrategy::Hash, &dup_stats);
        assert_eq!(
            single_stats.time_closure_rounds.load(Ordering::Relaxed),
            dup_stats.time_closure_rounds.load(Ordering::Relaxed),
            "duplicate seeds added time-crossing rounds"
        );
    }

    #[test]
    fn mixed_closure_advances_through_time() {
        let g = chain_graph();
        let out = run_time(&g, vec![Chain::seed(row_of(&g, "a"), &g)], &mixed_star());
        // Each iteration is one meets-hop (intersecting the edge window) followed by
        // exactly one step forward in time; the band tracks which departures at `a`
        // admit the traversal and at which (shifted) arrival times it lands.
        let summary: Vec<(String, Interval, Interval, TimeLag)> = out
            .iter()
            .map(|c| {
                (
                    g.object_name(c.position.object(&g)).to_owned(),
                    *c.seg_intervals.last().unwrap(),
                    c.interval,
                    *c.lags.last().unwrap(),
                )
            })
            .collect();
        assert!(summary.contains(&("a".to_owned(), iv(0, 9), iv(0, 9), TimeLag::zero())));
        // One meets-hop during the a—b window [1,6], then NEXT: departures [1,6],
        // arrivals [2,7], arrival − departure exactly 1.
        assert!(summary.contains(&("b".to_owned(), iv(1, 6), iv(2, 7), TimeLag { lo: 1, hi: 1 })));
        // Two hops: meet b in [1,6], step to [2,7], meet c within b—c's [4,8] (so
        // departures from a are [3,6]), step again: arrive [5,8] with lag 2.
        assert!(summary.contains(&("c".to_owned(), iv(3, 6), iv(5, 8), TimeLag { lo: 2, hi: 2 })));
        // Three hops: c—d exists only at 5, reached from departures at 3, arriving 6.
        assert!(summary.contains(&("d".to_owned(), iv(3, 3), iv(6, 6), TimeLag { lo: 3, hi: 3 })));
        assert_eq!(summary.len(), 4);
    }

    #[test]
    fn mixed_closure_respects_depth_bounds() {
        let g = chain_graph();
        let body = mixed_star();
        let exactly_two = ClosureOp { min: 2, max: Some(2), ..body.clone() };
        let out = run_time(&g, vec![Chain::seed(row_of(&g, "a"), &g)], &exactly_two);
        let names: Vec<String> = reached(&g, &out).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["c"]);
        let unsat = ClosureOp { min: 3, max: Some(1), ..body };
        assert!(run_time(&g, vec![Chain::seed(row_of(&g, "a"), &g)], &unsat).is_empty());
    }

    #[test]
    fn backward_mixed_closure_has_negative_lags() {
        let g = chain_graph();
        // (BWD/:meets/BWD/PREV)*: walk contact chains backwards in graph and time.
        let mut steps: Vec<ClosureStep> = vec![
            ClosureStep::Micro(MicroOp::Hop(HopDirection::Backward)),
            ClosureStep::Micro(MicroOp::Filter(ObjFilter {
                label: Some("meets".into()),
                ..Default::default()
            })),
            ClosureStep::Micro(MicroOp::Hop(HopDirection::Backward)),
        ];
        steps.push(ClosureStep::Shift(Shift { forward: false, min: 1, max: Some(1) }));
        let op = ClosureOp { alternatives: vec![steps], min: 1, max: Some(1) };
        let out = run_time(&g, vec![Chain::seed(row_of(&g, "b"), &g)], &op);
        assert_eq!(out.len(), 1);
        let chain = &out[0];
        assert_eq!(g.object_name(chain.position.object(&g)), "a");
        // Departures on the a—b window [1,6] (b's side), arrivals one earlier [0,5].
        assert_eq!(chain.seg_intervals.last(), Some(&iv(1, 6)));
        assert_eq!(chain.interval, iv(0, 5));
        assert_eq!(chain.lags.last(), Some(&TimeLag { lo: -1, hi: -1 }));
    }

    #[test]
    fn band_normalisation_clamps_to_the_satisfiable_core() {
        let band = BandState {
            source: 0,
            position: Position::NodeRow(0),
            dep: iv(0, 10),
            cur: iv(8, 20),
            lag: TimeLag { lo: 0, hi: 5 },
        };
        let n = normalize(band).unwrap();
        // Arrivals cannot exceed dep.end + 5 = 15; departures cannot be below
        // cur.start − 5 = 3.
        assert_eq!(n.dep, iv(3, 10));
        assert_eq!(n.cur, iv(8, 15));
        assert_eq!(n.lag, TimeLag { lo: 0, hi: 5 });
        // An unsatisfiable band relates nothing.
        let dead = BandState {
            source: 0,
            position: Position::NodeRow(0),
            dep: iv(0, 1),
            cur: iv(10, 11),
            lag: TimeLag { lo: 0, hi: 2 },
        };
        assert!(normalize(dead).is_none());
    }
}
