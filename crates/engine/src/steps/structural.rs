//! Step 1 of query evaluation (Section VI): structural navigation over the
//! interval-timestamped relations.
//!
//! A segment is a select–project–join pipeline evaluated entirely on intervals: every
//! hop is a temporally-aligned join between the current chains and the adjacent
//! Nodes/Edges rows (equal adjacency keys, intersecting validity intervals), and every
//! filter prunes rows and clamps intervals.  The physical join implementation is
//! selected by a [`JoinStrategy`]:
//!
//! * `Hash` probes the per-node adjacency indexes built at load time (a hash join
//!   whose build side is precomputed);
//! * `Merge` runs a sort-merge join against the key-sorted row permutations of
//!   [`GraphRelations`], sorting the chains by their join key first if needed;
//! * `Auto` picks merge exactly when the chains are already key-sorted — which the
//!   seed-row expansion naturally produces for the first hop — and hash otherwise.

use dataflow::{interval_merge_join, is_key_sorted, JoinStrategy, ResolvedJoin};

use crate::chain::{BoundVar, Chain, Position};
use crate::plan::{HopDirection, MicroOp, ObjFilter, Segment};
use crate::relations::GraphRelations;

/// Applies every operation of a segment to the given chains, returning the surviving
/// chains.  Hops execute their joins according to `strategy`.
pub fn apply_segment(
    graph: &GraphRelations,
    chains: Vec<Chain>,
    segment: &Segment,
    strategy: JoinStrategy,
) -> Vec<Chain> {
    let mut current = chains;
    for op in &segment.ops {
        current = apply_op(graph, current, op, strategy);
        if current.is_empty() {
            break;
        }
    }
    current
}

fn apply_op(
    graph: &GraphRelations,
    chains: Vec<Chain>,
    op: &MicroOp,
    strategy: JoinStrategy,
) -> Vec<Chain> {
    match op {
        MicroOp::Filter(filter) => {
            chains.into_iter().filter_map(|chain| apply_filter(graph, chain, filter)).collect()
        }
        MicroOp::Bind(slot) => chains
            .into_iter()
            .map(|mut chain| {
                chain.bound.push(BoundVar {
                    slot: *slot as u32,
                    segment: chain.current_segment(),
                    object: chain.position.object(graph),
                });
                chain
            })
            .collect(),
        MicroOp::Hop(direction) => apply_hop(graph, chains, *direction, strategy),
    }
}

/// One structural step for a whole batch of chains: node → incident edge, or edge →
/// endpoint node, keeping only temporally-aligned matches (non-empty interval
/// intersections).  A batch is homogeneous in position kind by construction (hops
/// alternate between node and edge rows), but both kinds are handled for robustness.
fn apply_hop(
    graph: &GraphRelations,
    chains: Vec<Chain>,
    direction: HopDirection,
    strategy: JoinStrategy,
) -> Vec<Chain> {
    let (node_chains, edge_chains): (Vec<Chain>, Vec<Chain>) =
        chains.into_iter().partition(|c| matches!(c.position, Position::NodeRow(_)));
    let mut out = Vec::with_capacity(node_chains.len() + edge_chains.len());
    if !node_chains.is_empty() {
        hop_from_nodes(graph, node_chains, direction, strategy, &mut out);
    }
    if !edge_chains.is_empty() {
        hop_from_edges(graph, edge_chains, direction, strategy, &mut out);
    }
    out
}

/// Joins node-positioned chains with the Edges relation on the adjacency key
/// (source node for forward hops, target node for backward hops).
fn hop_from_nodes(
    graph: &GraphRelations,
    mut chains: Vec<Chain>,
    direction: HopDirection,
    strategy: JoinStrategy,
    out: &mut Vec<Chain>,
) {
    let key = |c: &Chain| match c.position {
        Position::NodeRow(r) => graph.node_rows()[r as usize].node.index(),
        Position::EdgeRow(_) => unreachable!("node hop over an edge-positioned chain"),
    };
    let sorted = is_key_sorted(&chains, key);
    match strategy.resolve(sorted) {
        ResolvedJoin::Hash => {
            for chain in &chains {
                let node = graph.node_rows()[match chain.position {
                    Position::NodeRow(r) => r,
                    Position::EdgeRow(_) => unreachable!(),
                } as usize]
                    .node;
                let rows = match direction {
                    HopDirection::Forward => graph.out_edge_rows(node),
                    HopDirection::Backward => graph.in_edge_rows(node),
                };
                extend_with_edge_rows(graph, chain, rows, out);
            }
        }
        ResolvedJoin::Merge => {
            if !sorted {
                chains.sort_by_key(key);
            }
            type EdgeKeyFn = fn(&GraphRelations, u32) -> usize;
            let (perm, edge_key): (&[u32], EdgeKeyFn) = match direction {
                HopDirection::Forward => {
                    (graph.edge_rows_sorted_by_src(), |g, r| g.edge_rows()[r as usize].src.index())
                }
                HopDirection::Backward => {
                    (graph.edge_rows_sorted_by_tgt(), |g, r| g.edge_rows()[r as usize].tgt.index())
                }
            };
            let joined = interval_merge_join(
                &chains,
                perm,
                key,
                |&r| edge_key(graph, r),
                |c| c.interval,
                |&r| graph.edge_rows()[r as usize].interval,
            );
            out.extend(joined.into_iter().map(|(chain, &edge_row, interval)| {
                let mut next = chain.clone();
                next.position = Position::EdgeRow(edge_row);
                next.interval = interval;
                next
            }));
        }
    }
}

/// Joins edge-positioned chains with the Nodes relation on the endpoint key
/// (target node for forward hops, source node for backward hops).
fn hop_from_edges(
    graph: &GraphRelations,
    mut chains: Vec<Chain>,
    direction: HopDirection,
    strategy: JoinStrategy,
    out: &mut Vec<Chain>,
) {
    let endpoint = |c: &Chain| {
        let row = &graph.edge_rows()[match c.position {
            Position::EdgeRow(r) => r,
            Position::NodeRow(_) => unreachable!("edge hop over a node-positioned chain"),
        } as usize];
        match direction {
            HopDirection::Forward => row.tgt,
            HopDirection::Backward => row.src,
        }
    };
    let key = |c: &Chain| endpoint(c).index();
    let sorted = is_key_sorted(&chains, key);
    match strategy.resolve(sorted) {
        ResolvedJoin::Hash => {
            for chain in &chains {
                extend_with_node_rows(graph, chain, graph.rows_of_node(endpoint(chain)), out);
            }
        }
        ResolvedJoin::Merge => {
            if !sorted {
                chains.sort_by_key(key);
            }
            let joined = interval_merge_join(
                &chains,
                graph.node_rows_sorted_by_id(),
                key,
                |&r| graph.node_rows()[r as usize].node.index(),
                |c| c.interval,
                |&r| graph.node_rows()[r as usize].interval,
            );
            out.extend(joined.into_iter().map(|(chain, &node_row, interval)| {
                let mut next = chain.clone();
                next.position = Position::NodeRow(node_row);
                next.interval = interval;
                next
            }));
        }
    }
}

fn apply_filter(graph: &GraphRelations, mut chain: Chain, filter: &ObjFilter) -> Option<Chain> {
    let ok = match chain.position {
        Position::NodeRow(r) => {
            let row = &graph.node_rows()[r as usize];
            filter.require_node != Some(false) && filter.matches_row(&row.label, &row.props)
        }
        Position::EdgeRow(r) => {
            let row = &graph.edge_rows()[r as usize];
            filter.require_node != Some(true) && filter.matches_row(&row.label, &row.props)
        }
    };
    if !ok {
        return None;
    }
    chain.interval = filter.clamp_interval(chain.interval)?;
    Some(chain)
}

fn extend_with_edge_rows(
    graph: &GraphRelations,
    chain: &Chain,
    rows: &[u32],
    out: &mut Vec<Chain>,
) {
    for &edge_row in rows {
        let row_interval = graph.edge_rows()[edge_row as usize].interval;
        if let Some(interval) = chain.interval.intersect(&row_interval) {
            let mut next = chain.clone();
            next.position = Position::EdgeRow(edge_row);
            next.interval = interval;
            out.push(next);
        }
    }
}

fn extend_with_node_rows(
    graph: &GraphRelations,
    chain: &Chain,
    rows: &[u32],
    out: &mut Vec<Chain>,
) {
    for &node_row in rows {
        let row_interval = graph.node_rows()[node_row as usize].interval;
        if let Some(interval) = chain.interval.intersect(&row_interval) {
            let mut next = chain.clone();
            next.position = Position::NodeRow(node_row);
            next.interval = interval;
            out.push(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{Interval, ItpgBuilder, Value};
    use trpq::parser::Constraint;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    fn graph() -> GraphRelations {
        let mut b = ItpgBuilder::new();
        let ann = b.add_node("ann", "Person").unwrap();
        let bob = b.add_node("bob", "Person").unwrap();
        let room = b.add_node("room", "Room").unwrap();
        let meets = b.add_edge("m", "meets", ann, bob).unwrap();
        let visits = b.add_edge("v", "visits", bob, room).unwrap();
        b.add_existence(ann, iv(1, 9)).unwrap();
        b.add_existence(bob, iv(1, 9)).unwrap();
        b.add_existence(room, iv(3, 8)).unwrap();
        b.add_existence(meets, iv(5, 6)).unwrap();
        b.add_existence(visits, iv(6, 8)).unwrap();
        b.set_property(ann, "risk", "low", iv(1, 9)).unwrap();
        b.set_property(bob, "risk", "high", iv(1, 9)).unwrap();
        GraphRelations::from_itpg(&b.domain(iv(1, 11)).build().unwrap())
    }

    fn seeds(graph: &GraphRelations) -> Vec<Chain> {
        (0..graph.node_rows().len() as u32).map(|r| Chain::seed(r, graph)).collect()
    }

    /// Applies the segment under every strategy, asserts that all strategies agree on
    /// the result multiset, and returns the hash-strategy result (whose order the
    /// expectations below are written against).
    fn apply_checked(graph: &GraphRelations, segment: &Segment) -> Vec<Chain> {
        let hash = apply_segment(graph, seeds(graph), segment, JoinStrategy::Hash);
        for strategy in [JoinStrategy::Merge, JoinStrategy::Auto] {
            let alt = apply_segment(graph, seeds(graph), segment, strategy);
            let mut lhs: Vec<String> = hash.iter().map(|c| format!("{c:?}")).collect();
            let mut rhs: Vec<String> = alt.iter().map(|c| format!("{c:?}")).collect();
            lhs.sort();
            rhs.sort();
            assert_eq!(lhs, rhs, "{strategy} strategy disagrees with hash");
        }
        hash
    }

    #[test]
    fn filters_prune_rows_and_clamp_intervals() {
        let g = graph();
        let filter = ObjFilter::from_pattern(
            Some(true),
            Some("Person"),
            &[Constraint::Prop("risk".into(), Value::str("high"))],
        );
        let segment = Segment { ops: vec![MicroOp::Filter(filter), MicroOp::Bind(0)] };
        let result = apply_checked(&g, &segment);
        assert_eq!(result.len(), 1);
        assert_eq!(g.object_name(result[0].position.object(&g)), "bob");
        assert_eq!(result[0].interval, iv(1, 9));
        assert_eq!(result[0].bound.len(), 1);

        let time_filter = ObjFilter::from_pattern(
            Some(true),
            None,
            &[Constraint::Time(trpq::parser::CmpOp::Lt, 4)],
        );
        let clamped = apply_checked(&g, &Segment { ops: vec![MicroOp::Filter(time_filter)] });
        // Every node row survives but clamped below time 4; the Room row starts at 3.
        assert_eq!(clamped.len(), 3);
        assert!(clamped.iter().all(|c| c.interval.end() <= 3));
    }

    #[test]
    fn hops_follow_edges_and_intersect_intervals() {
        let g = graph();
        // ann --meets--> bob: hop forward twice from Person rows labelled 'low'.
        let segment = Segment {
            ops: vec![
                MicroOp::Filter(ObjFilter::from_pattern(
                    Some(true),
                    None,
                    &[Constraint::Prop("risk".into(), Value::str("low"))],
                )),
                MicroOp::Hop(HopDirection::Forward),
                MicroOp::Filter(ObjFilter { label: Some("meets".into()), ..Default::default() }),
                MicroOp::Hop(HopDirection::Forward),
            ],
        };
        let result = apply_checked(&g, &segment);
        assert_eq!(result.len(), 1);
        assert_eq!(g.object_name(result[0].position.object(&g)), "bob");
        // Interval is the intersection of ann [1,9], meets [5,6], bob [1,9].
        assert_eq!(result[0].interval, iv(5, 6));
    }

    #[test]
    fn backward_hops_traverse_against_edge_direction() {
        let g = graph();
        // Start from the Room, go backward over `visits` to the visitor.
        let segment = Segment {
            ops: vec![
                MicroOp::Filter(ObjFilter { label: Some("Room".into()), ..Default::default() }),
                MicroOp::Hop(HopDirection::Backward),
                MicroOp::Filter(ObjFilter { label: Some("visits".into()), ..Default::default() }),
                MicroOp::Hop(HopDirection::Backward),
            ],
        };
        let result = apply_checked(&g, &segment);
        assert_eq!(result.len(), 1);
        assert_eq!(g.object_name(result[0].position.object(&g)), "bob");
        assert_eq!(result[0].interval, iv(6, 8));
    }

    #[test]
    fn dead_ends_produce_no_chains() {
        let g = graph();
        let segment = Segment {
            ops: vec![
                MicroOp::Filter(ObjFilter { label: Some("Room".into()), ..Default::default() }),
                MicroOp::Hop(HopDirection::Forward),
            ],
        };
        // The room has no outgoing edges.
        assert!(apply_checked(&g, &segment).is_empty());
    }
}
