//! Step 1 of query evaluation (Section VI): structural navigation over the
//! interval-timestamped relations.
//!
//! A segment is a select–project–join pipeline evaluated entirely on intervals: every
//! hop is a temporally-aligned join between the current chains and the adjacent
//! Nodes/Edges rows (equal adjacency keys, intersecting validity intervals), every
//! filter prunes rows and clamps intervals, and a [`MicroOp::Closure`] repeats an
//! inner pipeline to a fixpoint (see [`crate::steps::closure`]).  The physical join
//! implementation is selected by a [`JoinStrategy`]:
//!
//! * `Hash` probes the per-node adjacency indexes built at load time (a hash join
//!   whose build side is precomputed);
//! * `Merge` runs a sort-merge join against the key-sorted row permutations of
//!   [`GraphRelations`], sorting the chains by their join key first if needed.  The
//!   merge uses galloping group seeks ([`interval_merge_join_gallop`]), so a very
//!   selective batch of chains skips the unmatched key groups of the permutation
//!   instead of scanning them;
//! * `Auto` picks merge when the chains are already key-sorted — which the seed-row
//!   expansion naturally produces for the first hop — *and* the chain batch is not
//!   vanishingly small relative to the permutation
//!   ([`JoinStrategy::resolve_with_hint`]); hash otherwise.
//!
//! The pipeline is generic over a [`StructuralCursor`]: the executor drives it with
//! full [`Chain`]s, while the closure operator drives the same joins with its
//! lightweight tagged frontier entries (the "delta" of the semi-naive iteration).

use dataflow::{interval_merge_join_gallop, is_key_sorted, JoinStrategy, ResolvedJoin};
use tgraph::Interval;

use crate::chain::{BoundVar, Chain, Position};
use crate::plan::{HopDirection, MicroOp, ObjFilter, Segment};
use crate::relations::GraphRelations;
use crate::steps::closure::apply_closure;
use crate::steps::StepStats;

/// The state threaded through a structural pipeline: a position in the row relations
/// plus the validity interval accumulated so far.  Implemented by [`Chain`] (the
/// executor's full match state) and by the closure fixpoint's frontier entries.
pub trait StructuralCursor: Clone {
    /// The row the cursor currently sits on.
    fn position(&self) -> Position;

    /// The validity interval accumulated since the segment started.
    fn interval(&self) -> Interval;

    /// A copy of the cursor moved to another row with a narrowed interval.  Used by
    /// hops, which fan one cursor out to several adjacent rows.
    fn moved_to(&self, position: Position, interval: Interval) -> Self;

    /// The cursor with its interval narrowed in place.  Used by filters, which keep
    /// the position and never fan out, so no clone is needed.
    fn with_interval(self, interval: Interval) -> Self;

    /// Records a variable binding at the current position.  Only full chains carry
    /// bindings; the compiler never places a [`MicroOp::Bind`] inside a closure, so
    /// frontier cursors treat this as unreachable.
    fn record_binding(&mut self, slot: u32, graph: &GraphRelations);
}

impl StructuralCursor for Chain {
    fn position(&self) -> Position {
        self.position
    }

    fn interval(&self) -> Interval {
        self.interval
    }

    fn moved_to(&self, position: Position, interval: Interval) -> Self {
        let mut next = self.clone();
        next.position = position;
        next.interval = interval;
        next
    }

    fn with_interval(mut self, interval: Interval) -> Self {
        self.interval = interval;
        self
    }

    fn record_binding(&mut self, slot: u32, graph: &GraphRelations) {
        self.bound.push(BoundVar {
            slot,
            segment: self.current_segment(),
            object: self.position.object(graph),
        });
    }
}

/// Applies every operation of a segment to the given chains, returning the surviving
/// chains.  Hops execute their joins according to `strategy`; closure rounds are
/// counted in `stats`.
pub fn apply_segment(
    graph: &GraphRelations,
    chains: Vec<Chain>,
    segment: &Segment,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<Chain> {
    apply_ops(graph, chains, &segment.ops, strategy, stats)
}

/// Applies a sequence of micro-operations to a batch of cursors.
pub(crate) fn apply_ops<C: StructuralCursor>(
    graph: &GraphRelations,
    cursors: Vec<C>,
    ops: &[MicroOp],
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<C> {
    let mut current = cursors;
    for op in ops {
        current = apply_op(graph, current, op, strategy, stats);
        if current.is_empty() {
            break;
        }
    }
    current
}

/// Applies one micro-operation to a batch of cursors.  Also driven directly by the
/// closure fixpoints, which interleave micro-operations with temporal steps.
pub(crate) fn apply_op<C: StructuralCursor>(
    graph: &GraphRelations,
    cursors: Vec<C>,
    op: &MicroOp,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<C> {
    match op {
        MicroOp::Filter(filter) => {
            cursors.into_iter().filter_map(|cursor| apply_filter(graph, cursor, filter)).collect()
        }
        MicroOp::Bind(slot) => cursors
            .into_iter()
            .map(|mut cursor| {
                cursor.record_binding(*slot as u32, graph);
                cursor
            })
            .collect(),
        MicroOp::Hop(direction) => apply_hop(graph, cursors, *direction, strategy, stats),
        MicroOp::Closure(closure) => apply_closure(graph, cursors, closure, strategy, stats),
    }
}

/// One structural step for a whole batch of cursors: node → incident edge, or edge →
/// endpoint node, keeping only temporally-aligned matches (non-empty interval
/// intersections).  A batch is homogeneous in position kind by construction (hops
/// alternate between node and edge rows), but both kinds are handled for robustness.
fn apply_hop<C: StructuralCursor>(
    graph: &GraphRelations,
    cursors: Vec<C>,
    direction: HopDirection,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<C> {
    let (node_cursors, edge_cursors): (Vec<C>, Vec<C>) =
        cursors.into_iter().partition(|c| matches!(c.position(), Position::NodeRow(_)));
    let mut out = Vec::with_capacity(node_cursors.len() + edge_cursors.len());
    if !node_cursors.is_empty() {
        hop_from_nodes(graph, node_cursors, direction, strategy, stats, &mut out);
    }
    if !edge_cursors.is_empty() {
        hop_from_edges(graph, edge_cursors, direction, strategy, stats, &mut out);
    }
    out
}

/// Counts one resolved join decision (per hop batch) into the step stats.
fn count_join(stats: &StepStats, resolved: ResolvedJoin) {
    let counter = match resolved {
        ResolvedJoin::Hash => &stats.hash_joins,
        ResolvedJoin::Merge => &stats.merge_joins,
    };
    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Joins node-positioned cursors with the Edges relation on the adjacency key
/// (source node for forward hops, target node for backward hops).
fn hop_from_nodes<C: StructuralCursor>(
    graph: &GraphRelations,
    mut cursors: Vec<C>,
    direction: HopDirection,
    strategy: JoinStrategy,
    stats: &StepStats,
    out: &mut Vec<C>,
) {
    let key = |c: &C| match c.position() {
        Position::NodeRow(r) => graph.node_rows()[r as usize].node.index(),
        Position::EdgeRow(_) => unreachable!("node hop over an edge-positioned cursor"),
    };
    type EdgeKeyFn = fn(&GraphRelations, u32) -> usize;
    let (perm, edge_key): (&[u32], EdgeKeyFn) = match direction {
        HopDirection::Forward => {
            (graph.edge_rows_sorted_by_src(), |g, r| g.edge_rows()[r as usize].src.index())
        }
        HopDirection::Backward => {
            (graph.edge_rows_sorted_by_tgt(), |g, r| g.edge_rows()[r as usize].tgt.index())
        }
    };
    let sorted = is_key_sorted(&cursors, key);
    let resolved = strategy.resolve_with_hint(sorted, cursors.len(), perm.len());
    count_join(stats, resolved);
    match resolved {
        ResolvedJoin::Hash => {
            for cursor in &cursors {
                let node = graph.node_rows()[match cursor.position() {
                    Position::NodeRow(r) => r,
                    Position::EdgeRow(_) => unreachable!(),
                } as usize]
                    .node;
                let rows = match direction {
                    HopDirection::Forward => graph.out_edge_rows(node),
                    HopDirection::Backward => graph.in_edge_rows(node),
                };
                extend_with_edge_rows(graph, cursor, rows, out);
            }
        }
        ResolvedJoin::Merge => {
            if !sorted {
                cursors.sort_by_key(key);
            }
            let joined = interval_merge_join_gallop(
                &cursors,
                perm,
                key,
                |&r| edge_key(graph, r),
                |c| c.interval(),
                |&r| graph.edge_rows()[r as usize].interval,
            );
            out.extend(joined.into_iter().map(|(cursor, &edge_row, interval)| {
                cursor.moved_to(Position::EdgeRow(edge_row), interval)
            }));
        }
    }
}

/// Joins edge-positioned cursors with the Nodes relation on the endpoint key
/// (target node for forward hops, source node for backward hops).
fn hop_from_edges<C: StructuralCursor>(
    graph: &GraphRelations,
    mut cursors: Vec<C>,
    direction: HopDirection,
    strategy: JoinStrategy,
    stats: &StepStats,
    out: &mut Vec<C>,
) {
    let endpoint = |c: &C| {
        let row = &graph.edge_rows()[match c.position() {
            Position::EdgeRow(r) => r,
            Position::NodeRow(_) => unreachable!("edge hop over a node-positioned cursor"),
        } as usize];
        match direction {
            HopDirection::Forward => row.tgt,
            HopDirection::Backward => row.src,
        }
    };
    let key = |c: &C| endpoint(c).index();
    let sorted = is_key_sorted(&cursors, key);
    let perm_len = graph.node_rows_sorted_by_id().len();
    let resolved = strategy.resolve_with_hint(sorted, cursors.len(), perm_len);
    count_join(stats, resolved);
    match resolved {
        ResolvedJoin::Hash => {
            for cursor in &cursors {
                extend_with_node_rows(graph, cursor, graph.rows_of_node(endpoint(cursor)), out);
            }
        }
        ResolvedJoin::Merge => {
            if !sorted {
                cursors.sort_by_key(key);
            }
            let joined = interval_merge_join_gallop(
                &cursors,
                graph.node_rows_sorted_by_id(),
                key,
                |&r| graph.node_rows()[r as usize].node.index(),
                |c| c.interval(),
                |&r| graph.node_rows()[r as usize].interval,
            );
            out.extend(joined.into_iter().map(|(cursor, &node_row, interval)| {
                cursor.moved_to(Position::NodeRow(node_row), interval)
            }));
        }
    }
}

fn apply_filter<C: StructuralCursor>(
    graph: &GraphRelations,
    cursor: C,
    filter: &ObjFilter,
) -> Option<C> {
    let ok = match cursor.position() {
        Position::NodeRow(r) => {
            let row = &graph.node_rows()[r as usize];
            filter.require_node != Some(false) && filter.matches_row(&row.label, &row.props)
        }
        Position::EdgeRow(r) => {
            let row = &graph.edge_rows()[r as usize];
            filter.require_node != Some(true) && filter.matches_row(&row.label, &row.props)
        }
    };
    if !ok {
        return None;
    }
    let interval = filter.clamp_interval(cursor.interval())?;
    Some(cursor.with_interval(interval))
}

fn extend_with_edge_rows<C: StructuralCursor>(
    graph: &GraphRelations,
    cursor: &C,
    rows: &[u32],
    out: &mut Vec<C>,
) {
    for &edge_row in rows {
        let row_interval = graph.edge_rows()[edge_row as usize].interval;
        if let Some(interval) = cursor.interval().intersect(&row_interval) {
            out.push(cursor.moved_to(Position::EdgeRow(edge_row), interval));
        }
    }
}

fn extend_with_node_rows<C: StructuralCursor>(
    graph: &GraphRelations,
    cursor: &C,
    rows: &[u32],
    out: &mut Vec<C>,
) {
    for &node_row in rows {
        let row_interval = graph.node_rows()[node_row as usize].interval;
        if let Some(interval) = cursor.interval().intersect(&row_interval) {
            out.push(cursor.moved_to(Position::NodeRow(node_row), interval));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{Interval, ItpgBuilder, Value};
    use trpq::parser::Constraint;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    fn graph() -> GraphRelations {
        let mut b = ItpgBuilder::new();
        let ann = b.add_node("ann", "Person").unwrap();
        let bob = b.add_node("bob", "Person").unwrap();
        let room = b.add_node("room", "Room").unwrap();
        let meets = b.add_edge("m", "meets", ann, bob).unwrap();
        let visits = b.add_edge("v", "visits", bob, room).unwrap();
        b.add_existence(ann, iv(1, 9)).unwrap();
        b.add_existence(bob, iv(1, 9)).unwrap();
        b.add_existence(room, iv(3, 8)).unwrap();
        b.add_existence(meets, iv(5, 6)).unwrap();
        b.add_existence(visits, iv(6, 8)).unwrap();
        b.set_property(ann, "risk", "low", iv(1, 9)).unwrap();
        b.set_property(bob, "risk", "high", iv(1, 9)).unwrap();
        GraphRelations::from_itpg(&b.domain(iv(1, 11)).build().unwrap())
    }

    fn seeds(graph: &GraphRelations) -> Vec<Chain> {
        (0..graph.node_rows().len() as u32).map(|r| Chain::seed(r, graph)).collect()
    }

    /// Applies the segment under every strategy, asserts that all strategies agree on
    /// the result multiset, and returns the hash-strategy result (whose order the
    /// expectations below are written against).
    fn apply_checked(graph: &GraphRelations, segment: &Segment) -> Vec<Chain> {
        let stats = StepStats::default();
        let hash = apply_segment(graph, seeds(graph), segment, JoinStrategy::Hash, &stats);
        for strategy in [JoinStrategy::Merge, JoinStrategy::Auto] {
            let alt = apply_segment(graph, seeds(graph), segment, strategy, &stats);
            let mut lhs: Vec<String> = hash.iter().map(|c| format!("{c:?}")).collect();
            let mut rhs: Vec<String> = alt.iter().map(|c| format!("{c:?}")).collect();
            lhs.sort();
            rhs.sort();
            assert_eq!(lhs, rhs, "{strategy} strategy disagrees with hash");
        }
        hash
    }

    #[test]
    fn filters_prune_rows_and_clamp_intervals() {
        let g = graph();
        let filter = ObjFilter::from_pattern(
            Some(true),
            Some("Person"),
            &[Constraint::Prop("risk".into(), Value::str("high"))],
        );
        let segment = Segment { ops: vec![MicroOp::Filter(filter), MicroOp::Bind(0)] };
        let result = apply_checked(&g, &segment);
        assert_eq!(result.len(), 1);
        assert_eq!(g.object_name(result[0].position.object(&g)), "bob");
        assert_eq!(result[0].interval, iv(1, 9));
        assert_eq!(result[0].bound.len(), 1);

        let time_filter = ObjFilter::from_pattern(
            Some(true),
            None,
            &[Constraint::Time(trpq::parser::CmpOp::Lt, 4)],
        );
        let clamped = apply_checked(&g, &Segment { ops: vec![MicroOp::Filter(time_filter)] });
        // Every node row survives but clamped below time 4; the Room row starts at 3.
        assert_eq!(clamped.len(), 3);
        assert!(clamped.iter().all(|c| c.interval.end() <= 3));
    }

    #[test]
    fn hops_follow_edges_and_intersect_intervals() {
        let g = graph();
        // ann --meets--> bob: hop forward twice from Person rows labelled 'low'.
        let segment = Segment {
            ops: vec![
                MicroOp::Filter(ObjFilter::from_pattern(
                    Some(true),
                    None,
                    &[Constraint::Prop("risk".into(), Value::str("low"))],
                )),
                MicroOp::Hop(HopDirection::Forward),
                MicroOp::Filter(ObjFilter { label: Some("meets".into()), ..Default::default() }),
                MicroOp::Hop(HopDirection::Forward),
            ],
        };
        let result = apply_checked(&g, &segment);
        assert_eq!(result.len(), 1);
        assert_eq!(g.object_name(result[0].position.object(&g)), "bob");
        // Interval is the intersection of ann [1,9], meets [5,6], bob [1,9].
        assert_eq!(result[0].interval, iv(5, 6));
    }

    #[test]
    fn backward_hops_traverse_against_edge_direction() {
        let g = graph();
        // Start from the Room, go backward over `visits` to the visitor.
        let segment = Segment {
            ops: vec![
                MicroOp::Filter(ObjFilter { label: Some("Room".into()), ..Default::default() }),
                MicroOp::Hop(HopDirection::Backward),
                MicroOp::Filter(ObjFilter { label: Some("visits".into()), ..Default::default() }),
                MicroOp::Hop(HopDirection::Backward),
            ],
        };
        let result = apply_checked(&g, &segment);
        assert_eq!(result.len(), 1);
        assert_eq!(g.object_name(result[0].position.object(&g)), "bob");
        assert_eq!(result[0].interval, iv(6, 8));
    }

    #[test]
    fn dead_ends_produce_no_chains() {
        let g = graph();
        let segment = Segment {
            ops: vec![
                MicroOp::Filter(ObjFilter { label: Some("Room".into()), ..Default::default() }),
                MicroOp::Hop(HopDirection::Forward),
            ],
        };
        // The room has no outgoing edges.
        assert!(apply_checked(&g, &segment).is_empty());
    }
}
