//! Step 1 of query evaluation (Section VI): structural navigation over the
//! interval-timestamped relations.
//!
//! A segment is a select–project–join pipeline evaluated entirely on intervals: every
//! hop joins the current rows with the adjacent Nodes/Edges rows through the adjacency
//! indexes and intersects validity intervals ("temporally-aligned" matches), and every
//! filter prunes rows and clamps intervals.

use crate::chain::{BoundVar, Chain, Position};
use crate::plan::{HopDirection, MicroOp, ObjFilter, Segment};
use crate::relations::GraphRelations;

/// Applies every operation of a segment to the given chains, returning the surviving
/// chains.
pub fn apply_segment(graph: &GraphRelations, chains: Vec<Chain>, segment: &Segment) -> Vec<Chain> {
    let mut current = chains;
    for op in &segment.ops {
        current = apply_op(graph, current, op);
        if current.is_empty() {
            break;
        }
    }
    current
}

fn apply_op(graph: &GraphRelations, chains: Vec<Chain>, op: &MicroOp) -> Vec<Chain> {
    match op {
        MicroOp::Filter(filter) => {
            chains.into_iter().filter_map(|chain| apply_filter(graph, chain, filter)).collect()
        }
        MicroOp::Bind(slot) => chains
            .into_iter()
            .map(|mut chain| {
                chain.bound.push(BoundVar {
                    slot: *slot as u32,
                    segment: chain.current_segment(),
                    object: chain.position.object(graph),
                });
                chain
            })
            .collect(),
        MicroOp::Hop(direction) => {
            let mut out = Vec::with_capacity(chains.len());
            for chain in chains {
                hop(graph, &chain, *direction, &mut out);
            }
            out
        }
    }
}

fn apply_filter(graph: &GraphRelations, mut chain: Chain, filter: &ObjFilter) -> Option<Chain> {
    let ok = match chain.position {
        Position::NodeRow(r) => {
            let row = &graph.node_rows()[r as usize];
            filter.require_node != Some(false) && filter.matches_row(&row.label, &row.props)
        }
        Position::EdgeRow(r) => {
            let row = &graph.edge_rows()[r as usize];
            filter.require_node != Some(true) && filter.matches_row(&row.label, &row.props)
        }
    };
    if !ok {
        return None;
    }
    chain.interval = filter.clamp_interval(chain.interval)?;
    Some(chain)
}

/// One structural step: node → incident edge, or edge → endpoint node, keeping only
/// temporally-aligned matches (non-empty interval intersections).
fn hop(graph: &GraphRelations, chain: &Chain, direction: HopDirection, out: &mut Vec<Chain>) {
    match (chain.position, direction) {
        (Position::NodeRow(r), HopDirection::Forward) => {
            let node = graph.node_rows()[r as usize].node;
            extend_with_edge_rows(graph, chain, graph.out_edge_rows(node), out);
        }
        (Position::NodeRow(r), HopDirection::Backward) => {
            let node = graph.node_rows()[r as usize].node;
            extend_with_edge_rows(graph, chain, graph.in_edge_rows(node), out);
        }
        (Position::EdgeRow(r), HopDirection::Forward) => {
            let tgt = graph.edge_rows()[r as usize].tgt;
            extend_with_node_rows(graph, chain, graph.rows_of_node(tgt), out);
        }
        (Position::EdgeRow(r), HopDirection::Backward) => {
            let src = graph.edge_rows()[r as usize].src;
            extend_with_node_rows(graph, chain, graph.rows_of_node(src), out);
        }
    }
}

fn extend_with_edge_rows(
    graph: &GraphRelations,
    chain: &Chain,
    rows: &[u32],
    out: &mut Vec<Chain>,
) {
    for &edge_row in rows {
        let row_interval = graph.edge_rows()[edge_row as usize].interval;
        if let Some(interval) = chain.interval.intersect(&row_interval) {
            let mut next = chain.clone();
            next.position = Position::EdgeRow(edge_row);
            next.interval = interval;
            out.push(next);
        }
    }
}

fn extend_with_node_rows(
    graph: &GraphRelations,
    chain: &Chain,
    rows: &[u32],
    out: &mut Vec<Chain>,
) {
    for &node_row in rows {
        let row_interval = graph.node_rows()[node_row as usize].interval;
        if let Some(interval) = chain.interval.intersect(&row_interval) {
            let mut next = chain.clone();
            next.position = Position::NodeRow(node_row);
            next.interval = interval;
            out.push(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{Interval, ItpgBuilder, Value};
    use trpq::parser::Constraint;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    fn graph() -> GraphRelations {
        let mut b = ItpgBuilder::new();
        let ann = b.add_node("ann", "Person").unwrap();
        let bob = b.add_node("bob", "Person").unwrap();
        let room = b.add_node("room", "Room").unwrap();
        let meets = b.add_edge("m", "meets", ann, bob).unwrap();
        let visits = b.add_edge("v", "visits", bob, room).unwrap();
        b.add_existence(ann, iv(1, 9)).unwrap();
        b.add_existence(bob, iv(1, 9)).unwrap();
        b.add_existence(room, iv(3, 8)).unwrap();
        b.add_existence(meets, iv(5, 6)).unwrap();
        b.add_existence(visits, iv(6, 8)).unwrap();
        b.set_property(ann, "risk", "low", iv(1, 9)).unwrap();
        b.set_property(bob, "risk", "high", iv(1, 9)).unwrap();
        GraphRelations::from_itpg(&b.domain(iv(1, 11)).build().unwrap())
    }

    fn seeds(graph: &GraphRelations) -> Vec<Chain> {
        (0..graph.node_rows().len() as u32).map(|r| Chain::seed(r, graph)).collect()
    }

    #[test]
    fn filters_prune_rows_and_clamp_intervals() {
        let g = graph();
        let filter = ObjFilter::from_pattern(
            Some(true),
            Some("Person"),
            &[Constraint::Prop("risk".into(), Value::str("high"))],
        );
        let segment = Segment { ops: vec![MicroOp::Filter(filter), MicroOp::Bind(0)] };
        let result = apply_segment(&g, seeds(&g), &segment);
        assert_eq!(result.len(), 1);
        assert_eq!(g.object_name(result[0].position.object(&g)), "bob");
        assert_eq!(result[0].interval, iv(1, 9));
        assert_eq!(result[0].bound.len(), 1);

        let time_filter = ObjFilter::from_pattern(
            Some(true),
            None,
            &[Constraint::Time(trpq::parser::CmpOp::Lt, 4)],
        );
        let clamped =
            apply_segment(&g, seeds(&g), &Segment { ops: vec![MicroOp::Filter(time_filter)] });
        // Every node row survives but clamped below time 4; the Room row starts at 3.
        assert_eq!(clamped.len(), 3);
        assert!(clamped.iter().all(|c| c.interval.end() <= 3));
    }

    #[test]
    fn hops_follow_edges_and_intersect_intervals() {
        let g = graph();
        // ann --meets--> bob: hop forward twice from Person rows labelled 'low'.
        let segment = Segment {
            ops: vec![
                MicroOp::Filter(ObjFilter::from_pattern(
                    Some(true),
                    None,
                    &[Constraint::Prop("risk".into(), Value::str("low"))],
                )),
                MicroOp::Hop(HopDirection::Forward),
                MicroOp::Filter(ObjFilter { label: Some("meets".into()), ..Default::default() }),
                MicroOp::Hop(HopDirection::Forward),
            ],
        };
        let result = apply_segment(&g, seeds(&g), &segment);
        assert_eq!(result.len(), 1);
        assert_eq!(g.object_name(result[0].position.object(&g)), "bob");
        // Interval is the intersection of ann [1,9], meets [5,6], bob [1,9].
        assert_eq!(result[0].interval, iv(5, 6));
    }

    #[test]
    fn backward_hops_traverse_against_edge_direction() {
        let g = graph();
        // Start from the Room, go backward over `visits` to the visitor.
        let segment = Segment {
            ops: vec![
                MicroOp::Filter(ObjFilter { label: Some("Room".into()), ..Default::default() }),
                MicroOp::Hop(HopDirection::Backward),
                MicroOp::Filter(ObjFilter { label: Some("visits".into()), ..Default::default() }),
                MicroOp::Hop(HopDirection::Backward),
            ],
        };
        let result = apply_segment(&g, seeds(&g), &segment);
        assert_eq!(result.len(), 1);
        assert_eq!(g.object_name(result[0].position.object(&g)), "bob");
        assert_eq!(result[0].interval, iv(6, 8));
    }

    #[test]
    fn dead_ends_produce_no_chains() {
        let g = graph();
        let segment = Segment {
            ops: vec![
                MicroOp::Filter(ObjFilter { label: Some("Room".into()), ..Default::default() }),
                MicroOp::Hop(HopDirection::Forward),
            ],
        };
        // The room has no outgoing edges.
        assert!(apply_segment(&g, seeds(&g), &segment).is_empty());
    }
}
