//! Physical query plans for the practical fragment implemented by the engine.
//!
//! A plan decomposes a `MATCH` pattern at its temporal navigation operators
//! (Section VI): each [`Segment`] is a purely structural select-project-join pipeline
//! evaluated over one (unknown) snapshot time, and consecutive segments are linked by
//! a [`Shift`] — a `NEXT[n,m]` / `PREV[n,m]` style move in time on the same object.
//! A query whose surface syntax contains unions compiles to several plans
//! (a [`PlanSet`]), whose results are unioned.

use dataflow::JoinStrategy;
use tgraph::{Interval, Time, Value};
use trpq::parser::{CmpOp, Constraint};

/// Direction of a single structural hop within a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopDirection {
    /// `FWD`: node → outgoing edge, or edge → target node.
    Forward,
    /// `BWD`: node → incoming edge, or edge → source node.
    Backward,
}

/// A filter on the object currently under the cursor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObjFilter {
    /// If set, the object must be a node (`true`) or an edge (`false`).
    pub require_node: Option<bool>,
    /// Required label, if any.
    pub label: Option<String>,
    /// Required property values.
    pub props: Vec<(String, Value)>,
    /// Constraints on the binding time (`time = k`, `time < k`, …).
    pub time: Vec<(CmpOp, Time)>,
}

impl ObjFilter {
    /// Builds a filter from the label and constraints of a parsed pattern.
    pub fn from_pattern(
        require_node: Option<bool>,
        label: Option<&str>,
        constraints: &[Constraint],
    ) -> Self {
        let mut filter =
            ObjFilter { require_node, label: label.map(str::to_owned), ..Default::default() };
        for c in constraints {
            match c {
                Constraint::Prop(p, v) => filter.props.push((p.clone(), v.clone())),
                Constraint::Time(op, k) => filter.time.push((*op, *k)),
            }
        }
        filter
    }

    /// True if the filter has no conditions at all.
    pub fn is_trivial(&self) -> bool {
        self.require_node.is_none()
            && self.label.is_none()
            && self.props.is_empty()
            && self.time.is_empty()
    }

    /// Restricts a validity interval according to the time constraints; returns `None`
    /// if no time point survives.
    pub fn clamp_interval(&self, interval: Interval) -> Option<Interval> {
        let mut lo = interval.start();
        let mut hi = interval.end();
        for (op, k) in &self.time {
            match op {
                CmpOp::Eq => {
                    lo = lo.max(*k);
                    hi = hi.min(*k);
                }
                CmpOp::Lt => {
                    if *k == 0 {
                        return None;
                    }
                    hi = hi.min(k - 1);
                }
                CmpOp::Le => hi = hi.min(*k),
                CmpOp::Gt => lo = lo.max(k + 1),
                CmpOp::Ge => lo = lo.max(*k),
            }
        }
        if lo <= hi {
            Some(Interval::of(lo, hi))
        } else {
            None
        }
    }

    /// Checks the label and property parts of the filter against a row's label and
    /// property list (the time part is handled by [`ObjFilter::clamp_interval`]).
    pub fn matches_row(&self, label: &str, props: &[(std::sync::Arc<str>, Value)]) -> bool {
        if let Some(required) = &self.label {
            if required != label {
                return false;
            }
        }
        self.props
            .iter()
            .all(|(name, value)| props.iter().any(|(k, v)| k.as_ref() == name && v == value))
    }
}

/// A single operation of a structural segment.
#[derive(Debug, Clone, PartialEq)]
pub enum MicroOp {
    /// Move one structural step within the current snapshot.
    Hop(HopDirection),
    /// Filter the object under the cursor.
    Filter(ObjFilter),
    /// Bind the object under the cursor to the variable slot.
    Bind(usize),
    /// Repeat a structural sub-pipeline between `min` and `max` times — the engine's
    /// interval-aware transitive closure (`(FWD/:meets/FWD)*` and friends).
    Closure(ClosureOp),
}

/// The repetition of a purely structural sub-expression, evaluated as a semi-naive
/// fixpoint: each iteration applies every alternative of the inner op pipeline to the
/// newly discovered `(source, position, interval)` triples only, coalescing intervals
/// between rounds, until no new coverage appears (or the `max` bound is reached).
///
/// The inner alternatives contain no [`MicroOp::Bind`] (the surface language cannot
/// bind variables inside a repeated group) and no temporal navigation — repetition
/// over `NEXT`/`PREV` compiles to a [`Shift`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosureOp {
    /// The union alternatives of the repeated sub-expression; one iteration applies
    /// each alternative to the frontier and unions the results.
    pub alternatives: Vec<Vec<MicroOp>>,
    /// Minimum number of iterations.
    pub min: u32,
    /// Maximum number of iterations; `None` for open-ended repetitions such as `*`.
    pub max: Option<u32>,
}

/// A maximal run of structural operations evaluated at a single snapshot time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Segment {
    /// The operations, applied left to right.
    pub ops: Vec<MicroOp>,
}

impl Segment {
    /// The variable slots bound inside this segment.
    pub fn bound_slots(&self) -> Vec<usize> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                MicroOp::Bind(slot) => Some(*slot),
                _ => None,
            })
            .collect()
    }
}

/// A temporal move between two segments: `NEXT[min, max]` (forward) or
/// `PREV[min, max]` (backward) on the object the previous segment ended on, walking
/// only through time points at which that object exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shift {
    /// `true` for `NEXT` (towards the future), `false` for `PREV`.
    pub forward: bool,
    /// Minimum number of steps.
    pub min: u32,
    /// Maximum number of steps; `None` for open-ended indicators such as `NEXT*`.
    pub max: Option<u32>,
}

impl Shift {
    /// True if no step count satisfies the indicator (`min > max`, e.g. `NEXT[3,1]`):
    /// the shift relates nothing, matching the reference semantics of an empty
    /// repetition range.
    pub fn is_unsatisfiable(&self) -> bool {
        self.max.is_some_and(|m| m < self.min)
    }

    /// The arrival times reachable from departure time `t`, given the maximal
    /// existence interval `within` that contains `t`.
    pub fn arrival_from_point(&self, t: Time, within: Interval) -> Option<Interval> {
        if self.is_unsatisfiable() {
            return None;
        }
        if self.forward {
            let lo = t.checked_add(self.min as u64)?;
            let hi = match self.max {
                Some(m) => (t + m as u64).min(within.end()),
                None => within.end(),
            };
            if lo > hi || lo > within.end() {
                None
            } else {
                Some(Interval::of(lo, hi))
            }
        } else {
            if t < self.min as u64 {
                return None;
            }
            let hi = t - self.min as u64;
            let lo = match self.max {
                Some(m) => t.saturating_sub(m as u64).max(within.start()),
                None => within.start(),
            };
            if lo > hi || hi < within.start() {
                None
            } else {
                Some(Interval::of(lo, hi.min(within.end())))
            }
        }
    }

    /// The arrival times reachable from *some* departure time in `departure`, given
    /// the maximal existence interval `within` containing the departure interval.
    ///
    /// Because the departure times form a contiguous interval, the union of the
    /// per-departure arrival windows is itself an interval: `[departure.start + min,
    /// departure.end + max]` for forward shifts and `[departure.start − max,
    /// departure.end − min]` for backward shifts, clamped to `within`.
    pub fn arrival_from_interval(&self, departure: Interval, within: Interval) -> Option<Interval> {
        if self.is_unsatisfiable() {
            return None;
        }
        if self.forward {
            let lo = departure.start().checked_add(self.min as u64)?;
            let hi = match self.max {
                Some(m) => departure.end().saturating_add(m as u64).min(within.end()),
                None => within.end(),
            };
            if lo > hi {
                return None;
            }
            Interval::of(lo, hi).intersect(&within)
        } else {
            if departure.end() < self.min as u64 {
                return None;
            }
            let hi = departure.end() - self.min as u64;
            let lo = match self.max {
                Some(m) => departure.start().saturating_sub(m as u64).max(within.start()),
                None => within.start(),
            };
            if lo > hi {
                return None;
            }
            Interval::of(lo, hi).intersect(&within)
        }
    }

    /// True if moving from `from` to `to` respects the step bounds and direction.
    pub fn admits(&self, from: Time, to: Time) -> bool {
        let delta = if self.forward {
            if to < from {
                return false;
            }
            to - from
        } else {
            if to > from {
                return false;
            }
            from - to
        };
        delta >= self.min as u64 && self.max.is_none_or(|m| delta <= m as u64)
    }
}

/// A complete plan: segments joined by shifts.  `shifts.len()` is always
/// `segments.len() - 1`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnginePlan {
    /// The structural segments.
    pub segments: Vec<Segment>,
    /// The temporal moves between consecutive segments.
    pub shifts: Vec<Shift>,
}

impl EnginePlan {
    /// True if the plan has no temporal navigation (queries Q1–Q5 of the paper); its
    /// results stay temporally coalesced.
    pub fn is_purely_structural(&self) -> bool {
        self.shifts.is_empty()
    }
}

/// The compiled form of one `MATCH` clause: one plan per union alternative plus the
/// shared variable slots.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSet {
    /// The union alternatives.
    pub plans: Vec<EnginePlan>,
    /// Variable names, indexed by slot.
    pub variables: Vec<String>,
    /// The graph name the query addresses (`ON …`).
    pub graph: String,
    /// The join strategy baked in at compile time
    /// ([`compile_with_strategy`](crate::compiler::compile_with_strategy)); `Auto`
    /// defers the choice to the executor, which may still be overridden per run
    /// through [`ExecutionOptions`](crate::executor::ExecutionOptions).
    pub join_strategy: JoinStrategy,
}

impl PlanSet {
    /// True if no alternative uses temporal navigation.
    pub fn is_purely_structural(&self) -> bool {
        self.plans.iter().all(EnginePlan::is_purely_structural)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_interval_applies_time_constraints() {
        let mut f = ObjFilter::default();
        assert_eq!(f.clamp_interval(Interval::of(1, 9)), Some(Interval::of(1, 9)));
        f.time.push((CmpOp::Lt, 5));
        assert_eq!(f.clamp_interval(Interval::of(1, 9)), Some(Interval::of(1, 4)));
        f.time.push((CmpOp::Ge, 3));
        assert_eq!(f.clamp_interval(Interval::of(1, 9)), Some(Interval::of(3, 4)));
        f.time.push((CmpOp::Eq, 4));
        assert_eq!(f.clamp_interval(Interval::of(1, 9)), Some(Interval::of(4, 4)));
        f.time.push((CmpOp::Gt, 7));
        assert_eq!(f.clamp_interval(Interval::of(1, 9)), None);
        let lt_zero = ObjFilter { time: vec![(CmpOp::Lt, 0)], ..Default::default() };
        assert_eq!(lt_zero.clamp_interval(Interval::of(0, 5)), None);
    }

    #[test]
    fn row_matching_checks_label_and_props() {
        let f = ObjFilter::from_pattern(
            Some(true),
            Some("Person"),
            &[Constraint::Prop("risk".into(), Value::str("high"))],
        );
        let props = vec![
            (std::sync::Arc::from("name"), Value::str("Mia")),
            (std::sync::Arc::from("risk"), Value::str("high")),
        ];
        assert!(f.matches_row("Person", &props));
        assert!(!f.matches_row("Room", &props));
        let low = vec![(std::sync::Arc::from("risk"), Value::str("low"))];
        assert!(!f.matches_row("Person", &low));
        assert!(ObjFilter::default().is_trivial());
        assert!(!f.is_trivial());
    }

    #[test]
    fn shift_arrivals_forward_and_backward() {
        let within = Interval::of(0, 48);
        let next = Shift { forward: true, min: 0, max: Some(12) };
        assert_eq!(next.arrival_from_point(10, within), Some(Interval::of(10, 22)));
        assert_eq!(next.arrival_from_point(40, within), Some(Interval::of(40, 48)));
        let next_star = Shift { forward: true, min: 0, max: None };
        assert_eq!(next_star.arrival_from_point(10, within), Some(Interval::of(10, 48)));
        let prev = Shift { forward: false, min: 1, max: Some(3) };
        assert_eq!(prev.arrival_from_point(10, within), Some(Interval::of(7, 9)));
        assert_eq!(prev.arrival_from_point(0, within), None);
        let prev_star = Shift { forward: false, min: 0, max: None };
        assert_eq!(
            prev_star.arrival_from_point(10, Interval::of(5, 48)),
            Some(Interval::of(5, 10))
        );
    }

    #[test]
    fn shift_arrival_from_interval_covers_all_departures() {
        let within = Interval::of(0, 48);
        let next = Shift { forward: true, min: 2, max: Some(4) };
        assert_eq!(
            next.arrival_from_interval(Interval::of(10, 12), within),
            Some(Interval::of(12, 16))
        );
        let prev = Shift { forward: false, min: 1, max: Some(2) };
        assert_eq!(
            prev.arrival_from_interval(Interval::of(10, 12), within),
            Some(Interval::of(8, 11))
        );
        // Departure too close to the start of time for a backward shift.
        let far_prev = Shift { forward: false, min: 10, max: Some(12) };
        assert_eq!(far_prev.arrival_from_interval(Interval::of(2, 3), within), None);
    }

    #[test]
    fn shift_admits_checks_direction_and_bounds() {
        let next = Shift { forward: true, min: 0, max: Some(12) };
        assert!(next.admits(5, 5));
        assert!(next.admits(5, 17));
        assert!(!next.admits(5, 18));
        assert!(!next.admits(5, 4));
        let prev_star = Shift { forward: false, min: 0, max: None };
        assert!(prev_star.admits(9, 1));
        assert!(!prev_star.admits(9, 10));
        let exactly_one_back = Shift { forward: false, min: 1, max: Some(1) };
        assert!(exactly_one_back.admits(9, 8));
        assert!(!exactly_one_back.admits(9, 9));
    }

    #[test]
    fn plan_structural_classification() {
        let plain = EnginePlan { segments: vec![Segment::default()], shifts: vec![] };
        assert!(plain.is_purely_structural());
        let shifted = EnginePlan {
            segments: vec![Segment::default(), Segment::default()],
            shifts: vec![Shift { forward: true, min: 0, max: None }],
        };
        assert!(!shifted.is_purely_structural());
        let set = PlanSet {
            plans: vec![plain, shifted],
            variables: vec!["x".into()],
            graph: "g".into(),
            join_strategy: JoinStrategy::Auto,
        };
        assert!(!set.is_purely_structural());
    }
}
