//! Physical query plans for the practical fragment implemented by the engine.
//!
//! A plan decomposes a `MATCH` pattern at its temporal navigation operators
//! (Section VI): each [`Segment`] is a purely structural select-project-join pipeline
//! evaluated over one (unknown) snapshot time, and consecutive segments are linked by
//! a [`Shift`] — a `NEXT[n,m]` / `PREV[n,m]` style move in time on the same object.
//! A query whose surface syntax contains unions compiles to several plans
//! (a [`PlanSet`]), whose results are unioned.

use dataflow::JoinStrategy;
use tgraph::{Interval, Time, Value};
use trpq::parser::{CmpOp, Constraint};

pub mod analyze;
pub mod audit;

/// Direction of a single structural hop within a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopDirection {
    /// `FWD`: node → outgoing edge, or edge → target node.
    Forward,
    /// `BWD`: node → incoming edge, or edge → source node.
    Backward,
}

/// A filter on the object currently under the cursor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObjFilter {
    /// If set, the object must be a node (`true`) or an edge (`false`).
    pub require_node: Option<bool>,
    /// Required label, if any.
    pub label: Option<String>,
    /// Required property values.
    pub props: Vec<(String, Value)>,
    /// Constraints on the binding time (`time = k`, `time < k`, …).
    pub time: Vec<(CmpOp, Time)>,
}

impl ObjFilter {
    /// Builds a filter from the label and constraints of a parsed pattern.
    pub fn from_pattern(
        require_node: Option<bool>,
        label: Option<&str>,
        constraints: &[Constraint],
    ) -> Self {
        let mut filter =
            ObjFilter { require_node, label: label.map(str::to_owned), ..Default::default() };
        for c in constraints {
            match c {
                Constraint::Prop(p, v) => filter.props.push((p.clone(), v.clone())),
                Constraint::Time(op, k) => filter.time.push((*op, *k)),
            }
        }
        filter
    }

    /// True if the filter has no conditions at all.
    pub fn is_trivial(&self) -> bool {
        self.require_node.is_none()
            && self.label.is_none()
            && self.props.is_empty()
            && self.time.is_empty()
    }

    /// Restricts a validity interval according to the time constraints; returns `None`
    /// if no time point survives.
    pub fn clamp_interval(&self, interval: Interval) -> Option<Interval> {
        let mut lo = interval.start();
        let mut hi = interval.end();
        for (op, k) in &self.time {
            match op {
                CmpOp::Eq => {
                    lo = lo.max(*k);
                    hi = hi.min(*k);
                }
                CmpOp::Lt => {
                    if *k == 0 {
                        return None;
                    }
                    hi = hi.min(k - 1);
                }
                CmpOp::Le => hi = hi.min(*k),
                CmpOp::Gt => match k.checked_add(1) {
                    // `time > Time::MAX` admits no time point at all.
                    None => return None,
                    Some(bound) => lo = lo.max(bound),
                },
                CmpOp::Ge => lo = lo.max(*k),
            }
        }
        if lo <= hi {
            Some(Interval::of(lo, hi))
        } else {
            None
        }
    }

    /// Checks the label and property parts of the filter against a row's label and
    /// property list (the time part is handled by [`ObjFilter::clamp_interval`]).
    pub fn matches_row(&self, label: &str, props: &[(std::sync::Arc<str>, Value)]) -> bool {
        if let Some(required) = &self.label {
            if required != label {
                return false;
            }
        }
        self.props
            .iter()
            .all(|(name, value)| props.iter().any(|(k, v)| k.as_ref() == name && v == value))
    }
}

/// A single operation of a structural segment.
#[derive(Debug, Clone, PartialEq)]
pub enum MicroOp {
    /// Move one structural step within the current snapshot.
    Hop(HopDirection),
    /// Filter the object under the cursor.
    Filter(ObjFilter),
    /// Bind the object under the cursor to the variable slot.
    Bind(usize),
    /// Repeat a *purely structural* sub-pipeline between `min` and `max` times — the
    /// engine's interval-aware transitive closure (`(FWD/:meets/FWD)*` and friends).
    /// Time-crossing repetitions (any [`ClosureStep::Shift`] in the body) never appear
    /// as a segment micro-op; they compile to a [`TemporalLink::Closure`] instead.
    Closure(ClosureOp),
}

/// One step of a repeated sub-expression: either a structural micro-operation
/// (evaluated within the current snapshot) or a temporal [`Shift`] advancing the
/// cursor through the existence time of the object it sits on.
#[derive(Debug, Clone, PartialEq)]
pub enum ClosureStep {
    /// A structural micro-operation (hop, filter, or a nested closure).
    Micro(MicroOp),
    /// A temporal move on the current object between two structural steps.
    Shift(Shift),
}

impl From<MicroOp> for ClosureStep {
    fn from(op: MicroOp) -> Self {
        ClosureStep::Micro(op)
    }
}

/// The repetition of a sub-expression, evaluated as a semi-naive fixpoint: each
/// iteration applies every alternative of the inner step pipeline to the newly
/// discovered states only, coalescing intervals between rounds, until no new coverage
/// appears (or the `max` bound is reached).
///
/// The inner alternatives contain no [`MicroOp::Bind`] (the surface language cannot
/// bind variables inside a repeated group).  When the body is purely structural the
/// fixpoint runs per snapshot over `(source, position, interval)` triples; when it
/// contains [`ClosureStep::Shift`]s (`(FWD/NEXT)*`-style mixed repetition) it runs
/// time-aware, over `(source, position, departure-interval, arrival-interval, lag)`
/// states (see [`crate::steps::closure`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ClosureOp {
    /// The union alternatives of the repeated sub-expression; one iteration applies
    /// each alternative to the frontier and unions the results.
    pub alternatives: Vec<Vec<ClosureStep>>,
    /// Minimum number of iterations.
    pub min: u32,
    /// Maximum number of iterations; `None` for open-ended repetitions such as `*`.
    pub max: Option<u32>,
}

impl ClosureOp {
    /// Builds a closure over purely structural alternatives (no temporal steps).
    pub fn structural(alternatives: Vec<Vec<MicroOp>>, min: u32, max: Option<u32>) -> Self {
        ClosureOp {
            alternatives: alternatives
                .into_iter()
                .map(|ops| ops.into_iter().map(ClosureStep::Micro).collect())
                .collect(),
            min,
            max,
        }
    }

    /// True if some alternative moves through time: it contains a shift, directly or
    /// inside a nested closure.  Time-crossing closures relate different time points
    /// of their start and end states and therefore execute as a
    /// [`TemporalLink::Closure`] rather than inside a structural segment.
    pub fn is_time_crossing(&self) -> bool {
        fn step_crosses(step: &ClosureStep) -> bool {
            match step {
                ClosureStep::Shift(_) => true,
                ClosureStep::Micro(MicroOp::Closure(inner)) => inner.is_time_crossing(),
                ClosureStep::Micro(_) => false,
            }
        }
        self.alternatives.iter().any(|alt| alt.iter().any(step_crosses))
    }
}

/// A maximal run of structural operations evaluated at a single snapshot time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Segment {
    /// The operations, applied left to right.
    pub ops: Vec<MicroOp>,
}

impl Segment {
    /// The variable slots bound inside this segment.
    pub fn bound_slots(&self) -> Vec<usize> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                MicroOp::Bind(slot) => Some(*slot),
                _ => None,
            })
            .collect()
    }
}

/// A temporal move between two segments: `NEXT[min, max]` (forward) or
/// `PREV[min, max]` (backward) on the object the previous segment ended on, walking
/// only through time points at which that object exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shift {
    /// `true` for `NEXT` (towards the future), `false` for `PREV`.
    pub forward: bool,
    /// Minimum number of steps.
    pub min: u32,
    /// Maximum number of steps; `None` for open-ended indicators such as `NEXT*`.
    pub max: Option<u32>,
}

impl Shift {
    /// True if no step count satisfies the indicator (`min > max`, e.g. `NEXT[3,1]`):
    /// the shift relates nothing, matching the reference semantics of an empty
    /// repetition range.
    pub fn is_unsatisfiable(&self) -> bool {
        self.max.is_some_and(|m| m < self.min)
    }

    /// The arrival times reachable from departure time `t`, given the maximal
    /// existence interval `within` that contains `t`.
    pub fn arrival_from_point(&self, t: Time, within: Interval) -> Option<Interval> {
        if self.is_unsatisfiable() {
            return None;
        }
        if self.forward {
            let lo = t.checked_add(self.min as u64)?;
            // `t + m` can exceed `Time::MAX` for large times; the arrival window is
            // clamped to `within` anyway, so saturating keeps the minimum exact.
            let hi = match self.max {
                Some(m) => t.saturating_add(m as u64).min(within.end()),
                None => within.end(),
            };
            if lo > hi || lo > within.end() {
                None
            } else {
                Some(Interval::of(lo, hi))
            }
        } else {
            if t < self.min as u64 {
                return None;
            }
            let hi = t - self.min as u64;
            let lo = match self.max {
                Some(m) => t.saturating_sub(m as u64).max(within.start()),
                None => within.start(),
            };
            if lo > hi || hi < within.start() {
                None
            } else {
                Some(Interval::of(lo, hi.min(within.end())))
            }
        }
    }

    /// The arrival times reachable from *some* departure time in `departure`, given
    /// the maximal existence interval `within` containing the departure interval.
    ///
    /// Because the departure times form a contiguous interval, the union of the
    /// per-departure arrival windows is itself an interval: `[departure.start + min,
    /// departure.end + max]` for forward shifts and `[departure.start − max,
    /// departure.end − min]` for backward shifts, clamped to `within`.
    pub fn arrival_from_interval(&self, departure: Interval, within: Interval) -> Option<Interval> {
        if self.is_unsatisfiable() {
            return None;
        }
        if self.forward {
            let lo = departure.start().checked_add(self.min as u64)?;
            let hi = match self.max {
                Some(m) => departure.end().saturating_add(m as u64).min(within.end()),
                None => within.end(),
            };
            if lo > hi {
                return None;
            }
            Interval::of(lo, hi).intersect(&within)
        } else {
            if departure.end() < self.min as u64 {
                return None;
            }
            let hi = departure.end() - self.min as u64;
            let lo = match self.max {
                Some(m) => departure.start().saturating_sub(m as u64).max(within.start()),
                None => within.start(),
            };
            if lo > hi {
                return None;
            }
            Interval::of(lo, hi).intersect(&within)
        }
    }

    /// True if moving from `from` to `to` respects the step bounds and direction.
    pub fn admits(&self, from: Time, to: Time) -> bool {
        let delta = if self.forward {
            if to < from {
                return false;
            }
            to - from
        } else {
            if to > from {
                return false;
            }
            from - to
        };
        delta >= self.min as u64 && self.max.is_none_or(|m| delta <= m as u64)
    }
}

/// The temporal connection between two consecutive segments of a plan: either a plain
/// shift (`NEXT[n,m]` / `PREV[n,m]`) or a time-aware closure (repetition of a group
/// mixing structural and temporal navigation, e.g. `(FWD/NEXT)*`).
#[derive(Debug, Clone, PartialEq)]
pub enum TemporalLink {
    /// A temporal move on the object the previous segment ended on.
    Shift(Shift),
    /// A time-crossing fixpoint: the repeated body moves both through the graph and
    /// through time, so the link relates `(row, departure time)` to `(row', arrival
    /// time)` states.  The admissible `(departure, arrival)` pairs are recorded per
    /// output chain as a [`crate::chain::TimeLag`].
    Closure(ClosureOp),
}

impl TemporalLink {
    /// The shift, if the link is a plain temporal move.
    pub fn as_shift(&self) -> Option<&Shift> {
        match self {
            TemporalLink::Shift(shift) => Some(shift),
            TemporalLink::Closure(_) => None,
        }
    }
}

/// A complete plan: segments joined by temporal links.  `links.len()` is always
/// `segments.len() - 1`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnginePlan {
    /// The structural segments.
    pub segments: Vec<Segment>,
    /// The temporal links between consecutive segments.
    pub links: Vec<TemporalLink>,
}

impl EnginePlan {
    /// True if the plan has no temporal navigation (queries Q1–Q5 of the paper); its
    /// results stay temporally coalesced.
    pub fn is_purely_structural(&self) -> bool {
        self.links.is_empty()
    }
}

/// The compiled form of one `MATCH` clause: one plan per union alternative plus the
/// shared variable slots.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSet {
    /// The union alternatives.
    pub plans: Vec<EnginePlan>,
    /// Variable names, indexed by slot.
    pub variables: Vec<String>,
    /// The graph name the query addresses (`ON …`).
    pub graph: String,
    /// The join strategy baked in at compile time
    /// ([`compile_with_strategy`](crate::compiler::compile_with_strategy)); `Auto`
    /// defers the choice to the executor, which may still be overridden per run
    /// through [`ExecutionOptions`](crate::executor::ExecutionOptions).
    pub join_strategy: JoinStrategy,
}

impl PlanSet {
    /// True if no alternative uses temporal navigation.
    pub fn is_purely_structural(&self) -> bool {
        self.plans.iter().all(EnginePlan::is_purely_structural)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_interval_applies_time_constraints() {
        let mut f = ObjFilter::default();
        assert_eq!(f.clamp_interval(Interval::of(1, 9)), Some(Interval::of(1, 9)));
        f.time.push((CmpOp::Lt, 5));
        assert_eq!(f.clamp_interval(Interval::of(1, 9)), Some(Interval::of(1, 4)));
        f.time.push((CmpOp::Ge, 3));
        assert_eq!(f.clamp_interval(Interval::of(1, 9)), Some(Interval::of(3, 4)));
        f.time.push((CmpOp::Eq, 4));
        assert_eq!(f.clamp_interval(Interval::of(1, 9)), Some(Interval::of(4, 4)));
        f.time.push((CmpOp::Gt, 7));
        assert_eq!(f.clamp_interval(Interval::of(1, 9)), None);
        let lt_zero = ObjFilter { time: vec![(CmpOp::Lt, 0)], ..Default::default() };
        assert_eq!(lt_zero.clamp_interval(Interval::of(0, 5)), None);
    }

    #[test]
    fn row_matching_checks_label_and_props() {
        let f = ObjFilter::from_pattern(
            Some(true),
            Some("Person"),
            &[Constraint::Prop("risk".into(), Value::str("high"))],
        );
        let props = vec![
            (std::sync::Arc::from("name"), Value::str("Mia")),
            (std::sync::Arc::from("risk"), Value::str("high")),
        ];
        assert!(f.matches_row("Person", &props));
        assert!(!f.matches_row("Room", &props));
        let low = vec![(std::sync::Arc::from("risk"), Value::str("low"))];
        assert!(!f.matches_row("Person", &low));
        assert!(ObjFilter::default().is_trivial());
        assert!(!f.is_trivial());
    }

    #[test]
    fn shift_arrivals_forward_and_backward() {
        let within = Interval::of(0, 48);
        let next = Shift { forward: true, min: 0, max: Some(12) };
        assert_eq!(next.arrival_from_point(10, within), Some(Interval::of(10, 22)));
        assert_eq!(next.arrival_from_point(40, within), Some(Interval::of(40, 48)));
        let next_star = Shift { forward: true, min: 0, max: None };
        assert_eq!(next_star.arrival_from_point(10, within), Some(Interval::of(10, 48)));
        let prev = Shift { forward: false, min: 1, max: Some(3) };
        assert_eq!(prev.arrival_from_point(10, within), Some(Interval::of(7, 9)));
        assert_eq!(prev.arrival_from_point(0, within), None);
        let prev_star = Shift { forward: false, min: 0, max: None };
        assert_eq!(
            prev_star.arrival_from_point(10, Interval::of(5, 48)),
            Some(Interval::of(5, 10))
        );
    }

    #[test]
    fn shift_arithmetic_survives_time_max_adjacent_inputs() {
        // Regression: `hi = t + m` used to overflow (panic in debug, wrap in release)
        // for large departure times; the window is clamped to `within` regardless.
        let within = Interval::of(Time::MAX - 10, Time::MAX);
        let next = Shift { forward: true, min: 0, max: Some(12) };
        assert_eq!(
            next.arrival_from_point(Time::MAX - 5, within),
            Some(Interval::of(Time::MAX - 5, Time::MAX))
        );
        assert_eq!(
            next.arrival_from_point(Time::MAX, within),
            Some(Interval::of(Time::MAX, Time::MAX))
        );
        // A minimum step count that cannot be taken from the end of time.
        let must_move = Shift { forward: true, min: 1, max: Some(u32::MAX) };
        assert_eq!(must_move.arrival_from_point(Time::MAX, within), None);
        assert_eq!(
            must_move.arrival_from_point(Time::MAX - 1, within),
            Some(Interval::of(Time::MAX, Time::MAX))
        );
        // The interval form saturates the same way.
        assert_eq!(
            next.arrival_from_interval(Interval::of(Time::MAX - 2, Time::MAX), within),
            Some(Interval::of(Time::MAX - 2, Time::MAX))
        );
        // A `time > Time::MAX` constraint admits nothing instead of overflowing.
        let gt_max = ObjFilter { time: vec![(CmpOp::Gt, Time::MAX)], ..Default::default() };
        assert_eq!(gt_max.clamp_interval(Interval::of(0, Time::MAX)), None);
    }

    #[test]
    fn closure_time_crossing_classification() {
        let hop = || ClosureStep::Micro(MicroOp::Hop(HopDirection::Forward));
        let structural =
            ClosureOp::structural(vec![vec![MicroOp::Hop(HopDirection::Forward)]], 0, None);
        assert!(!structural.is_time_crossing());
        let mixed = ClosureOp {
            alternatives: vec![vec![
                hop(),
                ClosureStep::Shift(Shift { forward: true, min: 1, max: Some(1) }),
            ]],
            min: 0,
            max: None,
        };
        assert!(mixed.is_time_crossing());
        // Nesting a time-crossing closure makes the outer closure time-crossing too.
        let nested = ClosureOp {
            alternatives: vec![vec![hop(), ClosureStep::Micro(MicroOp::Closure(mixed))]],
            min: 1,
            max: Some(2),
        };
        assert!(nested.is_time_crossing());
        let nested_structural = ClosureOp {
            alternatives: vec![vec![ClosureStep::Micro(MicroOp::Closure(structural))]],
            min: 0,
            max: None,
        };
        assert!(!nested_structural.is_time_crossing());
    }

    #[test]
    fn shift_arrival_from_interval_covers_all_departures() {
        let within = Interval::of(0, 48);
        let next = Shift { forward: true, min: 2, max: Some(4) };
        assert_eq!(
            next.arrival_from_interval(Interval::of(10, 12), within),
            Some(Interval::of(12, 16))
        );
        let prev = Shift { forward: false, min: 1, max: Some(2) };
        assert_eq!(
            prev.arrival_from_interval(Interval::of(10, 12), within),
            Some(Interval::of(8, 11))
        );
        // Departure too close to the start of time for a backward shift.
        let far_prev = Shift { forward: false, min: 10, max: Some(12) };
        assert_eq!(far_prev.arrival_from_interval(Interval::of(2, 3), within), None);
    }

    #[test]
    fn shift_admits_checks_direction_and_bounds() {
        let next = Shift { forward: true, min: 0, max: Some(12) };
        assert!(next.admits(5, 5));
        assert!(next.admits(5, 17));
        assert!(!next.admits(5, 18));
        assert!(!next.admits(5, 4));
        let prev_star = Shift { forward: false, min: 0, max: None };
        assert!(prev_star.admits(9, 1));
        assert!(!prev_star.admits(9, 10));
        let exactly_one_back = Shift { forward: false, min: 1, max: Some(1) };
        assert!(exactly_one_back.admits(9, 8));
        assert!(!exactly_one_back.admits(9, 9));
    }

    #[test]
    fn plan_structural_classification() {
        let plain = EnginePlan { segments: vec![Segment::default()], links: vec![] };
        assert!(plain.is_purely_structural());
        let shifted = EnginePlan {
            segments: vec![Segment::default(), Segment::default()],
            links: vec![TemporalLink::Shift(Shift { forward: true, min: 0, max: None })],
        };
        assert!(!shifted.is_purely_structural());
        let set = PlanSet {
            plans: vec![plain, shifted],
            variables: vec!["x".into()],
            graph: "g".into(),
            join_strategy: JoinStrategy::Auto,
        };
        assert!(!set.is_purely_structural());
    }
}
