//! The query executor: runs compiled plans over the interval relations, following the
//! three-step architecture of Section VI (structural interval evaluation → interval
//! temporal pruning → point expansion), with chunked data parallelism over the seed
//! rows.

use std::sync::atomic::Ordering;
use std::time::Duration;

use obs::{Span, Stopwatch};

use dataflow::{kway_merge_dedup, par_chunk_flat_map, JoinStrategy, Parallelism};
use trpq::parser::MatchClause;
use trpq::queries::QueryId;
use trpq::Result;

use crate::answers::{compact_from_chains, AnswerCursor, AnswerMode, AnswerSet, Answers};
use crate::bindings::{Binding, BindingTable};
use crate::chain::Chain;
use crate::compiler::compile;
use crate::plan::{EnginePlan, PlanSet, TemporalLink};
use crate::relations::GraphRelations;
use crate::steps::closure::apply_time_closure;
use crate::steps::expand::{expand_chains, expand_chunk_sorted};
use crate::steps::structural::apply_segment;
use crate::steps::temporal::apply_shift;
use crate::steps::StepStats;

/// Knobs controlling the execution of a query.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionOptions {
    /// Degree of data parallelism for the interval evaluation and the point expansion.
    pub parallelism: Parallelism,
    /// How the temporally-aligned joins of the structural step are executed, and
    /// whether the final binding table is assembled by k-way-merging sorted runs
    /// (merge / auto) or by sorting the concatenated rows (hash).  `Auto` (the
    /// default) defers to the strategy compiled into the plan set, deciding per join
    /// from input sortedness when that one is `Auto` too.
    pub join_strategy: JoinStrategy,
    /// How [`execute_answers`] (and [`crate::answers::Query::run`]) shapes its
    /// answers: a materialised table, compact per-pair interval sets, or a lazy
    /// enumeration cursor.  [`execute`] always materialises and ignores this knob.
    pub answer_mode: AnswerMode,
    /// Whether the semantic optimizer pass ([`crate::plan::analyze`]) runs before
    /// execution: statically-empty plans are dropped, dead closure alternatives
    /// pruned and closure `[n, m]` windows tightened against the graph schema.
    /// On by default; the rewrites are output-equivalent by construction (pinned
    /// by the property tests in `tests/plan_optimizer.rs`).
    pub optimize: bool,
    /// Whether this execution records into the process-wide metric registry
    /// ([`obs::global`]): span timings, row counters, join-strategy decisions,
    /// closure rounds.  On by default — recording is a handful of relaxed
    /// atomics per *query* (not per row), cheap enough for release builds.
    /// When off, spans are no-ops that never read the clock and nothing is
    /// recorded (pinned by `tests/telemetry.rs`).
    pub telemetry: bool,
}

impl Default for ExecutionOptions {
    fn default() -> Self {
        ExecutionOptions {
            parallelism: Parallelism::available(),
            join_strategy: JoinStrategy::Auto,
            answer_mode: AnswerMode::Materialized,
            optimize: true,
            telemetry: true,
        }
    }
}

impl ExecutionOptions {
    /// Runs everything on the calling thread.
    pub fn sequential() -> Self {
        ExecutionOptions { parallelism: Parallelism::sequential(), ..Default::default() }
    }

    /// Uses exactly `threads` worker threads.
    pub fn with_threads(threads: usize) -> Self {
        ExecutionOptions { parallelism: Parallelism::with_threads(threads), ..Default::default() }
    }

    /// Pins the join strategy, overriding whatever the plan set was compiled with.
    pub fn with_strategy(mut self, strategy: JoinStrategy) -> Self {
        self.join_strategy = strategy;
        self
    }

    /// Selects the answer mode for [`execute_answers`].
    pub fn with_mode(mut self, mode: AnswerMode) -> Self {
        self.answer_mode = mode;
        self
    }

    /// Enables or disables the semantic optimizer pass.
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }

    /// Enables or disables telemetry recording for this execution.
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// Timing and cardinality measurements of one query execution, mirroring the columns
/// of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// Time spent in Steps 1–2 (structural evaluation and interval-based temporal
    /// pruning) — the "interval-based time" column.
    pub interval_time: Duration,
    /// Total execution time including Step 3 (point expansion) — the "total time"
    /// column.
    pub total_time: Duration,
    /// Number of interval-level intermediate matches after Steps 1–2.
    pub interval_rows: usize,
    /// Number of rows of the final binding table — the "output size" column.
    pub output_rows: usize,
    /// Number of closure fixpoint rounds executed during Step 1 (applications of a
    /// repeated structural sub-expression to a frontier); 0 for plans without
    /// structural repetition.
    pub closure_rounds: usize,
    /// Number of time-crossing closure rounds executed (applications of a repeated
    /// group mixing structural and temporal navigation, e.g. `(FWD/NEXT)*`, to a
    /// band frontier); 0 for plans without mixed repetition.
    pub time_rounds: usize,
    /// High-water mark of rows the enumeration cursor ever buffered between
    /// expansion and emission.  0 for the eager modes and before any draining;
    /// [`Answers::stats`] keeps it current as the cursor drains, and the
    /// `tpath_engine_cursor_peak_buffered_rows` histogram retains it past the
    /// cursor's drop (a cursor abandoned mid-drain is otherwise unreportable).
    pub peak_buffered_rows: usize,
}

/// The result of executing a query: the binding table plus measurements.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The binding table.
    pub table: BindingTable,
    /// Timing and cardinality measurements.
    pub stats: QueryStats,
}

/// The plan set a query actually runs: the semantic optimizer's rewrite when
/// [`ExecutionOptions::optimize`] is on (the default), the compiled plans verbatim
/// otherwise.
fn effective_plan_set<'a>(
    plan_set: &'a PlanSet,
    graph: &GraphRelations,
    options: &ExecutionOptions,
) -> std::borrow::Cow<'a, PlanSet> {
    if options.optimize {
        let _span =
            Span::enter(options.telemetry.then(|| &crate::telemetry::metrics().span_analyze));
        std::borrow::Cow::Owned(crate::plan::analyze::optimized_for(plan_set, graph))
    } else {
        std::borrow::Cow::Borrowed(plan_set)
    }
}

/// The join strategy in effect for one execution: the options take precedence unless
/// left at `Auto`, in which case the strategy compiled into the plan set applies (and
/// `Auto` there means per-join adaptive selection).
pub fn effective_strategy(plan_set: &PlanSet, options: &ExecutionOptions) -> JoinStrategy {
    match options.join_strategy {
        JoinStrategy::Auto => plan_set.join_strategy,
        pinned => pinned,
    }
}

/// The outcome of Steps 1–2: the interval-level chains of every union alternative,
/// with the measurements taken so far.  Step 3 (or its lazy/compact replacement)
/// decides what becomes of the chains.
struct IntervalPhase {
    per_plan_chains: Vec<Vec<Chain>>,
    interval_time: Duration,
    interval_rows: usize,
    step_stats: StepStats,
    start: Stopwatch,
}

impl IntervalPhase {
    /// Finalises the measurements: `total_time` covers everything since the phase
    /// started, `output_rows` is whatever the answer shape reports eagerly (lazy
    /// shapes override it through [`Answers::stats`]).
    fn finish(&self, output_rows: usize) -> QueryStats {
        QueryStats {
            interval_time: self.interval_time,
            total_time: self.start.elapsed(),
            interval_rows: self.interval_rows,
            output_rows,
            closure_rounds: self.step_stats.closure_rounds.load(Ordering::Relaxed),
            time_rounds: self.step_stats.time_closure_rounds.load(Ordering::Relaxed),
            peak_buffered_rows: 0,
        }
    }

    /// Folds the finished execution into the metric registry: one histogram
    /// sample per span-tree node with a measured duration, plus the row /
    /// round / join-decision counters.  No-op when telemetry is off.
    fn record_metrics(&self, stats: &QueryStats, telemetry: bool) {
        if !telemetry {
            return;
        }
        let m = crate::telemetry::metrics();
        m.queries.inc();
        m.span_query.record(obs::duration_nanos(stats.total_time));
        m.span_step12.record(obs::duration_nanos(stats.interval_time));
        m.rows_interval.add(stats.interval_rows as u64);
        m.rows_output.add(stats.output_rows as u64);
        m.closure_rounds.add(stats.closure_rounds as u64);
        m.time_rounds.add(stats.time_rounds as u64);
        m.joins_hash.add(self.step_stats.hash_joins.load(Ordering::Relaxed) as u64);
        m.joins_merge.add(self.step_stats.merge_joins.load(Ordering::Relaxed) as u64);
        let closure_nanos = self.step_stats.closure_nanos.load(Ordering::Relaxed);
        if closure_nanos > 0 {
            m.span_closure.record(closure_nanos);
        }
    }
}

/// Runs Steps 1–2 (structural interval evaluation and temporal pruning) of every
/// union alternative.
fn run_interval_phase(
    plan_set: &PlanSet,
    graph: &GraphRelations,
    options: &ExecutionOptions,
    strategy: JoinStrategy,
) -> IntervalPhase {
    // Every debug execution audits its plan set: a malformed plan (hand-built,
    // or corrupted by a future compiler bug) is rejected with a diagnostic
    // instead of panicking deep inside a step.
    #[cfg(debug_assertions)]
    if let Err(error) = crate::plan::audit::audit(plan_set) {
        panic!("refusing to execute a malformed plan set: {error}");
    }
    let step_stats = StepStats { timed: options.telemetry, ..StepStats::default() };
    let start = Stopwatch::start();
    let per_plan_chains: Vec<Vec<Chain>> = plan_set
        .plans
        .iter()
        .map(|plan| run_plan(plan, graph, options.parallelism, strategy, &step_stats))
        .collect();
    let interval_time = start.elapsed();
    let interval_rows = per_plan_chains.iter().map(Vec::len).sum();
    IntervalPhase { per_plan_chains, interval_time, interval_rows, step_stats, start }
}

/// Step 3: expands the interval-level chains into the full binding table.
fn materialize(
    plan_set: &PlanSet,
    options: &ExecutionOptions,
    strategy: JoinStrategy,
    per_plan_chains: &[Vec<Chain>],
) -> BindingTable {
    let num_slots = plan_set.variables.len();
    if strategy == JoinStrategy::Hash {
        // Hash path: concatenate the per-chunk rows and sort the result once.
        let mut table = BindingTable::new(plan_set.variables.clone());
        for (plan, chains) in plan_set.plans.iter().zip(per_plan_chains) {
            let chunk_rows = par_chunk_flat_map(chains, options.parallelism, |chunk| {
                let mut partial = BindingTable::new(plan_set.variables.clone());
                expand_chains(plan, num_slots, chunk, &mut partial);
                partial.into_rows()
            });
            table.extend_rows(chunk_rows);
        }
        table.sort_dedup();
        table
    } else {
        // Sorted path: every worker emits an ordered, deduplicated run; the final
        // table is their k-way merge, so the post-union sort disappears.
        let mut runs: Vec<Vec<Vec<Binding>>> = Vec::new();
        for (plan, chains) in plan_set.plans.iter().zip(per_plan_chains) {
            runs.extend(par_chunk_flat_map(chains, options.parallelism, |chunk| {
                vec![expand_chunk_sorted(plan, &plan_set.variables, num_slots, chunk)]
            }));
        }
        BindingTable::from_rows(plan_set.variables.clone(), kway_merge_dedup(runs))
    }
}

/// Executes a compiled plan set over a graph, materialising the full binding table
/// regardless of [`ExecutionOptions::answer_mode`].
pub fn execute(
    plan_set: &PlanSet,
    graph: &GraphRelations,
    options: &ExecutionOptions,
) -> QueryOutput {
    let plan_set = effective_plan_set(plan_set, graph, options);
    let plan_set = plan_set.as_ref();
    let strategy = effective_strategy(plan_set, options);
    let phase = run_interval_phase(plan_set, graph, options, strategy);
    let step3 = Span::enter(options.telemetry.then(|| &crate::telemetry::metrics().span_step3));
    let table = materialize(plan_set, options, strategy, &phase.per_plan_chains);
    step3.finish();
    let stats = phase.finish(table.len());
    phase.record_metrics(&stats, options.telemetry);
    QueryOutput { table, stats }
}

/// Executes a compiled plan set over a graph, shaping the answers according to
/// [`ExecutionOptions::answer_mode`]: the full table, compact per-pair interval
/// sets (no Step-3 expansion), or a lazy enumeration cursor (Step-3 on demand).
pub fn execute_answers(
    plan_set: &PlanSet,
    graph: &GraphRelations,
    options: &ExecutionOptions,
) -> Answers {
    let plan_set = effective_plan_set(plan_set, graph, options);
    let plan_set = plan_set.as_ref();
    let strategy = effective_strategy(plan_set, options);
    let telemetry = options.telemetry;
    let phase = run_interval_phase(plan_set, graph, options, strategy);
    match options.answer_mode {
        AnswerMode::Materialized => {
            let step3 = Span::enter(telemetry.then(|| &crate::telemetry::metrics().span_step3));
            let table = materialize(plan_set, options, strategy, &phase.per_plan_chains);
            step3.finish();
            let stats = phase.finish(table.len());
            phase.record_metrics(&stats, telemetry);
            Answers::new(AnswerSet::Table(table), stats)
        }
        AnswerMode::Compact => {
            let span = Span::enter(telemetry.then(|| &crate::telemetry::metrics().span_compact));
            let compact = compact_from_chains(plan_set, &phase.per_plan_chains);
            span.finish();
            let stats = phase.finish(0);
            phase.record_metrics(&stats, telemetry);
            Answers::new(AnswerSet::Compact(compact), stats)
        }
        AnswerMode::Enumerate => {
            let stats = phase.finish(0);
            phase.record_metrics(&stats, telemetry);
            let span =
                Span::enter(telemetry.then(|| &crate::telemetry::metrics().span_cursor_open));
            let cursor = AnswerCursor::new(plan_set, phase.per_plan_chains, telemetry);
            span.finish();
            Answers::new(AnswerSet::Cursor(cursor), stats)
        }
    }
}

/// Compiles and executes a parsed `MATCH` clause.
#[deprecated(
    since = "0.1.0",
    note = "use `engine::Query::from_clause(clause)?.with_options(options).run(graph)`"
)]
pub fn execute_clause(
    clause: &MatchClause,
    graph: &GraphRelations,
    options: &ExecutionOptions,
) -> Result<QueryOutput> {
    let plan_set = compile(clause)?;
    Ok(execute(&plan_set, graph, options))
}

/// Parses, compiles and executes a query given in the practical surface syntax.
#[deprecated(
    since = "0.1.0",
    note = "use `engine::Query::parse(query)?.with_options(options).run(graph)`"
)]
pub fn execute_text(
    query: &str,
    graph: &GraphRelations,
    options: &ExecutionOptions,
) -> Result<QueryOutput> {
    let clause = trpq::parser::parse_match(query)?;
    let plan_set = compile(&clause)?;
    Ok(execute(&plan_set, graph, options))
}

/// Executes one of the paper's benchmark queries Q1–Q12, using the precompiled plan
/// table of [`crate::queries`].
#[deprecated(
    since = "0.1.0",
    note = "use `engine::Query::benchmark(id).with_options(options).run(graph)`"
)]
pub fn execute_query(
    id: QueryId,
    graph: &GraphRelations,
    options: &ExecutionOptions,
) -> QueryOutput {
    let plan_set = crate::queries::plan_for(id);
    execute(&plan_set, graph, options)
}

/// Runs Steps 1–2 of a single plan: seeds the first segment with every live node row
/// (chunked across worker threads), then alternates structural segments and temporal
/// links (plain shifts or time-aware closures).  The seed rows of every chunk are
/// ascending node-row indices, so the first hop of each chunk sees key-sorted input —
/// which is what lets `Auto` start on the merge path.
fn run_plan(
    plan: &EnginePlan,
    graph: &GraphRelations,
    parallelism: Parallelism,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<Chain> {
    run_plan_seeded(plan, graph, &graph.seed_rows(), parallelism, strategy, stats)
}

/// Runs Steps 1–2 of a single plan from an explicit set of seed node rows.
///
/// This is the entry point of delta-seeded live query maintenance (`crates/live`):
/// a refresh re-runs the SPJ pipeline and fixpoints only from the node rows a batch
/// could have affected, instead of from every row like [`execute`] does.  The
/// returned chains record their seed row ([`Chain::seed`]), so callers can group
/// them back by starting node.  Seed rows should be ascending for the `Auto`
/// strategy to start on the merge path (any order is correct).
pub fn run_plan_seeded(
    plan: &EnginePlan,
    graph: &GraphRelations,
    seed_rows: &[u32],
    parallelism: Parallelism,
    strategy: JoinStrategy,
    stats: &StepStats,
) -> Vec<Chain> {
    // Seeded execution bypasses `run_interval_phase`, so it audits its plan
    // itself (without slot-range information — there is no plan set here).
    #[cfg(debug_assertions)]
    {
        let issues = crate::plan::audit::audit_plan(plan, None);
        assert!(issues.is_empty(), "refusing to execute a malformed plan: {issues:?}");
    }
    par_chunk_flat_map(seed_rows, parallelism, |rows| {
        let mut chains: Vec<Chain> = rows.iter().map(|&r| Chain::seed(r, graph)).collect();
        for (index, segment) in plan.segments.iter().enumerate() {
            if index > 0 {
                chains = match &plan.links[index - 1] {
                    TemporalLink::Shift(shift) => apply_shift(graph, chains, shift),
                    TemporalLink::Closure(closure) => {
                        apply_time_closure(graph, chains, closure, strategy, stats)
                    }
                };
            }
            chains = apply_segment(graph, chains, segment, strategy, stats);
            if chains.is_empty() {
                break;
            }
        }
        chains
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::Query;
    use tgraph::{Interval, Itpg, ItpgBuilder};

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    /// A miniature contact-tracing graph: two people meet, one of them later tests
    /// positive, and one of them visits a room.
    fn tiny() -> Itpg {
        let mut b = ItpgBuilder::new();
        let mia = b.add_node("mia", "Person").unwrap();
        let eve = b.add_node("eve", "Person").unwrap();
        let room = b.add_node("room", "Room").unwrap();
        let meets = b.add_edge("meets1", "meets", mia, eve).unwrap();
        let visits = b.add_edge("visits1", "visits", eve, room).unwrap();
        b.add_existence(mia, iv(1, 10)).unwrap();
        b.add_existence(eve, iv(1, 10)).unwrap();
        b.add_existence(room, iv(1, 10)).unwrap();
        b.add_existence(meets, iv(2, 3)).unwrap();
        b.add_existence(visits, iv(5, 6)).unwrap();
        b.set_property(mia, "risk", "high", iv(1, 10)).unwrap();
        b.set_property(eve, "risk", "low", iv(1, 10)).unwrap();
        b.set_property(eve, "test", "pos", iv(8, 10)).unwrap();
        b.domain(iv(1, 10)).build().unwrap()
    }

    fn relations() -> GraphRelations {
        GraphRelations::from_itpg(&tiny())
    }

    /// The tests run everything through the [`Query`] builder (these shadow the
    /// deprecated free functions the glob import would otherwise bring in).
    fn execute_text(
        query: &str,
        graph: &GraphRelations,
        options: &ExecutionOptions,
    ) -> Result<QueryOutput> {
        let answers = Query::parse(query)?.with_options(*options).run(graph);
        Ok(answers.into_output().expect("the default mode materialises"))
    }

    fn execute_query(
        id: QueryId,
        graph: &GraphRelations,
        options: &ExecutionOptions,
    ) -> QueryOutput {
        let answers = Query::benchmark(id).with_options(*options).run(graph);
        answers.into_output().expect("the default mode materialises")
    }

    fn names(graph: &GraphRelations, output: &QueryOutput) -> Vec<Vec<String>> {
        output.table.render(|o| graph.object_name(o).to_owned())
    }

    #[test]
    fn structural_query_returns_interval_bindings() {
        let g = relations();
        let out = execute_text(
            "MATCH (x:Person {risk = 'high'}) ON g",
            &g,
            &ExecutionOptions::sequential(),
        )
        .unwrap();
        assert_eq!(out.stats.output_rows, 1);
        assert_eq!(names(&g, &out), vec![vec!["mia".to_string(), "[1, 10]".into()]]);
        assert_eq!(out.stats.interval_rows, 1);
        assert!(out.stats.interval_time <= out.stats.total_time);
    }

    #[test]
    fn edge_pattern_query_joins_on_intervals() {
        let g = relations();
        let out = execute_text(
            "MATCH (x:Person {risk = 'high'})-[z:meets]->(y:Person {risk = 'low'}) ON g",
            &g,
            &ExecutionOptions::sequential(),
        )
        .unwrap();
        assert_eq!(out.stats.output_rows, 1);
        assert_eq!(
            names(&g, &out),
            vec![vec![
                "mia".to_string(),
                "[2, 3]".into(),
                "meets1".into(),
                "[2, 3]".into(),
                "eve".into(),
                "[2, 3]".into()
            ]]
        );
    }

    #[test]
    fn temporal_query_produces_point_bindings() {
        // High-risk people who met someone who subsequently tested positive (Q9 shape).
        let g = relations();
        let out = execute_text(
            "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) ON g",
            &g,
            &ExecutionOptions::sequential(),
        )
        .unwrap();
        // Mia met Eve at times 2 and 3; Eve tested positive at 8-10, reachable via NEXT*.
        assert_eq!(
            names(&g, &out),
            vec![vec!["mia".to_string(), "2".into()], vec!["mia".to_string(), "3".into()],]
        );
    }

    #[test]
    fn backward_temporal_query() {
        // Rooms visited at or before the time of the positive test (Q8 shape).
        let g = relations();
        let out = execute_text(
            "MATCH (x:Person {test = 'pos'})-/PREV*/FWD/:visits/FWD/-(z:Room) ON g",
            &g,
            &ExecutionOptions::sequential(),
        )
        .unwrap();
        let rows = names(&g, &out);
        // x is bound at times 8..10, z at visit times 5..6: 3 × 2 combinations.
        assert_eq!(rows.len(), 6);
        assert!(rows.contains(&vec!["eve".to_string(), "8".into(), "room".into(), "5".into()]));
        assert!(rows.contains(&vec!["eve".to_string(), "10".into(), "room".into(), "6".into()]));
        assert!(!rows.contains(&vec!["eve".to_string(), "5".into(), "room".into(), "5".into()]));
    }

    #[test]
    fn structural_closure_queries_run_on_the_engine() {
        let g = relations();
        let out = execute_text(
            "MATCH (x:Person {risk = 'high'})-/(FWD/:meets/FWD)*/-(y:Person) ON g",
            &g,
            &ExecutionOptions::sequential(),
        )
        .unwrap();
        // Zero iterations keep mia over her whole row; one meets-hop reaches eve over
        // the edge's validity [2,3].  The whole query stays interval-coalesced.
        let rows = names(&g, &out);
        assert!(rows.contains(&vec![
            "mia".to_string(),
            "[1, 10]".into(),
            "mia".into(),
            "[1, 10]".into()
        ]));
        assert!(rows.contains(&vec![
            "mia".to_string(),
            "[2, 3]".into(),
            "eve".into(),
            "[2, 3]".into()
        ]));
        assert_eq!(rows.len(), 2);
        assert!(out.stats.closure_rounds > 0, "the fixpoint must have iterated");

        // A mandatory first iteration drops the zero-step match.
        let plus = execute_text(
            "MATCH (x:Person {risk = 'high'})-/(FWD/:meets/FWD)[1,_]/-(y:Person) ON g",
            &g,
            &ExecutionOptions::sequential(),
        )
        .unwrap();
        assert_eq!(
            names(&g, &plus),
            vec![vec!["mia".to_string(), "[2, 3]".into(), "eve".into(), "[2, 3]".into()]]
        );

        // Closure composes with temporal navigation: reachable contacts who later
        // test positive (a transitive Q9).
        let temporal = execute_text(
            "MATCH (x:Person {risk = 'high'})-/(FWD/:meets/FWD)[1,3]/NEXT*/-({test = 'pos'}) ON g",
            &g,
            &ExecutionOptions::sequential(),
        )
        .unwrap();
        assert_eq!(
            names(&g, &temporal),
            vec![vec!["mia".to_string(), "2".into()], vec!["mia".to_string(), "3".into()]]
        );
    }

    #[test]
    fn mixed_repetition_runs_on_the_engine() {
        let g = relations();
        // The transitive Q9: chains of meetings, each followed by a forward walk in
        // time, ending on someone who tests positive.  On the tiny graph one
        // iteration connects mia's meeting times to eve's positive window.
        let out = execute_text(
            "MATCH (x:Person {risk = 'high'})-/(FWD/:meets/FWD/NEXT*)[1,_]/-({test = 'pos'}) ON g",
            &g,
            &ExecutionOptions::sequential(),
        )
        .unwrap();
        assert_eq!(
            names(&g, &out),
            vec![vec!["mia".to_string(), "2".into()], vec!["mia".to_string(), "3".into()]]
        );
        assert!(out.stats.time_rounds > 0, "the time-aware fixpoint must have iterated");
        assert_eq!(out.stats.closure_rounds, 0, "no structural closure in this plan");

        // The strict recurrence (exactly one step forward after each meeting) finds
        // nothing here: eve meets no one after meeting mia.
        let strict = execute_text(
            "MATCH (x:Person {risk = 'high'})-/(FWD/:meets/FWD/NEXT)*/-({test = 'pos'}) ON g",
            &g,
            &ExecutionOptions::sequential(),
        )
        .unwrap();
        assert_eq!(strict.stats.output_rows, 0);

        // All strategies and parallel execution agree on the mixed plan.
        for query in [
            "MATCH (x:Person {risk = 'high'})-/(FWD/:meets/FWD/NEXT*)[1,_]/-({test = 'pos'}) ON g",
            "MATCH (x:Person)-/(FWD/:meets/FWD/NEXT)[0,2]/-(y:Person) ON g",
            "MATCH (x:Person)-/(BWD/:meets/BWD/PREV)*/-(y:Person) ON g",
        ] {
            let hash = execute_text(
                query,
                &g,
                &ExecutionOptions::sequential().with_strategy(JoinStrategy::Hash),
            )
            .unwrap();
            for strategy in [JoinStrategy::Merge, JoinStrategy::Auto] {
                let alt = execute_text(
                    query,
                    &g,
                    &ExecutionOptions::sequential().with_strategy(strategy),
                )
                .unwrap();
                assert_eq!(hash.table, alt.table, "{query} under {strategy}");
            }
            let par = execute_text(query, &g, &ExecutionOptions::with_threads(4)).unwrap();
            assert_eq!(hash.table, par.table, "{query} in parallel");
        }
    }

    #[test]
    fn closure_queries_agree_across_strategies_and_parallelism() {
        let g = relations();
        for query in [
            "MATCH (x:Person)-/(FWD/:meets/FWD)*/-(y:Person) ON g",
            "MATCH (x:Person)-/(FWD/:meets/FWD + FWD/:visits/FWD)*/-(y) ON g",
            "MATCH (x)-/FWD*/-(y) ON g",
        ] {
            let hash = execute_text(
                query,
                &g,
                &ExecutionOptions::sequential().with_strategy(JoinStrategy::Hash),
            )
            .unwrap();
            for strategy in [JoinStrategy::Merge, JoinStrategy::Auto] {
                let alt = execute_text(
                    query,
                    &g,
                    &ExecutionOptions::sequential().with_strategy(strategy),
                )
                .unwrap();
                assert_eq!(hash.table, alt.table, "{query} under {strategy}");
                assert_eq!(hash.stats.interval_rows, alt.stats.interval_rows, "{query}");
            }
            let par = execute_text(query, &g, &ExecutionOptions::with_threads(4)).unwrap();
            assert_eq!(hash.table, par.table, "{query} in parallel");
        }
    }

    #[test]
    fn unsatisfiable_queries_return_empty_tables() {
        let g = relations();
        for query in [
            "MATCH (x)-/NEXT[3,1]/-(y) ON g",
            "MATCH (x)-/FWD[3,1]/-(y) ON g",
            "MATCH (x:Person)-/(FWD/:meets/FWD)[2,0]/-(y) ON g",
        ] {
            let out = execute_text(query, &g, &ExecutionOptions::sequential()).unwrap();
            assert_eq!(out.stats.output_rows, 0, "{query}");
            assert_eq!(out.stats.interval_rows, 0, "{query}");
        }
    }

    #[test]
    fn union_queries_merge_alternatives() {
        let g = relations();
        let out = execute_text(
            "MATCH (x:Person {risk = 'high'})-\
             /(FWD/:meets/FWD + FWD/:visits/FWD)/NEXT*/-({test = 'pos'}) ON g",
            &g,
            &ExecutionOptions::sequential(),
        )
        .unwrap();
        // Only the meets alternative matches (mia does not visit the room).
        assert_eq!(out.stats.output_rows, 2);
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let g = relations();
        for query in [
            "MATCH (x:Person) ON g",
            "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) ON g",
            "MATCH (x:Person {test = 'pos'})-/PREV*/FWD/:visits/FWD/-(z:Room) ON g",
        ] {
            let seq = execute_text(query, &g, &ExecutionOptions::sequential()).unwrap();
            let par = execute_text(query, &g, &ExecutionOptions::with_threads(4)).unwrap();
            assert_eq!(seq.table, par.table, "query {query}");
        }
    }

    #[test]
    fn benchmark_queries_run_on_the_tiny_graph() {
        let g = relations();
        for id in QueryId::ALL {
            let out = execute_query(id, &g, &ExecutionOptions::sequential());
            assert_eq!(out.stats.output_rows, out.table.len(), "{}", id.name());
        }
    }

    #[test]
    fn join_strategies_produce_identical_tables() {
        let g = relations();
        for id in QueryId::ALL {
            let hash = execute_query(
                id,
                &g,
                &ExecutionOptions::sequential().with_strategy(JoinStrategy::Hash),
            );
            for strategy in [JoinStrategy::Merge, JoinStrategy::Auto] {
                let alt =
                    execute_query(id, &g, &ExecutionOptions::sequential().with_strategy(strategy));
                assert_eq!(hash.table, alt.table, "{} under {strategy}", id.name());
                assert_eq!(
                    hash.stats.interval_rows,
                    alt.stats.interval_rows,
                    "{} under {strategy}",
                    id.name()
                );
            }
        }
    }

    #[test]
    fn compiled_strategy_applies_unless_options_override() {
        let g = relations();
        let clause = trpq::parser::parse_match("MATCH (x:Person {risk = 'high'}) ON g").unwrap();
        let merge_planned =
            crate::compiler::compile_with_strategy(&clause, JoinStrategy::Merge).unwrap();
        assert_eq!(merge_planned.join_strategy, JoinStrategy::Merge);
        // Options left at Auto defer to the plan; pinning them overrides it.
        let deferred = execute(&merge_planned, &g, &ExecutionOptions::sequential());
        let overridden = execute(
            &merge_planned,
            &g,
            &ExecutionOptions::sequential().with_strategy(JoinStrategy::Hash),
        );
        assert_eq!(deferred.table, overridden.table);
        assert_eq!(compile(&clause).unwrap().join_strategy, JoinStrategy::Auto);
    }
}
