//! Binding tables: the result of evaluating a `MATCH` clause.
//!
//! As in the paper, every variable `x` contributes two conceptual columns, `x` (the
//! bound node or edge) and `x_time` (the time of the binding).  Queries without
//! temporal navigation keep their bindings temporally coalesced — `x_time` is an
//! interval, interpreted snapshot-wise — whereas queries with temporal navigation
//! produce point-based bindings.

use std::fmt;

use tgraph::{Interval, Object, Time};

/// The temporal part of a binding: either a single time point or a coalesced interval
/// with snapshot-based interpretation (all variables of the row share each contained
/// time point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimeRef {
    /// A point-based binding.
    Point(Time),
    /// A coalesced, snapshot-interpreted interval binding.
    Interval(Interval),
}

impl TimeRef {
    /// The number of time points represented by this binding.
    pub fn num_points(&self) -> u64 {
        match self {
            TimeRef::Point(_) => 1,
            TimeRef::Interval(iv) => iv.num_points(),
        }
    }

    /// The single time point, if this is a point binding.
    pub fn as_point(&self) -> Option<Time> {
        match self {
            TimeRef::Point(t) => Some(*t),
            TimeRef::Interval(_) => None,
        }
    }

    /// The interval, if this is an interval binding.
    pub fn as_interval(&self) -> Option<Interval> {
        match self {
            TimeRef::Interval(iv) => Some(*iv),
            TimeRef::Point(_) => None,
        }
    }
}

impl fmt::Display for TimeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeRef::Point(t) => write!(f, "{t}"),
            TimeRef::Interval(iv) => write!(f, "{iv}"),
        }
    }
}

/// One variable binding: an object together with its binding time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Binding {
    /// The bound node or edge.
    pub object: Object,
    /// The binding time.
    pub time: TimeRef,
}

impl Binding {
    /// Creates a point-based binding.
    pub fn at_point(object: Object, t: Time) -> Self {
        Binding { object, time: TimeRef::Point(t) }
    }

    /// Creates an interval-based binding.
    pub fn over_interval(object: Object, interval: Interval) -> Self {
        Binding { object, time: TimeRef::Interval(interval) }
    }
}

/// A table of variable bindings.
///
/// The rows are reachable only through accessors ([`BindingTable::rows`],
/// [`BindingTable::iter`], [`BindingTable::into_rows`]), so every table handed out by
/// the engine stays in the canonical sorted, deduplicated order its producers
/// establish.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BindingTable {
    /// The variable names, in column order.
    pub columns: Vec<String>,
    /// The rows; every row has exactly one binding per column.
    rows: Vec<Vec<Binding>>,
}

impl BindingTable {
    /// Creates an empty table with the given columns.
    pub fn new(columns: Vec<String>) -> Self {
        BindingTable { columns, rows: Vec::new() }
    }

    /// Creates a table directly from rows; every row must have exactly one binding
    /// per column.  The rows are taken as-is — callers providing pre-sorted runs
    /// (e.g. a k-way merge of per-worker runs) keep their order.
    pub fn from_rows(columns: Vec<String>, rows: Vec<Vec<Binding>>) -> Self {
        debug_assert!(rows.iter().all(|row| row.len() == columns.len()));
        BindingTable { columns, rows }
    }

    /// The rows, each one binding per column.
    pub fn rows(&self) -> &[Vec<Binding>] {
        &self.rows
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec<Binding>> {
        self.rows.iter()
    }

    /// Consumes the table, returning its rows.
    pub fn into_rows(self) -> Vec<Vec<Binding>> {
        self.rows
    }

    /// Appends rows; every row must have exactly one binding per column.
    pub fn extend_rows<I: IntoIterator<Item = Vec<Binding>>>(&mut self, rows: I) {
        self.rows.extend(rows);
        debug_assert!(self.rows.iter().all(|row| row.len() == self.columns.len()));
    }

    /// The number of rows (the "output size" reported in Table II).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row; the number of bindings must match the number of columns.
    pub fn push_row(&mut self, row: Vec<Binding>) {
        debug_assert_eq!(row.len(), self.columns.len());
        self.rows.push(row);
    }

    /// Sorts the rows into a canonical order and removes duplicates.
    pub fn sort_dedup(&mut self) {
        self.rows.sort_unstable();
        self.rows.dedup();
    }

    /// The total number of point-wise bindings represented by the table: interval rows
    /// count one tuple per contained time point.
    pub fn point_tuple_count(&self) -> u64 {
        self.rows.iter().map(|row| row.first().map_or(1, |b| b.time.num_points())).sum()
    }

    /// Renders every row as strings using the given object-name resolver; used by
    /// tests that compare against the binding tables printed in the paper, and by the
    /// example binaries for display.
    pub fn render<F: Fn(Object) -> String>(&self, resolve: F) -> Vec<Vec<String>> {
        self.rows
            .iter()
            .map(|row| {
                row.iter()
                    .flat_map(|b| [resolve(b.object), b.time.to_string()])
                    .collect::<Vec<String>>()
            })
            .collect()
    }

    /// Pretty-prints the table with `x` / `x_time` column headers.
    pub fn display<F: Fn(Object) -> String>(&self, resolve: F) -> String {
        let mut header: Vec<String> = Vec::new();
        for c in &self.columns {
            header.push(c.clone());
            header.push(format!("{c}_time"));
        }
        let mut out = String::new();
        out.push_str(&header.join("\t"));
        out.push('\n');
        for row in self.render(resolve) {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

impl<'a> IntoIterator for &'a BindingTable {
    type Item = &'a Vec<Binding>;
    type IntoIter = std::slice::Iter<'a, Vec<Binding>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::NodeId;

    fn obj(i: u32) -> Object {
        Object::Node(NodeId(i))
    }

    #[test]
    fn time_ref_accessors() {
        let p = TimeRef::Point(5);
        let i = TimeRef::Interval(Interval::of(2, 4));
        assert_eq!(p.num_points(), 1);
        assert_eq!(i.num_points(), 3);
        assert_eq!(p.as_point(), Some(5));
        assert_eq!(p.as_interval(), None);
        assert_eq!(i.as_interval(), Some(Interval::of(2, 4)));
        assert_eq!(p.to_string(), "5");
        assert_eq!(i.to_string(), "[2, 4]");
    }

    #[test]
    fn table_push_sort_dedup() {
        let mut t = BindingTable::new(vec!["x".into()]);
        t.push_row(vec![Binding::at_point(obj(1), 5)]);
        t.push_row(vec![Binding::at_point(obj(0), 3)]);
        t.push_row(vec![Binding::at_point(obj(1), 5)]);
        assert_eq!(t.len(), 3);
        t.sort_dedup();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][0].object, obj(0));
    }

    #[test]
    fn accessors_expose_rows_without_the_raw_field() {
        let rows = vec![vec![Binding::at_point(obj(0), 1)], vec![Binding::at_point(obj(1), 2)]];
        let t = BindingTable::from_rows(vec!["x".into()], rows.clone());
        assert_eq!(t.rows(), rows.as_slice());
        assert_eq!(t.iter().count(), 2);
        assert_eq!((&t).into_iter().count(), 2);
        let mut extended = BindingTable::new(vec!["x".into()]);
        extended.extend_rows(rows.clone());
        assert_eq!(extended.into_rows(), rows);
    }

    #[test]
    fn point_tuple_count_expands_intervals() {
        let mut t = BindingTable::new(vec!["x".into()]);
        t.push_row(vec![Binding::over_interval(obj(0), Interval::of(1, 9))]);
        t.push_row(vec![Binding::at_point(obj(1), 4)]);
        assert_eq!(t.point_tuple_count(), 10);
    }

    #[test]
    fn rendering_produces_object_and_time_columns() {
        let mut t = BindingTable::new(vec!["x".into(), "y".into()]);
        t.push_row(vec![Binding::at_point(obj(7), 5), Binding::at_point(obj(6), 9)]);
        let rendered = t.render(|o| match o {
            Object::Node(n) => format!("n{}", n.0),
            Object::Edge(e) => format!("e{}", e.0),
        });
        assert_eq!(rendered, vec![vec!["n7".to_string(), "5".into(), "n6".into(), "9".into()]]);
        let shown = t.display(|o| format!("{o:?}"));
        assert!(shown.starts_with("x\tx_time\ty\ty_time\n"));
    }
}
