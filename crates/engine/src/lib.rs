//! # engine — the interval-based TRPQ query engine
//!
//! The implementation described in Section VI of *Temporal Regular Path Queries*
//! (ICDE 2022): queries in the practical `MATCH … -/…/- … ON graph` syntax are
//! compiled into plans whose structural parts are evaluated as select–project–join
//! pipelines over interval-timestamped `Nodes` / `Edges` relations (Step 1), temporal
//! navigation is pruned with interval arithmetic (Step 2), and the final binding table
//! is expanded to point-based bindings only when the query requires it (Step 3).
//! Structural repetition (`(FWD/:meets/FWD)*` and friends) runs as an interval-aware
//! transitive-closure fixpoint inside Step 1, and repetition of groups *mixing*
//! structural and temporal navigation (`(FWD/NEXT)*` and friends) runs as a
//! time-aware band fixpoint linking two segments ([`steps::closure`]).  Evaluation is
//! data-parallel over chunks of the input relation.
//!
//! ```
//! use engine::{ExecutionOptions, GraphRelations};
//! use tgraph::{Interval, ItpgBuilder};
//!
//! let mut b = ItpgBuilder::new();
//! let ann = b.add_node("ann", "Person").unwrap();
//! b.add_existence(ann, Interval::of(1, 9)).unwrap();
//! b.set_property(ann, "risk", "high", Interval::of(1, 9)).unwrap();
//! let graph = GraphRelations::from_itpg(&b.build().unwrap());
//!
//! let out = engine::execute_text(
//!     "MATCH (x:Person {risk = 'high'}) ON g",
//!     &graph,
//!     &ExecutionOptions::sequential(),
//! ).unwrap();
//! assert_eq!(out.stats.output_rows, 1);
//! ```

#![warn(missing_docs)]

pub mod bindings;
pub mod chain;
pub mod compiler;
pub mod executor;
pub mod plan;
pub mod queries;
pub mod relations;
pub mod steps;

pub use bindings::{Binding, BindingTable, TimeRef};
pub use chain::TimeLag;
pub use compiler::{compile, compile_with_strategy};
pub use dataflow::JoinStrategy;
pub use executor::{
    effective_strategy, execute, execute_clause, execute_query, execute_text, run_plan_seeded,
    ExecutionOptions, QueryOutput, QueryStats,
};
pub use plan::{
    ClosureOp, ClosureStep, EnginePlan, HopDirection, MicroOp, ObjFilter, PlanSet, Segment, Shift,
    TemporalLink,
};
pub use relations::{
    CanonicalRelations, DeltaStats, EdgeRow, GraphRelations, NodeRow, RelationStats,
};
pub use steps::StepStats;
