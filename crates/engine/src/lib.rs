//! # engine — the interval-based TRPQ query engine
//!
//! The implementation described in Section VI of *Temporal Regular Path Queries*
//! (ICDE 2022): queries in the practical `MATCH … -/…/- … ON graph` syntax are
//! compiled into plans whose structural parts are evaluated as select–project–join
//! pipelines over interval-timestamped `Nodes` / `Edges` relations (Step 1), temporal
//! navigation is pruned with interval arithmetic (Step 2), and the final binding table
//! is expanded to point-based bindings only when the query requires it (Step 3).
//! Structural repetition (`(FWD/:meets/FWD)*` and friends) runs as an interval-aware
//! transitive-closure fixpoint inside Step 1, and repetition of groups *mixing*
//! structural and temporal navigation (`(FWD/NEXT)*` and friends) runs as a
//! time-aware band fixpoint linking two segments ([`steps::closure`]).  Evaluation is
//! data-parallel over chunks of the input relation.
//!
//! ```
//! use engine::{ExecutionOptions, GraphRelations, Query};
//! use tgraph::{Interval, ItpgBuilder};
//!
//! let mut b = ItpgBuilder::new();
//! let ann = b.add_node("ann", "Person").unwrap();
//! b.add_existence(ann, Interval::of(1, 9)).unwrap();
//! b.set_property(ann, "risk", "high", Interval::of(1, 9)).unwrap();
//! let graph = GraphRelations::from_itpg(&b.build().unwrap());
//!
//! let answers = Query::parse("MATCH (x:Person {risk = 'high'}) ON g")
//!     .unwrap()
//!     .with_options(ExecutionOptions::sequential())
//!     .run(&graph);
//! assert_eq!(answers.stats().output_rows, 1);
//! ```
//!
//! Besides the materialised [`BindingTable`], answers come in two output-sensitive
//! shapes ([`answers`]): a lazy [`AnswerCursor`] streaming rows in canonical order
//! with bounded delay, and [`CompactAnswers`] — per-`(source, target)` coalesced
//! interval sets computed without point expansion.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod answers;
pub mod bindings;
pub mod chain;
pub mod compiler;
pub mod executor;
pub mod plan;
pub mod queries;
pub mod relations;
pub mod steps;
mod telemetry;

pub use answers::{
    AnswerCursor, AnswerMode, AnswerSet, Answers, CompactAnswers, Query, TableCursor,
};
pub use bindings::{Binding, BindingTable, TimeRef};
pub use chain::TimeLag;
pub use compiler::{compile, compile_with_strategy};
pub use dataflow::JoinStrategy;
pub use executor::{
    effective_strategy, execute, execute_answers, run_plan_seeded, ExecutionOptions, QueryOutput,
    QueryStats,
};
#[allow(deprecated)]
pub use executor::{execute_clause, execute_query, execute_text};
pub use plan::analyze::{
    analyze, optimized_for, static_bounds, Analysis, Diagnostic, DiagnosticKind, PlanBounds,
    SchemaSummary, Severity,
};
pub use plan::audit::{audit, audit_plan, AuditError, AuditIssue, AuditReport};
pub use plan::{
    ClosureOp, ClosureStep, EnginePlan, HopDirection, MicroOp, ObjFilter, PlanSet, Segment, Shift,
    TemporalLink,
};
pub use relations::{
    CanonicalRelations, DeltaStats, EdgeRow, GraphRelations, NodeRow, RelationStats,
};
pub use steps::StepStats;
