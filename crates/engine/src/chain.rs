//! Intermediate state of plan evaluation: partially-matched pattern instances.

use tgraph::{Interval, Object, Time};

use crate::relations::GraphRelations;

/// Where the evaluation cursor currently sits: on a row of the Nodes relation or on a
/// row of the Edges relation.  The ordering (node rows before edge rows, then by row
/// index) is used by the closure fixpoint to keep its frontier canonical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Position {
    /// Index into [`GraphRelations::node_rows`].
    NodeRow(u32),
    /// Index into [`GraphRelations::edge_rows`].
    EdgeRow(u32),
}

impl Position {
    /// The object the position refers to.
    pub fn object(self, graph: &GraphRelations) -> Object {
        match self {
            Position::NodeRow(r) => Object::Node(graph.node_rows()[r as usize].node),
            Position::EdgeRow(r) => Object::Edge(graph.edge_rows()[r as usize].edge),
        }
    }

    /// The validity interval of the underlying row.
    pub fn row_interval(self, graph: &GraphRelations) -> Interval {
        match self {
            Position::NodeRow(r) => graph.node_rows()[r as usize].interval,
            Position::EdgeRow(r) => graph.edge_rows()[r as usize].interval,
        }
    }
}

/// The admissible time skew across a time-crossing closure boundary: arrival minus
/// departure lies in `[lo, hi]` (signed — backward navigation yields negative lags).
///
/// Together with the departure and arrival intervals of the two segments it delimits,
/// a lag describes *exactly* the set of `(departure, arrival)` pairs the closure
/// relates for one chain: three interval constraints on a line always admit a common
/// witness when they pairwise intersect (Helly's theorem in dimension one), so
/// composing the per-step constraints loses no precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimeLag {
    /// Minimum signed arrival − departure difference.
    pub lo: i128,
    /// Maximum signed arrival − departure difference.
    pub hi: i128,
}

impl TimeLag {
    /// The zero lag: arrival equals departure.
    pub fn zero() -> Self {
        TimeLag { lo: 0, hi: 0 }
    }

    /// True if moving from departure time `from` to arrival time `to` respects the
    /// lag bounds.
    pub fn admits(&self, from: Time, to: Time) -> bool {
        let delta = to as i128 - from as i128;
        self.lo <= delta && delta <= self.hi
    }
}

/// One binding recorded while matching: `(variable slot, segment index, object)`.
/// The binding time is the time point eventually chosen for that segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundVar {
    /// Variable slot (index into [`crate::plan::PlanSet::variables`]).
    pub slot: u32,
    /// The segment during which the variable was bound.
    pub segment: u32,
    /// The bound node or edge.
    pub object: Object,
}

/// A partially (or fully) matched pattern instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// The node row this chain was seeded at (Step 1 seeds one chain per live node
    /// row).  Live query maintenance groups chains by the seed's node to reuse
    /// results of seeds a delta cannot have affected.
    pub seed: u32,
    /// Final validity intervals of the segments completed so far, in order.
    pub seg_intervals: Vec<Interval>,
    /// The admissible time skew of every time-crossing closure boundary crossed so
    /// far, in crossing order.  Plain shift boundaries carry their constraint in the
    /// plan ([`crate::plan::TemporalLink::Shift`]) and contribute no entry here.
    pub lags: Vec<TimeLag>,
    /// Variables bound so far.
    pub bound: Vec<BoundVar>,
    /// The cursor position within the current segment.
    pub position: Position,
    /// The validity interval of the current segment so far: the intersection of the
    /// validity intervals of every row traversed and every filter applied since the
    /// segment started.
    pub interval: Interval,
}

impl Chain {
    /// A fresh chain starting the first segment at the given node row.
    pub fn seed(row_index: u32, graph: &GraphRelations) -> Self {
        let position = Position::NodeRow(row_index);
        Chain {
            seed: row_index,
            seg_intervals: Vec::new(),
            lags: Vec::new(),
            bound: Vec::new(),
            position,
            interval: position.row_interval(graph),
        }
    }

    /// Index of the segment currently being matched.
    pub fn current_segment(&self) -> u32 {
        self.seg_intervals.len() as u32
    }

    /// All segment intervals including the (finished) current one.
    pub fn all_segment_intervals(&self) -> Vec<Interval> {
        let mut out = self.seg_intervals.clone();
        out.push(self.interval);
        out
    }
}
