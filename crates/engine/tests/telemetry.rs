//! End-to-end pins for the engine's telemetry: the `telemetry = false` knob
//! really records nothing, enabled runs count executions, and an enumeration
//! cursor's peak-buffered high-water mark survives being abandoned mid-drain
//! (the regression that motivated recording it on cursor drop).
//!
//! Everything lives in one test function: the metrics are process-global, and
//! a single test per binary keeps the before/after assertions race-free.

use engine::{AnswerMode, ExecutionOptions, GraphRelations, Query};
use tgraph::{Interval, ItpgBuilder};

const QUERY: &str = "MATCH (x:Person {risk = 'high'}) ON g";

/// Four high-risk persons, each an independent answer row — enough to drain a
/// cursor partially and leave work buffered behind it.
fn graph() -> GraphRelations {
    let mut b = ItpgBuilder::new();
    for name in ["ann", "bob", "cal", "dee"] {
        let node = b.add_node(name, "Person").unwrap();
        b.add_existence(node, Interval::of(1, 9)).unwrap();
        b.set_property(node, "risk", "high", Interval::of(1, 9)).unwrap();
    }
    GraphRelations::from_itpg(&b.build().unwrap())
}

#[test]
fn telemetry_gates_and_peak_buffered_retention() {
    let graph = graph();
    let reg = obs::global();
    // Get-or-create returns the engine's own series, so these handles observe
    // exactly what the executor records.
    let queries = reg.counter("tpath_engine_queries_total", "Query executions.", &[]);
    let peak_hist = reg.histogram(
        "tpath_engine_cursor_peak_buffered_rows",
        "Per-cursor peak buffered rows.",
        &[],
    );

    // A disabled run is a no-op on the registry.
    let before = queries.get();
    let answers = Query::parse(QUERY)
        .unwrap()
        .with_options(ExecutionOptions::sequential().with_telemetry(false))
        .run(&graph);
    let expected_rows = answers.stats().output_rows;
    assert!(expected_rows >= 1);
    drop(answers);
    assert_eq!(queries.get(), before, "telemetry = false must record nothing");

    // An enabled run counts the execution.
    let answers =
        Query::parse(QUERY).unwrap().with_options(ExecutionOptions::sequential()).run(&graph);
    assert_eq!(answers.stats().output_rows, expected_rows);
    assert_eq!(queries.get(), before + 1);
    drop(answers);

    // Enumerate, drain two of eight rows, then abandon the cursor: stats()
    // exposes the live high-water mark mid-drain, and dropping the cursor
    // retains that peak in the histogram — it is not lost with the cursor.
    let peak_before = peak_hist.snapshot();
    let mut answers = Query::parse(QUERY)
        .unwrap()
        .with_options(ExecutionOptions::sequential())
        .with_mode(AnswerMode::Enumerate)
        .run(&graph);
    {
        let cursor = answers.cursor_mut().expect("enumerate mode hands out a cursor");
        assert_eq!(cursor.page(2).len(), 2);
    }
    let mid_drain_peak = answers.stats().peak_buffered_rows;
    assert!(mid_drain_peak >= 1, "mid-drain stats expose the cursor's high-water mark");
    drop(answers);
    let peak_after = peak_hist.snapshot();
    assert_eq!(peak_after.count, peak_before.count + 1, "cursor drop records its peak");
    assert!(
        peak_after.sum >= peak_before.sum + mid_drain_peak as u64,
        "the retained peak is at least the mid-drain one"
    );
}
