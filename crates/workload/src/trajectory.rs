//! Synthetic trajectory generation.
//!
//! The paper builds its experimental graphs from the indoor trajectory dataset of
//! Ojagh et al. (20 tracked individuals on the University of Calgary campus, used to
//! simulate visits to campus locations).  That dataset is not redistributable, so this
//! module generates trajectories with the same structure: every person performs a
//! handful of *stays* during a 48-slot day (each slot is a 5-minute window), each stay
//! happening either in one of the 100 most popular locations — modelled as `Room`
//! nodes and producing `visits` edges — or in one of the remaining locations, where
//! co-located people produce `meets` edges.  Location popularity is skewed so that a
//! few rooms attract most of the traffic, which is what drives the super-linear growth
//! of the `meets` relation across the G1–G10 scale factors.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::Rng;
use tgraph::{Interval, Time};

/// Where a stay happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Place {
    /// One of the classroom locations, materialised as a `Room` node.
    Room(usize),
    /// One of the other campus locations; only used to derive `meets` edges.
    MeetingPoint(usize),
}

/// A single stay of one person at one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stay {
    /// Index of the person.
    pub person: usize,
    /// Where the stay happens.
    pub place: Place,
    /// The time slots of the stay (inclusive).
    pub interval: Interval,
}

/// Parameters of the trajectory generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryConfig {
    /// Number of persons to simulate.
    pub num_persons: usize,
    /// Number of classroom locations (`Room` nodes).
    pub num_rooms: usize,
    /// Number of non-classroom locations (sources of `meets` edges).
    pub num_meeting_locations: usize,
    /// Number of time slots in the day.
    pub num_time_points: u64,
    /// Average number of stays per person.
    pub mean_stays_per_person: f64,
    /// Maximum length of one stay, in slots.
    pub max_stay_length: u64,
    /// Exponent of the Zipf-like skew of location popularity (0 = uniform).
    pub popularity_skew: f64,
    /// Fraction of stays that happen in classrooms rather than meeting locations.
    pub room_stay_fraction: f64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            num_persons: 1000,
            num_rooms: 100,
            num_meeting_locations: 310,
            num_time_points: 48,
            mean_stays_per_person: 3.4,
            max_stay_length: 4,
            popularity_skew: 0.9,
            room_stay_fraction: 0.55,
        }
    }
}

/// A sampler over `0..n` with Zipf-like weights `1 / (i + 1)^s`.
#[derive(Debug, Clone)]
pub struct PopularitySampler {
    cumulative: Vec<f64>,
}

impl PopularitySampler {
    /// Builds a sampler over `n` items with skew exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for i in 0..n.max(1) {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        PopularitySampler { cumulative }
    }

    /// Samples an item index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("sampler is never empty");
        let x: f64 = rng.gen_range(0.0..total);
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&x).expect("weights are finite")) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

impl Distribution<usize> for PopularitySampler {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        PopularitySampler::sample(self, rng)
    }
}

/// Generates the stays of every person.
pub fn generate_stays(config: &TrajectoryConfig, rng: &mut StdRng) -> Vec<Stay> {
    let room_sampler = PopularitySampler::new(config.num_rooms, config.popularity_skew);
    let meeting_sampler =
        PopularitySampler::new(config.num_meeting_locations, config.popularity_skew);
    let horizon = config.num_time_points.max(1);
    let mut stays =
        Vec::with_capacity((config.num_persons as f64 * config.mean_stays_per_person) as usize);

    for person in 0..config.num_persons {
        // Number of stays: 1 + Poisson-ish around the configured mean.
        let extra = (config.mean_stays_per_person - 1.0).max(0.0);
        let n_stays = 1 + sample_counts(extra, rng);
        let mut t: Time = rng.gen_range(0..horizon);
        for _ in 0..n_stays {
            if t >= horizon {
                break;
            }
            let length = rng.gen_range(1..=config.max_stay_length.max(1));
            let end = (t + length - 1).min(horizon - 1);
            let place = if rng.gen_bool(config.room_stay_fraction) {
                Place::Room(room_sampler.sample(rng))
            } else {
                Place::MeetingPoint(meeting_sampler.sample(rng))
            };
            stays.push(Stay { person, place, interval: Interval::of(t, end) });
            // Gap before the next stay.
            let gap = rng.gen_range(1..=3u64);
            t = end + 1 + gap;
        }
    }
    stays
}

/// Samples a small non-negative count with the given mean (geometric-style).
fn sample_counts(mean: f64, rng: &mut StdRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (1.0 + mean);
    let mut count = 0usize;
    while !rng.gen_bool(p) && count < 16 {
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sampler_prefers_popular_items() {
        let mut rng = StdRng::seed_from_u64(7);
        let sampler = PopularitySampler::new(50, 1.0);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[40]);
        assert!(counts.iter().sum::<usize>() == 20_000);
    }

    #[test]
    fn uniform_sampler_when_skew_is_zero() {
        let mut rng = StdRng::seed_from_u64(9);
        let sampler = PopularitySampler::new(10, 0.0);
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.3, "counts {counts:?}");
    }

    #[test]
    fn stays_respect_the_time_horizon_and_person_count() {
        let config = TrajectoryConfig { num_persons: 200, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(42);
        let stays = generate_stays(&config, &mut rng);
        assert!(!stays.is_empty());
        assert!(stays.iter().all(|s| s.interval.end() < config.num_time_points));
        assert!(stays.iter().all(|s| s.person < 200));
        // Every person has at least one stay.
        let mut persons: Vec<usize> = stays.iter().map(|s| s.person).collect();
        persons.sort_unstable();
        persons.dedup();
        assert_eq!(persons.len(), 200);
        // Stays of one person never overlap.
        let mut per_person: Vec<Vec<Interval>> = vec![Vec::new(); 200];
        for s in &stays {
            per_person[s.person].push(s.interval);
        }
        for intervals in per_person {
            for w in intervals.windows(2) {
                assert!(w[0].end() < w[1].start(), "overlapping stays {w:?}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_fixed_seed() {
        let config = TrajectoryConfig { num_persons: 50, ..Default::default() };
        let a = generate_stays(&config, &mut StdRng::seed_from_u64(5));
        let b = generate_stays(&config, &mut StdRng::seed_from_u64(5));
        let c = generate_stays(&config, &mut StdRng::seed_from_u64(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
