//! # workload — contact-tracing graphs for TRPQ experiments
//!
//! Everything needed to reproduce the data side of the paper's evaluation: the running
//! example of Figure 1 ([`figure1::figure1`]), a synthetic trajectory generator
//! standing in for the Ojagh et al. COVID-19 contact-tracing dataset
//! ([`trajectory`]), the graph builder that turns trajectories into
//! interval-timestamped temporal property graphs ([`contact_tracing`]), and the
//! G1–G10 scale factors of Table I ([`scale`]).

#![warn(missing_docs)]

pub mod contact_tracing;
pub mod figure1;
pub mod scale;
pub mod streaming;
pub mod trajectory;

pub use contact_tracing::{generate, ContactTracingConfig};
pub use figure1::figure1;
pub use scale::ScaleFactor;
pub use streaming::{mutation_count, stream_contact_batches};
pub use trajectory::{PopularitySampler, Stay, TrajectoryConfig};
