//! The streaming variant of the contact-tracing workload: the same trajectories
//! as [`crate::contact_tracing`], emitted as a sequence of epoched mutation
//! [`Batch`]es instead of one bulk graph.
//!
//! The stream simulates how contact-tracing data actually arrives: at each time
//! slot τ the generator emits everything that *starts* at τ — people entering
//! campus (node creation on first sight, existence and risk over the stay),
//! room visits, co-location meetings, and positive test results (asserted from
//! the test time to the end of the person's lifespan).  Every batch is valid
//! against the prefix that precedes it: an edge's existence interval starts no
//! earlier than the covering stays of both endpoints, so by the time the edge
//! arrives, its endpoints already exist throughout it.
//!
//! The resulting graph is *shaped* like the bulk generator's output (same stays,
//! same co-location edges, same property mix) but not identical to it: the bulk
//! generator gives each room one hull interval from first entrance to last exit,
//! which a causal stream cannot know in advance — here room existence is the
//! union of its visits.  Benchmarks compare the maintained results against a
//! from-scratch evaluation of the *streamed* graph, so this difference never
//! enters any equivalence check.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tgraph::{Batch, Interval, Time};

use crate::contact_tracing::ContactTracingConfig;
use crate::trajectory::{generate_stays, Place, Stay};

/// Generates the contact-tracing workload as a stream of epoched batches, one
/// batch per time slot at which something starts (epoch = time slot).  The
/// stream is fully deterministic given the configuration's seed.
pub fn stream_contact_batches(config: &ContactTracingConfig) -> Vec<Batch> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let stays = generate_stays(&config.trajectories, &mut rng);
    let num_persons = config.trajectories.num_persons;

    // Per-person lifespan bounds and risk/test draws, mirroring the bulk
    // generator's assignment logic (risk for everyone, a positive test for a
    // configurable fraction, from a uniform time point to the end of life).
    let mut first_seen: Vec<Option<Time>> = vec![None; num_persons];
    let mut last_seen: Vec<Option<Time>> = vec![None; num_persons];
    for stay in &stays {
        let first = first_seen[stay.person].get_or_insert(stay.interval.start());
        *first = (*first).min(stay.interval.start());
        let last = last_seen[stay.person].get_or_insert(stay.interval.end());
        *last = (*last).max(stay.interval.end());
    }
    let mut risk_of: Vec<&'static str> = Vec::with_capacity(num_persons);
    let mut positive_at: Vec<Option<Time>> = Vec::with_capacity(num_persons);
    for person in 0..num_persons {
        risk_of.push(if rng.gen_bool(config.high_risk_rate) { "high" } else { "low" });
        let positive = first_seen[person].is_some() && rng.gen_bool(config.positivity_rate);
        positive_at.push(positive.then(|| {
            let (first, last) =
                (first_seen[person].expect("seen"), last_seen[person].expect("seen"));
            rng.gen_range(first..=last)
        }));
    }

    // Group the events by the epoch at which they become known.
    let mut batches: HashMap<Time, Batch> = HashMap::new();
    fn batch_at(batches: &mut HashMap<Time, Batch>, t: Time) -> &mut Batch {
        batches.entry(t).or_insert_with(|| Batch::new(t))
    }

    // Person arrival, stay existence, risk — and the positive-test tail of every
    // stay it intersects (known from the test time onwards).
    let mut person_known: Vec<bool> = vec![false; num_persons];
    let mut sorted_stays: Vec<&Stay> = stays.iter().collect();
    sorted_stays.sort_by_key(|s| (s.interval.start(), s.person, s.interval.end()));
    for stay in &sorted_stays {
        let epoch = stay.interval.start();
        let name = format!("p{}", stay.person);
        let batch = batch_at(&mut batches, epoch);
        if !person_known[stay.person] {
            person_known[stay.person] = true;
            batch.add_node(name.clone(), "Person");
        }
        batch.add_existence(name.clone(), stay.interval);
        batch.set_property(name.clone(), "risk", risk_of[stay.person], stay.interval);
        if let Some(pos_time) = positive_at[stay.person] {
            let last = last_seen[stay.person].expect("positive persons were seen");
            if let Some(tail) = stay.interval.intersect(&Interval::of(pos_time, last)) {
                batch_at(&mut batches, tail.start()).set_property(name, "test", "pos", tail);
            }
        }
    }

    // Rooms and visits: the room node arrives with its first visit; each visit
    // extends the room's existence and adds a `visits` edge over the stay.
    let mut room_known: HashSet<usize> = HashSet::new();
    let mut visit_count = 0usize;
    for stay in &sorted_stays {
        let Place::Room(room) = stay.place else { continue };
        let epoch = stay.interval.start();
        let room_name = format!("r{room}");
        let batch = batch_at(&mut batches, epoch);
        if room_known.insert(room) {
            batch.add_node(room_name.clone(), "Room");
        }
        batch.add_existence(room_name.clone(), stay.interval);
        batch.set_property(room_name.clone(), "num", room as i64, stay.interval);
        let edge_name = format!("v{visit_count}");
        visit_count += 1;
        batch
            .add_edge(edge_name.clone(), "visits", format!("p{}", stay.person), room_name)
            .add_existence(edge_name, stay.interval);
    }

    // Meets edges: co-located pairs at meeting locations, emitted at the start
    // of the overlap — by which time both covering stays have already arrived.
    let mut per_location: HashMap<usize, Vec<&Stay>> = HashMap::new();
    for stay in &stays {
        if let Place::MeetingPoint(loc) = stay.place {
            per_location.entry(loc).or_default().push(stay);
        }
    }
    let mut locations: Vec<(usize, Vec<&Stay>)> = per_location.into_iter().collect();
    locations.sort_by_key(|(loc, _)| *loc);
    let mut meet_count = 0usize;
    for (loc, mut stays_here) in locations {
        stays_here.sort_by_key(|s| (s.interval.start(), s.person));
        for i in 0..stays_here.len() {
            for j in (i + 1)..stays_here.len() {
                let (a, b) = (stays_here[i], stays_here[j]);
                if b.interval.start() > a.interval.end() {
                    break; // sorted by start: no later stay can overlap a.
                }
                if a.person == b.person {
                    continue;
                }
                let Some(overlap) = a.interval.intersect(&b.interval) else { continue };
                let edge_name = format!("m{meet_count}");
                meet_count += 1;
                let batch = batch_at(&mut batches, overlap.start());
                batch
                    .add_edge(
                        edge_name.clone(),
                        "meets",
                        format!("p{}", a.person),
                        format!("p{}", b.person),
                    )
                    .add_existence(edge_name.clone(), overlap)
                    .set_property(edge_name, "loc", format!("loc{loc}"), overlap);
            }
        }
    }

    let mut out: Vec<Batch> = batches.into_values().filter(|b| !b.is_empty()).collect();
    out.sort_by_key(|b| b.epoch);
    out
}

/// The total number of mutations across a batch stream — the unit of ingest
/// throughput reported by the perf harness.
pub fn mutation_count(batches: &[Batch]) -> usize {
    batches.iter().map(|b| b.mutations.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{Itpg, Object};

    fn config() -> ContactTracingConfig {
        ContactTracingConfig::with_persons(120).with_seed(7).with_positivity_rate(0.2)
    }

    fn apply_all(batches: &[Batch]) -> Itpg {
        let mut graph = Itpg::empty(Interval::of(0, 1));
        for batch in batches {
            graph.apply_batch(batch).expect("streamed batches are valid against their prefix");
        }
        graph
    }

    #[test]
    fn streamed_batches_apply_cleanly_and_deterministically() {
        let batches = stream_contact_batches(&config());
        assert!(batches.len() > 1, "the stream spans several epochs");
        assert!(batches.windows(2).all(|w| w[0].epoch < w[1].epoch));
        assert!(mutation_count(&batches) > batches.len());
        let graph = apply_all(&batches);
        graph.validate().unwrap();
        assert_eq!(graph, apply_all(&stream_contact_batches(&config())));
    }

    #[test]
    fn streamed_graph_has_the_contact_tracing_shape() {
        let graph = apply_all(&stream_contact_batches(&config()));
        let persons =
            graph.node_ids().filter(|&n| graph.label(Object::Node(n)) == "Person").count();
        let rooms = graph.node_ids().filter(|&n| graph.label(Object::Node(n)) == "Room").count();
        let meets = graph.edge_ids().filter(|&e| graph.label(Object::Edge(e)) == "meets").count();
        let visits = graph.edge_ids().filter(|&e| graph.label(Object::Edge(e)) == "visits").count();
        assert!(persons > 0 && persons <= 120);
        assert!(rooms > 0);
        assert!(meets > 0 && visits > 0);
        let positives = graph
            .node_ids()
            .filter(|&n| graph.properties(Object::Node(n)).any(|(p, _)| p == "test"))
            .count();
        assert!(positives > 0, "the raised positivity rate must produce positive tests");
    }

    #[test]
    fn every_prefix_of_the_stream_is_a_valid_graph() {
        let batches = stream_contact_batches(&ContactTracingConfig::with_persons(60).with_seed(3));
        let mut graph = Itpg::empty(Interval::of(0, 1));
        for batch in &batches {
            graph.apply_batch(batch).expect("prefix validity");
            graph.validate().expect("every prefix is well-formed");
        }
    }
}
