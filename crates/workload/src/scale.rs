//! Scale factors mirroring the graphs G1–G10 of Table I.
//!
//! The paper's graphs range from 1,000 to 100,000 persons (with 100 rooms, 310 meeting
//! locations and a 48-slot temporal domain held fixed), which is what makes the edge
//! count grow super-linearly.  [`ScaleFactor::paper_config`] reproduces those person
//! counts exactly; [`ScaleFactor::scaled_config`] divides them by a constant so the
//! whole sweep stays tractable on a laptop while preserving the relative shape.

use crate::contact_tracing::ContactTracingConfig;
use crate::trajectory::TrajectoryConfig;

/// One of the ten graph sizes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScaleFactor {
    /// 1,000 persons.
    G1,
    /// 2,000 persons.
    G2,
    /// 4,000 persons.
    G3,
    /// 6,000 persons.
    G4,
    /// 8,000 persons.
    G5,
    /// 10,000 persons.
    G6,
    /// 25,000 persons.
    G7,
    /// 50,000 persons.
    G8,
    /// 75,000 persons.
    G9,
    /// 100,000 persons.
    G10,
}

impl ScaleFactor {
    /// All scale factors, smallest to largest.
    pub const ALL: [ScaleFactor; 10] = [
        ScaleFactor::G1,
        ScaleFactor::G2,
        ScaleFactor::G3,
        ScaleFactor::G4,
        ScaleFactor::G5,
        ScaleFactor::G6,
        ScaleFactor::G7,
        ScaleFactor::G8,
        ScaleFactor::G9,
        ScaleFactor::G10,
    ];

    /// The name used in the paper, e.g. `"G3"`.
    pub fn name(self) -> &'static str {
        match self {
            ScaleFactor::G1 => "G1",
            ScaleFactor::G2 => "G2",
            ScaleFactor::G3 => "G3",
            ScaleFactor::G4 => "G4",
            ScaleFactor::G5 => "G5",
            ScaleFactor::G6 => "G6",
            ScaleFactor::G7 => "G7",
            ScaleFactor::G8 => "G8",
            ScaleFactor::G9 => "G9",
            ScaleFactor::G10 => "G10",
        }
    }

    /// The number of `Person` nodes the paper uses for this scale factor.
    pub fn paper_persons(self) -> usize {
        match self {
            ScaleFactor::G1 => 1_000,
            ScaleFactor::G2 => 2_000,
            ScaleFactor::G3 => 4_000,
            ScaleFactor::G4 => 6_000,
            ScaleFactor::G5 => 8_000,
            ScaleFactor::G6 => 10_000,
            ScaleFactor::G7 => 25_000,
            ScaleFactor::G8 => 50_000,
            ScaleFactor::G9 => 75_000,
            ScaleFactor::G10 => 100_000,
        }
    }

    /// A generator configuration with exactly the paper's person count.
    pub fn paper_config(self) -> ContactTracingConfig {
        ContactTracingConfig {
            trajectories: TrajectoryConfig {
                num_persons: self.paper_persons(),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// A generator configuration with the person count divided by `divisor`
    /// (minimum 50 persons), keeping everything else identical.
    pub fn scaled_config(self, divisor: usize) -> ContactTracingConfig {
        let persons = (self.paper_persons() / divisor.max(1)).max(50);
        ContactTracingConfig {
            trajectories: TrajectoryConfig { num_persons: persons, ..Default::default() },
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_person_counts_match_table_i() {
        let counts: Vec<usize> = ScaleFactor::ALL.iter().map(|s| s.paper_persons()).collect();
        assert_eq!(
            counts,
            vec![1_000, 2_000, 4_000, 6_000, 8_000, 10_000, 25_000, 50_000, 75_000, 100_000]
        );
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scaled_configs_preserve_the_fixed_parameters() {
        let cfg = ScaleFactor::G10.scaled_config(10);
        assert_eq!(cfg.trajectories.num_persons, 10_000);
        assert_eq!(cfg.trajectories.num_rooms, 100);
        assert_eq!(cfg.trajectories.num_meeting_locations, 310);
        assert_eq!(cfg.trajectories.num_time_points, 48);
        // The floor keeps tiny scales meaningful.
        assert_eq!(ScaleFactor::G1.scaled_config(1000).trajectories.num_persons, 50);
        assert_eq!(ScaleFactor::G1.paper_config().trajectories.num_persons, 1_000);
        assert_eq!(ScaleFactor::G7.name(), "G7");
    }
}
