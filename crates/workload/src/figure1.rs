//! The running example of the paper: the contact-tracing temporal property graph of
//! Figure 1.
//!
//! The graph has five `Person` nodes, two `Room` nodes and ten edges (`meets`,
//! `cohabits` and `visits`).  The integration tests evaluate the paper's queries
//! Q1–Q12 over this graph and compare against the binding tables printed in
//! Sections I and IV, so the topology below is reconstructed to reproduce those tables
//! exactly (the figure itself does not name the direction of every edge; directions
//! are chosen to be consistent with every published result table).

use tgraph::{Interval, Itpg, ItpgBuilder};

/// Builds the Figure 1 contact-tracing graph.
pub fn figure1() -> Itpg {
    let iv = Interval::of;
    let mut b = ItpgBuilder::new();

    // People.
    let n1 = b.add_node("n1", "Person").unwrap(); // Ann
    let n2 = b.add_node("n2", "Person").unwrap(); // Bob
    let n3 = b.add_node("n3", "Person").unwrap(); // Mia
    let n4 = b.add_node("n4", "Room").unwrap(); // CS 750
    let n5 = b.add_node("n5", "Room").unwrap(); // MATH 1101
    let n6 = b.add_node("n6", "Person").unwrap(); // Eve
    let n7 = b.add_node("n7", "Person").unwrap(); // Zoe

    b.add_existence(n1, iv(1, 9)).unwrap();
    b.set_property(n1, "name", "Ann", iv(1, 9)).unwrap();
    b.set_property(n1, "risk", "low", iv(1, 9)).unwrap();

    b.add_existence(n2, iv(1, 9)).unwrap();
    b.set_property(n2, "name", "Bob", iv(1, 9)).unwrap();
    b.set_property(n2, "risk", "low", iv(1, 4)).unwrap();
    b.set_property(n2, "risk", "high", iv(5, 9)).unwrap();

    b.add_existence(n3, iv(1, 7)).unwrap();
    b.set_property(n3, "name", "Mia", iv(1, 7)).unwrap();
    b.set_property(n3, "risk", "high", iv(1, 7)).unwrap();

    b.add_existence(n4, iv(3, 8)).unwrap();
    b.set_property(n4, "num", 750i64, iv(3, 8)).unwrap();
    b.set_property(n4, "bldg", "CS", iv(3, 8)).unwrap();

    b.add_existence(n5, iv(3, 7)).unwrap();
    b.set_property(n5, "num", 1101i64, iv(3, 7)).unwrap();
    b.set_property(n5, "bldg", "MATH", iv(3, 7)).unwrap();

    b.add_existence(n6, iv(2, 11)).unwrap();
    b.set_property(n6, "name", "Eve", iv(2, 11)).unwrap();
    b.set_property(n6, "risk", "low", iv(2, 11)).unwrap();
    b.set_property(n6, "test", "pos", iv(9, 9)).unwrap();

    b.add_existence(n7, iv(1, 8)).unwrap();
    b.set_property(n7, "name", "Zoe", iv(1, 8)).unwrap();
    b.set_property(n7, "risk", "high", iv(1, 8)).unwrap();

    // Edges.  Directions follow the arrowheads of the figure where visible and are
    // otherwise fixed by the published query answers.
    let e1 = b.add_edge("e1", "meets", n1, n2).unwrap();
    b.add_existence(e1, iv(3, 3)).unwrap();
    b.add_existence(e1, iv(5, 6)).unwrap();
    b.set_property(e1, "loc", "cafe", iv(3, 3)).unwrap();
    b.set_property(e1, "loc", "park", iv(5, 6)).unwrap();

    let e2 = b.add_edge("e2", "meets", n2, n3).unwrap();
    b.add_existence(e2, iv(1, 2)).unwrap();
    b.set_property(e2, "loc", "park", iv(1, 2)).unwrap();

    let e3 = b.add_edge("e3", "visits", n3, n4).unwrap();
    b.add_existence(e3, iv(6, 7)).unwrap();

    let e5 = b.add_edge("e5", "cohabits", n2, n3).unwrap();
    b.add_existence(e5, iv(3, 7)).unwrap();

    let e6 = b.add_edge("e6", "visits", n6, n5).unwrap();
    b.add_existence(e6, iv(5, 6)).unwrap();

    let e7 = b.add_edge("e7", "visits", n1, n5).unwrap();
    b.add_existence(e7, iv(5, 6)).unwrap();

    let e8 = b.add_edge("e8", "visits", n6, n4).unwrap();
    b.add_existence(e8, iv(7, 8)).unwrap();

    let e9 = b.add_edge("e9", "visits", n7, n4).unwrap();
    b.add_existence(e9, iv(6, 8)).unwrap();

    let e10 = b.add_edge("e10", "meets", n7, n6).unwrap();
    b.add_existence(e10, iv(5, 6)).unwrap();
    b.set_property(e10, "loc", "cafe", iv(5, 6)).unwrap();

    let e11 = b.add_edge("e11", "meets", n3, n6).unwrap();
    b.add_existence(e11, iv(4, 4)).unwrap();
    b.set_property(e11, "loc", "park", iv(4, 4)).unwrap();

    b.domain(iv(1, 11)).build().expect("the Figure 1 graph is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{Object, Value};

    #[test]
    fn structure_matches_the_figure() {
        let g = figure1();
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.domain(), Interval::of(1, 11));
        // n2 and n3 are connected by two edges, e2 and e5 (the graph is a multigraph).
        let n2 = g.node_by_name("n2").unwrap();
        let n3 = g.node_by_name("n3").unwrap();
        let between: Vec<_> = g
            .edge_ids()
            .filter(|&e| (g.src(e) == n2 && g.tgt(e) == n3) || (g.src(e) == n3 && g.tgt(e) == n2))
            .collect();
        assert_eq!(between.len(), 2);
    }

    #[test]
    fn property_histories_match_the_figure() {
        let g = figure1();
        let n2 = Object::Node(g.node_by_name("n2").unwrap());
        assert_eq!(g.prop_value_at(n2, "risk", 4), Some(&Value::str("low")));
        assert_eq!(g.prop_value_at(n2, "risk", 5), Some(&Value::str("high")));
        let n6 = Object::Node(g.node_by_name("n6").unwrap());
        assert_eq!(g.prop_value_at(n6, "test", 9), Some(&Value::str("pos")));
        assert_eq!(g.prop_value_at(n6, "test", 8), None);
        let e1 = Object::Edge(g.edge_by_name("e1").unwrap());
        assert_eq!(g.prop_value_at(e1, "loc", 3), Some(&Value::str("cafe")));
        assert_eq!(g.prop_value_at(e1, "loc", 5), Some(&Value::str("park")));
        assert_eq!(g.prop_value_at(e1, "loc", 4), None);
    }

    #[test]
    fn eve_has_three_temporal_states() {
        // Eve's test result splits her lifetime into [2,8], [9,9] and [10,11].
        let g = figure1();
        assert_eq!(g.num_temporal_nodes(), 1 + 2 + 1 + 1 + 1 + 3 + 1);
        assert_eq!(g.num_temporal_edges(), 2 + 1 + 1 + 1 + 1 + 1 + 1 + 1 + 1 + 1);
    }
}
