//! The synthetic contact-tracing workload of Section VII.A.
//!
//! Persons and their trajectories are turned into an interval-timestamped temporal
//! property graph with the same structure as the paper's experimental graphs:
//!
//! * `Person` nodes whose periods of validity are their stays on campus;
//! * `Room` nodes for the most-visited locations, valid from first entrance to last
//!   exit;
//! * a `visits` edge for every stay of a person in a room;
//! * a `meets` edge between two persons who are at the same (non-classroom) location
//!   at the same time, valid over the overlap of their stays;
//! * 18 % of persons are `risk = 'high'` for their whole lifespan (the share of the
//!   population aged 65+), the rest `risk = 'low'`;
//! * a configurable fraction of persons additionally `test = 'pos'` from a uniformly
//!   random time point until the end of their lifespan.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tgraph::{Interval, Itpg, ItpgBuilder, NodeId};

use crate::trajectory::{generate_stays, Place, Stay, TrajectoryConfig};

/// Parameters of the contact-tracing graph generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ContactTracingConfig {
    /// Trajectory parameters (number of persons, rooms, time slots, …).
    pub trajectories: TrajectoryConfig,
    /// Fraction of persons marked `risk = 'high'`.
    pub high_risk_rate: f64,
    /// Fraction of persons that test positive at some point.
    pub positivity_rate: f64,
    /// Random seed; the generator is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for ContactTracingConfig {
    fn default() -> Self {
        ContactTracingConfig {
            trajectories: TrajectoryConfig::default(),
            high_risk_rate: 0.18,
            positivity_rate: 0.02,
            seed: 0x7e_a7_05,
        }
    }
}

impl ContactTracingConfig {
    /// Convenience constructor with the given number of persons and default settings.
    pub fn with_persons(num_persons: usize) -> Self {
        ContactTracingConfig {
            trajectories: TrajectoryConfig { num_persons, ..Default::default() },
            ..Default::default()
        }
    }

    /// Sets the positivity rate (Figure 5 sweeps it from 2 % to 10 %).
    pub fn with_positivity_rate(mut self, rate: f64) -> Self {
        self.positivity_rate = rate;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of slots in the temporal domain (the paper fixes 48; smoke
    /// benchmarks shrink it to keep point expansion cheap).
    pub fn with_time_points(mut self, num_time_points: u64) -> Self {
        self.trajectories.num_time_points = num_time_points;
        self
    }
}

/// Generates a contact-tracing ITPG from the configuration.
pub fn generate(config: &ContactTracingConfig) -> Itpg {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let stays = generate_stays(&config.trajectories, &mut rng);
    build_graph(config, &stays, &mut rng)
}

fn build_graph(config: &ContactTracingConfig, stays: &[Stay], rng: &mut StdRng) -> Itpg {
    let num_persons = config.trajectories.num_persons;
    let mut builder = ItpgBuilder::new();

    // Person nodes: existence is the union of their stays.
    let mut person_nodes: Vec<Option<NodeId>> = vec![None; num_persons];
    let mut person_last: Vec<Option<u64>> = vec![None; num_persons];
    for stay in stays {
        if person_nodes[stay.person].is_none() {
            let id = builder
                .add_node(&format!("p{}", stay.person), "Person")
                .expect("person names are unique");
            person_nodes[stay.person] = Some(id);
        }
        let id = person_nodes[stay.person].expect("just inserted");
        builder.add_existence(id, stay.interval).expect("stay is a valid interval");
        let last = person_last[stay.person].get_or_insert(stay.interval.end());
        *last = (*last).max(stay.interval.end());
    }

    // Room nodes: existence from first entrance to last exit.
    let mut room_bounds: HashMap<usize, Interval> = HashMap::new();
    for stay in stays {
        if let Place::Room(room) = stay.place {
            room_bounds
                .entry(room)
                .and_modify(|iv| *iv = iv.hull(&stay.interval))
                .or_insert(stay.interval);
        }
    }
    let mut room_nodes: HashMap<usize, NodeId> = HashMap::new();
    let mut rooms: Vec<(usize, Interval)> = room_bounds.into_iter().collect();
    rooms.sort_by_key(|(room, _)| *room);
    for (room, bounds) in rooms {
        let id = builder.add_node(&format!("r{room}"), "Room").expect("room names are unique");
        builder.add_existence(id, bounds).expect("room bounds are valid");
        builder.set_property(id, "num", room as i64, bounds).expect("room exists over its bounds");
        room_nodes.insert(room, id);
    }

    // Risk and test properties.
    for (person, node) in person_nodes.iter().enumerate() {
        let Some(node) = *node else { continue };
        let existence: Vec<Interval> =
            stays.iter().filter(|s| s.person == person).map(|s| s.interval).collect();
        let high = rng.gen_bool(config.high_risk_rate);
        let risk = if high { "high" } else { "low" };
        for iv in &existence {
            builder.set_property(node, "risk", risk, *iv).expect("person exists during stays");
        }
        if rng.gen_bool(config.positivity_rate) {
            // Positive from a uniformly random time point, for the rest of the lifespan.
            let last = person_last[person].expect("person has at least one stay");
            let first = existence.iter().map(|iv| iv.start()).min().expect("non-empty");
            let pos_time = rng.gen_range(first..=last);
            for iv in &existence {
                if let Some(tail) = iv.intersect(&Interval::of(pos_time, last)) {
                    builder.set_property(node, "test", "pos", tail).expect("person exists then");
                }
            }
        }
    }

    // Visits edges: one per (person, room) stay.
    let mut visit_count = 0usize;
    for stay in stays {
        if let Place::Room(room) = stay.place {
            let person = person_nodes[stay.person].expect("person node exists");
            let room_node = room_nodes[&room];
            let edge = builder
                .add_edge(&format!("v{visit_count}"), "visits", person, room_node)
                .expect("edge names are unique");
            visit_count += 1;
            builder.add_existence(edge, stay.interval).expect("both endpoints exist");
        }
    }

    // Meets edges: pairs of persons co-located at the same meeting location.
    let mut per_location: HashMap<usize, Vec<&Stay>> = HashMap::new();
    for stay in stays {
        if let Place::MeetingPoint(loc) = stay.place {
            per_location.entry(loc).or_default().push(stay);
        }
    }
    let mut locations: Vec<(usize, Vec<&Stay>)> = per_location.into_iter().collect();
    locations.sort_by_key(|(loc, _)| *loc);
    let mut meet_count = 0usize;
    for (loc, mut stays_here) in locations {
        stays_here.sort_by_key(|s| (s.interval.start(), s.person));
        for i in 0..stays_here.len() {
            for j in (i + 1)..stays_here.len() {
                let (a, b) = (stays_here[i], stays_here[j]);
                if b.interval.start() > a.interval.end() {
                    break; // sorted by start: no later stay can overlap a.
                }
                if a.person == b.person {
                    continue;
                }
                if let Some(overlap) = a.interval.intersect(&b.interval) {
                    let pa = person_nodes[a.person].expect("person node exists");
                    let pb = person_nodes[b.person].expect("person node exists");
                    let edge = builder
                        .add_edge(&format!("m{meet_count}"), "meets", pa, pb)
                        .expect("edge names are unique");
                    meet_count += 1;
                    builder.add_existence(edge, overlap).expect("both endpoints exist");
                    builder
                        .set_property(edge, "loc", format!("loc{loc}"), overlap)
                        .expect("edge exists over the overlap");
                }
            }
        }
    }

    builder.build().expect("the generated graph is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::Object;

    fn small_config() -> ContactTracingConfig {
        ContactTracingConfig::with_persons(300).with_seed(11)
    }

    #[test]
    fn generated_graph_is_well_formed_and_deterministic() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a, b);
        a.validate().unwrap();
        let c = generate(&small_config().with_seed(12));
        assert_ne!(a, c);
    }

    #[test]
    fn graph_has_the_expected_shape() {
        let g = generate(&small_config());
        let mut persons = 0usize;
        let mut rooms = 0usize;
        let mut high = 0usize;
        let mut positive = 0usize;
        for n in g.node_ids() {
            let o = Object::Node(n);
            match g.label(o) {
                "Person" => {
                    persons += 1;
                    let first = g.existence(o).min().unwrap();
                    if g.prop_value_at(o, "risk", first).map(|v| v.as_str()) == Some(Some("high")) {
                        high += 1;
                    }
                    if g.properties(o).any(|(p, _)| p == "test") {
                        positive += 1;
                    }
                }
                "Room" => rooms += 1,
                other => panic!("unexpected label {other}"),
            }
        }
        assert_eq!(persons, 300);
        assert!(rooms > 0 && rooms <= 100);
        // Roughly 18% high risk and 2% positive.
        assert!((20..=90).contains(&high), "high = {high}");
        assert!(positive <= 25, "positive = {positive}");

        let mut meets = 0usize;
        let mut visits = 0usize;
        for e in g.edge_ids() {
            match g.label(Object::Edge(e)) {
                "meets" => meets += 1,
                "visits" => visits += 1,
                other => panic!("unexpected label {other}"),
            }
        }
        assert!(visits > 0);
        assert!(meets > 0);
    }

    #[test]
    fn positivity_rate_controls_the_number_of_positive_persons() {
        let low = generate(&small_config().with_positivity_rate(0.02));
        let high = generate(&small_config().with_positivity_rate(0.30));
        let count = |g: &Itpg| {
            g.node_ids()
                .filter(|&n| g.properties(Object::Node(n)).any(|(p, _)| p == "test"))
                .count()
        };
        assert!(count(&high) > count(&low));
    }

    #[test]
    fn edge_growth_is_superlinear_in_the_number_of_persons() {
        // Doubling the number of persons should more than double the number of meets
        // edges, because co-location counts grow quadratically with density.
        let small = generate(&ContactTracingConfig::with_persons(400).with_seed(3));
        let large = generate(&ContactTracingConfig::with_persons(800).with_seed(3));
        let meets =
            |g: &Itpg| g.edge_ids().filter(|&e| g.label(Object::Edge(e)) == "meets").count();
        assert!(
            meets(&large) as f64 > 2.5 * meets(&small) as f64,
            "meets: {} vs {}",
            meets(&small),
            meets(&large)
        );
    }
}
