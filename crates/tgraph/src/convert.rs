//! Conversions between the point-based (TPG) and interval-based (ITPG)
//! representations of temporal property graphs.
//!
//! Every TPG can be transformed into an ITPG by coalescing consecutive time points
//! with the same values into maximal intervals, and every ITPG can be expanded back
//! into a TPG (`can(·)` in the paper); the two representations denote the same
//! conceptual object, so the round trip is the identity.

use std::collections::BTreeMap;

use crate::interval::Interval;
use crate::interval_set::IntervalSet;
use crate::itpg::{IntervalObjectData, Itpg};
use crate::tpg::{PointObjectData, Tpg};
use crate::valued::ValuedIntervals;

fn point_to_interval_data(data: &PointObjectData) -> IntervalObjectData {
    let mut props = BTreeMap::new();
    for (prop, history) in &data.props {
        let mut vi = ValuedIntervals::empty();
        for (&t, value) in history {
            vi.assign_point(value.clone(), t);
        }
        props.insert(prop.clone(), vi);
    }
    IntervalObjectData {
        name: data.name.clone(),
        label: data.label.clone(),
        existence: data.existence.clone(),
        props,
    }
}

fn interval_to_point_data(data: &IntervalObjectData) -> PointObjectData {
    let mut props = BTreeMap::new();
    for (prop, history) in &data.props {
        let mut per_time: BTreeMap<_, _> = BTreeMap::new();
        for (t, value) in history.points() {
            per_time.insert(t, value.clone());
        }
        props.insert(prop.clone(), per_time);
    }
    PointObjectData {
        name: data.name.clone(),
        label: data.label.clone(),
        existence: data.existence.clone(),
        props,
    }
}

impl Tpg {
    /// Transforms this point-based graph into the equivalent interval-based graph by
    /// coalescing value-equivalent, temporally adjacent time points (Section III.B).
    pub fn to_itpg(&self) -> Itpg {
        Itpg {
            domain: self.domain,
            nodes: self.nodes.iter().map(point_to_interval_data).collect(),
            edges: self.edges.iter().map(point_to_interval_data).collect(),
            endpoints: self.endpoints.clone(),
            out_edges: self.out_edges.clone(),
            in_edges: self.in_edges.clone(),
            names: self.names.clone(),
        }
    }
}

impl Itpg {
    /// Expands this interval-based graph into the equivalent point-based graph
    /// (the canonical translation `can(I)` used to define `⟦path⟧_I`).
    ///
    /// Note that this expansion can be exponentially larger than the ITPG when the
    /// intervals are long — the reason the paper studies evaluation directly over
    /// ITPGs.
    pub fn to_tpg(&self) -> Tpg {
        Tpg {
            domain: self.domain,
            nodes: self.nodes.iter().map(interval_to_point_data).collect(),
            edges: self.edges.iter().map(interval_to_point_data).collect(),
            endpoints: self.endpoints.clone(),
            out_edges: self.out_edges.clone(),
            in_edges: self.in_edges.clone(),
            names: self.names.clone(),
        }
    }

    /// Restricts the graph to a temporal window, dropping all existence and property
    /// information outside `window` and shrinking the domain accordingly.  Objects
    /// that never exist inside the window are kept (with empty existence) so that ids
    /// remain stable.
    pub fn restrict_to(&self, window: Interval) -> Itpg {
        let domain = self.domain.intersect(&window).unwrap_or(window);
        let clamp = |data: &IntervalObjectData| -> IntervalObjectData {
            let existence = data.existence.clamp(&domain);
            let mut props = BTreeMap::new();
            for (prop, history) in &data.props {
                let mut clamped = ValuedIntervals::empty();
                for (value, iv) in history.entries() {
                    if let Some(x) = iv.intersect(&domain) {
                        clamped.assign(value.clone(), x);
                    }
                }
                if !clamped.is_empty() {
                    props.insert(prop.clone(), clamped);
                }
            }
            IntervalObjectData {
                name: data.name.clone(),
                label: data.label.clone(),
                existence,
                props,
            }
        };
        Itpg {
            domain,
            nodes: self.nodes.iter().map(&clamp).collect(),
            edges: self.edges.iter().map(&clamp).collect(),
            endpoints: self.endpoints.clone(),
            out_edges: self.out_edges.clone(),
            in_edges: self.in_edges.clone(),
            names: self.names.clone(),
        }
    }
}

/// Checks that two representations describe the same conceptual temporal graph, by
/// comparing domains, labels, topology, existence sets and property histories.
pub fn equivalent(tpg: &Tpg, itpg: &Itpg) -> bool {
    if tpg.domain() != itpg.domain()
        || tpg.num_nodes() != itpg.num_nodes()
        || tpg.num_edges() != itpg.num_edges()
    {
        return false;
    }
    for e in tpg.edge_ids() {
        if tpg.src(e) != itpg.src(e) || tpg.tgt(e) != itpg.tgt(e) {
            return false;
        }
    }
    for o in tpg.objects() {
        if tpg.label(o) != itpg.label(o) || tpg.name(o) != itpg.name(o) {
            return false;
        }
        let point_existence: IntervalSet = tpg.existence(o).clone();
        if &point_existence != itpg.existence(o) {
            return false;
        }
        for t in tpg.domain().points() {
            let props: Vec<&str> = tpg.property_names(o).collect();
            for p in props {
                if tpg.prop_value(o, p, t) != itpg.prop_value_at(o, p, t) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itpg::ItpgBuilder;
    use crate::tpg::TpgBuilder;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    fn sample_itpg() -> Itpg {
        let mut b = ItpgBuilder::new();
        let p = b.add_node("p", "Person").unwrap();
        let r = b.add_node("r", "Room").unwrap();
        let e = b.add_edge("e", "visits", p, r).unwrap();
        b.add_existence(p, iv(1, 9)).unwrap();
        b.add_existence(r, iv(3, 8)).unwrap();
        b.add_existence(e, iv(5, 6)).unwrap();
        b.set_property(p, "risk", "low", iv(1, 4)).unwrap();
        b.set_property(p, "risk", "high", iv(5, 9)).unwrap();
        b.set_property(e, "loc", "park", iv(5, 6)).unwrap();
        b.domain(iv(1, 11)).build().unwrap()
    }

    #[test]
    fn itpg_tpg_round_trip_is_identity() {
        let itpg = sample_itpg();
        let tpg = itpg.to_tpg();
        let back = tpg.to_itpg();
        assert_eq!(itpg, back);
        assert!(equivalent(&tpg, &itpg));
    }

    #[test]
    fn tpg_itpg_round_trip_is_identity() {
        let mut b = TpgBuilder::new();
        let p = b.add_node("p", "Person").unwrap();
        b.set_exists_during(p, iv(1, 3)).unwrap();
        b.set_exists(p, 5).unwrap();
        b.set_prop_during(p, "risk", iv(1, 2), "low").unwrap();
        b.set_prop(p, "risk", 3, "high").unwrap();
        let tpg = b.domain(iv(1, 6)).build().unwrap();
        let itpg = tpg.to_itpg();
        assert_eq!(itpg.existence(crate::ids::Object::Node(p)).intervals(), &[iv(1, 3), iv(5, 5)]);
        let back = itpg.to_tpg();
        assert_eq!(tpg, back);
        assert!(equivalent(&tpg, &itpg));
    }

    #[test]
    fn expansion_validates() {
        let itpg = sample_itpg();
        let tpg = itpg.to_tpg();
        tpg.validate().unwrap();
        assert_eq!(
            tpg.prop_value(crate::ids::Object::Node(crate::ids::NodeId(0)), "risk", 5).unwrap(),
            &crate::value::Value::str("high")
        );
    }

    #[test]
    fn restrict_to_window() {
        let itpg = sample_itpg();
        let restricted = itpg.restrict_to(iv(4, 6));
        assert_eq!(restricted.domain(), iv(4, 6));
        let p = crate::ids::Object::Node(crate::ids::NodeId(0));
        assert_eq!(restricted.existence(p).intervals(), &[iv(4, 6)]);
        assert_eq!(
            restricted.prop_value_at(p, "risk", 4).unwrap(),
            &crate::value::Value::str("low")
        );
        assert_eq!(
            restricted.prop_value_at(p, "risk", 5).unwrap(),
            &crate::value::Value::str("high")
        );
        assert_eq!(restricted.prop_value_at(p, "risk", 7), None);
        restricted.validate().unwrap();
    }
}
