//! The interval-timestamped temporal property graph (ITPG) of Appendix A
//! (Definition A.1): a succinct representation of a TPG where the existence of each
//! object is a coalesced family of intervals and each property history is a coalesced
//! family of valued intervals.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{GraphError, Result};
use crate::ids::{EdgeId, NodeId, Object};
use crate::interval::{Interval, Time};
use crate::interval_set::IntervalSet;
use crate::value::Value;
use crate::valued::ValuedIntervals;

/// Per-object payload shared by nodes and edges in the interval-based representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct IntervalObjectData {
    pub(crate) name: String,
    pub(crate) label: String,
    /// ξ(o): coalesced set of maximal intervals during which the object exists.
    pub(crate) existence: IntervalSet,
    /// σ(o, p): property name → coalesced valued-interval history.
    pub(crate) props: BTreeMap<String, ValuedIntervals>,
}

/// An interval-timestamped temporal property graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Itpg {
    pub(crate) domain: Interval,
    pub(crate) nodes: Vec<IntervalObjectData>,
    pub(crate) edges: Vec<IntervalObjectData>,
    pub(crate) endpoints: Vec<(NodeId, NodeId)>,
    pub(crate) out_edges: Vec<Vec<EdgeId>>,
    pub(crate) in_edges: Vec<Vec<EdgeId>>,
    pub(crate) names: BTreeMap<String, Object>,
}

impl Itpg {
    /// The temporal domain Ω of the graph (an interval of ℕ).
    pub fn domain(&self) -> Interval {
        self.domain
    }

    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The number of *temporal* nodes: one per maximal state of a node, i.e. one per
    /// distinct `(existence interval × property change)` segment.  This is the
    /// quantity reported in Table I of the paper ("# temp. nodes").
    pub fn num_temporal_nodes(&self) -> usize {
        self.nodes.iter().map(segment_count).sum()
    }

    /// The number of temporal edges (see [`Itpg::num_temporal_nodes`]).
    pub fn num_temporal_edges(&self) -> usize {
        self.edges.iter().map(segment_count).sum()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterates over all objects (nodes then edges).
    pub fn objects(&self) -> impl Iterator<Item = Object> + '_ {
        self.node_ids().map(Object::Node).chain(self.edge_ids().map(Object::Edge))
    }

    pub(crate) fn data(&self, object: Object) -> &IntervalObjectData {
        match object {
            Object::Node(n) => &self.nodes[n.index()],
            Object::Edge(e) => &self.edges[e.index()],
        }
    }

    /// Returns the object registered under the given display name (e.g. `"n1"`).
    pub fn object_by_name(&self, name: &str) -> Option<Object> {
        self.names.get(name).copied()
    }

    /// Returns the node registered under the given display name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.object_by_name(name).and_then(Object::as_node)
    }

    /// Returns the edge registered under the given display name.
    pub fn edge_by_name(&self, name: &str) -> Option<EdgeId> {
        self.object_by_name(name).and_then(Object::as_edge)
    }

    /// The display name of an object.
    pub fn name(&self, object: Object) -> &str {
        &self.data(object).name
    }

    /// The label λ(o) of an object.
    pub fn label(&self, object: Object) -> &str {
        &self.data(object).label
    }

    /// The coalesced existence intervals ξ(o) of an object.
    pub fn existence(&self, object: Object) -> &IntervalSet {
        &self.data(object).existence
    }

    /// True if the object exists at time `t`.
    pub fn exists_at(&self, object: Object, t: Time) -> bool {
        self.data(object).existence.contains(t)
    }

    /// The coalesced valued-interval history σ(o, p) of a property, if the property is
    /// ever defined for the object.
    pub fn property(&self, object: Object, prop: &str) -> Option<&ValuedIntervals> {
        self.data(object).props.get(prop)
    }

    /// The value of property `prop` of `object` at time `t`, if defined.
    pub fn prop_value_at(&self, object: Object, prop: &str, t: Time) -> Option<&Value> {
        self.property(object, prop).and_then(|h| h.value_at(t))
    }

    /// Iterates over `(property name, history)` pairs of an object.
    pub fn properties(
        &self,
        object: Object,
    ) -> impl Iterator<Item = (&str, &ValuedIntervals)> + '_ {
        self.data(object).props.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The source node of an edge.
    pub fn src(&self, edge: EdgeId) -> NodeId {
        self.endpoints[edge.index()].0
    }

    /// The target node of an edge.
    pub fn tgt(&self, edge: EdgeId) -> NodeId {
        self.endpoints[edge.index()].1
    }

    /// The edges whose source is `node`.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out_edges[node.index()]
    }

    /// The edges whose target is `node`.
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.in_edges[node.index()]
    }

    /// Validates the well-formedness conditions of Definition A.1: existence sets and
    /// property supports lie within the domain, edge existence is contained in the
    /// existence of both endpoints, property support is contained in the object's
    /// existence, and all families are coalesced.
    pub fn validate(&self) -> Result<()> {
        let domain_set = IntervalSet::from_interval(self.domain);
        for (idx, edge) in self.edges.iter().enumerate() {
            let eid = EdgeId(idx as u32);
            let (src, tgt) = self.endpoints[idx];
            for endpoint in [src, tgt] {
                if !edge.existence.contained_in(&self.nodes[endpoint.index()].existence) {
                    let t = edge.existence.min().unwrap_or(self.domain.start());
                    return Err(GraphError::DanglingEdge { edge: eid, endpoint, time: t });
                }
            }
        }
        for object in self.objects().collect::<Vec<_>>() {
            let data = self.data(object);
            debug_assert!(data.existence.is_coalesced());
            if !data.existence.contained_in(&domain_set) {
                let t = data
                    .existence
                    .intervals()
                    .iter()
                    .find(|iv| !iv.during(&self.domain))
                    .map(|iv| iv.start())
                    .unwrap_or(self.domain.start());
                return Err(GraphError::OutsideDomain { object, time: t });
            }
            for (prop, history) in &data.props {
                debug_assert!(history.is_coalesced());
                if !history.support().contained_in(&data.existence) {
                    let t = history.support().min().unwrap_or(self.domain.start());
                    return Err(GraphError::PropertyWithoutExistence {
                        object,
                        property: prop.clone(),
                        time: t,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Number of maximal "no change occurred" segments of an object: the states obtained
/// by splitting its existence intervals at every property-change boundary.
fn segment_count(data: &IntervalObjectData) -> usize {
    let mut boundaries: Vec<Time> = Vec::new();
    for iv in data.existence.intervals() {
        boundaries.push(iv.start());
        boundaries.push(iv.end() + 1);
    }
    for history in data.props.values() {
        for (_, iv) in history.entries() {
            boundaries.push(iv.start());
            boundaries.push(iv.end() + 1);
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    // Count segments [b_i, b_{i+1}-1] that fall inside the existence set.
    boundaries.windows(2).filter(|w| data.existence.contains(w[0])).count()
}

/// Incremental builder for interval-timestamped TPGs.
#[derive(Debug, Default)]
pub struct ItpgBuilder {
    domain: Option<Interval>,
    nodes: Vec<IntervalObjectData>,
    edges: Vec<IntervalObjectData>,
    endpoints: Vec<(NodeId, NodeId)>,
    names: BTreeMap<String, Object>,
    min_time: Option<Time>,
    max_time: Option<Time>,
}

impl ItpgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ItpgBuilder::default()
    }

    /// Sets the temporal domain Ω explicitly; otherwise it is inferred from the
    /// intervals mentioned while building.
    pub fn domain(mut self, domain: Interval) -> Self {
        self.domain = Some(domain);
        self
    }

    fn note_interval(&mut self, interval: Interval) {
        self.min_time = Some(self.min_time.map_or(interval.start(), |m| m.min(interval.start())));
        self.max_time = Some(self.max_time.map_or(interval.end(), |m| m.max(interval.end())));
    }

    fn register_name(&mut self, name: &str, object: Object) -> Result<()> {
        if self.names.insert(name.to_owned(), object).is_some() {
            return Err(GraphError::DuplicateName(name.to_owned()));
        }
        Ok(())
    }

    /// Adds a node with the given display name and label.
    pub fn add_node(&mut self, name: &str, label: &str) -> Result<NodeId> {
        let id = NodeId(self.nodes.len() as u32);
        self.register_name(name, Object::Node(id))?;
        self.nodes.push(IntervalObjectData {
            name: name.to_owned(),
            label: label.to_owned(),
            existence: IntervalSet::empty(),
            props: BTreeMap::new(),
        });
        Ok(id)
    }

    /// Adds an edge with the given display name, label and endpoints.
    pub fn add_edge(
        &mut self,
        name: &str,
        label: &str,
        src: NodeId,
        tgt: NodeId,
    ) -> Result<EdgeId> {
        if src.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(src));
        }
        if tgt.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(tgt));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.register_name(name, Object::Edge(id))?;
        self.edges.push(IntervalObjectData {
            name: name.to_owned(),
            label: label.to_owned(),
            existence: IntervalSet::empty(),
            props: BTreeMap::new(),
        });
        self.endpoints.push((src, tgt));
        Ok(id)
    }

    fn data_mut(&mut self, object: Object) -> Result<&mut IntervalObjectData> {
        match object {
            Object::Node(n) => self.nodes.get_mut(n.index()).ok_or(GraphError::UnknownNode(n)),
            Object::Edge(e) => self.edges.get_mut(e.index()).ok_or(GraphError::UnknownEdge(e)),
        }
    }

    /// Declares that the object exists during `interval` (in addition to any
    /// previously declared intervals; the existence set stays coalesced).
    pub fn add_existence(&mut self, object: impl Into<Object>, interval: Interval) -> Result<()> {
        self.note_interval(interval);
        self.data_mut(object.into())?.existence.insert(interval);
        Ok(())
    }

    /// Assigns `value` to property `prop` of the object during `interval`.
    pub fn set_property(
        &mut self,
        object: impl Into<Object>,
        prop: &str,
        value: impl Into<Value>,
        interval: Interval,
    ) -> Result<()> {
        self.note_interval(interval);
        let data = self.data_mut(object.into())?;
        data.props.entry(prop.to_owned()).or_default().assign(value.into(), interval);
        Ok(())
    }

    /// Finishes building, validates the graph and returns it.
    pub fn build(self) -> Result<Itpg> {
        let domain = match self.domain {
            Some(d) => d,
            None => match (self.min_time, self.max_time) {
                (Some(a), Some(b)) => Interval::of(a, b),
                _ => return Err(GraphError::EmptyDomain),
            },
        };
        let mut out_edges = vec![Vec::new(); self.nodes.len()];
        let mut in_edges = vec![Vec::new(); self.nodes.len()];
        for (idx, &(src, tgt)) in self.endpoints.iter().enumerate() {
            out_edges[src.index()].push(EdgeId(idx as u32));
            in_edges[tgt.index()].push(EdgeId(idx as u32));
        }
        let graph = Itpg {
            domain,
            nodes: self.nodes,
            edges: self.edges,
            endpoints: self.endpoints,
            out_edges,
            in_edges,
            names: self.names,
        };
        graph.validate()?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: Time, b: Time) -> Interval {
        Interval::of(a, b)
    }

    fn small_graph() -> Itpg {
        let mut b = ItpgBuilder::new();
        let n2 = b.add_node("n2", "Person").unwrap();
        let n3 = b.add_node("n3", "Person").unwrap();
        let e2 = b.add_edge("e2", "meets", n2, n3).unwrap();
        b.add_existence(n2, iv(1, 9)).unwrap();
        b.add_existence(n3, iv(1, 7)).unwrap();
        b.add_existence(e2, iv(1, 2)).unwrap();
        b.set_property(n2, "risk", "low", iv(1, 4)).unwrap();
        b.set_property(n2, "risk", "high", iv(5, 9)).unwrap();
        b.set_property(n2, "name", "Bob", iv(1, 9)).unwrap();
        b.domain(iv(1, 11)).build().unwrap()
    }

    #[test]
    fn running_example_fragment() {
        // Mirrors the ITPG fragment spelled out in Appendix A for Figure 1.
        let g = small_graph();
        let n2 = Object::Node(g.node_by_name("n2").unwrap());
        let n3 = Object::Node(g.node_by_name("n3").unwrap());
        let e2 = Object::Edge(g.edge_by_name("e2").unwrap());
        assert_eq!(g.domain(), iv(1, 11));
        assert_eq!(g.existence(n2).intervals(), &[iv(1, 9)]);
        assert_eq!(g.existence(n3).intervals(), &[iv(1, 7)]);
        assert_eq!(g.existence(e2).intervals(), &[iv(1, 2)]);
        assert!(g.existence(e2).contained_in(g.existence(n2)));
        assert!(g.existence(e2).contained_in(g.existence(n3)));
        let risk = g.property(n2, "risk").unwrap();
        assert_eq!(
            risk.entries(),
            &[(Value::str("low"), iv(1, 4)), (Value::str("high"), iv(5, 9))]
        );
        assert_eq!(g.prop_value_at(n2, "risk", 4), Some(&Value::str("low")));
        assert_eq!(g.prop_value_at(n2, "risk", 5), Some(&Value::str("high")));
        assert_eq!(g.prop_value_at(n2, "risk", 10), None);
    }

    #[test]
    fn temporal_counts() {
        let g = small_graph();
        // n2 changes risk at time 5 → two segments; n3 has one; e2 has one.
        assert_eq!(g.num_temporal_nodes(), 3);
        assert_eq!(g.num_temporal_edges(), 1);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn adjacency_and_names() {
        let g = small_graph();
        let n2 = g.node_by_name("n2").unwrap();
        let n3 = g.node_by_name("n3").unwrap();
        let e2 = g.edge_by_name("e2").unwrap();
        assert_eq!(g.src(e2), n2);
        assert_eq!(g.tgt(e2), n3);
        assert_eq!(g.out_edges(n2), &[e2]);
        assert_eq!(g.in_edges(n3), &[e2]);
        assert_eq!(g.name(Object::Edge(e2)), "e2");
        assert_eq!(g.label(Object::Edge(e2)), "meets");
    }

    #[test]
    fn edge_outside_endpoint_existence_is_rejected() {
        let mut b = ItpgBuilder::new();
        let a = b.add_node("a", "Person").unwrap();
        let c = b.add_node("c", "Person").unwrap();
        let e = b.add_edge("e", "meets", a, c).unwrap();
        b.add_existence(a, iv(1, 3)).unwrap();
        b.add_existence(c, iv(1, 5)).unwrap();
        b.add_existence(e, iv(2, 5)).unwrap();
        assert!(matches!(b.build(), Err(GraphError::DanglingEdge { .. })));
    }

    #[test]
    fn property_outside_existence_is_rejected() {
        let mut b = ItpgBuilder::new();
        let a = b.add_node("a", "Person").unwrap();
        b.add_existence(a, iv(1, 3)).unwrap();
        b.set_property(a, "risk", "low", iv(2, 6)).unwrap();
        assert!(matches!(b.build(), Err(GraphError::PropertyWithoutExistence { .. })));
    }

    #[test]
    fn existence_outside_domain_is_rejected() {
        let mut b = ItpgBuilder::new();
        let a = b.add_node("a", "Person").unwrap();
        b.add_existence(a, iv(1, 20)).unwrap();
        let err = b.domain(iv(1, 10)).build().unwrap_err();
        assert!(matches!(err, GraphError::OutsideDomain { .. }));
    }
}
