//! Snapshots: the conventional (non-temporal) property graph describing the state of
//! a temporal property graph at a single time point.
//!
//! Snapshots make the *snapshot reducibility* design principle concrete: a TRPQ
//! without temporal navigation, evaluated at time `t`, must produce exactly the
//! bindings that the non-temporal query produces over the snapshot at `t`.

use std::collections::BTreeMap;

use crate::ids::{EdgeId, NodeId, Object};
use crate::interval::Time;
use crate::itpg::Itpg;
use crate::tpg::Tpg;
use crate::value::Value;

/// A node of a snapshot: label plus the property values holding at the snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotNode {
    /// Id of the node in the temporal graph.
    pub id: NodeId,
    /// Display name of the node.
    pub name: String,
    /// Label of the node.
    pub label: String,
    /// Property values at the snapshot time.
    pub properties: BTreeMap<String, Value>,
}

/// An edge of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEdge {
    /// Id of the edge in the temporal graph.
    pub id: EdgeId,
    /// Display name of the edge.
    pub name: String,
    /// Label of the edge.
    pub label: String,
    /// Source node.
    pub src: NodeId,
    /// Target node.
    pub tgt: NodeId,
    /// Property values at the snapshot time.
    pub properties: BTreeMap<String, Value>,
}

/// A conventional property graph: the state of a temporal property graph at one time
/// point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The time point this snapshot corresponds to.
    pub time: Time,
    /// The nodes existing at that time.
    pub nodes: Vec<SnapshotNode>,
    /// The edges existing at that time.
    pub edges: Vec<SnapshotEdge>,
}

impl Snapshot {
    /// Looks up a snapshot node by its temporal-graph id.
    pub fn node(&self, id: NodeId) -> Option<&SnapshotNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Looks up a snapshot edge by its temporal-graph id.
    pub fn edge(&self, id: EdgeId) -> Option<&SnapshotEdge> {
        self.edges.iter().find(|e| e.id == id)
    }

    /// True if the snapshot contains the object.
    pub fn contains(&self, object: Object) -> bool {
        match object {
            Object::Node(n) => self.node(n).is_some(),
            Object::Edge(e) => self.edge(e).is_some(),
        }
    }
}

impl Tpg {
    /// Extracts the snapshot of the graph at time `t`.
    pub fn snapshot(&self, t: Time) -> Snapshot {
        let mut snapshot = Snapshot { time: t, ..Default::default() };
        for n in self.node_ids() {
            let o = Object::Node(n);
            if !self.exists(o, t) {
                continue;
            }
            let properties = self
                .property_names(o)
                .map(str::to_owned)
                .collect::<Vec<_>>()
                .into_iter()
                .filter_map(|p| self.prop_value(o, &p, t).cloned().map(|v| (p, v)))
                .collect();
            snapshot.nodes.push(SnapshotNode {
                id: n,
                name: self.name(o).to_owned(),
                label: self.label(o).to_owned(),
                properties,
            });
        }
        for e in self.edge_ids() {
            let o = Object::Edge(e);
            if !self.exists(o, t) {
                continue;
            }
            let properties = self
                .property_names(o)
                .map(str::to_owned)
                .collect::<Vec<_>>()
                .into_iter()
                .filter_map(|p| self.prop_value(o, &p, t).cloned().map(|v| (p, v)))
                .collect();
            snapshot.edges.push(SnapshotEdge {
                id: e,
                name: self.name(o).to_owned(),
                label: self.label(o).to_owned(),
                src: self.src(e),
                tgt: self.tgt(e),
                properties,
            });
        }
        snapshot
    }
}

impl Itpg {
    /// Extracts the snapshot of the graph at time `t`.
    pub fn snapshot(&self, t: Time) -> Snapshot {
        let mut snapshot = Snapshot { time: t, ..Default::default() };
        for n in self.node_ids() {
            let o = Object::Node(n);
            if !self.exists_at(o, t) {
                continue;
            }
            let properties = self
                .properties(o)
                .filter_map(|(p, h)| h.value_at(t).cloned().map(|v| (p.to_owned(), v)))
                .collect();
            snapshot.nodes.push(SnapshotNode {
                id: n,
                name: self.name(o).to_owned(),
                label: self.label(o).to_owned(),
                properties,
            });
        }
        for e in self.edge_ids() {
            let o = Object::Edge(e);
            if !self.exists_at(o, t) {
                continue;
            }
            let properties = self
                .properties(o)
                .filter_map(|(p, h)| h.value_at(t).cloned().map(|v| (p.to_owned(), v)))
                .collect();
            snapshot.edges.push(SnapshotEdge {
                id: e,
                name: self.name(o).to_owned(),
                label: self.label(o).to_owned(),
                src: self.src(e),
                tgt: self.tgt(e),
                properties,
            });
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::itpg::ItpgBuilder;

    fn sample() -> Itpg {
        let mut b = ItpgBuilder::new();
        let p = b.add_node("p", "Person").unwrap();
        let r = b.add_node("r", "Room").unwrap();
        let e = b.add_edge("e", "visits", p, r).unwrap();
        b.add_existence(p, Interval::of(1, 9)).unwrap();
        b.add_existence(r, Interval::of(3, 8)).unwrap();
        b.add_existence(e, Interval::of(5, 6)).unwrap();
        b.set_property(p, "risk", "low", Interval::of(1, 4)).unwrap();
        b.set_property(p, "risk", "high", Interval::of(5, 9)).unwrap();
        b.domain(Interval::of(1, 11)).build().unwrap()
    }

    #[test]
    fn snapshot_contains_only_existing_objects() {
        let g = sample();
        let s2 = g.snapshot(2);
        assert_eq!(s2.nodes.len(), 1);
        assert!(s2.edges.is_empty());
        assert!(s2.contains(Object::Node(NodeId(0))));
        assert!(!s2.contains(Object::Node(NodeId(1))));

        let s5 = g.snapshot(5);
        assert_eq!(s5.nodes.len(), 2);
        assert_eq!(s5.edges.len(), 1);
        assert_eq!(s5.edge(EdgeId(0)).unwrap().src, NodeId(0));

        let s10 = g.snapshot(10);
        assert!(s10.nodes.is_empty() && s10.edges.is_empty());
    }

    #[test]
    fn snapshot_carries_the_property_values_of_that_time() {
        let g = sample();
        assert_eq!(
            g.snapshot(4).node(NodeId(0)).unwrap().properties.get("risk"),
            Some(&Value::str("low"))
        );
        assert_eq!(
            g.snapshot(5).node(NodeId(0)).unwrap().properties.get("risk"),
            Some(&Value::str("high"))
        );
    }

    #[test]
    fn tpg_and_itpg_snapshots_agree() {
        let g = sample();
        let tpg = g.to_tpg();
        for t in g.domain().points() {
            assert_eq!(g.snapshot(t), tpg.snapshot(t), "snapshots differ at time {t}");
        }
    }
}
