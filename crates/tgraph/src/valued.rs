//! Coalesced families of *valued* intervals (the `vFC` sets of Appendix A), used to
//! represent the history of a property of a node or an edge in an ITPG.
//!
//! A family `{(v1, [a1,b1]), …, (vn, [an,bn])}` is coalesced when consecutive entries
//! are either strictly separated in time, or adjacent with *different* values; two
//! adjacent intervals carrying the same value must be stored as one interval.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::interval::{Interval, Time};
use crate::interval_set::IntervalSet;
use crate::value::Value;

/// The value history of one property: a coalesced, time-ordered list of
/// `(value, interval)` pairs with non-overlapping intervals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValuedIntervals {
    entries: Vec<(Value, Interval)>,
}

impl ValuedIntervals {
    /// An empty history.
    pub fn empty() -> Self {
        ValuedIntervals { entries: Vec::new() }
    }

    /// Builds a coalesced history from arbitrary `(value, interval)` pairs.
    ///
    /// Overlapping intervals with conflicting values are resolved in favour of the
    /// pair appearing later in the input (last-write-wins), which matches the
    /// behaviour of the graph builders where later assignments overwrite earlier ones.
    pub fn from_entries<I: IntoIterator<Item = (Value, Interval)>>(entries: I) -> Self {
        let mut out = ValuedIntervals::empty();
        for (value, interval) in entries {
            out.assign(value, interval);
        }
        out
    }

    /// True if no value is recorded at any time point.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The number of `(value, interval)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The entries in increasing time order.
    pub fn entries(&self) -> &[(Value, Interval)] {
        &self.entries
    }

    /// The value of the property at time `t`, if any.
    pub fn value_at(&self, t: Time) -> Option<&Value> {
        let idx = self
            .entries
            .binary_search_by(|(_, iv)| {
                if iv.end() < t {
                    std::cmp::Ordering::Less
                } else if iv.start() > t {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok()?;
        Some(&self.entries[idx].0)
    }

    /// The set of time points at which the property takes the given value.
    pub fn support_of(&self, value: &Value) -> IntervalSet {
        IntervalSet::from_intervals(
            self.entries.iter().filter(|(v, _)| v == value).map(|(_, iv)| *iv),
        )
    }

    /// The set of time points at which the property has any value.
    pub fn support(&self) -> IntervalSet {
        IntervalSet::from_intervals(self.entries.iter().map(|(_, iv)| *iv))
    }

    /// Assigns `value` to the property over `interval`, overwriting any previous
    /// values in that range, and re-establishes the coalescing invariant.
    pub fn assign(&mut self, value: Value, interval: Interval) {
        // Collect the surviving fragments of existing entries plus the new one, then
        // rebuild.  Histories are short (a handful of changes per object), so the
        // simplicity of rebuilding wins over a clever in-place splice.
        let mut pieces: Vec<(Value, Interval)> = Vec::with_capacity(self.entries.len() + 1);
        for (v, iv) in self.entries.drain(..) {
            if let Some(overlap) = iv.intersect(&interval) {
                // Keep the part of the old entry before the overwritten range.
                if iv.start() < overlap.start() {
                    pieces.push((v.clone(), Interval::of(iv.start(), overlap.start() - 1)));
                }
                // Keep the part after.
                if iv.end() > overlap.end() {
                    pieces.push((v.clone(), Interval::of(overlap.end() + 1, iv.end())));
                }
            } else {
                pieces.push((v, iv));
            }
        }
        pieces.push((value, interval));
        pieces.sort_by_key(|(_, iv)| iv.start());
        // Coalesce adjacent entries with equal values.
        let mut out: Vec<(Value, Interval)> = Vec::with_capacity(pieces.len());
        for (v, iv) in pieces {
            match out.last_mut() {
                Some((lv, liv)) if *lv == v && (liv.overlaps_or_meets(&iv)) => {
                    *liv = liv.union_adjacent(&iv).expect("adjacent intervals coalesce");
                }
                _ => out.push((v, iv)),
            }
        }
        self.entries = out;
    }

    /// Assigns `value` at the single time point `t`.
    pub fn assign_point(&mut self, value: Value, t: Time) {
        self.assign(value, Interval::point(t));
    }

    /// Checks the coalescing invariant of Appendix A: consecutive entries are either
    /// *before* each other, or *meet* with different values.
    pub fn is_coalesced(&self) -> bool {
        self.entries.windows(2).all(|w| {
            let (v1, i1) = &w[0];
            let (v2, i2) = &w[1];
            i1.before(i2) || (i1.meets(i2) && v1 != v2)
        })
    }

    /// Iterates over `(time, value)` pairs for every time point with a value.
    pub fn points(&self) -> impl Iterator<Item = (Time, &Value)> + '_ {
        self.entries.iter().flat_map(|(v, iv)| iv.points().map(move |t| (t, v)))
    }
}

impl fmt::Display for ValuedIntervals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, iv)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({v}, {iv})")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Value, Interval)> for ValuedIntervals {
    fn from_iter<I: IntoIterator<Item = (Value, Interval)>>(iter: I) -> Self {
        ValuedIntervals::from_entries(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: Time, b: Time) -> Interval {
        Interval::of(a, b)
    }

    #[test]
    fn assign_and_lookup() {
        // risk history of node n2 from Figure 1: low on [1,4], high on [5,9].
        let mut h = ValuedIntervals::empty();
        h.assign(Value::str("low"), iv(1, 4));
        h.assign(Value::str("high"), iv(5, 9));
        assert_eq!(h.value_at(1), Some(&Value::str("low")));
        assert_eq!(h.value_at(4), Some(&Value::str("low")));
        assert_eq!(h.value_at(5), Some(&Value::str("high")));
        assert_eq!(h.value_at(9), Some(&Value::str("high")));
        assert_eq!(h.value_at(10), None);
        assert_eq!(h.value_at(0), None);
        assert!(h.is_coalesced());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn adjacent_equal_values_coalesce() {
        // {(v,[1,2]),(v,[3,4])} is *not* coalesced per Appendix A; assigning both
        // must produce {(v,[1,4])}.
        let mut h = ValuedIntervals::empty();
        h.assign(Value::str("v"), iv(1, 2));
        h.assign(Value::str("v"), iv(3, 4));
        assert_eq!(h.entries(), &[(Value::str("v"), iv(1, 4))]);
        assert!(h.is_coalesced());
    }

    #[test]
    fn adjacent_different_values_stay_separate() {
        let h = ValuedIntervals::from_entries([
            (Value::str("v"), iv(1, 2)),
            (Value::str("w"), iv(3, 4)),
        ]);
        assert_eq!(h.len(), 2);
        assert!(h.is_coalesced());
    }

    #[test]
    fn overwrite_splits_previous_entries() {
        let mut h = ValuedIntervals::empty();
        h.assign(Value::str("a"), iv(1, 10));
        h.assign(Value::str("b"), iv(4, 6));
        assert_eq!(
            h.entries(),
            &[
                (Value::str("a"), iv(1, 3)),
                (Value::str("b"), iv(4, 6)),
                (Value::str("a"), iv(7, 10)),
            ]
        );
        assert!(h.is_coalesced());
        // Overwriting back with 'a' restores a single coalesced run.
        h.assign(Value::str("a"), iv(4, 6));
        assert_eq!(h.entries(), &[(Value::str("a"), iv(1, 10))]);
    }

    #[test]
    fn support_sets() {
        let h = ValuedIntervals::from_entries([
            (Value::str("low"), iv(1, 4)),
            (Value::str("high"), iv(5, 9)),
            (Value::str("low"), iv(12, 13)),
        ]);
        assert_eq!(h.support().intervals(), &[iv(1, 9), iv(12, 13)]);
        assert_eq!(h.support_of(&Value::str("low")).intervals(), &[iv(1, 4), iv(12, 13)]);
        assert_eq!(h.support_of(&Value::str("high")).intervals(), &[iv(5, 9)]);
        assert!(h.support_of(&Value::str("none")).is_empty());
    }

    #[test]
    fn point_iteration() {
        let mut h = ValuedIntervals::empty();
        h.assign_point(Value::Int(1), 3);
        h.assign_point(Value::Int(2), 4);
        let pts: Vec<(Time, i64)> = h.points().map(|(t, v)| (t, v.as_int().unwrap())).collect();
        assert_eq!(pts, vec![(3, 1), (4, 2)]);
    }
}
