//! # tgraph — temporal property graphs
//!
//! The data model underlying *Temporal Regular Path Queries* (ICDE 2022): temporal
//! property graphs in both the point-timestamped representation ([`Tpg`],
//! Definition III.1) and the succinct interval-timestamped representation ([`Itpg`],
//! Appendix A), together with the interval machinery they are built from
//! ([`Interval`], [`IntervalSet`], [`ValuedIntervals`]) and conversions between the
//! two representations.
//!
//! ```
//! use tgraph::{Interval, ItpgBuilder, Object};
//!
//! let mut b = ItpgBuilder::new();
//! let ann = b.add_node("n1", "Person").unwrap();
//! let bob = b.add_node("n2", "Person").unwrap();
//! let e1 = b.add_edge("e1", "meets", ann, bob).unwrap();
//! b.add_existence(ann, Interval::of(1, 9)).unwrap();
//! b.add_existence(bob, Interval::of(1, 9)).unwrap();
//! b.add_existence(e1, Interval::of(3, 3)).unwrap();
//! b.set_property(bob, "risk", "low", Interval::of(1, 4)).unwrap();
//! b.set_property(bob, "risk", "high", Interval::of(5, 9)).unwrap();
//! let graph = b.build().unwrap();
//!
//! assert!(graph.exists_at(Object::Edge(e1), 3));
//! assert_eq!(graph.prop_value_at(Object::Node(bob), "risk", 7).unwrap().as_str(), Some("high"));
//! // The point-based expansion describes the same graph.
//! let tpg = graph.to_tpg();
//! assert!(tgraph::convert::equivalent(&tpg, &graph));
//! ```

#![warn(missing_docs)]

pub mod convert;
pub mod delta;
pub mod error;
pub mod ids;
pub mod interval;
pub mod interval_set;
pub mod itpg;
pub mod snapshot;
pub mod tpg;
pub mod value;
pub mod valued;

pub use delta::{AppliedBatch, Batch, Mutation};
pub use error::{GraphError, Result};
pub use ids::{EdgeId, NodeId, Object, TemporalObject};
pub use interval::{Interval, Time};
pub use interval_set::IntervalSet;
pub use itpg::{Itpg, ItpgBuilder};
pub use snapshot::{Snapshot, SnapshotEdge, SnapshotNode};
pub use tpg::{Tpg, TpgBuilder};
pub use value::Value;
pub use valued::ValuedIntervals;
