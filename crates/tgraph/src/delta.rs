//! The append-only delta log of the live-graph subsystem: [`Mutation`]s grouped
//! into epoched [`Batch`]es and applied incrementally onto an existing [`Itpg`].
//!
//! A live temporal graph is a sequence of batches, each stamped with a strictly
//! increasing epoch by its producer.  Every mutation is *additive at the graph
//! level* — objects are created, existence grows, property values are asserted
//! over intervals — which is what makes batch application cheap to validate: the
//! well-formedness conditions of Definition A.1 only need to be re-checked for
//! the objects a batch touches (existence never shrinks, so untouched objects
//! cannot become invalid).
//!
//! Mutations reference objects by their display *name* rather than by id, so a
//! batch is meaningful independently of the application order of earlier
//! mutations: within one batch, all [`Mutation::AddNode`]s are applied first (in
//! name order), then all [`Mutation::AddEdge`]s (in name order), then existence
//! extensions and property assignments.  Shuffling the mutations of a batch
//! therefore does not change the resulting graph, with one documented exception:
//! two [`Mutation::SetProperty`]s of the *same* property of the *same* object
//! with *overlapping* intervals are applied in mutation order (the later one
//! wins on the overlap).
//!
//! Application is transactional: [`Itpg::apply_batch`] validates the whole batch
//! against the graph *before* mutating anything, so a failed application leaves
//! the graph untouched.

use std::collections::BTreeMap;

use crate::error::{GraphError, Result};
use crate::ids::{NodeId, Object};
use crate::interval::Interval;
use crate::interval_set::IntervalSet;
use crate::itpg::{IntervalObjectData, Itpg};
use crate::value::Value;

/// One mutation of a live temporal graph.  Objects are referenced by display
/// name (e.g. `"n7"`), which stays stable across batches.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Creates a node with the given display name and label (and, initially, an
    /// empty existence set).
    AddNode {
        /// Display name of the new node; must be globally unique.
        name: String,
        /// Label of the new node.
        label: String,
    },
    /// Creates an edge with the given display name, label and endpoint names.
    AddEdge {
        /// Display name of the new edge; must be globally unique.
        name: String,
        /// Label of the new edge.
        label: String,
        /// Display name of the source node (may be created in the same batch).
        src: String,
        /// Display name of the target node (may be created in the same batch).
        tgt: String,
    },
    /// Declares that an object exists during `interval`, in addition to any
    /// previously declared intervals (existence only ever grows).
    AddExistence {
        /// Display name of the node or edge.
        object: String,
        /// The interval to add to the object's existence set.
        interval: Interval,
    },
    /// Assigns a value to a property of an object over an interval.  The
    /// interval must lie within the object's existence *after* this batch.
    SetProperty {
        /// Display name of the node or edge.
        object: String,
        /// Property name.
        prop: String,
        /// The value holding over `interval`.
        value: Value,
        /// The validity interval of the assignment.
        interval: Interval,
    },
}

/// One epoch of the delta log: a set of mutations applied atomically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    /// The epoch stamp; consumers such as `live::LiveGraph` require epochs to be
    /// strictly increasing across batches.
    pub epoch: u64,
    /// The mutations of the batch (see the module docs for the application
    /// order within a batch).
    pub mutations: Vec<Mutation>,
}

impl Batch {
    /// Creates an empty batch with the given epoch stamp.
    pub fn new(epoch: u64) -> Self {
        Batch { epoch, mutations: Vec::new() }
    }

    /// True if the batch carries no mutations.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }

    /// The number of mutations in the batch.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// Appends an [`Mutation::AddNode`].
    pub fn add_node(&mut self, name: impl Into<String>, label: impl Into<String>) -> &mut Self {
        self.mutations.push(Mutation::AddNode { name: name.into(), label: label.into() });
        self
    }

    /// Appends an [`Mutation::AddEdge`].
    pub fn add_edge(
        &mut self,
        name: impl Into<String>,
        label: impl Into<String>,
        src: impl Into<String>,
        tgt: impl Into<String>,
    ) -> &mut Self {
        self.mutations.push(Mutation::AddEdge {
            name: name.into(),
            label: label.into(),
            src: src.into(),
            tgt: tgt.into(),
        });
        self
    }

    /// Appends an [`Mutation::AddExistence`].
    pub fn add_existence(&mut self, object: impl Into<String>, interval: Interval) -> &mut Self {
        self.mutations.push(Mutation::AddExistence { object: object.into(), interval });
        self
    }

    /// Appends a [`Mutation::SetProperty`].
    pub fn set_property(
        &mut self,
        object: impl Into<String>,
        prop: impl Into<String>,
        value: impl Into<Value>,
        interval: Interval,
    ) -> &mut Self {
        self.mutations.push(Mutation::SetProperty {
            object: object.into(),
            prop: prop.into(),
            value: value.into(),
            interval,
        });
        self
    }
}

/// The outcome of applying one batch: which objects were created and which were
/// touched (created, or had their existence or properties mutated).  The touched
/// set is exactly what incremental consumers (`GraphRelations::apply_delta`,
/// live query maintenance) need to know.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedBatch {
    /// The epoch stamp of the applied batch.
    pub epoch: u64,
    /// Objects created by the batch, in id order.
    pub created: Vec<Object>,
    /// Objects whose state changed (a superset of `created`), sorted and
    /// deduplicated.
    pub touched: Vec<Object>,
}

impl Itpg {
    /// An empty interval-timestamped graph over the given temporal domain —
    /// the epoch-zero state of a live graph.
    pub fn empty(domain: Interval) -> Self {
        Itpg {
            domain,
            nodes: Vec::new(),
            edges: Vec::new(),
            endpoints: Vec::new(),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
            names: BTreeMap::new(),
        }
    }

    /// Applies a batch of mutations to this graph.
    ///
    /// The whole batch is validated first — unknown or duplicate names, edges
    /// existing outside their (prospective) endpoint existence, properties
    /// asserted outside the (prospective) object existence — and only then
    /// applied, so an `Err` leaves the graph unmodified.  The temporal domain
    /// grows automatically to the hull of every mentioned interval.
    pub fn apply_batch(&mut self, batch: &Batch) -> Result<AppliedBatch> {
        // ---- Phase 1: name resolution for objects created by this batch. ----
        // New nodes and edges are registered in name order, so the id
        // assignment is independent of the mutation order within the batch.
        let mut new_nodes: Vec<(&str, &str)> = Vec::new();
        let mut new_edges: Vec<(&str, &str, &str, &str)> = Vec::new();
        for m in &batch.mutations {
            match m {
                Mutation::AddNode { name, label } => new_nodes.push((name, label)),
                Mutation::AddEdge { name, label, src, tgt } => {
                    new_edges.push((name, label, src, tgt));
                }
                _ => {}
            }
        }
        new_nodes.sort_by_key(|(name, _)| *name);
        new_edges.sort_by_key(|(name, ..)| *name);

        let mut created_names: BTreeMap<&str, Object> = BTreeMap::new();
        for (index, (name, _)) in new_nodes.iter().enumerate() {
            let object = Object::Node(NodeId((self.nodes.len() + index) as u32));
            if self.names.contains_key(*name) || created_names.insert(name, object).is_some() {
                return Err(GraphError::DuplicateName((*name).to_owned()));
            }
        }
        for (index, (name, ..)) in new_edges.iter().enumerate() {
            let object = Object::Edge(crate::ids::EdgeId((self.edges.len() + index) as u32));
            if self.names.contains_key(*name) || created_names.insert(name, object).is_some() {
                return Err(GraphError::DuplicateName((*name).to_owned()));
            }
        }
        let resolve = |name: &str| -> Result<Object> {
            self.names
                .get(name)
                .or_else(|| created_names.get(name))
                .copied()
                .ok_or_else(|| GraphError::UnknownName(name.to_owned()))
        };
        let resolve_node = |name: &str| -> Result<NodeId> {
            resolve(name)?.as_node().ok_or_else(|| GraphError::UnknownName(name.to_owned()))
        };

        // ---- Phase 2: validate the prospective state without mutating. ----
        // Existence and property mutations are resolved here (in mutation
        // order) so phase 3 can apply them without re-borrowing the name maps.
        let mut endpoints_of: BTreeMap<Object, (NodeId, NodeId)> = BTreeMap::new();
        for (name, _, src, tgt) in &new_edges {
            endpoints_of.insert(created_names[*name], (resolve_node(src)?, resolve_node(tgt)?));
        }
        let mut existence_ops: Vec<(Object, Interval)> = Vec::new();
        let mut prop_ops: Vec<(Object, &str, &Value, Interval)> = Vec::new();
        for m in &batch.mutations {
            match m {
                Mutation::AddExistence { object, interval } => {
                    existence_ops.push((resolve(object)?, *interval));
                }
                Mutation::SetProperty { object, prop, value, interval } => {
                    prop_ops.push((resolve(object)?, prop, value, *interval));
                }
                Mutation::AddNode { .. } | Mutation::AddEdge { .. } => {}
            }
        }
        let mut existence_added: BTreeMap<Object, IntervalSet> = BTreeMap::new();
        for &(object, interval) in &existence_ops {
            existence_added.entry(object).or_default().insert(interval);
        }
        let props_added: Vec<(Object, &str, Interval)> =
            prop_ops.iter().map(|&(o, p, _, iv)| (o, p, iv)).collect();
        let current_existence = |object: Object| -> IntervalSet {
            match object {
                Object::Node(n) if n.index() < self.nodes.len() => {
                    self.nodes[n.index()].existence.clone()
                }
                Object::Edge(e) if e.index() < self.edges.len() => {
                    self.edges[e.index()].existence.clone()
                }
                _ => IntervalSet::empty(),
            }
        };
        let prospective = |object: Object| -> IntervalSet {
            match existence_added.get(&object) {
                Some(added) => current_existence(object).union(added),
                None => current_existence(object),
            }
        };
        for (&edge, added) in existence_added.iter().filter(|(o, _)| o.is_edge()) {
            let e = edge.as_edge().expect("filtered to edges");
            let (src, tgt) = match endpoints_of.get(&edge) {
                Some(&pair) => pair,
                None => self.endpoints[e.index()],
            };
            let edge_existence = prospective(edge);
            for endpoint in [src, tgt] {
                let node_existence = prospective(Object::Node(endpoint));
                if !edge_existence.contained_in(&node_existence) {
                    let time = edge_existence
                        .difference(&node_existence)
                        .min()
                        .unwrap_or_else(|| added.min().unwrap_or(self.domain.start()));
                    return Err(GraphError::DanglingEdge { edge: e, endpoint, time });
                }
            }
        }
        for &(object, prop, interval) in &props_added {
            let existence = prospective(object);
            let support = IntervalSet::from_interval(interval);
            if !support.contained_in(&existence) {
                let time = support.difference(&existence).min().unwrap_or(interval.start());
                return Err(GraphError::PropertyWithoutExistence {
                    object,
                    property: prop.to_owned(),
                    time,
                });
            }
        }

        // ---- Phase 3: apply (infallible from here on). ----
        let mut created: Vec<Object> = Vec::new();
        for (name, label) in &new_nodes {
            let object = created_names[*name];
            created.push(object);
            self.names.insert((*name).to_owned(), object);
            self.nodes.push(IntervalObjectData {
                name: (*name).to_owned(),
                label: (*label).to_owned(),
                existence: IntervalSet::empty(),
                props: BTreeMap::new(),
            });
            self.out_edges.push(Vec::new());
            self.in_edges.push(Vec::new());
        }
        for (name, label, ..) in &new_edges {
            let object = created_names[*name];
            let edge = object.as_edge().expect("created edge names resolve to edges");
            let (src, tgt) = endpoints_of[&object];
            created.push(object);
            self.names.insert((*name).to_owned(), object);
            self.edges.push(IntervalObjectData {
                name: (*name).to_owned(),
                label: (*label).to_owned(),
                existence: IntervalSet::empty(),
                props: BTreeMap::new(),
            });
            self.endpoints.push((src, tgt));
            self.out_edges[src.index()].push(edge);
            self.in_edges[tgt.index()].push(edge);
        }
        let mut touched: Vec<Object> = created.clone();
        for &(object, interval) in &existence_ops {
            self.domain = self.domain.hull(&interval);
            self.data_mut(object).existence.insert(interval);
            touched.push(object);
        }
        for &(object, prop, value, interval) in &prop_ops {
            self.domain = self.domain.hull(&interval);
            self.data_mut(object)
                .props
                .entry(prop.to_owned())
                .or_default()
                .assign(value.clone(), interval);
            touched.push(object);
        }
        touched.sort_unstable();
        touched.dedup();
        Ok(AppliedBatch { epoch: batch.epoch, created, touched })
    }

    fn data_mut(&mut self, object: Object) -> &mut IntervalObjectData {
        match object {
            Object::Node(n) => &mut self.nodes[n.index()],
            Object::Edge(e) => &mut self.edges[e.index()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itpg::ItpgBuilder;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    /// Rebuilds the `small_graph` of the itpg module tests batch by batch.
    fn batches() -> Vec<Batch> {
        let mut b1 = Batch::new(1);
        b1.add_node("n2", "Person")
            .add_node("n3", "Person")
            .add_existence("n2", iv(1, 4))
            .add_existence("n3", iv(1, 7))
            .set_property("n2", "risk", "low", iv(1, 4))
            .set_property("n2", "name", "Bob", iv(1, 4));
        let mut b2 = Batch::new(2);
        b2.add_edge("e2", "meets", "n2", "n3").add_existence("e2", iv(1, 2));
        let mut b3 = Batch::new(5);
        b3.add_existence("n2", iv(5, 9)).set_property("n2", "risk", "high", iv(5, 9)).set_property(
            "n2",
            "name",
            "Bob",
            iv(5, 9),
        );
        vec![b1, b2, b3]
    }

    #[test]
    fn batches_rebuild_the_bulk_graph() {
        let mut live = Itpg::empty(iv(1, 11));
        for batch in batches() {
            live.apply_batch(&batch).unwrap();
        }
        live.validate().unwrap();

        let mut b = ItpgBuilder::new();
        let n2 = b.add_node("n2", "Person").unwrap();
        let n3 = b.add_node("n3", "Person").unwrap();
        let e2 = b.add_edge("e2", "meets", n2, n3).unwrap();
        b.add_existence(n2, iv(1, 9)).unwrap();
        b.add_existence(n3, iv(1, 7)).unwrap();
        b.add_existence(e2, iv(1, 2)).unwrap();
        b.set_property(n2, "risk", "low", iv(1, 4)).unwrap();
        b.set_property(n2, "risk", "high", iv(5, 9)).unwrap();
        b.set_property(n2, "name", "Bob", iv(1, 9)).unwrap();
        let bulk = b.domain(iv(1, 11)).build().unwrap();
        assert_eq!(live, bulk);
    }

    #[test]
    fn applied_batches_report_created_and_touched_objects() {
        let mut live = Itpg::empty(iv(1, 11));
        let all = batches();
        let first = live.apply_batch(&all[0]).unwrap();
        assert_eq!(first.epoch, 1);
        assert_eq!(first.created.len(), 2);
        assert_eq!(first.touched, first.created);
        let second = live.apply_batch(&all[1]).unwrap();
        assert_eq!(second.created, vec![Object::Edge(crate::ids::EdgeId(0))]);
        let third = live.apply_batch(&all[2]).unwrap();
        assert!(third.created.is_empty());
        assert_eq!(third.touched, vec![Object::Node(NodeId(0))]);
        // Existence extensions coalesce: n2 is now one maximal interval.
        assert_eq!(live.existence(Object::Node(NodeId(0))).intervals(), &[iv(1, 9)]);
    }

    #[test]
    fn shuffled_batches_apply_identically() {
        // Node/edge creation order within a batch does not affect id assignment
        // (names are sorted first), and existence insertion is commutative.
        let mut forward = Batch::new(1);
        forward
            .add_node("a", "Person")
            .add_node("b", "Person")
            .add_edge("e", "meets", "a", "b")
            .add_existence("a", iv(1, 5))
            .add_existence("b", iv(1, 5))
            .add_existence("e", iv(2, 3));
        let mut reversed = Batch::new(1);
        reversed.mutations = forward.mutations.iter().rev().cloned().collect();
        let mut g1 = Itpg::empty(iv(1, 5));
        let mut g2 = Itpg::empty(iv(1, 5));
        g1.apply_batch(&forward).unwrap();
        g2.apply_batch(&reversed).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn invalid_batches_leave_the_graph_untouched() {
        let mut g = Itpg::empty(iv(1, 10));
        let mut setup = Batch::new(1);
        setup.add_node("a", "Person").add_existence("a", iv(1, 3));
        g.apply_batch(&setup).unwrap();
        let before = g.clone();

        // Unknown name.
        let mut bad = Batch::new(2);
        bad.add_existence("a", iv(4, 6)).add_existence("ghost", iv(1, 1));
        assert!(matches!(g.apply_batch(&bad), Err(GraphError::UnknownName(_))));
        assert_eq!(g, before);

        // Duplicate name.
        let mut dup = Batch::new(2);
        dup.add_node("a", "Person");
        assert!(matches!(g.apply_batch(&dup), Err(GraphError::DuplicateName(_))));
        assert_eq!(g, before);

        // Edge existence outside its endpoint's (prospective) existence.
        let mut dangling = Batch::new(2);
        dangling
            .add_node("b", "Person")
            .add_existence("b", iv(1, 9))
            .add_edge("e", "meets", "a", "b")
            .add_existence("e", iv(2, 5));
        assert!(matches!(g.apply_batch(&dangling), Err(GraphError::DanglingEdge { .. })));
        assert_eq!(g, before);

        // Property outside the object's (prospective) existence.
        let mut floating = Batch::new(2);
        floating.set_property("a", "risk", "low", iv(2, 6));
        assert!(matches!(
            g.apply_batch(&floating),
            Err(GraphError::PropertyWithoutExistence { .. })
        ));
        assert_eq!(g, before);

        // An edge to a name that is not a node.
        let mut not_node = Batch::new(2);
        not_node
            .add_node("c", "Person")
            .add_existence("c", iv(1, 3))
            .add_edge("e1", "meets", "a", "c")
            .add_existence("e1", iv(1, 2))
            .add_edge("e2", "meets", "a", "e1");
        assert!(matches!(g.apply_batch(&not_node), Err(GraphError::UnknownName(_))));
        assert_eq!(g, before);
    }

    #[test]
    fn the_domain_grows_to_cover_mentioned_intervals() {
        let mut g = Itpg::empty(iv(5, 5));
        let mut b = Batch::new(1);
        b.add_node("a", "Person").add_existence("a", iv(2, 9));
        g.apply_batch(&b).unwrap();
        assert_eq!(g.domain(), iv(2, 9));
        g.validate().unwrap();
    }

    #[test]
    fn within_batch_edges_to_new_nodes_validate_prospectively() {
        let mut g = Itpg::empty(iv(0, 10));
        let mut b = Batch::new(1);
        // The edge's endpoints and their existence arrive in the same batch.
        b.add_edge("e", "meets", "x", "y")
            .add_existence("e", iv(3, 4))
            .add_node("y", "Person")
            .add_node("x", "Person")
            .add_existence("x", iv(1, 5))
            .add_existence("y", iv(3, 8));
        let applied = g.apply_batch(&b).unwrap();
        assert_eq!(applied.created.len(), 3);
        g.validate().unwrap();
        assert_eq!(g.src(g.edge_by_name("e").unwrap()), g.node_by_name("x").unwrap());
    }
}
