//! Identifiers for nodes, edges and temporal objects.
//!
//! The paper treats nodes and edges symmetrically ("node-edge symmetry" design
//! principle), so most of the API works on [`Object`], which is either a node or an
//! edge.  A [`TemporalObject`] is a pair `(o, t)` of an object and a time point, the
//! unit over which `NavL[PC,NOI]` expressions are evaluated.

use serde::{Deserialize, Serialize};

use crate::interval::Time;

/// Identifier of a node within a temporal property graph.
///
/// Node ids are dense indices assigned in insertion order by the graph builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an edge within a temporal property graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node or an edge.  Nodes and edges are first-class citizens in the TRPQ language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Object {
    /// A node object.
    Node(NodeId),
    /// An edge object.
    Edge(EdgeId),
}

impl Object {
    /// True if this object is a node.
    #[inline]
    pub fn is_node(self) -> bool {
        matches!(self, Object::Node(_))
    }

    /// True if this object is an edge.
    #[inline]
    pub fn is_edge(self) -> bool {
        matches!(self, Object::Edge(_))
    }

    /// Returns the node id if this object is a node.
    #[inline]
    pub fn as_node(self) -> Option<NodeId> {
        match self {
            Object::Node(n) => Some(n),
            Object::Edge(_) => None,
        }
    }

    /// Returns the edge id if this object is an edge.
    #[inline]
    pub fn as_edge(self) -> Option<EdgeId> {
        match self {
            Object::Edge(e) => Some(e),
            Object::Node(_) => None,
        }
    }
}

impl From<NodeId> for Object {
    fn from(id: NodeId) -> Self {
        Object::Node(id)
    }
}

impl From<EdgeId> for Object {
    fn from(id: EdgeId) -> Self {
        Object::Edge(id)
    }
}

/// A temporal object `(o, t)`: an object paired with a time point.
///
/// Temporal objects are the elements navigated by TRPQs.  Note that a temporal object
/// does not need to *exist* (have `ξ(o, t) = true`) to be navigated through; existence
/// is checked explicitly with the `∃` test of the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TemporalObject {
    /// The underlying node or edge.
    pub object: Object,
    /// The time point.
    pub time: Time,
}

impl TemporalObject {
    /// Creates a new temporal object.
    #[inline]
    pub fn new(object: impl Into<Object>, time: Time) -> Self {
        TemporalObject { object: object.into(), time }
    }
}

impl From<(Object, Time)> for TemporalObject {
    fn from((object, time): (Object, Time)) -> Self {
        TemporalObject { object, time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_kind_predicates() {
        let n = Object::Node(NodeId(3));
        let e = Object::Edge(EdgeId(7));
        assert!(n.is_node() && !n.is_edge());
        assert!(e.is_edge() && !e.is_node());
        assert_eq!(n.as_node(), Some(NodeId(3)));
        assert_eq!(n.as_edge(), None);
        assert_eq!(e.as_edge(), Some(EdgeId(7)));
        assert_eq!(e.as_node(), None);
    }

    #[test]
    fn temporal_object_construction() {
        let to = TemporalObject::new(NodeId(1), 5);
        assert_eq!(to.object, Object::Node(NodeId(1)));
        assert_eq!(to.time, 5);
        let to2: TemporalObject = (Object::Edge(EdgeId(0)), 9).into();
        assert_eq!(to2.time, 9);
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(9));
        assert_eq!(NodeId(4).index(), 4);
        assert_eq!(EdgeId(11).index(), 11);
    }
}
