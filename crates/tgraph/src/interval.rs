//! Closed time intervals `[a, b]` over the natural numbers and the subset of Allen's
//! interval algebra used by the paper (Appendix A).
//!
//! An interval `[a, b]` with `a ≤ b` is a concise representation of the set of time
//! points `{ i | a ≤ i ≤ b }`.  Intervals are the basic building block of the
//! interval-timestamped representation of temporal property graphs (ITPGs) and of the
//! interval-based query engine of Section VI.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{GraphError, Result};

/// A time point.  The paper represents the universe of time points by the natural
/// numbers; the unit (seconds, 5-minute windows, …) is application specific.
pub type Time = u64;

/// A closed interval `[start, end]` of time points with `start ≤ end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Interval {
    start: Time,
    end: Time,
}

impl Interval {
    /// Creates a new interval, returning an error if `start > end`.
    pub fn new(start: Time, end: Time) -> Result<Self> {
        if start > end {
            Err(GraphError::InvalidInterval { start, end })
        } else {
            Ok(Interval { start, end })
        }
    }

    /// Creates a new interval, panicking if `start > end`.  Convenient for literals.
    #[track_caller]
    pub fn of(start: Time, end: Time) -> Self {
        Interval::new(start, end).expect("interval start must not exceed end")
    }

    /// Creates the singleton interval `[t, t]`.
    pub fn point(t: Time) -> Self {
        Interval { start: t, end: t }
    }

    /// The starting point of the interval.
    #[inline]
    pub fn start(&self) -> Time {
        self.start
    }

    /// The ending point of the interval (inclusive).
    #[inline]
    pub fn end(&self) -> Time {
        self.end
    }

    /// The number of time points contained in the interval.
    #[inline]
    pub fn num_points(&self) -> u64 {
        self.end - self.start + 1
    }

    /// True if the interval contains the time point `t`.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t <= self.end
    }

    /// True if the interval contains every point of `other`.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.during(self)
    }

    /// Allen relation *during* (reflexively): `self` occurs during `other` if
    /// `other.start ≤ self.start` and `self.end ≤ other.end`.
    #[inline]
    pub fn during(&self, other: &Interval) -> bool {
        other.start <= self.start && self.end <= other.end
    }

    /// Allen relation *meets* as used by the paper: `[a1,b1]` meets `[a2,b2]` if
    /// `b1 + 1 = a2`, i.e. the second interval starts exactly one time unit after the
    /// first ends (the two are temporally adjacent).
    #[inline]
    pub fn meets(&self, other: &Interval) -> bool {
        self.end + 1 == other.start
    }

    /// Allen relation *before*: `[a1,b1]` is before `[a2,b2]` if `b1 + 1 < a2`, i.e.
    /// there is at least one time point strictly between the two intervals.
    #[inline]
    pub fn before(&self, other: &Interval) -> bool {
        self.end + 1 < other.start
    }

    /// True if the two intervals share at least one time point.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// True if the two intervals share a point or are temporally adjacent, i.e. their
    /// union is a single interval.
    #[inline]
    pub fn overlaps_or_meets(&self, other: &Interval) -> bool {
        self.overlaps(other) || self.meets(other) || other.meets(self)
    }

    /// The intersection of the two intervals, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start <= end {
            Some(Interval { start, end })
        } else {
            None
        }
    }

    /// The smallest interval containing both intervals (their convex hull).
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// The union of two intervals that overlap or meet, as a single interval.  Returns
    /// `None` if the union would not be a single interval.
    pub fn union_adjacent(&self, other: &Interval) -> Option<Interval> {
        if self.overlaps_or_meets(other) {
            Some(Interval { start: self.start.min(other.start), end: self.end.max(other.end) })
        } else {
            None
        }
    }

    /// Shifts the interval forward in time by `[lo, hi]` units, producing the interval
    /// of all time points reachable by `NEXT[lo, hi]` from any point of `self`,
    /// clamped to `domain`.  Returns `None` if the shifted interval falls entirely
    /// outside the domain.
    ///
    /// This is the interval-level reasoning used by Step 2 of the engine (Section VI)
    /// for temporal navigation with numeric occurrence indicators.
    pub fn shift_forward(&self, lo: u64, hi: u64, domain: &Interval) -> Option<Interval> {
        let start = self.start.checked_add(lo)?;
        let end = self.end.checked_add(hi)?;
        Interval { start, end }.intersect(domain)
    }

    /// Shifts the interval backward in time by `[lo, hi]` units (the `PREV[lo, hi]`
    /// operator), clamped to `domain`.  Returns `None` if the result is empty.
    pub fn shift_backward(&self, lo: u64, hi: u64, domain: &Interval) -> Option<Interval> {
        let start = self.start.saturating_sub(hi);
        if self.end < lo {
            return None;
        }
        let end = self.end - lo;
        if start > end {
            return None;
        }
        Interval { start, end }.intersect(domain)
    }

    /// Iterates over every time point of the interval in increasing order.
    pub fn points(&self) -> impl Iterator<Item = Time> + '_ {
        self.start..=self.end
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

impl From<(Time, Time)> for Interval {
    fn from((start, end): (Time, Time)) -> Self {
        Interval::of(start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::of(3, 8);
        assert_eq!(i.start(), 3);
        assert_eq!(i.end(), 8);
        assert_eq!(i.num_points(), 6);
        assert!(Interval::new(5, 4).is_err());
        assert_eq!(Interval::point(7), Interval::of(7, 7));
    }

    #[test]
    fn containment() {
        let i = Interval::of(2, 6);
        assert!(i.contains(2) && i.contains(6) && i.contains(4));
        assert!(!i.contains(1) && !i.contains(7));
        assert!(Interval::of(3, 5).during(&i));
        assert!(i.during(&i));
        assert!(!Interval::of(1, 5).during(&i));
        assert!(i.contains_interval(&Interval::of(2, 2)));
    }

    #[test]
    fn allen_relations() {
        // [1,4] meets [5,6]: adjacent.
        assert!(Interval::of(1, 4).meets(&Interval::of(5, 6)));
        assert!(!Interval::of(1, 4).meets(&Interval::of(6, 7)));
        // [1,2] is before [6,8].
        assert!(Interval::of(1, 2).before(&Interval::of(6, 8)));
        assert!(!Interval::of(1, 4).before(&Interval::of(5, 6)));
        assert!(Interval::of(1, 4).overlaps(&Interval::of(4, 9)));
        assert!(!Interval::of(1, 4).overlaps(&Interval::of(5, 9)));
        assert!(Interval::of(1, 4).overlaps_or_meets(&Interval::of(5, 9)));
    }

    #[test]
    fn intersection_and_union() {
        let a = Interval::of(1, 5);
        let b = Interval::of(4, 9);
        assert_eq!(a.intersect(&b), Some(Interval::of(4, 5)));
        assert_eq!(a.intersect(&Interval::of(7, 9)), None);
        assert_eq!(a.union_adjacent(&b), Some(Interval::of(1, 9)));
        assert_eq!(a.union_adjacent(&Interval::of(6, 9)), Some(Interval::of(1, 9)));
        assert_eq!(a.union_adjacent(&Interval::of(7, 9)), None);
        assert_eq!(a.hull(&Interval::of(7, 9)), Interval::of(1, 9));
    }

    #[test]
    fn temporal_shifts() {
        let dom = Interval::of(0, 20);
        let i = Interval::of(5, 7);
        // NEXT[0,3]: reachable times are [5, 10].
        assert_eq!(i.shift_forward(0, 3, &dom), Some(Interval::of(5, 10)));
        // PREV[2,4]: reachable times are [1, 5].
        assert_eq!(i.shift_backward(2, 4, &dom), Some(Interval::of(1, 5)));
        // Shift past the start of time is clamped.
        assert_eq!(Interval::of(1, 2).shift_backward(0, 10, &dom), Some(Interval::of(0, 2)));
        // Entirely before time 0.
        assert_eq!(Interval::of(1, 2).shift_backward(5, 10, &dom), None);
        // Clamped by the domain on the right.
        assert_eq!(Interval::of(18, 19).shift_forward(1, 5, &dom), Some(Interval::of(19, 20)));
        assert_eq!(Interval::of(25, 30).shift_forward(0, 0, &dom), None);
    }

    #[test]
    fn point_iteration() {
        let pts: Vec<Time> = Interval::of(3, 6).points().collect();
        assert_eq!(pts, vec![3, 4, 5, 6]);
    }
}
