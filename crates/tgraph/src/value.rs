//! Property values.
//!
//! Definition III.1 of the paper draws property values from an uninterpreted infinite
//! set `Val`.  For practical queries we distinguish strings, integers and booleans;
//! equality comparisons (the only operation the language performs on values) work
//! across the three variants and never coerce.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A property value attached to a node or an edge at one or more time points.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A string value, e.g. `'low'`, `'pos'`, `'park'`.
    Str(String),
    /// An integer value, e.g. a room number.
    Int(i64),
    /// A boolean value.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Returns the string content if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer content if this value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean content if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::str("low").as_str(), Some("low"));
        assert_eq!(Value::from(42i64).as_int(), Some(42));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("x").as_int(), None);
        assert_eq!(Value::from(1i64).as_str(), None);
    }

    #[test]
    fn equality_does_not_coerce() {
        assert_ne!(Value::str("1"), Value::Int(1));
        assert_ne!(Value::Bool(true), Value::Int(1));
        assert_eq!(Value::str("pos"), Value::from("pos"));
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::str("park").to_string(), "'park'");
        assert_eq!(Value::Int(750).to_string(), "750");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
