//! Error types for constructing and manipulating temporal property graphs.

use std::fmt;

use crate::ids::{EdgeId, NodeId, Object};
use crate::interval::Time;

/// Errors produced while building or validating temporal property graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An interval was constructed with `start > end`.
    InvalidInterval {
        /// Claimed starting point.
        start: Time,
        /// Claimed ending point.
        end: Time,
    },
    /// A node id was referenced that does not exist in the graph.
    UnknownNode(NodeId),
    /// An edge id was referenced that does not exist in the graph.
    UnknownEdge(EdgeId),
    /// A node or edge name was referenced that does not exist in the graph.
    UnknownName(String),
    /// A node or edge name was registered twice.
    DuplicateName(String),
    /// An object was declared to exist outside the temporal domain of the graph.
    OutsideDomain {
        /// The offending node or edge.
        object: Object,
        /// The time point outside the domain.
        time: Time,
    },
    /// An edge exists at a time point at which one of its endpoints does not exist
    /// (violates Definition III.1 of the paper).
    DanglingEdge {
        /// The offending edge.
        edge: EdgeId,
        /// The endpoint that does not exist.
        endpoint: NodeId,
        /// The time point at which the violation occurs.
        time: Time,
    },
    /// A property value is defined at a time point at which the object does not exist
    /// (violates Definition III.1 of the paper).
    PropertyWithoutExistence {
        /// The offending node or edge.
        object: Object,
        /// The property that has a value.
        property: String,
        /// The time point at which the violation occurs.
        time: Time,
    },
    /// The temporal domain is empty or inverted.
    EmptyDomain,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidInterval { start, end } => {
                write!(f, "invalid interval: start {start} is greater than end {end}")
            }
            GraphError::UnknownNode(id) => write!(f, "unknown node id {id:?}"),
            GraphError::UnknownEdge(id) => write!(f, "unknown edge id {id:?}"),
            GraphError::UnknownName(name) => write!(f, "unknown object name '{name}'"),
            GraphError::DuplicateName(name) => write!(f, "duplicate object name '{name}'"),
            GraphError::OutsideDomain { object, time } => {
                write!(f, "object {object:?} declared at time {time} outside the temporal domain")
            }
            GraphError::DanglingEdge { edge, endpoint, time } => write!(
                f,
                "edge {edge:?} exists at time {time} but its endpoint {endpoint:?} does not"
            ),
            GraphError::PropertyWithoutExistence { object, property, time } => write!(
                f,
                "property '{property}' of {object:?} has a value at time {time} but the object does not exist then"
            ),
            GraphError::EmptyDomain => write!(f, "temporal domain is empty"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
