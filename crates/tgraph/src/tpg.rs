//! The point-timestamped temporal property graph (TPG) of Definition III.1.
//!
//! A TPG is a tuple `G = (Ω, N, E, ρ, λ, ξ, σ)` where `Ω` is a finite set of
//! consecutive time points, `ρ` maps edges to their source and target nodes, `λ`
//! assigns labels, `ξ` tells whether an object exists at a time point, and `σ` gives
//! the value of a property of an object at a time point.  Two well-formedness
//! conditions are enforced: an edge may only exist at a time when both endpoints
//! exist, and a property may only have a value at a time when its object exists.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{GraphError, Result};
use crate::ids::{EdgeId, NodeId, Object, TemporalObject};
use crate::interval::{Interval, Time};
use crate::interval_set::IntervalSet;
use crate::value::Value;

/// Per-object payload shared by nodes and edges in the point-based representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct PointObjectData {
    pub(crate) name: String,
    pub(crate) label: String,
    /// Existence function ξ restricted to this object, stored as the set of time
    /// points at which the object exists.
    pub(crate) existence: IntervalSet,
    /// Property function σ restricted to this object: property name → time → value.
    pub(crate) props: BTreeMap<String, BTreeMap<Time, Value>>,
}

/// A point-timestamped temporal property graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tpg {
    pub(crate) domain: Interval,
    pub(crate) nodes: Vec<PointObjectData>,
    pub(crate) edges: Vec<PointObjectData>,
    pub(crate) endpoints: Vec<(NodeId, NodeId)>,
    pub(crate) out_edges: Vec<Vec<EdgeId>>,
    pub(crate) in_edges: Vec<Vec<EdgeId>>,
    pub(crate) names: BTreeMap<String, Object>,
}

impl Tpg {
    /// The temporal domain Ω of the graph.
    pub fn domain(&self) -> Interval {
        self.domain
    }

    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The number of distinct (existing or non-existing) temporal objects
    /// `M = |Ω| · (|N| + |E|)`, the quantity the complexity bounds are stated in.
    pub fn temporal_object_count(&self) -> u64 {
        self.domain.num_points() * (self.nodes.len() + self.edges.len()) as u64
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterates over all objects (nodes then edges).
    pub fn objects(&self) -> impl Iterator<Item = Object> + '_ {
        self.node_ids().map(Object::Node).chain(self.edge_ids().map(Object::Edge))
    }

    /// Iterates over all temporal objects `(o, t)` with `t ∈ Ω`.
    pub fn temporal_objects(&self) -> impl Iterator<Item = TemporalObject> + '_ {
        self.objects()
            .flat_map(move |o| self.domain.points().map(move |t| TemporalObject::new(o, t)))
    }

    fn data(&self, object: Object) -> &PointObjectData {
        match object {
            Object::Node(n) => &self.nodes[n.index()],
            Object::Edge(e) => &self.edges[e.index()],
        }
    }

    /// Returns the object registered under the given display name (e.g. `"n1"`).
    pub fn object_by_name(&self, name: &str) -> Option<Object> {
        self.names.get(name).copied()
    }

    /// Returns the node registered under the given display name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.object_by_name(name).and_then(Object::as_node)
    }

    /// Returns the edge registered under the given display name.
    pub fn edge_by_name(&self, name: &str) -> Option<EdgeId> {
        self.object_by_name(name).and_then(Object::as_edge)
    }

    /// The display name of an object.
    pub fn name(&self, object: Object) -> &str {
        &self.data(object).name
    }

    /// The label λ(o) of an object.
    pub fn label(&self, object: Object) -> &str {
        &self.data(object).label
    }

    /// The existence function ξ: true if the object exists at time `t`.
    pub fn exists(&self, object: Object, t: Time) -> bool {
        self.data(object).existence.contains(t)
    }

    /// The full existence set of an object as a coalesced interval set.
    pub fn existence(&self, object: Object) -> &IntervalSet {
        &self.data(object).existence
    }

    /// The property function σ: the value of property `prop` of `object` at time `t`,
    /// if defined.
    pub fn prop_value(&self, object: Object, prop: &str, t: Time) -> Option<&Value> {
        self.data(object).props.get(prop).and_then(|m| m.get(&t))
    }

    /// Iterates over the property names defined for an object (at any time).
    pub fn property_names(&self, object: Object) -> impl Iterator<Item = &str> + '_ {
        self.data(object).props.keys().map(String::as_str)
    }

    /// The point-wise history of one property of an object.
    pub fn property_history(&self, object: Object, prop: &str) -> Option<&BTreeMap<Time, Value>> {
        self.data(object).props.get(prop)
    }

    /// The source node of an edge (`src(e)` where `ρ(e) = (src, tgt)`).
    pub fn src(&self, edge: EdgeId) -> NodeId {
        self.endpoints[edge.index()].0
    }

    /// The target node of an edge.
    pub fn tgt(&self, edge: EdgeId) -> NodeId {
        self.endpoints[edge.index()].1
    }

    /// The edges whose source is `node`.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out_edges[node.index()]
    }

    /// The edges whose target is `node`.
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.in_edges[node.index()]
    }

    /// Validates the well-formedness conditions of Definition III.1.
    pub fn validate(&self) -> Result<()> {
        for (idx, edge) in self.edges.iter().enumerate() {
            let eid = EdgeId(idx as u32);
            let (src, tgt) = self.endpoints[idx];
            for t in edge.existence.points() {
                if !self.domain.contains(t) {
                    return Err(GraphError::OutsideDomain { object: Object::Edge(eid), time: t });
                }
                for endpoint in [src, tgt] {
                    if !self.nodes[endpoint.index()].existence.contains(t) {
                        return Err(GraphError::DanglingEdge { edge: eid, endpoint, time: t });
                    }
                }
            }
        }
        for object in self.objects().collect::<Vec<_>>() {
            let data = self.data(object);
            for t in data.existence.points() {
                if !self.domain.contains(t) {
                    return Err(GraphError::OutsideDomain { object, time: t });
                }
            }
            for (prop, history) in &data.props {
                for &t in history.keys() {
                    if !data.existence.contains(t) {
                        return Err(GraphError::PropertyWithoutExistence {
                            object,
                            property: prop.clone(),
                            time: t,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder for point-timestamped TPGs.
///
/// The temporal domain is either set explicitly with [`TpgBuilder::domain`] or derived
/// from the earliest and latest time points mentioned while building.
#[derive(Debug, Default)]
pub struct TpgBuilder {
    domain: Option<Interval>,
    nodes: Vec<PointObjectData>,
    edges: Vec<PointObjectData>,
    endpoints: Vec<(NodeId, NodeId)>,
    names: BTreeMap<String, Object>,
    min_time: Option<Time>,
    max_time: Option<Time>,
}

impl TpgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TpgBuilder::default()
    }

    /// Sets the temporal domain Ω explicitly.
    pub fn domain(mut self, domain: Interval) -> Self {
        self.domain = Some(domain);
        self
    }

    fn note_time(&mut self, t: Time) {
        self.min_time = Some(self.min_time.map_or(t, |m| m.min(t)));
        self.max_time = Some(self.max_time.map_or(t, |m| m.max(t)));
    }

    fn register_name(&mut self, name: &str, object: Object) -> Result<()> {
        if self.names.insert(name.to_owned(), object).is_some() {
            return Err(GraphError::DuplicateName(name.to_owned()));
        }
        Ok(())
    }

    /// Adds a node with the given display name and label.
    pub fn add_node(&mut self, name: &str, label: &str) -> Result<NodeId> {
        let id = NodeId(self.nodes.len() as u32);
        self.register_name(name, Object::Node(id))?;
        self.nodes.push(PointObjectData {
            name: name.to_owned(),
            label: label.to_owned(),
            existence: IntervalSet::empty(),
            props: BTreeMap::new(),
        });
        Ok(id)
    }

    /// Adds an edge with the given display name, label and endpoints.
    pub fn add_edge(
        &mut self,
        name: &str,
        label: &str,
        src: NodeId,
        tgt: NodeId,
    ) -> Result<EdgeId> {
        if src.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(src));
        }
        if tgt.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(tgt));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.register_name(name, Object::Edge(id))?;
        self.edges.push(PointObjectData {
            name: name.to_owned(),
            label: label.to_owned(),
            existence: IntervalSet::empty(),
            props: BTreeMap::new(),
        });
        self.endpoints.push((src, tgt));
        Ok(id)
    }

    fn data_mut(&mut self, object: Object) -> Result<&mut PointObjectData> {
        match object {
            Object::Node(n) => self.nodes.get_mut(n.index()).ok_or(GraphError::UnknownNode(n)),
            Object::Edge(e) => self.edges.get_mut(e.index()).ok_or(GraphError::UnknownEdge(e)),
        }
    }

    /// Declares that the object exists at the single time point `t`.
    pub fn set_exists(&mut self, object: impl Into<Object>, t: Time) -> Result<()> {
        self.note_time(t);
        self.data_mut(object.into())?.existence.insert_point(t);
        Ok(())
    }

    /// Declares that the object exists at every time point of `interval`.
    pub fn set_exists_during(
        &mut self,
        object: impl Into<Object>,
        interval: Interval,
    ) -> Result<()> {
        self.note_time(interval.start());
        self.note_time(interval.end());
        self.data_mut(object.into())?.existence.insert(interval);
        Ok(())
    }

    /// Sets the value of a property at a single time point.
    pub fn set_prop(
        &mut self,
        object: impl Into<Object>,
        prop: &str,
        t: Time,
        value: impl Into<Value>,
    ) -> Result<()> {
        self.note_time(t);
        let data = self.data_mut(object.into())?;
        data.props.entry(prop.to_owned()).or_default().insert(t, value.into());
        Ok(())
    }

    /// Sets the value of a property at every time point of `interval`.
    pub fn set_prop_during(
        &mut self,
        object: impl Into<Object>,
        prop: &str,
        interval: Interval,
        value: impl Into<Value>,
    ) -> Result<()> {
        let value = value.into();
        self.note_time(interval.start());
        self.note_time(interval.end());
        let data = self.data_mut(object.into())?;
        let history = data.props.entry(prop.to_owned()).or_default();
        for t in interval.points() {
            history.insert(t, value.clone());
        }
        Ok(())
    }

    /// Finishes building, validates the graph and returns it.
    pub fn build(self) -> Result<Tpg> {
        let domain = match self.domain {
            Some(d) => d,
            None => match (self.min_time, self.max_time) {
                (Some(a), Some(b)) => Interval::of(a, b),
                _ => return Err(GraphError::EmptyDomain),
            },
        };
        let mut out_edges = vec![Vec::new(); self.nodes.len()];
        let mut in_edges = vec![Vec::new(); self.nodes.len()];
        for (idx, &(src, tgt)) in self.endpoints.iter().enumerate() {
            out_edges[src.index()].push(EdgeId(idx as u32));
            in_edges[tgt.index()].push(EdgeId(idx as u32));
        }
        let graph = Tpg {
            domain,
            nodes: self.nodes,
            edges: self.edges,
            endpoints: self.endpoints,
            out_edges,
            in_edges,
            names: self.names,
        };
        graph.validate()?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> Tpg {
        let mut b = TpgBuilder::new();
        let a = b.add_node("a", "Person").unwrap();
        let r = b.add_node("r", "Room").unwrap();
        let e = b.add_edge("e", "visits", a, r).unwrap();
        b.set_exists_during(a, Interval::of(1, 5)).unwrap();
        b.set_exists_during(r, Interval::of(2, 6)).unwrap();
        b.set_exists_during(e, Interval::of(3, 4)).unwrap();
        b.set_prop_during(a, "risk", Interval::of(1, 3), "low").unwrap();
        b.set_prop_during(a, "risk", Interval::of(4, 5), "high").unwrap();
        b.domain(Interval::of(1, 6)).build().unwrap()
    }

    #[test]
    fn builder_produces_valid_graph() {
        let g = small_graph();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.domain(), Interval::of(1, 6));
        assert_eq!(g.temporal_object_count(), 6 * 3);
        assert_eq!(g.label(Object::Node(NodeId(0))), "Person");
        assert_eq!(g.label(Object::Edge(EdgeId(0))), "visits");
        assert_eq!(g.name(Object::Node(NodeId(1))), "r");
        assert_eq!(g.node_by_name("a"), Some(NodeId(0)));
        assert_eq!(g.edge_by_name("e"), Some(EdgeId(0)));
        assert_eq!(g.node_by_name("zzz"), None);
    }

    #[test]
    fn existence_and_properties() {
        let g = small_graph();
        let a = Object::Node(NodeId(0));
        assert!(g.exists(a, 1) && g.exists(a, 5));
        assert!(!g.exists(a, 6));
        assert_eq!(g.prop_value(a, "risk", 3), Some(&Value::str("low")));
        assert_eq!(g.prop_value(a, "risk", 4), Some(&Value::str("high")));
        assert_eq!(g.prop_value(a, "risk", 6), None);
        assert_eq!(g.prop_value(a, "name", 1), None);
        assert_eq!(g.property_names(a).collect::<Vec<_>>(), vec!["risk"]);
    }

    #[test]
    fn adjacency() {
        let g = small_graph();
        assert_eq!(g.src(EdgeId(0)), NodeId(0));
        assert_eq!(g.tgt(EdgeId(0)), NodeId(1));
        assert_eq!(g.out_edges(NodeId(0)), &[EdgeId(0)]);
        assert_eq!(g.in_edges(NodeId(1)), &[EdgeId(0)]);
        assert!(g.out_edges(NodeId(1)).is_empty());
    }

    #[test]
    fn dangling_edge_is_rejected() {
        let mut b = TpgBuilder::new();
        let a = b.add_node("a", "Person").unwrap();
        let r = b.add_node("r", "Room").unwrap();
        let e = b.add_edge("e", "visits", a, r).unwrap();
        b.set_exists_during(a, Interval::of(1, 2)).unwrap();
        b.set_exists_during(r, Interval::of(1, 2)).unwrap();
        // Edge exists at time 3 when neither endpoint exists.
        b.set_exists(e, 3).unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, GraphError::DanglingEdge { .. }));
    }

    #[test]
    fn property_without_existence_is_rejected() {
        let mut b = TpgBuilder::new();
        let a = b.add_node("a", "Person").unwrap();
        b.set_exists_during(a, Interval::of(1, 2)).unwrap();
        b.set_prop(a, "risk", 5, "low").unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, GraphError::PropertyWithoutExistence { .. }));
    }

    #[test]
    fn duplicate_names_and_unknown_endpoints_are_rejected() {
        let mut b = TpgBuilder::new();
        b.add_node("a", "Person").unwrap();
        assert!(matches!(b.add_node("a", "Person"), Err(GraphError::DuplicateName(_))));
        assert!(matches!(
            b.add_edge("e", "meets", NodeId(0), NodeId(9)),
            Err(GraphError::UnknownNode(_))
        ));
    }

    #[test]
    fn empty_builder_has_no_domain() {
        assert!(matches!(TpgBuilder::new().build(), Err(GraphError::EmptyDomain)));
    }

    #[test]
    fn explicit_domain_bounds_are_enforced() {
        let mut b = TpgBuilder::new();
        let a = b.add_node("a", "Person").unwrap();
        b.set_exists(a, 10).unwrap();
        let err = b.domain(Interval::of(1, 5)).build().unwrap_err();
        assert!(matches!(err, GraphError::OutsideDomain { .. }));
    }
}
