//! Coalesced families of intervals (the `FC` sets of Appendix A).
//!
//! A finite family of intervals is *coalesced* when its intervals are pairwise
//! disjoint, non-adjacent, and stored in increasing order: every interval is strictly
//! *before* the next one (there is a gap of at least one time point between them).
//! Point-based temporal semantics requires the interval-timestamped representation to
//! be coalesced, and this property is maintained through all operations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::interval::{Interval, Time};

/// A coalesced, ordered set of intervals.  Conceptually a finite set of time points,
/// stored compactly as maximal intervals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntervalSet {
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set of time points.
    pub fn empty() -> Self {
        IntervalSet { intervals: Vec::new() }
    }

    /// A set containing a single interval.
    pub fn from_interval(interval: Interval) -> Self {
        IntervalSet { intervals: vec![interval] }
    }

    /// Builds a coalesced set from an arbitrary collection of intervals, merging
    /// overlapping and adjacent intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(intervals: I) -> Self {
        let mut v: Vec<Interval> = intervals.into_iter().collect();
        v.sort_by_key(|i| (i.start(), i.end()));
        let mut out: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            match out.last_mut() {
                Some(last) if last.overlaps_or_meets(&iv) => {
                    *last = last
                        .union_adjacent(&iv)
                        .expect("overlapping or adjacent intervals coalesce");
                }
                _ => out.push(iv),
            }
        }
        IntervalSet { intervals: out }
    }

    /// Builds a coalesced set from a collection of time points.
    pub fn from_points<I: IntoIterator<Item = Time>>(points: I) -> Self {
        IntervalSet::from_intervals(points.into_iter().map(Interval::point))
    }

    /// True if the set contains no time point.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The number of maximal intervals in the set.
    pub fn num_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// The total number of time points in the set.
    pub fn num_points(&self) -> u64 {
        self.intervals.iter().map(|i| i.num_points()).sum()
    }

    /// The maximal intervals, in increasing order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The earliest time point of the set, if any.
    pub fn min(&self) -> Option<Time> {
        self.intervals.first().map(|i| i.start())
    }

    /// The latest time point of the set, if any.
    pub fn max(&self) -> Option<Time> {
        self.intervals.last().map(|i| i.end())
    }

    /// True if the set contains the time point `t` (binary search over the maximal
    /// intervals).
    pub fn contains(&self, t: Time) -> bool {
        self.intervals
            .binary_search_by(|iv| {
                if iv.end() < t {
                    std::cmp::Ordering::Less
                } else if iv.start() > t {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Adds a single interval to the set, preserving coalescing.
    pub fn insert(&mut self, interval: Interval) {
        // Find the insertion window of intervals that overlap or meet the new one.
        let mut merged = interval;
        let mut first = self.intervals.len();
        let mut last = self.intervals.len();
        for (idx, iv) in self.intervals.iter().enumerate() {
            if iv.overlaps_or_meets(&merged) {
                if first == self.intervals.len() {
                    first = idx;
                }
                last = idx + 1;
                merged =
                    merged.union_adjacent(iv).expect("overlapping or adjacent intervals coalesce");
            } else if iv.start() > merged.end() + 1 {
                if first == self.intervals.len() {
                    first = idx;
                    last = idx;
                }
                break;
            }
        }
        if first == self.intervals.len() {
            self.intervals.push(merged);
        } else {
            self.intervals.splice(first..last, std::iter::once(merged));
        }
    }

    /// Adds a single time point to the set, preserving coalescing.
    pub fn insert_point(&mut self, t: Time) {
        self.insert(Interval::point(t));
    }

    /// The set union of two interval sets (coalesced).
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.intervals.iter().chain(other.intervals.iter()).copied())
    }

    /// The set intersection of two interval sets (coalesced).  Linear merge over the
    /// two sorted interval lists.
    pub fn intersection(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.intervals.len() && j < other.intervals.len() {
            let a = &self.intervals[i];
            let b = &other.intervals[j];
            if let Some(x) = a.intersect(b) {
                out.push(x);
            }
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { intervals: out }
    }

    /// The set difference `self ∖ other` (coalesced).  Linear merge over the two
    /// sorted interval lists: each interval of `self` is carved by the intervals of
    /// `other` that overlap it, and the surviving pieces are emitted in order.
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let mut j = 0usize;
        for iv in &self.intervals {
            // `lo` is the first time point of `iv` not yet covered by `other`.
            let mut lo = iv.start();
            let mut consumed = false;
            while j < other.intervals.len() && other.intervals[j].end() < iv.start() {
                j += 1;
            }
            let mut k = j;
            while k < other.intervals.len() && other.intervals[k].start() <= iv.end() {
                let cut = &other.intervals[k];
                if cut.start() > lo {
                    out.push(Interval::of(lo, cut.start() - 1));
                }
                if cut.end() >= iv.end() {
                    consumed = true;
                    break;
                }
                lo = cut.end() + 1;
                k += 1;
            }
            if !consumed && lo <= iv.end() {
                out.push(Interval::of(lo, iv.end()));
            }
        }
        IntervalSet { intervals: out }
    }

    /// Restricts the set to the time points that fall inside `window`.
    pub fn clamp(&self, window: &Interval) -> IntervalSet {
        IntervalSet {
            intervals: self.intervals.iter().filter_map(|iv| iv.intersect(window)).collect(),
        }
    }

    /// True if every interval of `self` occurs during some interval of `other`
    /// (the containment relation `⊑` of Appendix A).
    pub fn contained_in(&self, other: &IntervalSet) -> bool {
        self.intervals.iter().all(|iv| other.intervals.iter().any(|o| iv.during(o)))
    }

    /// True if the two sets share at least one time point.
    pub fn intersects(&self, other: &IntervalSet) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.intervals.len() && j < other.intervals.len() {
            let a = &self.intervals[i];
            let b = &other.intervals[j];
            if a.overlaps(b) {
                return true;
            }
            if a.end() < b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// True if the set contains at least one point of `interval`.
    pub fn intersects_interval(&self, interval: &Interval) -> bool {
        self.intervals.iter().any(|iv| iv.overlaps(interval))
    }

    /// Iterates over every time point of the set in increasing order.
    pub fn points(&self) -> impl Iterator<Item = Time> + '_ {
        self.intervals.iter().flat_map(|iv| iv.points())
    }

    /// Checks the coalescing invariant: intervals are sorted and pairwise *before*
    /// each other.  Used by tests and debug assertions.
    pub fn is_coalesced(&self) -> bool {
        self.intervals.windows(2).all(|w| w[0].before(&w[1]))
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

impl FromIterator<Time> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = Time>>(iter: I) -> Self {
        IntervalSet::from_points(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: Time, b: Time) -> Interval {
        Interval::of(a, b)
    }

    #[test]
    fn from_points_coalesces_maximally() {
        // Example from Section III.B: ξ(n,1)=ξ(n,2)=ξ(n,3)=ξ(n,5)=true, ξ(n,4)=false
        // must yield {[1,3],[5,5]}, not {[1,2],[3,3],[5,5]}.
        let s = IntervalSet::from_points([1, 2, 3, 5]);
        assert_eq!(s.intervals(), &[iv(1, 3), iv(5, 5)]);
        assert!(s.is_coalesced());
    }

    #[test]
    fn from_intervals_merges_adjacent_and_overlapping() {
        let s = IntervalSet::from_intervals([iv(1, 2), iv(3, 4), iv(6, 8), iv(7, 10)]);
        assert_eq!(s.intervals(), &[iv(1, 4), iv(6, 10)]);
        assert!(s.is_coalesced());
    }

    #[test]
    fn membership_and_counts() {
        let s = IntervalSet::from_intervals([iv(1, 4), iv(6, 8)]);
        assert!(s.contains(1) && s.contains(4) && s.contains(7));
        assert!(!s.contains(5) && !s.contains(0) && !s.contains(9));
        assert_eq!(s.num_points(), 7);
        assert_eq!(s.num_intervals(), 2);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(8));
        assert!(IntervalSet::empty().is_empty());
    }

    #[test]
    fn insert_preserves_coalescing() {
        let mut s = IntervalSet::from_intervals([iv(1, 2), iv(6, 8), iv(12, 14)]);
        s.insert(iv(3, 5)); // bridges the first two.
        assert_eq!(s.intervals(), &[iv(1, 8), iv(12, 14)]);
        s.insert_point(10);
        assert_eq!(s.intervals(), &[iv(1, 8), iv(10, 10), iv(12, 14)]);
        s.insert(iv(9, 20));
        assert_eq!(s.intervals(), &[iv(1, 20)]);
        assert!(s.is_coalesced());
    }

    #[test]
    fn insert_into_empty_and_at_ends() {
        let mut s = IntervalSet::empty();
        s.insert(iv(5, 6));
        s.insert(iv(1, 2));
        s.insert(iv(9, 9));
        assert_eq!(s.intervals(), &[iv(1, 2), iv(5, 6), iv(9, 9)]);
    }

    #[test]
    fn difference_carves_out_covered_points() {
        let a = IntervalSet::from_intervals([iv(1, 10)]);
        let b = IntervalSet::from_intervals([iv(3, 4), iv(7, 7)]);
        assert_eq!(a.difference(&b).intervals(), &[iv(1, 2), iv(5, 6), iv(8, 10)]);
        // Covering set removes everything; empty subtrahend removes nothing.
        assert!(a.difference(&IntervalSet::from_interval(iv(0, 12))).is_empty());
        assert_eq!(a.difference(&IntervalSet::empty()), a);
        assert!(IntervalSet::empty().difference(&a).is_empty());
        // Partial overlaps at both ends, across several intervals of self.
        let c = IntervalSet::from_intervals([iv(0, 2), iv(5, 6), iv(9, 12)]);
        let d = IntervalSet::from_intervals([iv(2, 5), iv(11, 20)]);
        assert_eq!(c.difference(&d).intervals(), &[iv(0, 1), iv(6, 6), iv(9, 10)]);
        assert!(c.difference(&d).is_coalesced());
        // Point-wise cross-check.
        for t in 0..=20 {
            assert_eq!(c.difference(&d).contains(t), c.contains(t) && !d.contains(t), "t={t}");
        }
    }

    #[test]
    fn union_and_intersection() {
        let a = IntervalSet::from_intervals([iv(1, 4), iv(8, 10)]);
        let b = IntervalSet::from_intervals([iv(3, 6), iv(9, 12)]);
        assert_eq!(a.union(&b).intervals(), &[iv(1, 6), iv(8, 12)]);
        assert_eq!(a.intersection(&b).intervals(), &[iv(3, 4), iv(9, 10)]);
        assert!(a.intersects(&b));
        let c = IntervalSet::from_intervals([iv(5, 7)]);
        assert!(!a.intersects(&c));
        assert!(a.intersects_interval(&iv(4, 5)));
        assert!(!a.intersects_interval(&iv(5, 7)));
    }

    #[test]
    fn containment_relation() {
        // F1 ⊑ F2 iff every interval of F1 occurs during an interval of F2.
        let f1 = IntervalSet::from_intervals([iv(2, 3), iv(9, 9)]);
        let f2 = IntervalSet::from_intervals([iv(1, 4), iv(8, 10)]);
        assert!(f1.contained_in(&f2));
        assert!(!f2.contained_in(&f1));
        assert!(IntervalSet::empty().contained_in(&f1));
    }

    #[test]
    fn clamp_restricts_to_window() {
        let s = IntervalSet::from_intervals([iv(1, 4), iv(8, 10)]);
        assert_eq!(s.clamp(&iv(3, 9)).intervals(), &[iv(3, 4), iv(8, 9)]);
        assert!(s.clamp(&iv(5, 7)).is_empty());
    }

    #[test]
    fn point_iteration_is_sorted() {
        let s = IntervalSet::from_intervals([iv(1, 2), iv(5, 6)]);
        assert_eq!(s.points().collect::<Vec<_>>(), vec![1, 2, 5, 6]);
    }
}
