//! Constant-folding of numerical occurrence indicators `[n, m]`.
//!
//! The practical language and the compiled plans both carry repetition bounds
//! `path[n, m]` / `path[n, _]` (grammar (2) of the paper).  A handful of shapes
//! can be normalised away before any evaluation happens, and several passes
//! need the same case analysis: the plan compiler (to avoid emitting dead
//! operators), the semantic plan analyzer (emptiness diagnostics), and the
//! optimizer (tightening windows).  This module is the single shared
//! classification so the passes cannot drift apart.

/// The statically-determined shape of an occurrence indicator `[n, m]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepeatClass {
    /// `n > m`: no repetition count satisfies the indicator, so the enclosing
    /// alternative denotes the empty relation.
    Unsatisfiable,
    /// `[0, 0]`: zero iterations — the repetition is the identity relation.
    Identity,
    /// `[1, 1]`: exactly one iteration — the repetition is just its body.
    Once,
    /// A genuine range (`n < m`, or an unbounded `[n, _]`).
    Range,
}

/// Classifies the indicator `[min, max]` (`max = None` meaning `[min, _]`).
pub fn classify_repeat(min: u32, max: Option<u32>) -> RepeatClass {
    match max {
        Some(m) if m < min => RepeatClass::Unsatisfiable,
        Some(0) => RepeatClass::Identity,
        Some(1) if min == 1 => RepeatClass::Once,
        _ => RepeatClass::Range,
    }
}

/// The number of iteration counts admitted by `[min, max]`, or `None` when the
/// indicator is unbounded.  `Some(0)` means unsatisfiable.
pub fn repeat_width(min: u32, max: Option<u32>) -> Option<u64> {
    match max {
        None => None,
        Some(m) if m < min => Some(0),
        Some(m) => Some(u64::from(m - min) + 1),
    }
}

/// Intersects two indicator windows: the result admits exactly the iteration
/// counts admitted by both.  Returns `None` when the intersection is empty.
pub fn intersect_repeat(
    a: (u32, Option<u32>),
    b: (u32, Option<u32>),
) -> Option<(u32, Option<u32>)> {
    let min = a.0.max(b.0);
    let max = match (a.1, b.1) {
        (None, m) | (m, None) => m,
        (Some(x), Some(y)) => Some(x.min(y)),
    };
    if max.is_some_and(|m| m < min) {
        None
    } else {
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_paper_identities() {
        assert_eq!(classify_repeat(3, Some(2)), RepeatClass::Unsatisfiable);
        assert_eq!(classify_repeat(0, Some(0)), RepeatClass::Identity);
        assert_eq!(classify_repeat(1, Some(1)), RepeatClass::Once);
        assert_eq!(classify_repeat(0, Some(1)), RepeatClass::Range);
        assert_eq!(classify_repeat(0, None), RepeatClass::Range);
        assert_eq!(classify_repeat(2, None), RepeatClass::Range);
        // [0, 0] beats the n > m arm only when satisfiable: [1, 0] is empty.
        assert_eq!(classify_repeat(1, Some(0)), RepeatClass::Unsatisfiable);
    }

    #[test]
    fn repeat_width_counts_admitted_iterations() {
        assert_eq!(repeat_width(0, Some(0)), Some(1));
        assert_eq!(repeat_width(2, Some(5)), Some(4));
        assert_eq!(repeat_width(3, Some(2)), Some(0));
        assert_eq!(repeat_width(0, None), None);
    }

    #[test]
    fn intersect_repeat_meets_windows() {
        assert_eq!(intersect_repeat((0, None), (2, Some(5))), Some((2, Some(5))));
        assert_eq!(intersect_repeat((1, Some(3)), (2, Some(8))), Some((2, Some(3))));
        assert_eq!(intersect_repeat((4, Some(6)), (0, Some(3))), None);
        assert_eq!(intersect_repeat((1, None), (2, None)), Some((2, None)));
    }
}
