//! Rewriting of the practical query language into the formal language `NavL[PC,NOI]`,
//! following Section V.A of the paper.
//!
//! The translation rules are:
//!
//! * a node pattern `(x:Person {risk = 'high'})` becomes the test
//!   `Node ∧ ∃ ∧ Person ∧ risk ↦ high` (the practical language binds variables only to
//!   *existing* temporal objects, so `∃` is always added);
//! * an edge pattern `-[z:meets]->` becomes `F / (Edge ∧ ∃ ∧ meets) / F`, and its
//!   reversed form `<-[…]-` uses `B` instead of `F`;
//! * inside `-/…/-`, `FWD`/`BWD`/`NEXT`/`PREV` become the axes `F`/`B`/`N`/`P`; a label
//!   atom `:visits` becomes `(visits ∧ ∃)`; a property atom `{p = 'v'}` becomes
//!   `(p ↦ v ∧ ∃)`; an axis with a repetition, e.g. `NEXT[0,12]` or `PREV*`, becomes
//!   `(N/∃)[0,12]` or `(P/∃)[0,_]` — repetition in the practical language walks only
//!   through existing temporal objects, exactly as in the translation of Q8 and Q12
//!   given in the paper.  The same convention applies *inside a repeated group*:
//!   every axis within, e.g., `(FWD/:meets/FWD/NEXT)*` is followed by `∃`, because a
//!   repetition traverses unboundedly many intermediate temporal objects and the
//!   practical language requires all of them to exist (this is also what makes mixed
//!   structural/temporal repetition executable by the interval engine's time-aware
//!   closure);
//! * the reserved word `time` becomes the `< k` test and its Boolean combinations.

use serde::{Deserialize, Serialize};

use crate::ast::{Axis, Path, TestExpr};
use crate::error::{QueryError, Result};
use crate::parser::{
    CmpOp, Constraint, Direction, EdgePattern, MatchClause, NodePattern, PatternPart, Regex,
    RegexAtom, RegexItem,
};

/// Where a bound variable sits in the pattern, used by engines to build binding
/// tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Variable {
    /// The variable name.
    pub name: String,
    /// Index of the pattern part (node or edge pattern) that binds the variable.
    pub part_index: usize,
}

/// The result of rewriting a practical `MATCH` clause into the formal language.
#[derive(Debug, Clone, PartialEq)]
pub struct RewrittenQuery {
    /// The `NavL[PC,NOI]` expression equivalent to the pattern: its evaluation
    /// `⟦path⟧_G` relates the temporal objects bound to the first and last node
    /// patterns.
    pub path: Path,
    /// The variables bound by the pattern, in pattern order.
    pub variables: Vec<Variable>,
    /// The name of the graph the query runs on.
    pub graph: String,
}

/// Rewrites a parsed `MATCH` clause into the formal language.
pub fn rewrite_match(clause: &MatchClause) -> Result<RewrittenQuery> {
    let mut variables = Vec::new();
    let mut pieces = Vec::with_capacity(clause.parts.len());
    for (index, part) in clause.parts.iter().enumerate() {
        match part {
            PatternPart::Node(node) => {
                if let Some(var) = &node.var {
                    if variables.iter().any(|v: &Variable| v.name == *var) {
                        return Err(QueryError::InvalidVariable(var.clone()));
                    }
                    variables.push(Variable { name: var.clone(), part_index: index });
                }
                pieces.push(rewrite_node_pattern(node));
            }
            PatternPart::Edge(edge) => {
                if let Some(var) = &edge.var {
                    if variables.iter().any(|v: &Variable| v.name == *var) {
                        return Err(QueryError::InvalidVariable(var.clone()));
                    }
                    variables.push(Variable { name: var.clone(), part_index: index });
                }
                pieces.push(rewrite_edge_pattern(edge));
            }
            PatternPart::Regex(regex) => pieces.push(rewrite_regex(regex)),
        }
    }
    Ok(RewrittenQuery { path: Path::seq_all(pieces), variables, graph: clause.graph.clone() })
}

/// Rewrites a node pattern into its test expression.
pub fn rewrite_node_pattern(node: &NodePattern) -> Path {
    let mut tests = vec![TestExpr::Node, TestExpr::Exists];
    if let Some(label) = &node.label {
        tests.push(TestExpr::label(label.clone()));
    }
    tests.extend(node.constraints.iter().map(rewrite_constraint));
    Path::Test(TestExpr::all(tests))
}

/// Rewrites a conventional edge pattern into `F / (Edge ∧ ∃ ∧ …) / F` (or `B … B` for
/// the reversed direction).
pub fn rewrite_edge_pattern(edge: &EdgePattern) -> Path {
    let axis = match edge.direction {
        Direction::Out => Axis::Fwd,
        Direction::In => Axis::Bwd,
    };
    let mut tests = vec![TestExpr::Edge, TestExpr::Exists];
    if let Some(label) = &edge.label {
        tests.push(TestExpr::label(label.clone()));
    }
    tests.extend(edge.constraints.iter().map(rewrite_constraint));
    Path::axis(axis).then(Path::Test(TestExpr::all(tests))).then(Path::axis(axis))
}

/// Rewrites a temporal regular expression from the `-/…/-` surface syntax.
pub fn rewrite_regex(regex: &Regex) -> Path {
    rewrite_regex_mode(regex, false)
}

/// Rewrites a regex; with `repeated` set, the expression sits (syntactically) under a
/// repetition, so every axis walks only through existing temporal objects.
fn rewrite_regex_mode(regex: &Regex, repeated: bool) -> Path {
    Path::alt_all(
        regex
            .alternatives
            .iter()
            .map(|seq| Path::seq_all(seq.items.iter().map(|i| rewrite_regex_item(i, repeated)))),
    )
}

fn rewrite_regex_item(item: &RegexItem, repeated: bool) -> Path {
    let base = match &item.atom {
        RegexAtom::Axis(axis) => {
            // A repeated axis — or any axis inside a repeated group — walks only
            // through existing temporal objects: NEXT[n,m] ⇒ (N/∃)[n,m] and
            // (FWD/NEXT)* ⇒ ((F/∃)/(N/∃))[0,_].
            if repeated || item.repeat.is_some() {
                Path::axis(*axis).then(Path::Test(TestExpr::Exists))
            } else {
                Path::axis(*axis)
            }
        }
        RegexAtom::Label(label) => Path::Test(TestExpr::label(label.clone()).and(TestExpr::Exists)),
        RegexAtom::Props(constraints) => {
            let mut tests = vec![TestExpr::Exists];
            tests.extend(constraints.iter().map(rewrite_constraint));
            Path::Test(TestExpr::all(tests))
        }
        RegexAtom::Group(inner) => rewrite_regex_mode(inner, repeated || item.repeat.is_some()),
    };
    match item.repeat {
        None => base,
        Some((n, Some(m))) => base.repeat(n, m),
        Some((n, None)) => base.repeat_at_least(n),
    }
}

/// Rewrites a single property or time constraint into a test.
pub fn rewrite_constraint(constraint: &Constraint) -> TestExpr {
    match constraint {
        Constraint::Prop(p, v) => TestExpr::prop(p.clone(), v.clone()),
        Constraint::Time(op, k) => match op {
            CmpOp::Eq => TestExpr::time_eq(*k),
            CmpOp::Lt => TestExpr::TimeLt(*k),
            CmpOp::Le => TestExpr::time_le(*k),
            CmpOp::Gt => TestExpr::time_gt(*k),
            CmpOp::Ge => TestExpr::time_ge(*k),
        },
    }
}

/// Parses and rewrites a practical query in one step.
pub fn compile(query_text: &str) -> Result<RewrittenQuery> {
    let clause = crate::parser::parse_match(query_text)?;
    rewrite_match(&clause)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{classify, Fragment};
    use crate::parser::parse_match;

    fn rewrite(text: &str) -> RewrittenQuery {
        rewrite_match(&parse_match(text).unwrap()).unwrap()
    }

    #[test]
    fn node_patterns_add_node_and_existence_tests() {
        let q = rewrite("MATCH (x:Person {risk = 'low'}) ON g");
        assert_eq!(q.graph, "g");
        assert_eq!(q.variables, vec![Variable { name: "x".into(), part_index: 0 }]);
        match &q.path {
            Path::Test(t) => {
                let shown = t.to_string();
                assert!(shown.contains("Node"));
                assert!(shown.contains("exists"));
                assert!(shown.contains("Person"));
                assert!(shown.contains("risk -> 'low'"));
            }
            other => panic!("unexpected path {other:?}"),
        }
    }

    #[test]
    fn edge_patterns_become_fwd_test_fwd() {
        let q = rewrite("MATCH (x)-[z:meets]->(y) ON g");
        let shown = q.path.to_string();
        assert!(shown.contains("F"));
        assert!(shown.contains("meets"));
        assert_eq!(q.variables.len(), 3);
        assert_eq!(q.variables[1], Variable { name: "z".into(), part_index: 1 });
        // Reversed edges use the backward axis.
        let q = rewrite("MATCH (x)<-[:meets]-(y) ON g");
        assert!(q.path.to_string().contains("B"));
    }

    #[test]
    fn repeated_axes_require_existence_of_intermediate_objects() {
        // Q8: PREV*/FWD/:visits/FWD must become (P/∃)[0,_]/F/(visits ∧ ∃)/F.
        let q = rewrite(
            "MATCH (x:Person {test = 'pos'})-/PREV*/FWD/:visits/FWD/-(z:Room) ON contact_tracing",
        );
        let shown = q.path.to_string();
        assert!(shown.contains("(P / exists)[0, _]"), "got {shown}");
        assert!(shown.contains("(visits and exists)"), "got {shown}");
        // Plain (unrepeated) axes are left bare, as in the paper's translation of Q6.
        let q6 = rewrite("MATCH (x:Person {test = 'pos'})-/PREV/-(y:Person) ON g");
        let shown6 = q6.path.to_string();
        assert!(shown6.contains(" / P)"), "got {shown6}");
        assert!(!shown6.contains("(P / exists)"), "got {shown6}");
    }

    #[test]
    fn axes_inside_repeated_groups_require_existence() {
        // The repetition convention reaches inside repeated groups: every axis of a
        // repeated body walks only through existing temporal objects.
        let q = rewrite("MATCH (x:Person)-/(FWD/:meets/FWD/NEXT)*/-(y:Person) ON g");
        let shown = q.path.to_string();
        assert!(shown.contains("(F / exists)"), "got {shown}");
        assert!(shown.contains("(N / exists)"), "got {shown}");
        // Also through nested (unrepeated) groups under a repetition.
        let nested = rewrite("MATCH (x)-/((FWD/NEXT)/BWD)[1,3]/-(y) ON g");
        let shown = nested.path.to_string();
        assert!(shown.contains("(B / exists)"), "got {shown}");
        assert!(!shown.contains("/ B)[") || shown.contains("(B / exists)"), "got {shown}");
        // Outside any repetition, group axes stay bare (the `exists` below comes from
        // the node patterns, not the axes).
        let plain = rewrite("MATCH (x)-/(FWD/NEXT)/-(y) ON g");
        let shown = plain.path.to_string();
        assert!(shown.contains("(F / N)"), "got {shown}");
        assert!(!shown.contains("(F / exists)"), "got {shown}");
    }

    #[test]
    fn numerical_indicators_and_unions_are_preserved() {
        let q = rewrite(
            "MATCH (x:Person {risk = 'high'})-\
             /(FWD/:meets/FWD + FWD/:visits/FWD/:Room/BWD/:visits/BWD)/NEXT[0,12]/-\
             ({test = 'pos'}) ON g",
        );
        let shown = q.path.to_string();
        assert!(shown.contains("(N / exists)[0, 12]"), "got {shown}");
        assert!(shown.contains(" + "), "got {shown}");
        assert!(q.path.has_occurrence_indicator());
        assert!(!q.path.has_path_condition());
        // No variable other than x is bound.
        assert_eq!(q.variables.len(), 1);
    }

    #[test]
    fn time_constraints_use_the_lt_test() {
        let q = rewrite("MATCH (x:Person {risk = 'low' AND time < '10'}) ON g");
        assert!(q.path.to_string().contains("< 10"));
        let q3 = rewrite("MATCH (x:Person {risk = 'low' AND time = '1'}) ON g");
        let shown = q3.path.to_string();
        // time = 1 expands to (< 2 ∧ ¬ < 1).
        assert!(shown.contains("< 2"), "got {shown}");
        assert!(shown.contains("(not < 1)"), "got {shown}");
    }

    #[test]
    fn rewritten_queries_stay_in_tractable_fragments() {
        // None of the paper's example queries uses path conditions, so all rewrites
        // land in NavL[NOI] or below — evaluable in PTIME over TPGs.
        for text in [
            "MATCH (x:Person) ON g",
            "MATCH (x:Person {risk = 'low'})-[z:meets]->(y:Person {risk = 'high'}) ON g",
            "MATCH (x:Person {test = 'pos'})-/PREV*/FWD/:visits/FWD/-(z:Room) ON g",
            "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) ON g",
        ] {
            let q = rewrite(text);
            let fragment = classify(&q.path);
            assert!(fragment.is_sub_fragment_of(Fragment::Noi), "{text} classified as {fragment}");
        }
    }

    #[test]
    fn duplicate_variables_are_rejected() {
        let err =
            rewrite_match(&parse_match("MATCH (x)-[x:meets]->(y) ON g").unwrap()).unwrap_err();
        assert!(matches!(err, QueryError::InvalidVariable(_)));
    }

    #[test]
    fn compile_is_parse_plus_rewrite() {
        let q = compile("MATCH (x:Person) ON contact_tracing").unwrap();
        assert_eq!(q.graph, "contact_tracing");
        assert!(compile("MATCH (x:Person ON g").is_err());
    }
}
