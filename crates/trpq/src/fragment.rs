//! Fragments of `NavL[PC,NOI]` and the complexity of their evaluation problem
//! (Theorem V.1 and Appendices B–D of the paper).
//!
//! * `NavL[PC]` — path conditions allowed, no numerical occurrence indicators.
//! * `NavL[NOI]` — numerical occurrence indicators allowed, no path conditions.
//! * `NavL[ANOI]` — occurrence indicators only on axes, no path conditions.
//! * `NavL[PC,ANOI]` — path conditions plus axis-only occurrence indicators.
//! * `NavL[PC,NOI]` — the full language.

use std::fmt;

use crate::ast::Path;

/// The smallest named fragment of `NavL[PC,NOI]` an expression belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fragment {
    /// No path conditions and no occurrence indicators: plain regular path navigation
    /// with tests, concatenation and union.  Contained in every other fragment.
    Core,
    /// `NavL[PC]`: path conditions, no occurrence indicators.
    Pc,
    /// `NavL[ANOI]`: occurrence indicators only on axes, no path conditions.
    Anoi,
    /// `NavL[NOI]`: arbitrary occurrence indicators, no path conditions.
    Noi,
    /// `NavL[PC,ANOI]`: path conditions plus axis-only occurrence indicators.
    PcAnoi,
    /// `NavL[PC,NOI]`: the full language.
    PcNoi,
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Fragment::Core => "NavL[core]",
            Fragment::Pc => "NavL[PC]",
            Fragment::Anoi => "NavL[ANOI]",
            Fragment::Noi => "NavL[NOI]",
            Fragment::PcAnoi => "NavL[PC,ANOI]",
            Fragment::PcNoi => "NavL[PC,NOI]",
        };
        f.write_str(s)
    }
}

/// The complexity of the evaluation problem `Eval(G, L)` for a class of graphs and a
/// fragment, as established by Theorem V.1 and Theorems D.1–D.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Complexity {
    /// Solvable in polynomial time.
    PolynomialTime,
    /// NP-complete.
    NpComplete,
    /// Σp2-hard (and in PSPACE).
    SigmaP2Hard,
    /// PSPACE-complete.
    PspaceComplete,
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Complexity::PolynomialTime => "PTIME",
            Complexity::NpComplete => "NP-complete",
            Complexity::SigmaP2Hard => "Sigma^p_2-hard",
            Complexity::PspaceComplete => "PSPACE-complete",
        };
        f.write_str(s)
    }
}

/// Classifies a path expression into the smallest named fragment containing it.
pub fn classify(path: &Path) -> Fragment {
    let pc = path.has_path_condition();
    let noi = path.has_occurrence_indicator();
    match (pc, noi) {
        (false, false) => Fragment::Core,
        (true, false) => Fragment::Pc,
        (false, true) => {
            if path.occurrence_indicators_only_on_axes() {
                Fragment::Anoi
            } else {
                Fragment::Noi
            }
        }
        (true, true) => {
            if path.occurrence_indicators_only_on_axes() {
                Fragment::PcAnoi
            } else {
                Fragment::PcNoi
            }
        }
    }
}

impl Fragment {
    /// Complexity of `Eval(TPG, fragment)` — the evaluation problem over
    /// point-timestamped graphs.  Polynomial for the entire language (Theorem V.1(1)).
    pub fn complexity_over_tpg(self) -> Complexity {
        Complexity::PolynomialTime
    }

    /// Complexity of `Eval(ITPG, fragment)` — the evaluation problem over
    /// interval-timestamped graphs (Theorem V.1(2), Theorems D.1 and D.2).
    pub fn complexity_over_itpg(self) -> Complexity {
        match self {
            Fragment::Core | Fragment::Pc => Complexity::PolynomialTime,
            Fragment::Anoi => Complexity::NpComplete,
            Fragment::Noi => Complexity::SigmaP2Hard,
            Fragment::PcAnoi | Fragment::PcNoi => Complexity::PspaceComplete,
        }
    }

    /// True if expressions of this fragment are also expressions of `other`.
    pub fn is_sub_fragment_of(self, other: Fragment) -> bool {
        use Fragment::*;
        match (self, other) {
            (a, b) if a == b => true,
            (Core, _) => true,
            (Pc, PcAnoi) | (Pc, PcNoi) => true,
            (Anoi, Noi) | (Anoi, PcAnoi) | (Anoi, PcNoi) => true,
            (Noi, PcNoi) => true,
            (PcAnoi, PcNoi) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Axis, TestExpr};

    #[test]
    fn classification_matches_structure() {
        let core = Path::axis(Axis::Fwd).then(Path::test(TestExpr::label("meets")));
        assert_eq!(classify(&core), Fragment::Core);

        let pc = Path::test(TestExpr::path_test(Path::axis(Axis::Next)));
        assert_eq!(classify(&pc), Fragment::Pc);

        let anoi = Path::axis(Axis::Next).repeat(0, 12).then(Path::test(TestExpr::Exists));
        assert_eq!(classify(&anoi), Fragment::Anoi);

        let noi = Path::axis(Axis::Next).then(Path::test(TestExpr::Exists)).repeat(0, 12);
        assert_eq!(classify(&noi), Fragment::Noi);

        let pc_noi = Path::test(TestExpr::path_test(noi.clone()));
        assert_eq!(classify(&pc_noi), Fragment::PcNoi);

        let pc_anoi = Path::test(TestExpr::path_test(Path::axis(Axis::Prev).repeat(2, 2)));
        assert_eq!(classify(&pc_anoi), Fragment::PcAnoi);
    }

    #[test]
    fn complexity_table_matches_the_paper() {
        assert_eq!(Fragment::PcNoi.complexity_over_tpg(), Complexity::PolynomialTime);
        assert_eq!(Fragment::Pc.complexity_over_itpg(), Complexity::PolynomialTime);
        assert_eq!(Fragment::Noi.complexity_over_itpg(), Complexity::SigmaP2Hard);
        assert_eq!(Fragment::Anoi.complexity_over_itpg(), Complexity::NpComplete);
        assert_eq!(Fragment::PcAnoi.complexity_over_itpg(), Complexity::PspaceComplete);
        assert_eq!(Fragment::PcNoi.complexity_over_itpg(), Complexity::PspaceComplete);
    }

    #[test]
    fn fragment_inclusion_is_a_partial_order() {
        use Fragment::*;
        for f in [Core, Pc, Anoi, Noi, PcAnoi, PcNoi] {
            assert!(f.is_sub_fragment_of(f));
            assert!(Core.is_sub_fragment_of(f));
            assert!(f.is_sub_fragment_of(PcNoi));
        }
        assert!(Anoi.is_sub_fragment_of(Noi));
        assert!(!Noi.is_sub_fragment_of(Anoi));
        assert!(!Pc.is_sub_fragment_of(Noi));
        assert!(!Noi.is_sub_fragment_of(PcAnoi));
    }

    #[test]
    fn display_names() {
        assert_eq!(Fragment::PcNoi.to_string(), "NavL[PC,NOI]");
        assert_eq!(Complexity::PspaceComplete.to_string(), "PSPACE-complete");
    }
}
