//! Errors produced while parsing and evaluating temporal regular path queries.

use std::fmt;

/// Errors produced by the TRPQ parsers and evaluators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query text could not be parsed.
    Parse {
        /// Human-readable description of the problem.
        message: String,
        /// Byte offset into the query text at which the problem was detected.
        position: usize,
    },
    /// The expression does not belong to the fragment an evaluator supports.
    UnsupportedFragment {
        /// Rendering of the offending expression.
        expression: String,
        /// Why the expression is outside the fragment.
        reason: String,
    },
    /// A variable was used in a way the binding-table machinery cannot support,
    /// e.g. bound twice in one pattern.
    InvalidVariable(String),
    /// The query references a graph name that was not provided to the executor.
    UnknownGraph(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            QueryError::UnsupportedFragment { expression, reason } => {
                write!(f, "expression '{expression}' is outside the supported fragment: {reason}")
            }
            QueryError::InvalidVariable(v) => write!(f, "invalid use of variable '{v}'"),
            QueryError::UnknownGraph(g) => write!(f, "unknown graph '{g}'"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, QueryError>;
