//! # trpq — temporal regular path queries
//!
//! The query language of *Temporal Regular Path Queries* (ICDE 2022): the formal
//! language `NavL[PC,NOI]` ([`ast::Path`]), its fragments and their complexity
//! ([`fragment`]), the practical `MATCH … -/…/- … ON graph` surface syntax
//! ([`parser`]) with its rewriting into the formal language ([`rewrite`]), the
//! reference evaluation algorithms of the paper's appendix ([`eval`]), and the twelve
//! benchmark queries Q1–Q12 ([`queries`]).
//!
//! ```
//! use tgraph::{Interval, ItpgBuilder, Object, TemporalObject};
//! use trpq::ast::{Axis, Path, TestExpr};
//! use trpq::eval::tpg::eval_path;
//!
//! // A person who tests positive at time 5, over a week-long domain.
//! let mut b = ItpgBuilder::new();
//! let eve = b.add_node("eve", "Person").unwrap();
//! b.add_existence(eve, Interval::of(0, 6)).unwrap();
//! b.set_property(eve, "test", "pos", Interval::of(5, 6)).unwrap();
//! let graph = b.domain(Interval::of(0, 6)).build().unwrap();
//!
//! // (Node ∧ test ↦ pos) / P / (Node ∧ ∃): the state immediately before the test.
//! let query = Path::test(TestExpr::Node.and(TestExpr::prop("test", "pos")))
//!     .then(Path::axis(Axis::Prev))
//!     .then(Path::test(TestExpr::Node.and(TestExpr::Exists)));
//! let result = eval_path(&query, &graph.to_tpg());
//! let eve = Object::Node(eve);
//! assert!(result.contains(&trpq::eval::quad_table::Quad::new(
//!     TemporalObject::new(eve, 5),
//!     TemporalObject::new(eve, 4),
//! )));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod eval;
pub mod fragment;
pub mod indicator;
pub mod parser;
pub mod queries;
pub mod rewrite;

pub use ast::{Axis, Path, TestExpr};
pub use error::{QueryError, Result};
pub use fragment::{classify, Complexity, Fragment};
pub use indicator::{classify_repeat, intersect_repeat, repeat_width, RepeatClass};
pub use parser::{parse_match, Constraint, EdgePattern, MatchClause, NodePattern, PatternPart};
pub use rewrite::{rewrite_match, RewrittenQuery, Variable};
