//! Tables of temporal-object pairs — the relations `⟦path⟧_G ⊆ PTO(G)` manipulated by
//! the polynomial-time evaluation algorithm of Theorem C.1.
//!
//! A [`QuadTable`] stores tuples `(o, t, o', t')` as pairs of [`TemporalObject`]s in a
//! canonical sorted, duplicate-free form, and provides the operations the algorithm
//! needs: union, intersection, composition (a sort-merge join on the middle temporal
//! object), and the repetition operators of Algorithms 1 and 2 (exponentiation by
//! squaring).

use tgraph::TemporalObject;

/// A pair `(source, destination)` of temporal objects, i.e. one tuple of `⟦path⟧_G`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Quad {
    /// The starting temporal object `(o, t)`.
    pub src: TemporalObject,
    /// The ending temporal object `(o', t')`.
    pub dst: TemporalObject,
}

impl Quad {
    /// Creates a quad from its two endpoints.
    pub fn new(src: TemporalObject, dst: TemporalObject) -> Self {
        Quad { src, dst }
    }
}

impl From<(TemporalObject, TemporalObject)> for Quad {
    fn from((src, dst): (TemporalObject, TemporalObject)) -> Self {
        Quad { src, dst }
    }
}

/// A set of quads in canonical (sorted, deduplicated) form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuadTable {
    quads: Vec<Quad>,
}

impl QuadTable {
    /// The empty table.
    pub fn empty() -> Self {
        QuadTable { quads: Vec::new() }
    }

    /// Builds a table from arbitrary quads, sorting and deduplicating them.
    pub fn from_quads<I: IntoIterator<Item = Quad>>(quads: I) -> Self {
        let mut v: Vec<Quad> = quads.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        QuadTable { quads: v }
    }

    /// The identity relation `{(o, t, o, t)}` over the given temporal objects
    /// (the evaluation of a test over the objects satisfying it).
    pub fn identity_over<I: IntoIterator<Item = TemporalObject>>(objects: I) -> Self {
        QuadTable::from_quads(objects.into_iter().map(|o| Quad::new(o, o)))
    }

    /// The number of quads.
    pub fn len(&self) -> usize {
        self.quads.len()
    }

    /// True if the table holds no quad.
    pub fn is_empty(&self) -> bool {
        self.quads.is_empty()
    }

    /// The quads in canonical order.
    pub fn quads(&self) -> &[Quad] {
        &self.quads
    }

    /// Iterates over the quads.
    pub fn iter(&self) -> impl Iterator<Item = &Quad> + '_ {
        self.quads.iter()
    }

    /// True if the table contains the quad (binary search over the canonical order).
    pub fn contains(&self, quad: &Quad) -> bool {
        self.quads.binary_search(quad).is_ok()
    }

    /// The distinct source temporal objects; used to evaluate path conditions
    /// `(?path)`, which hold at `(o, t)` iff some quad starts there.
    pub fn sources(&self) -> Vec<TemporalObject> {
        let mut v: Vec<TemporalObject> = self.quads.iter().map(|q| q.src).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The distinct destination temporal objects.
    pub fn destinations(&self) -> Vec<TemporalObject> {
        let mut v: Vec<TemporalObject> = self.quads.iter().map(|q| q.dst).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Set union of two tables.
    pub fn union(&self, other: &QuadTable) -> QuadTable {
        let mut v = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.quads.len() && j < other.quads.len() {
            match self.quads[i].cmp(&other.quads[j]) {
                std::cmp::Ordering::Less => {
                    v.push(self.quads[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    v.push(other.quads[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    v.push(self.quads[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        v.extend_from_slice(&self.quads[i..]);
        v.extend_from_slice(&other.quads[j..]);
        QuadTable { quads: v }
    }

    /// Set intersection of two tables.
    pub fn intersection(&self, other: &QuadTable) -> QuadTable {
        let mut v = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.quads.len() && j < other.quads.len() {
            match self.quads[i].cmp(&other.quads[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    v.push(self.quads[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        QuadTable { quads: v }
    }

    /// Relational composition `self ∘ other`: the semantics of concatenation
    /// `(path1 / path2)`.  Implemented as a sort-merge join on the middle temporal
    /// object, as in the proof of Theorem C.1.
    pub fn compose(&self, other: &QuadTable) -> QuadTable {
        if self.is_empty() || other.is_empty() {
            return QuadTable::empty();
        }
        // Sort the left side by its destination (the join key); the right side is
        // already sorted by its source because the canonical order is (src, dst).
        let mut left: Vec<Quad> = self.quads.clone();
        left.sort_unstable_by_key(|q| (q.dst, q.src));

        let right = &self.quads_of(other);
        let mut out: Vec<Quad> = Vec::new();
        let mut j_start = 0usize;
        for l in &left {
            // Advance the right cursor to the first quad whose source is >= l.dst.
            while j_start < right.len() && right[j_start].src < l.dst {
                j_start += 1;
            }
            let mut j = j_start;
            while j < right.len() && right[j].src == l.dst {
                out.push(Quad::new(l.src, right[j].dst));
                j += 1;
            }
        }
        QuadTable::from_quads(out)
    }

    fn quads_of<'a>(&self, other: &'a QuadTable) -> &'a [Quad] {
        &other.quads
    }

    /// Exact repetition `self^n` (Algorithm 1, COMPUTE-REPETITION): composition of the
    /// table with itself `n` times via exponentiation by squaring.  `self^0` is the
    /// identity over `universe`.
    pub fn repeat_exact(&self, n: u32, universe: &QuadTable) -> QuadTable {
        match n {
            0 => universe.clone(),
            1 => self.clone(),
            _ => {
                let half = self.repeat_exact(n / 2, universe);
                let squared = half.compose(&half);
                if n % 2 == 0 {
                    squared
                } else {
                    squared.compose(self)
                }
            }
        }
    }

    /// Bounded repetition `self[0, n]` (Algorithm 2, COMPUTE-INTERVAL-REPETITION):
    /// the union of `self^k` for `0 ≤ k ≤ n`, computed with O(log n) compositions by
    /// squaring the reflexive table `identity ∪ self`.
    pub fn repeat_up_to(&self, n: u32, universe: &QuadTable) -> QuadTable {
        if n == 0 {
            return universe.clone();
        }
        let step = universe.union(self);
        if n == 1 {
            return step;
        }
        let half = self.repeat_up_to(n / 2, universe);
        let doubled = half.compose(&half);
        if n % 2 == 0 {
            doubled
        } else {
            doubled.compose(&step)
        }
    }

    /// Bounded repetition `self[n, m]`, decomposed as `self[n, n] / self[0, m − n]`
    /// exactly as in the proof of Theorem C.1.  An unsatisfiable range (`n > m`) is
    /// the union over the empty set of repetition counts, i.e. the empty relation.
    pub fn repeat_range(&self, n: u32, m: u32, universe: &QuadTable) -> QuadTable {
        if n > m {
            return QuadTable::empty();
        }
        let exact = self.repeat_exact(n, universe);
        if n == m {
            exact
        } else {
            exact.compose(&self.repeat_up_to(m - n, universe))
        }
    }

    /// Unbounded repetition `self[n, _]`: `self[n, n]` composed with the reflexive
    /// transitive closure `self[0, _]`.  The closure is computed by repeated squaring
    /// until a fixpoint is reached, which needs O(log M) compositions where `M` is the
    /// number of temporal objects (the paper bounds the exponent by `M²`; reachability
    /// over `M` states converges within `M` steps, so the fixpoint computation is
    /// equivalent and faster).
    pub fn repeat_at_least(&self, n: u32, universe: &QuadTable) -> QuadTable {
        let mut closure = universe.union(self);
        loop {
            let next = closure.compose(&closure);
            let next = next.union(&closure);
            if next == closure {
                break;
            }
            closure = next;
        }
        if n == 0 {
            closure
        } else {
            self.repeat_exact(n, universe).compose(&closure)
        }
    }
}

impl FromIterator<Quad> for QuadTable {
    fn from_iter<I: IntoIterator<Item = Quad>>(iter: I) -> Self {
        QuadTable::from_quads(iter)
    }
}

impl IntoIterator for QuadTable {
    type Item = Quad;
    type IntoIter = std::vec::IntoIter<Quad>;

    fn into_iter(self) -> Self::IntoIter {
        self.quads.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{NodeId, Object};

    fn to(i: u32, t: u64) -> TemporalObject {
        TemporalObject::new(Object::Node(NodeId(i)), t)
    }

    fn q(a: (u32, u64), b: (u32, u64)) -> Quad {
        Quad::new(to(a.0, a.1), to(b.0, b.1))
    }

    fn universe(n: u32, times: u64) -> QuadTable {
        QuadTable::identity_over((0..n).flat_map(|i| (0..times).map(move |t| to(i, t))))
    }

    #[test]
    fn canonical_form_dedups_and_sorts() {
        let t = QuadTable::from_quads([q((1, 0), (2, 0)), q((0, 0), (1, 0)), q((1, 0), (2, 0))]);
        assert_eq!(t.len(), 2);
        assert!(t.contains(&q((0, 0), (1, 0))));
        assert!(!t.contains(&q((2, 0), (0, 0))));
        assert_eq!(t.sources(), vec![to(0, 0), to(1, 0)]);
        assert_eq!(t.destinations(), vec![to(1, 0), to(2, 0)]);
    }

    #[test]
    fn union_and_intersection() {
        let a = QuadTable::from_quads([q((0, 0), (1, 0)), q((1, 0), (2, 0))]);
        let b = QuadTable::from_quads([q((1, 0), (2, 0)), q((2, 0), (3, 0))]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersection(&b).quads(), &[q((1, 0), (2, 0))]);
        assert!(a.intersection(&QuadTable::empty()).is_empty());
    }

    #[test]
    fn composition_joins_on_the_middle_object() {
        // 0→1, 1→2, 2→3 composed with itself gives 0→2, 1→3.
        let chain =
            QuadTable::from_quads([q((0, 0), (1, 0)), q((1, 0), (2, 0)), q((2, 0), (3, 0))]);
        let two = chain.compose(&chain);
        assert_eq!(two.quads(), &[q((0, 0), (2, 0)), q((1, 0), (3, 0))]);
        assert!(chain.compose(&QuadTable::empty()).is_empty());
    }

    #[test]
    fn exact_repetition_is_n_fold_composition() {
        let chain = QuadTable::from_quads([
            q((0, 0), (1, 0)),
            q((1, 0), (2, 0)),
            q((2, 0), (3, 0)),
            q((3, 0), (4, 0)),
        ]);
        let uni = universe(5, 1);
        assert_eq!(chain.repeat_exact(0, &uni), uni);
        assert_eq!(chain.repeat_exact(1, &uni), chain);
        assert_eq!(chain.repeat_exact(3, &uni).quads(), &[q((0, 0), (3, 0)), q((1, 0), (4, 0))]);
        assert!(chain.repeat_exact(5, &uni).is_empty());
    }

    #[test]
    fn bounded_repetition_unions_all_lengths() {
        let chain =
            QuadTable::from_quads([q((0, 0), (1, 0)), q((1, 0), (2, 0)), q((2, 0), (3, 0))]);
        let uni = universe(4, 1);
        let up2 = chain.repeat_up_to(2, &uni);
        // Identity + single steps + double steps.
        assert!(up2.contains(&q((0, 0), (0, 0))));
        assert!(up2.contains(&q((0, 0), (1, 0))));
        assert!(up2.contains(&q((0, 0), (2, 0))));
        assert!(!up2.contains(&q((0, 0), (3, 0))));
        let r13 = chain.repeat_range(1, 3, &uni);
        assert!(r13.contains(&q((0, 0), (1, 0))));
        assert!(r13.contains(&q((0, 0), (3, 0))));
        assert!(!r13.contains(&q((0, 0), (0, 0))));
        let r22 = chain.repeat_range(2, 2, &uni);
        assert_eq!(r22, chain.repeat_exact(2, &uni));
    }

    #[test]
    fn unbounded_repetition_reaches_the_transitive_closure() {
        let cycle =
            QuadTable::from_quads([q((0, 0), (1, 0)), q((1, 0), (2, 0)), q((2, 0), (0, 0))]);
        let uni = universe(3, 1);
        let star = cycle.repeat_at_least(0, &uni);
        // Every pair is reachable in a 3-cycle.
        assert_eq!(star.len(), 9);
        let plus = cycle.repeat_at_least(1, &uni);
        assert_eq!(plus.len(), 9);
        let from2 = cycle.repeat_at_least(2, &uni);
        assert!(from2.contains(&q((0, 0), (2, 0))));
        assert!(from2.contains(&q((0, 0), (0, 0))));
    }

    #[test]
    fn unsatisfiable_range_is_empty() {
        // r[3,1] is the union over an empty set of repetition counts: nothing, even
        // when the base relation and the universe are non-trivial.
        let chain = QuadTable::from_quads([q((0, 0), (1, 0)), q((1, 0), (2, 0))]);
        let uni = universe(3, 1);
        assert!(chain.repeat_range(3, 1, &uni).is_empty());
        assert!(chain.repeat_range(1, 0, &uni).is_empty());
        assert!(QuadTable::empty().repeat_range(3, 1, &QuadTable::empty()).is_empty());
    }
}
