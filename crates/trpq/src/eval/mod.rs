//! Reference evaluators for `NavL[PC,NOI]` and its fragments.
//!
//! | Evaluator | Graph | Fragment | Complexity | Paper |
//! |---|---|---|---|---|
//! | [`tpg::eval_path`] | TPG | `NavL[PC,NOI]` | polynomial | Theorem C.1, Algorithms 1–2 |
//! | [`itpg_pc::eval_contains_pc`] | ITPG | `NavL[PC]` | polynomial | Algorithm 3 |
//! | [`itpg_anoi::eval_contains_anoi`] | ITPG | `NavL[ANOI]` | NP (determinised) | Algorithms 6–7 |
//! | [`itpg_full::eval_contains_full`] | ITPG | `NavL[PC,NOI]` | PSPACE | Algorithms 4–5 |
//!
//! These evaluators materialise relations over individual temporal objects and are
//! meant as executable semantics — the ground truth that the interval-based engine in
//! the `engine` crate is validated against — not as the fast path for large graphs.

pub mod itpg_anoi;
pub mod itpg_full;
pub mod itpg_pc;
pub mod quad_table;
pub mod tpg;

use tgraph::{Itpg, TemporalObject};

use crate::ast::Path;
use crate::error::Result;
use crate::fragment::{classify, Fragment};

/// Decides `(src, dst) ∈ ⟦path⟧_I` over an interval-timestamped graph, dispatching to
/// the cheapest evaluator whose fragment contains the expression.
pub fn eval_contains_itpg(
    path: &Path,
    graph: &Itpg,
    src: TemporalObject,
    dst: TemporalObject,
) -> Result<bool> {
    match classify(path) {
        Fragment::Core | Fragment::Pc => itpg_pc::eval_contains_pc(path, graph, src, dst),
        Fragment::Anoi => itpg_anoi::eval_contains_anoi(path, graph, src, dst),
        Fragment::Noi | Fragment::PcAnoi | Fragment::PcNoi => {
            Ok(itpg_full::eval_contains_full(path, graph, src, dst))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Axis, TestExpr};
    use tgraph::{Interval, ItpgBuilder, NodeId, Object};

    fn tiny() -> Itpg {
        let mut b = ItpgBuilder::new();
        let v = b.add_node("v", "Person").unwrap();
        b.add_existence(v, Interval::of(0, 6)).unwrap();
        b.set_property(v, "test", "pos", Interval::of(5, 6)).unwrap();
        b.domain(Interval::of(0, 6)).build().unwrap()
    }

    fn at(t: u64) -> TemporalObject {
        TemporalObject::new(Object::Node(NodeId(0)), t)
    }

    #[test]
    fn dispatch_agrees_across_fragments() {
        let g = tiny();
        // A PC expression, an ANOI expression and a full expression that all express
        // "a positive test happens within three steps in the future".
        let pc = Path::test(TestExpr::path_test(
            Path::axis(Axis::Next)
                .then(Path::axis(Axis::Next))
                .then(Path::axis(Axis::Next))
                .then(Path::test(TestExpr::prop("test", "pos"))),
        ));
        let anoi =
            Path::axis(Axis::Next).repeat(3, 3).then(Path::test(TestExpr::prop("test", "pos")));
        for t in 0..=6u64 {
            let anoi_result = eval_contains_itpg(&anoi, &g, at(t), at(t + 3)).unwrap();
            let expected = t + 3 <= 6 && t + 3 >= 5;
            assert_eq!(anoi_result, expected, "ANOI at {t}");
        }
        assert!(eval_contains_itpg(&pc, &g, at(2), at(2)).unwrap());
        assert!(!eval_contains_itpg(&pc, &g, at(0), at(0)).unwrap());

        // The full evaluator accepts everything, including mixed PC + NOI.
        let mixed = Path::test(TestExpr::path_test(
            Path::axis(Axis::Next).repeat(1, 3).then(Path::test(TestExpr::prop("test", "pos"))),
        ));
        assert!(eval_contains_itpg(&mixed, &g, at(3), at(3)).unwrap());
        assert!(!eval_contains_itpg(&mixed, &g, at(0), at(0)).unwrap());
    }
}
