//! Membership checking for `NavL[ANOI]` over interval-timestamped graphs
//! (Algorithms 6–7, TUPLE-EVAL-SOLVE-ANOI).
//!
//! `NavL[ANOI]` allows numerical occurrence indicators only on axes and forbids path
//! conditions; its evaluation problem over ITPGs is NP-complete (Theorem D.1).  The
//! paper's algorithm is nondeterministic — it guesses the intermediate temporal object
//! of each concatenation — so this implementation determinises it: concatenations
//! enumerate the candidate intermediate objects (with memoization), temporal axes with
//! occurrence indicators become arithmetic on time points, and structural axes with
//! occurrence indicators become bounded step-counted reachability over the node–edge
//! incidence graph.

use std::collections::{HashMap, HashSet};

use tgraph::{Itpg, Object, TemporalObject};

use crate::ast::{Axis, Path};
use crate::error::{QueryError, Result};
use crate::eval::itpg_full::axis_step;
use crate::eval::itpg_pc::check_basic_test;

/// Decides `(src, dst) ∈ ⟦path⟧_I` for an expression of the fragment `NavL[ANOI]`.
///
/// Returns [`QueryError::UnsupportedFragment`] if the expression contains a path
/// condition or an occurrence indicator applied to anything other than an axis.
pub fn eval_contains_anoi(
    path: &Path,
    graph: &Itpg,
    src: TemporalObject,
    dst: TemporalObject,
) -> Result<bool> {
    if path.has_path_condition() {
        return Err(QueryError::UnsupportedFragment {
            expression: path.to_string(),
            reason: "NavL[ANOI] does not allow path conditions".to_owned(),
        });
    }
    if !path.occurrence_indicators_only_on_axes() {
        return Err(QueryError::UnsupportedFragment {
            expression: path.to_string(),
            reason: "NavL[ANOI] only allows occurrence indicators directly on axes".to_owned(),
        });
    }
    let mut solver = AnoiSolver { graph, memo: HashMap::new() };
    Ok(solver.solve(path, src, dst))
}

struct AnoiSolver<'g> {
    graph: &'g Itpg,
    memo: HashMap<(usize, TemporalObject, TemporalObject), bool>,
}

impl<'g> AnoiSolver<'g> {
    fn solve(&mut self, path: &Path, src: TemporalObject, dst: TemporalObject) -> bool {
        let key = (path as *const Path as usize, src, dst);
        if let Some(&cached) = self.memo.get(&key) {
            return cached;
        }
        let result = self.solve_uncached(path, src, dst);
        self.memo.insert(key, result);
        result
    }

    fn solve_uncached(&mut self, path: &Path, src: TemporalObject, dst: TemporalObject) -> bool {
        let g = self.graph;
        match path {
            Path::Test(test) => src == dst && check_basic_test(test, g, src),
            Path::Axis(axis) => axis_step(g, *axis, src, dst),
            Path::Alt(a, b) => self.solve(a, src, dst) || self.solve(b, src, dst),
            Path::Seq(a, b) => {
                let domain = g.domain();
                let objects: Vec<Object> = g.objects().collect();
                for &o in &objects {
                    for t in domain.points() {
                        let mid = TemporalObject::new(o, t);
                        if self.solve(a, src, mid) && self.solve(b, mid, dst) {
                            return true;
                        }
                    }
                }
                false
            }
            Path::Repeat(inner, n, m) => match **inner {
                Path::Axis(axis) => self.repeated_axis(axis, *n, *m, src, dst),
                _ => unreachable!("occurrence indicators on non-axes were rejected up front"),
            },
        }
    }

    /// `axis[n, m]` (or `axis[n, _]` when `m` is `None`).
    fn repeated_axis(
        &self,
        axis: Axis,
        n: u32,
        m: Option<u32>,
        src: TemporalObject,
        dst: TemporalObject,
    ) -> bool {
        let g = self.graph;
        let domain = g.domain();
        if !domain.contains(src.time) || !domain.contains(dst.time) {
            return false;
        }
        match axis {
            // N[n, m]: same object, forward displacement within [n, m].
            Axis::Next => {
                src.object == dst.object
                    && dst.time >= src.time
                    && within_bounds(dst.time - src.time, n, m)
            }
            Axis::Prev => {
                src.object == dst.object
                    && dst.time <= src.time
                    && within_bounds(src.time - dst.time, n, m)
            }
            // F[n, m] / B[n, m]: same time point, and dst is reachable from src in k
            // steps of the (directed) node–edge incidence relation for some k ∈ [n, m].
            Axis::Fwd | Axis::Bwd => {
                if src.time != dst.time {
                    return false;
                }
                self.structural_reachability(axis, n, m, src.object, dst.object)
            }
        }
    }

    /// Step-counted reachability over the incidence graph: node → outgoing edge →
    /// target node for `F`, and node → incoming edge → source node for `B`.
    ///
    /// The search is capped at `n + 2·(|N| + |E|)` steps: any longer witness walk can
    /// be shortened by removing cycles while keeping its length ≥ n (each removed
    /// cycle has length ≤ 2·(|N|+|E|)), so the cap preserves the answer even for
    /// unbounded indicators.
    fn structural_reachability(
        &self,
        axis: Axis,
        n: u32,
        m: Option<u32>,
        src: Object,
        dst: Object,
    ) -> bool {
        let g = self.graph;
        let object_count = (g.num_nodes() + g.num_edges()) as u64;
        let cap = (n as u64).saturating_add(2 * object_count);
        let max_steps = match m {
            Some(m) => (m as u64).min(cap),
            None => cap,
        };
        let mut frontier: HashSet<Object> = HashSet::new();
        frontier.insert(src);
        let mut step = 0u64;
        loop {
            if step >= n as u64 && frontier.contains(&dst) {
                return true;
            }
            if step == max_steps || frontier.is_empty() {
                return false;
            }
            let mut next = HashSet::with_capacity(frontier.len());
            for &o in &frontier {
                match (axis, o) {
                    (Axis::Fwd, Object::Node(v)) => {
                        next.extend(g.out_edges(v).iter().map(|&e| Object::Edge(e)));
                    }
                    (Axis::Fwd, Object::Edge(e)) => {
                        next.insert(Object::Node(g.tgt(e)));
                    }
                    (Axis::Bwd, Object::Node(v)) => {
                        next.extend(g.in_edges(v).iter().map(|&e| Object::Edge(e)));
                    }
                    (Axis::Bwd, Object::Edge(e)) => {
                        next.insert(Object::Node(g.src(e)));
                    }
                    _ => unreachable!("temporal axes are handled arithmetically"),
                }
            }
            frontier = next;
            step += 1;
        }
    }
}

fn within_bounds(delta: u64, n: u32, m: Option<u32>) -> bool {
    delta >= n as u64 && m.is_none_or(|m| delta <= m as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TestExpr;
    use tgraph::{Interval, ItpgBuilder, NodeId};

    fn single_node(domain_end: u64) -> Itpg {
        let mut b = ItpgBuilder::new();
        let v = b.add_node("v", "l").unwrap();
        b.add_existence(v, Interval::of(0, domain_end)).unwrap();
        b.domain(Interval::of(0, domain_end)).build().unwrap()
    }

    fn at(t: u64) -> TemporalObject {
        TemporalObject::new(Object::Node(NodeId(0)), t)
    }

    #[test]
    fn subset_sum_reduction_expression() {
        // Theorem D.1: (N[a1,a1] + N[0,0]) / … / (N[an,an] + N[0,0]) reaches (v, S)
        // from (v, 0) iff some subset of A sums to S.
        let g = single_node(20);
        let choice =
            |a: u32| Path::axis(Axis::Next).repeat(a, a).or(Path::axis(Axis::Next).repeat(0, 0));
        let r = choice(2).then(choice(5)).then(choice(9));
        for s in 0..=20u64 {
            let expected = matches!(s, 0 | 2 | 5 | 7 | 9 | 11 | 14 | 16);
            assert_eq!(
                eval_contains_anoi(&r, &g, at(0), at(s)).unwrap(),
                expected,
                "subset-sum target {s}"
            );
        }
    }

    #[test]
    fn temporal_indicators_are_arithmetic() {
        let g = single_node(50);
        let p = Path::axis(Axis::Prev).repeat(3, 10);
        assert!(eval_contains_anoi(&p, &g, at(20), at(15)).unwrap());
        assert!(eval_contains_anoi(&p, &g, at(20), at(10)).unwrap());
        assert!(!eval_contains_anoi(&p, &g, at(20), at(18)).unwrap());
        assert!(!eval_contains_anoi(&p, &g, at(20), at(9)).unwrap());
        let unbounded = Path::axis(Axis::Next).repeat_at_least(4);
        assert!(eval_contains_anoi(&unbounded, &g, at(1), at(50)).unwrap());
        assert!(!eval_contains_anoi(&unbounded, &g, at(1), at(4)).unwrap());
    }

    #[test]
    fn structural_indicators_count_hops() {
        // A directed chain a → b → c of `follows` edges; F[2,2] goes node → edge →
        // node, F[4,4] goes two edges further.
        let mut b = ItpgBuilder::new();
        let a = b.add_node("a", "Person").unwrap();
        let c = b.add_node("c", "Person").unwrap();
        let d = b.add_node("d", "Person").unwrap();
        let e1 = b.add_edge("e1", "follows", a, c).unwrap();
        let e2 = b.add_edge("e2", "follows", c, d).unwrap();
        for o in
            [Object::Node(a), Object::Node(c), Object::Node(d), Object::Edge(e1), Object::Edge(e2)]
        {
            b.add_existence(o, Interval::of(0, 3)).unwrap();
        }
        let g = b.domain(Interval::of(0, 3)).build().unwrap();
        let src = TemporalObject::new(Object::Node(a), 1);
        let two = Path::axis(Axis::Fwd).repeat(2, 2);
        assert!(eval_contains_anoi(&two, &g, src, TemporalObject::new(Object::Node(c), 1)).unwrap());
        assert!(
            !eval_contains_anoi(&two, &g, src, TemporalObject::new(Object::Node(d), 1)).unwrap()
        );
        let four = Path::axis(Axis::Fwd).repeat(4, 4);
        assert!(
            eval_contains_anoi(&four, &g, src, TemporalObject::new(Object::Node(d), 1)).unwrap()
        );
        let star = Path::axis(Axis::Fwd).repeat_at_least(1);
        assert!(
            eval_contains_anoi(&star, &g, src, TemporalObject::new(Object::Node(d), 1)).unwrap()
        );
        assert!(
            eval_contains_anoi(&star, &g, src, TemporalObject::new(Object::Edge(e2), 1)).unwrap()
        );
        // Backwards from d.
        let back = Path::axis(Axis::Bwd).repeat(2, 4);
        let from_d = TemporalObject::new(Object::Node(d), 2);
        assert!(
            eval_contains_anoi(&back, &g, from_d, TemporalObject::new(Object::Node(c), 2)).unwrap()
        );
        assert!(
            eval_contains_anoi(&back, &g, from_d, TemporalObject::new(Object::Node(a), 2)).unwrap()
        );
        // Times must match for structural navigation.
        assert!(
            !eval_contains_anoi(&two, &g, src, TemporalObject::new(Object::Node(c), 2)).unwrap()
        );
    }

    #[test]
    fn unsatisfiable_indicator_is_empty() {
        // Temporal arithmetic: no displacement satisfies N[3,1].
        let g = single_node(10);
        let p = Path::axis(Axis::Next).repeat(3, 1);
        for d in 0..=5u64 {
            assert!(!eval_contains_anoi(&p, &g, at(0), at(d)).unwrap(), "delta {d}");
        }
        // Structural reachability: F[3,1] finds no witness walk either.
        let mut b = ItpgBuilder::new();
        let a = b.add_node("a", "Person").unwrap();
        let c = b.add_node("c", "Person").unwrap();
        let e = b.add_edge("e", "meets", a, c).unwrap();
        for o in [Object::Node(a), Object::Node(c), Object::Edge(e)] {
            b.add_existence(o, Interval::of(0, 3)).unwrap();
        }
        let g2 = b.domain(Interval::of(0, 3)).build().unwrap();
        let f = Path::axis(Axis::Fwd).repeat(3, 1);
        let src = TemporalObject::new(Object::Node(a), 1);
        for dst in [Object::Node(a), Object::Node(c), Object::Edge(e)] {
            assert!(!eval_contains_anoi(&f, &g2, src, TemporalObject::new(dst, 1)).unwrap());
        }
    }

    #[test]
    fn concatenation_with_tests() {
        let g = single_node(10);
        let p = Path::test(TestExpr::Exists)
            .then(Path::axis(Axis::Next).repeat(2, 4))
            .then(Path::test(TestExpr::TimeLt(8)));
        assert!(eval_contains_anoi(&p, &g, at(3), at(6)).unwrap());
        assert!(!eval_contains_anoi(&p, &g, at(3), at(9)).unwrap()); // lands at ≥ 8
        assert!(!eval_contains_anoi(&p, &g, at(3), at(4)).unwrap()); // too few steps
    }

    #[test]
    fn unsupported_fragments_are_rejected() {
        let g = single_node(5);
        let with_pc = Path::test(TestExpr::path_test(Path::axis(Axis::Next)));
        assert!(matches!(
            eval_contains_anoi(&with_pc, &g, at(0), at(0)),
            Err(QueryError::UnsupportedFragment { .. })
        ));
        let with_general_noi =
            Path::axis(Axis::Next).then(Path::test(TestExpr::Exists)).repeat(0, 2);
        assert!(matches!(
            eval_contains_anoi(&with_general_noi, &g, at(0), at(0)),
            Err(QueryError::UnsupportedFragment { .. })
        ));
    }
}
