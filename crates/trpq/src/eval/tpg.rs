//! Polynomial-time evaluation of full `NavL[PC,NOI]` over point-timestamped graphs
//! (Theorem C.1).
//!
//! The evaluator walks the parse tree of the expression bottom-up.  Each node of the
//! tree is materialised as a [`QuadTable`] with at most `M²` tuples, where
//! `M = |Ω| · (|N| + |E|)` is the number of temporal objects; concatenation is a
//! sort-merge join, union is a merge, and numerical occurrence indicators are handled
//! with exponentiation by squaring (Algorithms 1 and 2 of the paper).

use tgraph::{Object, TemporalObject, Tpg, Value};

use crate::ast::{Axis, Path, TestExpr};
use crate::eval::quad_table::{Quad, QuadTable};

/// Evaluates a `NavL[PC,NOI]` expression over a point-timestamped graph, returning
/// the full relation `⟦path⟧_G` as a table of `(o, t, o', t')` tuples.
pub fn eval_path(path: &Path, graph: &Tpg) -> QuadTable {
    Evaluator::new(graph).path(path)
}

/// Evaluates a test expression over a point-timestamped graph, returning the temporal
/// objects `(o, t)` satisfying it.
pub fn eval_test(test: &TestExpr, graph: &Tpg) -> Vec<TemporalObject> {
    Evaluator::new(graph).test(test)
}

/// Decides the membership problem `Eval(TPG, NavL[PC,NOI])`: is `(src, dst) ∈ ⟦path⟧_G`?
pub fn eval_contains(path: &Path, graph: &Tpg, src: TemporalObject, dst: TemporalObject) -> bool {
    eval_path(path, graph).contains(&Quad::new(src, dst))
}

struct Evaluator<'g> {
    graph: &'g Tpg,
    /// The identity relation over all temporal objects of the graph; reused as the
    /// base case of repetition operators.
    identity: QuadTable,
    /// All temporal objects of the graph in canonical order.
    universe: Vec<TemporalObject>,
}

impl<'g> Evaluator<'g> {
    fn new(graph: &'g Tpg) -> Self {
        let universe: Vec<TemporalObject> = graph.temporal_objects().collect();
        let identity = QuadTable::identity_over(universe.iter().copied());
        Evaluator { graph, identity, universe }
    }

    fn path(&self, path: &Path) -> QuadTable {
        match path {
            Path::Test(test) => QuadTable::identity_over(self.test(test)),
            Path::Axis(axis) => self.axis(*axis),
            Path::Seq(a, b) => self.path(a).compose(&self.path(b)),
            Path::Alt(a, b) => self.path(a).union(&self.path(b)),
            Path::Repeat(p, n, Some(m)) => self.path(p).repeat_range(*n, *m, &self.identity),
            Path::Repeat(p, n, None) => self.path(p).repeat_at_least(*n, &self.identity),
        }
    }

    /// Evaluation of the navigation axes, exactly as defined in Section V.B.  Note
    /// that the axes do not require objects to exist at the traversed time points.
    fn axis(&self, axis: Axis) -> QuadTable {
        let g = self.graph;
        let domain = g.domain();
        let mut quads = Vec::new();
        match axis {
            Axis::Fwd => {
                for e in g.edge_ids() {
                    let (src, tgt) = (g.src(e), g.tgt(e));
                    for t in domain.points() {
                        quads.push(Quad::new(
                            TemporalObject::new(Object::Node(src), t),
                            TemporalObject::new(Object::Edge(e), t),
                        ));
                        quads.push(Quad::new(
                            TemporalObject::new(Object::Edge(e), t),
                            TemporalObject::new(Object::Node(tgt), t),
                        ));
                    }
                }
            }
            Axis::Bwd => {
                for e in g.edge_ids() {
                    let (src, tgt) = (g.src(e), g.tgt(e));
                    for t in domain.points() {
                        quads.push(Quad::new(
                            TemporalObject::new(Object::Node(tgt), t),
                            TemporalObject::new(Object::Edge(e), t),
                        ));
                        quads.push(Quad::new(
                            TemporalObject::new(Object::Edge(e), t),
                            TemporalObject::new(Object::Node(src), t),
                        ));
                    }
                }
            }
            Axis::Next => {
                for o in g.objects() {
                    for t in domain.start()..domain.end() {
                        quads.push(Quad::new(
                            TemporalObject::new(o, t),
                            TemporalObject::new(o, t + 1),
                        ));
                    }
                }
            }
            Axis::Prev => {
                for o in g.objects() {
                    for t in domain.start()..domain.end() {
                        quads.push(Quad::new(
                            TemporalObject::new(o, t + 1),
                            TemporalObject::new(o, t),
                        ));
                    }
                }
            }
        }
        QuadTable::from_quads(quads)
    }

    fn test(&self, test: &TestExpr) -> Vec<TemporalObject> {
        match test {
            TestExpr::And(a, b) => {
                let left = self.test(a);
                let right = self.test(b);
                sorted_intersection(&left, &right)
            }
            TestExpr::Or(a, b) => {
                let mut v = self.test(a);
                v.extend(self.test(b));
                v.sort_unstable();
                v.dedup();
                v
            }
            TestExpr::Not(a) => {
                let inner = self.test(a);
                self.universe.iter().copied().filter(|o| inner.binary_search(o).is_err()).collect()
            }
            TestExpr::PathTest(p) => self.path(p).sources(),
            basic => self
                .universe
                .iter()
                .copied()
                .filter(|to| self.satisfies_basic(basic, *to))
                .collect(),
        }
    }

    fn satisfies_basic(&self, test: &TestExpr, to: TemporalObject) -> bool {
        let g = self.graph;
        match test {
            TestExpr::Node => to.object.is_node(),
            TestExpr::Edge => to.object.is_edge(),
            TestExpr::Label(l) => g.label(to.object) == l,
            TestExpr::Prop(p, v) => g.prop_value(to.object, p, to.time) == Some(v),
            TestExpr::Exists => g.exists(to.object, to.time),
            TestExpr::TimeLt(k) => to.time < *k,
            _ => unreachable!("composite tests are handled by Evaluator::test"),
        }
    }
}

/// Checks whether a single temporal object satisfies a test (the relation
/// `(o, t) |= test` of Section V.B).  Composite tests recurse; path conditions fall
/// back to a full evaluation of the inner path.
pub fn satisfies(test: &TestExpr, graph: &Tpg, to: TemporalObject) -> bool {
    match test {
        TestExpr::Node => to.object.is_node(),
        TestExpr::Edge => to.object.is_edge(),
        TestExpr::Label(l) => graph.label(to.object) == l,
        TestExpr::Prop(p, v) => graph.prop_value(to.object, p, to.time) == Some(v as &Value),
        TestExpr::Exists => graph.exists(to.object, to.time),
        TestExpr::TimeLt(k) => to.time < *k,
        TestExpr::And(a, b) => satisfies(a, graph, to) && satisfies(b, graph, to),
        TestExpr::Or(a, b) => satisfies(a, graph, to) || satisfies(b, graph, to),
        TestExpr::Not(a) => !satisfies(a, graph, to),
        TestExpr::PathTest(p) => eval_path(p, graph).iter().any(|q| q.src == to),
    }
}

fn sorted_intersection(a: &[TemporalObject], b: &[TemporalObject]) -> Vec<TemporalObject> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{Interval, ItpgBuilder, NodeId, Tpg};

    /// A small chain Person -(meets)-> Person -(visits)-> Room over a handful of time
    /// points, with one property change.
    fn sample() -> Tpg {
        let mut b = ItpgBuilder::new();
        let a = b.add_node("a", "Person").unwrap();
        let c = b.add_node("c", "Person").unwrap();
        let r = b.add_node("r", "Room").unwrap();
        let m = b.add_edge("m", "meets", a, c).unwrap();
        let v = b.add_edge("v", "visits", c, r).unwrap();
        b.add_existence(a, Interval::of(1, 6)).unwrap();
        b.add_existence(c, Interval::of(1, 8)).unwrap();
        b.add_existence(r, Interval::of(2, 8)).unwrap();
        b.add_existence(m, Interval::of(2, 3)).unwrap();
        b.add_existence(v, Interval::of(4, 5)).unwrap();
        b.set_property(a, "risk", "low", Interval::of(1, 3)).unwrap();
        b.set_property(a, "risk", "high", Interval::of(4, 6)).unwrap();
        b.set_property(c, "test", "pos", Interval::of(7, 8)).unwrap();
        b.domain(Interval::of(1, 8)).build().unwrap().to_tpg()
    }

    fn node(g: &Tpg, name: &str) -> Object {
        Object::Node(g.node_by_name(name).unwrap())
    }

    fn edge(g: &Tpg, name: &str) -> Object {
        Object::Edge(g.edge_by_name(name).unwrap())
    }

    #[test]
    fn axis_semantics_follow_the_definition() {
        let g = sample();
        let fwd = eval_path(&Path::axis(Axis::Fwd), &g);
        // F relates (src, t) to (e, t) and (e, t) to (tgt, t) for every t in Ω,
        // regardless of existence.
        let m = edge(&g, "m");
        let a = node(&g, "a");
        let c = node(&g, "c");
        assert!(fwd.contains(&Quad::new(TemporalObject::new(a, 1), TemporalObject::new(m, 1))));
        assert!(fwd.contains(&Quad::new(TemporalObject::new(m, 8), TemporalObject::new(c, 8))));
        assert!(!fwd.contains(&Quad::new(TemporalObject::new(c, 1), TemporalObject::new(m, 1))));
        // 2 edges × 8 time points × 2 hops.
        assert_eq!(fwd.len(), 2 * 8 * 2);

        let next = eval_path(&Path::axis(Axis::Next), &g);
        assert!(next.contains(&Quad::new(TemporalObject::new(a, 1), TemporalObject::new(a, 2))));
        assert!(!next.contains(&Quad::new(TemporalObject::new(a, 8), TemporalObject::new(a, 9))));
        // 5 objects × 7 transitions.
        assert_eq!(next.len(), 5 * 7);

        let prev = eval_path(&Path::axis(Axis::Prev), &g);
        assert!(prev.contains(&Quad::new(TemporalObject::new(a, 2), TemporalObject::new(a, 1))));
        assert_eq!(prev.len(), 5 * 7);
    }

    #[test]
    fn tests_select_the_right_temporal_objects() {
        let g = sample();
        let person_low = eval_test(
            &TestExpr::Node.and(TestExpr::label("Person")).and(TestExpr::prop("risk", "low")),
            &g,
        );
        let a = node(&g, "a");
        assert_eq!(
            person_low,
            vec![TemporalObject::new(a, 1), TemporalObject::new(a, 2), TemporalObject::new(a, 3),]
        );

        let exists_rooms = eval_test(&TestExpr::label("Room").and(TestExpr::Exists), &g);
        assert_eq!(exists_rooms.len(), 7); // r exists on [2,8].

        let lt3 = eval_test(&TestExpr::TimeLt(3), &g);
        assert_eq!(lt3.len(), 5 * 2); // every object at times 1 and 2.

        // Negation complements within all temporal objects.
        let not_node = eval_test(&TestExpr::Node.not(), &g);
        assert_eq!(not_node.len(), 2 * 8);
    }

    #[test]
    fn concatenation_and_union() {
        let g = sample();
        // Person with risk high at t, then one FWD step onto the meets edge.
        let p = Path::test(TestExpr::prop("risk", "high"))
            .then(Path::axis(Axis::Fwd))
            .then(Path::test(TestExpr::label("meets")));
        let table = eval_path(&p, &g);
        let a = node(&g, "a");
        let m = edge(&g, "m");
        // a is high risk on [4,6]; FWD onto m keeps the time.
        assert_eq!(
            table.quads(),
            &[
                Quad::new(TemporalObject::new(a, 4), TemporalObject::new(m, 4)),
                Quad::new(TemporalObject::new(a, 5), TemporalObject::new(m, 5)),
                Quad::new(TemporalObject::new(a, 6), TemporalObject::new(m, 6)),
            ]
        );

        let u = Path::axis(Axis::Next).or(Path::axis(Axis::Prev));
        let tbl = eval_path(&u, &g);
        assert_eq!(tbl.len(), 2 * 5 * 7);
    }

    #[test]
    fn repetition_with_existence_walks_time() {
        let g = sample();
        let c = node(&g, "c");
        // (N/∃)[0,_] starting from a positive test walks forward only through times
        // where the object exists.
        let p = Path::test(TestExpr::prop("test", "pos"))
            .then(Path::axis(Axis::Prev).then(Path::test(TestExpr::Exists)).star());
        let table = eval_path(&p, &g);
        // c tests positive at 7 and 8; PREV* reaches every earlier time ≥ 1.
        assert!(table.contains(&Quad::new(TemporalObject::new(c, 7), TemporalObject::new(c, 1))));
        assert!(table.contains(&Quad::new(TemporalObject::new(c, 8), TemporalObject::new(c, 8))));
        assert!(table.contains(&Quad::new(TemporalObject::new(c, 7), TemporalObject::new(c, 7))));
        assert!(!table.contains(&Quad::new(TemporalObject::new(c, 7), TemporalObject::new(c, 8))));
        let sources = table.sources();
        assert_eq!(sources, vec![TemporalObject::new(c, 7), TemporalObject::new(c, 8)]);
    }

    #[test]
    fn bounded_repetition_counts_steps() {
        let g = sample();
        let a = node(&g, "a");
        // NEXT[2,3] moves forward between 2 and 3 time units.
        let p = Path::axis(Axis::Next).repeat(2, 3);
        let table = eval_path(&p, &g);
        assert!(table.contains(&Quad::new(TemporalObject::new(a, 1), TemporalObject::new(a, 3))));
        assert!(table.contains(&Quad::new(TemporalObject::new(a, 1), TemporalObject::new(a, 4))));
        assert!(!table.contains(&Quad::new(TemporalObject::new(a, 1), TemporalObject::new(a, 2))));
        assert!(!table.contains(&Quad::new(TemporalObject::new(a, 1), TemporalObject::new(a, 5))));
    }

    #[test]
    fn unsatisfiable_indicator_is_empty() {
        // NEXT[3,1] relates nothing over the whole relation, and composes to nothing.
        let g = sample();
        let p = Path::axis(Axis::Next).repeat(3, 1);
        assert!(eval_path(&p, &g).is_empty());
        let seq = Path::test(TestExpr::label("Person")).then(p);
        assert!(eval_path(&seq, &g).is_empty());
    }

    #[test]
    fn path_conditions_inspect_the_future() {
        let g = sample();
        // Temporal objects from which a positive test is reachable by moving forward
        // in time on the same object: (? (N/∃)[0,_] / test ↦ pos ).
        let cond = TestExpr::path_test(
            Path::axis(Axis::Next)
                .then(Path::test(TestExpr::Exists))
                .star()
                .then(Path::test(TestExpr::prop("test", "pos"))),
        );
        let sat = eval_test(&cond, &g);
        let c = node(&g, "c");
        // Only node c satisfies it, at every time from 1 to 8.
        assert_eq!(sat.len(), 8);
        assert!(sat.iter().all(|to| to.object == c));
        // And the negation holds everywhere else.
        let unsat = eval_test(&cond.not(), &g);
        assert_eq!(unsat.len(), 5 * 8 - 8);
    }

    #[test]
    fn membership_helper_and_pointwise_satisfaction_agree() {
        let g = sample();
        let a = node(&g, "a");
        let test = TestExpr::prop("risk", "high").and(TestExpr::Exists);
        for t in 1..=8 {
            let to = TemporalObject::new(a, t);
            let direct = satisfies(&test, &g, to);
            let via_eval = eval_test(&test, &g).contains(&to);
            assert_eq!(direct, via_eval, "disagreement at time {t}");
        }
        let p = Path::axis(Axis::Next);
        assert!(eval_contains(&p, &g, TemporalObject::new(a, 1), TemporalObject::new(a, 2)));
        assert!(!eval_contains(&p, &g, TemporalObject::new(a, 2), TemporalObject::new(a, 1)));
    }

    #[test]
    fn room_availability_example_from_section_v() {
        // (Room ∧ ¬∃)/(N/¬∃)[0,_]/(Room ∧ ∃): from a time where the room is
        // unavailable, find the next time it becomes available.
        let mut b = ItpgBuilder::new();
        let r = b.add_node("room", "Room").unwrap();
        b.add_existence(r, Interval::of(1, 2)).unwrap();
        b.add_existence(r, Interval::of(6, 8)).unwrap();
        let g = b.domain(Interval::of(1, 8)).build().unwrap().to_tpg();
        let room = Object::Node(NodeId(0));

        let p = Path::test(TestExpr::label("Room").and(TestExpr::Exists.not()))
            .then(Path::axis(Axis::Next).then(Path::test(TestExpr::Exists.not())).star())
            .then(Path::axis(Axis::Next))
            .then(Path::test(TestExpr::label("Room").and(TestExpr::Exists)));
        let table = eval_path(&p, &g);
        // From time 3 (unavailable) the room becomes available at 6.
        assert!(
            table.contains(&Quad::new(TemporalObject::new(room, 3), TemporalObject::new(room, 6)))
        );
        assert!(
            table.contains(&Quad::new(TemporalObject::new(room, 5), TemporalObject::new(room, 6)))
        );
        assert!(
            !table.contains(&Quad::new(TemporalObject::new(room, 3), TemporalObject::new(room, 7)))
        );
        assert!(
            !table.contains(&Quad::new(TemporalObject::new(room, 1), TemporalObject::new(room, 6)))
        );
    }
}
