//! Polynomial-time membership checking for `NavL[PC]` over interval-timestamped
//! graphs (Algorithm 3, TUPLE-EVAL-SOLVE-ONLY-PC).
//!
//! In the absence of numerical occurrence indicators, navigation moves at most one
//! time unit per `N`/`P` symbol, so the intermediate time points of a concatenation
//! lie within `‖r1‖` of the start and `‖r2‖` of the end.  The algorithm recurses over
//! the expression with a memo table keyed by `(sub-expression, source, destination)`,
//! which keeps the total work polynomial.

use std::collections::HashMap;

use tgraph::{Itpg, Object, TemporalObject, Time};

use crate::ast::{Axis, Path, TestExpr};
use crate::error::QueryError;

/// Decides `(src, dst) ∈ ⟦path⟧_I` for an expression of the fragment `NavL[PC]`.
///
/// Returns [`QueryError::UnsupportedFragment`] if the expression contains a numerical
/// occurrence indicator.
pub fn eval_contains_pc(
    path: &Path,
    graph: &Itpg,
    src: TemporalObject,
    dst: TemporalObject,
) -> Result<bool, QueryError> {
    if path.has_occurrence_indicator() {
        return Err(QueryError::UnsupportedFragment {
            expression: path.to_string(),
            reason: "NavL[PC] does not allow numerical occurrence indicators".to_owned(),
        });
    }
    let mut solver = PcSolver { graph, memo: HashMap::new() };
    Ok(solver.solve(path, src, dst))
}

/// Checks `(o, t) |= test` over an ITPG for tests *without* path conditions
/// (CHECK-TEST-NOPC in the paper).  Path conditions are rejected with an error.
pub fn check_test_no_pc(
    test: &TestExpr,
    graph: &Itpg,
    to: TemporalObject,
) -> Result<bool, QueryError> {
    if test.has_path_condition() {
        return Err(QueryError::UnsupportedFragment {
            expression: test.to_string(),
            reason: "test contains a path condition".to_owned(),
        });
    }
    Ok(check_basic_test(test, graph, to))
}

pub(crate) fn check_basic_test(test: &TestExpr, graph: &Itpg, to: TemporalObject) -> bool {
    match test {
        TestExpr::Node => to.object.is_node(),
        TestExpr::Edge => to.object.is_edge(),
        TestExpr::Label(l) => graph.label(to.object) == l,
        TestExpr::Prop(p, v) => graph.prop_value_at(to.object, p, to.time) == Some(v),
        TestExpr::Exists => graph.exists_at(to.object, to.time),
        TestExpr::TimeLt(k) => to.time < *k,
        TestExpr::And(a, b) => check_basic_test(a, graph, to) && check_basic_test(b, graph, to),
        TestExpr::Or(a, b) => check_basic_test(a, graph, to) || check_basic_test(b, graph, to),
        TestExpr::Not(a) => !check_basic_test(a, graph, to),
        TestExpr::PathTest(_) => {
            unreachable!("path conditions must be handled by the enclosing solver")
        }
    }
}

struct PcSolver<'g> {
    graph: &'g Itpg,
    /// Memo table keyed by the address of the sub-expression and the pair of temporal
    /// objects; sub-expressions are borrowed from the caller's AST, so their addresses
    /// are stable for the lifetime of the solver.
    memo: HashMap<(usize, TemporalObject, TemporalObject), bool>,
}

impl<'g> PcSolver<'g> {
    fn solve(&mut self, path: &Path, src: TemporalObject, dst: TemporalObject) -> bool {
        let key = (path as *const Path as usize, src, dst);
        if let Some(&cached) = self.memo.get(&key) {
            return cached;
        }
        let result = self.solve_uncached(path, src, dst);
        self.memo.insert(key, result);
        result
    }

    fn solve_uncached(&mut self, path: &Path, src: TemporalObject, dst: TemporalObject) -> bool {
        let g = self.graph;
        match path {
            Path::Test(test) => src == dst && self.check_test(test, src),
            Path::Axis(Axis::Next) => {
                src.object == dst.object
                    && dst.time == src.time + 1
                    && g.domain().contains(dst.time)
            }
            Path::Axis(Axis::Prev) => {
                src.object == dst.object
                    && src.time > 0
                    && dst.time + 1 == src.time
                    && g.domain().contains(dst.time)
            }
            Path::Axis(Axis::Fwd) => {
                src.time == dst.time
                    && match (src.object, dst.object) {
                        (Object::Node(n), Object::Edge(e)) => g.src(e) == n,
                        (Object::Edge(e), Object::Node(n)) => g.tgt(e) == n,
                        _ => false,
                    }
            }
            Path::Axis(Axis::Bwd) => {
                src.time == dst.time
                    && match (src.object, dst.object) {
                        (Object::Node(n), Object::Edge(e)) => g.tgt(e) == n,
                        (Object::Edge(e), Object::Node(n)) => g.src(e) == n,
                        _ => false,
                    }
            }
            Path::Alt(a, b) => self.solve(a, src, dst) || self.solve(b, src, dst),
            Path::Seq(a, b) => {
                // The intermediate time point is within the number of temporal axes of
                // each side (finite because the fragment has no occurrence indicators).
                let la = a.max_temporal_steps().unwrap_or(u64::MAX);
                let lb = b.max_temporal_steps().unwrap_or(u64::MAX);
                let domain = g.domain();
                let lo = src
                    .time
                    .saturating_sub(la)
                    .max(dst.time.saturating_sub(lb))
                    .max(domain.start());
                let hi =
                    src.time.saturating_add(la).min(dst.time.saturating_add(lb)).min(domain.end());
                if lo > hi {
                    return false;
                }
                let objects: Vec<Object> = g.objects().collect();
                for t in lo..=hi {
                    for &o in &objects {
                        let mid = TemporalObject::new(o, t);
                        if self.solve(a, src, mid) && self.solve(b, mid, dst) {
                            return true;
                        }
                    }
                }
                false
            }
            Path::Repeat(_, _, _) => {
                unreachable!("occurrence indicators were rejected before solving")
            }
        }
    }

    fn check_test(&mut self, test: &TestExpr, to: TemporalObject) -> bool {
        match test {
            TestExpr::And(a, b) => self.check_test(a, to) && self.check_test(b, to),
            TestExpr::Or(a, b) => self.check_test(a, to) || self.check_test(b, to),
            TestExpr::Not(a) => !self.check_test(a, to),
            TestExpr::PathTest(p) => {
                // (?p) holds iff some temporal object is reachable from `to` through p.
                // Without occurrence indicators the reachable times lie within ‖p‖ of
                // the current time.
                let span = p.max_temporal_steps().unwrap_or(u64::MAX);
                let domain = self.graph.domain();
                let lo = to.time.saturating_sub(span).max(domain.start());
                let hi = to.time.saturating_add(span).min(domain.end());
                let objects: Vec<Object> = self.graph.objects().collect();
                for t in lo..=hi {
                    for &o in &objects {
                        if self.solve(p, to, TemporalObject::new(o, t)) {
                            return true;
                        }
                    }
                }
                false
            }
            basic => check_basic_test(basic, self.graph, to),
        }
    }
}

/// Enumerates the full relation `⟦path⟧_I` for a `NavL[PC]` expression by testing every
/// pair of temporal objects whose times are compatible with the expression's temporal
/// span.  Intended for validation on small graphs; the membership check
/// [`eval_contains_pc`] is the primitive studied by the paper.
pub fn eval_pairs_pc(
    path: &Path,
    graph: &Itpg,
) -> Result<Vec<(TemporalObject, TemporalObject)>, QueryError> {
    if path.has_occurrence_indicator() {
        return Err(QueryError::UnsupportedFragment {
            expression: path.to_string(),
            reason: "NavL[PC] does not allow numerical occurrence indicators".to_owned(),
        });
    }
    let mut solver = PcSolver { graph, memo: HashMap::new() };
    let span = path.max_temporal_steps().unwrap_or(u64::MAX);
    let domain = graph.domain();
    let objects: Vec<Object> = graph.objects().collect();
    let mut out = Vec::new();
    for &o1 in &objects {
        for t1 in domain.points() {
            let src = TemporalObject::new(o1, t1);
            let lo = t1.saturating_sub(span).max(domain.start());
            let hi: Time = t1.saturating_add(span).min(domain.end());
            for &o2 in &objects {
                for t2 in lo..=hi {
                    let dst = TemporalObject::new(o2, t2);
                    if solver.solve(path, src, dst) {
                        out.push((src, dst));
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{Interval, ItpgBuilder};

    fn sample() -> Itpg {
        let mut b = ItpgBuilder::new();
        let a = b.add_node("a", "Person").unwrap();
        let c = b.add_node("c", "Person").unwrap();
        let m = b.add_edge("m", "meets", a, c).unwrap();
        b.add_existence(a, Interval::of(1, 6)).unwrap();
        b.add_existence(c, Interval::of(1, 8)).unwrap();
        b.add_existence(m, Interval::of(2, 3)).unwrap();
        b.set_property(c, "test", "pos", Interval::of(7, 8)).unwrap();
        b.domain(Interval::of(1, 8)).build().unwrap()
    }

    fn node(g: &Itpg, name: &str) -> Object {
        Object::Node(g.node_by_name(name).unwrap())
    }

    fn edge(g: &Itpg, name: &str) -> Object {
        Object::Edge(g.edge_by_name(name).unwrap())
    }

    #[test]
    fn axes_over_itpg() {
        let g = sample();
        let a = node(&g, "a");
        let c = node(&g, "c");
        let m = edge(&g, "m");
        let fwd = Path::axis(Axis::Fwd);
        assert!(eval_contains_pc(&fwd, &g, TemporalObject::new(a, 2), TemporalObject::new(m, 2))
            .unwrap());
        assert!(eval_contains_pc(&fwd, &g, TemporalObject::new(m, 2), TemporalObject::new(c, 2))
            .unwrap());
        assert!(!eval_contains_pc(&fwd, &g, TemporalObject::new(c, 2), TemporalObject::new(m, 2))
            .unwrap());
        let bwd = Path::axis(Axis::Bwd);
        assert!(eval_contains_pc(&bwd, &g, TemporalObject::new(c, 5), TemporalObject::new(m, 5))
            .unwrap());
        let next = Path::axis(Axis::Next);
        assert!(eval_contains_pc(&next, &g, TemporalObject::new(a, 3), TemporalObject::new(a, 4))
            .unwrap());
        assert!(!eval_contains_pc(&next, &g, TemporalObject::new(a, 8), TemporalObject::new(a, 9))
            .unwrap());
        let prev = Path::axis(Axis::Prev);
        assert!(eval_contains_pc(&prev, &g, TemporalObject::new(a, 3), TemporalObject::new(a, 2))
            .unwrap());
    }

    #[test]
    fn q6_shape_prev_from_positive_test() {
        // (Node ∧ Person ∧ test ↦ pos)/P/(Node ∧ ∃)
        let g = sample();
        let c = node(&g, "c");
        let q6 = Path::test(
            TestExpr::Node.and(TestExpr::label("Person")).and(TestExpr::prop("test", "pos")),
        )
        .then(Path::axis(Axis::Prev))
        .then(Path::test(TestExpr::Node.and(TestExpr::Exists)));
        assert!(eval_contains_pc(&q6, &g, TemporalObject::new(c, 7), TemporalObject::new(c, 6))
            .unwrap());
        assert!(eval_contains_pc(&q6, &g, TemporalObject::new(c, 8), TemporalObject::new(c, 7))
            .unwrap());
        assert!(!eval_contains_pc(&q6, &g, TemporalObject::new(c, 6), TemporalObject::new(c, 5))
            .unwrap());
    }

    #[test]
    fn path_conditions_are_supported() {
        let g = sample();
        let a = node(&g, "a");
        let c = node(&g, "c");
        // Objects that can reach a `meets` edge in one forward step.
        let cond = Path::test(TestExpr::path_test(
            Path::axis(Axis::Fwd).then(Path::test(TestExpr::label("meets").and(TestExpr::Exists))),
        ));
        assert!(eval_contains_pc(&cond, &g, TemporalObject::new(a, 2), TemporalObject::new(a, 2))
            .unwrap());
        // At time 5 the meets edge no longer exists.
        assert!(!eval_contains_pc(&cond, &g, TemporalObject::new(a, 5), TemporalObject::new(a, 5))
            .unwrap());
        // c is the target, not the source, of the edge.
        assert!(!eval_contains_pc(&cond, &g, TemporalObject::new(c, 2), TemporalObject::new(c, 2))
            .unwrap());
    }

    #[test]
    fn occurrence_indicators_are_rejected() {
        let g = sample();
        let a = node(&g, "a");
        let p = Path::axis(Axis::Next).repeat(0, 3);
        let err = eval_contains_pc(&p, &g, TemporalObject::new(a, 1), TemporalObject::new(a, 2))
            .unwrap_err();
        assert!(matches!(err, QueryError::UnsupportedFragment { .. }));
        assert!(check_test_no_pc(
            &TestExpr::path_test(Path::axis(Axis::Next)),
            &g,
            TemporalObject::new(a, 1)
        )
        .is_err());
    }

    #[test]
    fn enumeration_matches_membership() {
        let g = sample();
        let p = Path::test(TestExpr::label("Person").and(TestExpr::Exists))
            .then(Path::axis(Axis::Fwd))
            .then(Path::test(TestExpr::Exists));
        let pairs = eval_pairs_pc(&p, &g).unwrap();
        for (src, dst) in &pairs {
            assert!(eval_contains_pc(&p, &g, *src, *dst).unwrap());
        }
        // The meets edge exists on [2,3] with source a.
        let a = node(&g, "a");
        let m = edge(&g, "m");
        assert!(pairs.contains(&(TemporalObject::new(a, 2), TemporalObject::new(m, 2))));
        assert!(pairs.contains(&(TemporalObject::new(a, 3), TemporalObject::new(m, 3))));
        assert_eq!(pairs.len(), 2);
    }
}
