//! Membership checking for the full language `NavL[PC,NOI]` over interval-timestamped
//! graphs (Algorithms 4–5, TUPLE-EVAL-SOLVE).
//!
//! The evaluation problem over ITPGs for the full language is PSPACE-complete
//! (Theorem V.1), so no polynomial-time algorithm is expected.  This module implements
//! the paper's recursive algorithm: concatenations and repetitions iterate over
//! candidate intermediate temporal objects, and numerical occurrence indicators are
//! decomposed by halving (`r[n,n]` as `r[⌊n/2⌋,⌊n/2⌋]` twice, `r[0,m]` as
//! `r[0,⌊m/2⌋]` twice), so the recursion depth stays polynomial in the input size.
//!
//! As a practical concession the implementation memoizes sub-results keyed by
//! `(sub-expression, bounds, source, destination)`; this does not change the answers
//! and keeps the evaluator usable on the small graphs used for validation.  Unbounded
//! repetitions `r[n,_]` are capped at `n + M` steps, where `M = |Ω| · (|N| + |E|)` is
//! the number of temporal objects: `r[0,_]` is reachability over at most `M` states,
//! so a witness of length at most `M` always exists (a slight strengthening of the
//! `M²` bound used in the paper's proof).

use std::collections::HashMap;

use tgraph::{Itpg, Object, TemporalObject};

use crate::ast::{Axis, Path, TestExpr};
use crate::error::Result;

/// Decides `(src, dst) ∈ ⟦path⟧_I` for an arbitrary `NavL[PC,NOI]` expression.
pub fn eval_contains_full(
    path: &Path,
    graph: &Itpg,
    src: TemporalObject,
    dst: TemporalObject,
) -> bool {
    let mut solver = FullSolver::new(graph);
    solver.solve(path, src, dst)
}

/// Infallible variant of [`eval_contains_full`] wrapped in a `Result` for API symmetry
/// with the fragment-specific evaluators.
pub fn try_eval_contains_full(
    path: &Path,
    graph: &Itpg,
    src: TemporalObject,
    dst: TemporalObject,
) -> Result<bool> {
    Ok(eval_contains_full(path, graph, src, dst))
}

#[derive(PartialEq, Eq, Hash, Clone, Copy)]
struct RepeatKey {
    expr: usize,
    lo: u32,
    hi: u32,
    src: TemporalObject,
    dst: TemporalObject,
}

struct FullSolver<'g> {
    graph: &'g Itpg,
    objects: Vec<Object>,
    memo: HashMap<(usize, TemporalObject, TemporalObject), bool>,
    repeat_memo: HashMap<RepeatKey, bool>,
}

impl<'g> FullSolver<'g> {
    fn new(graph: &'g Itpg) -> Self {
        FullSolver {
            graph,
            objects: graph.objects().collect(),
            memo: HashMap::new(),
            repeat_memo: HashMap::new(),
        }
    }

    /// `M = |Ω| · (|N| + |E|)`, the number of temporal objects.
    fn temporal_object_count(&self) -> u64 {
        self.graph.domain().num_points() * self.objects.len() as u64
    }

    fn solve(&mut self, path: &Path, src: TemporalObject, dst: TemporalObject) -> bool {
        let key = (path as *const Path as usize, src, dst);
        if let Some(&cached) = self.memo.get(&key) {
            return cached;
        }
        let result = self.solve_uncached(path, src, dst);
        self.memo.insert(key, result);
        result
    }

    fn solve_uncached(&mut self, path: &Path, src: TemporalObject, dst: TemporalObject) -> bool {
        let g = self.graph;
        match path {
            Path::Test(test) => src == dst && self.check_test(test, src),
            Path::Axis(axis) => axis_step(g, *axis, src, dst),
            Path::Alt(a, b) => self.solve(a, src, dst) || self.solve(b, src, dst),
            Path::Seq(a, b) => self.split(src, dst, |solver, mid| {
                solver.solve(a, src, mid) && solver.solve(b, mid, dst)
            }),
            Path::Repeat(inner, n, Some(m)) => self.solve_repeat(inner, *n, *m, src, dst),
            Path::Repeat(inner, n, None) => {
                let cap = (*n as u64).saturating_add(self.temporal_object_count());
                let m = u32::try_from(cap).unwrap_or(u32::MAX);
                self.solve_repeat(inner, *n, m, src, dst)
            }
        }
    }

    /// Tries every temporal object as the split point of a concatenation.
    fn split<F>(&mut self, _src: TemporalObject, _dst: TemporalObject, mut f: F) -> bool
    where
        F: FnMut(&mut Self, TemporalObject) -> bool,
    {
        let domain = self.graph.domain();
        let objects = self.objects.clone();
        for &o in &objects {
            for t in domain.points() {
                if f(self, TemporalObject::new(o, t)) {
                    return true;
                }
            }
        }
        false
    }

    /// Membership in `⟦inner[n, m]⟧`, decomposed exactly as in Algorithm 5.
    fn solve_repeat(
        &mut self,
        inner: &Path,
        n: u32,
        m: u32,
        src: TemporalObject,
        dst: TemporalObject,
    ) -> bool {
        // An unsatisfiable indicator [n, m] with n > m is the union over an empty set
        // of repetition counts: it relates nothing.
        if n > m {
            return false;
        }
        let key = RepeatKey { expr: inner as *const Path as usize, lo: n, hi: m, src, dst };
        if let Some(&cached) = self.repeat_memo.get(&key) {
            return cached;
        }
        let result = if n == m {
            // Exact repetition r[n, n], by halving.
            match n {
                0 => src == dst,
                1 => self.solve(inner, src, dst),
                _ => {
                    let half = n / 2;
                    if n % 2 == 0 {
                        self.split(src, dst, |solver, mid| {
                            solver.solve_repeat(inner, half, half, src, mid)
                                && solver.solve_repeat(inner, half, half, mid, dst)
                        })
                    } else {
                        self.split(src, dst, |solver, mid| {
                            solver.solve_repeat(inner, half, half, src, mid)
                                && solver.split(mid, dst, |solver, mid2| {
                                    solver.solve(inner, mid, mid2)
                                        && solver.solve_repeat(inner, half, half, mid2, dst)
                                })
                        })
                    }
                }
            }
        } else if n == 0 {
            // r[0, m], by halving.
            match m {
                1 => src == dst || self.solve(inner, src, dst),
                _ => {
                    let half = m / 2;
                    if m % 2 == 0 {
                        self.split(src, dst, |solver, mid| {
                            solver.solve_repeat(inner, 0, half, src, mid)
                                && solver.solve_repeat(inner, 0, half, mid, dst)
                        })
                    } else {
                        self.split(src, dst, |solver, mid| {
                            solver.solve_repeat(inner, 0, half, src, mid)
                                && solver.split(mid, dst, |solver, mid2| {
                                    solver.solve_repeat(inner, 0, 1, mid, mid2)
                                        && solver.solve_repeat(inner, 0, half, mid2, dst)
                                })
                        })
                    }
                }
            }
        } else {
            // r[n, m] = r[n, n] / r[0, m - n].
            self.split(src, dst, |solver, mid| {
                solver.solve_repeat(inner, n, n, src, mid)
                    && solver.solve_repeat(inner, 0, m - n, mid, dst)
            })
        };
        self.repeat_memo.insert(key, result);
        result
    }

    fn check_test(&mut self, test: &TestExpr, to: TemporalObject) -> bool {
        match test {
            TestExpr::And(a, b) => self.check_test(a, to) && self.check_test(b, to),
            TestExpr::Or(a, b) => self.check_test(a, to) || self.check_test(b, to),
            TestExpr::Not(a) => !self.check_test(a, to),
            TestExpr::PathTest(p) => {
                let domain = self.graph.domain();
                let objects = self.objects.clone();
                for &o in &objects {
                    for t in domain.points() {
                        if self.solve(p, to, TemporalObject::new(o, t)) {
                            return true;
                        }
                    }
                }
                false
            }
            basic => super::itpg_pc::check_basic_test(basic, self.graph, to),
        }
    }
}

/// Single-step axis semantics over an ITPG, shared with the ANOI evaluator.
pub(crate) fn axis_step(
    graph: &Itpg,
    axis: Axis,
    src: TemporalObject,
    dst: TemporalObject,
) -> bool {
    let domain = graph.domain();
    match axis {
        Axis::Next => {
            src.object == dst.object && dst.time == src.time + 1 && domain.contains(dst.time)
        }
        Axis::Prev => {
            src.object == dst.object
                && src.time > 0
                && dst.time + 1 == src.time
                && domain.contains(dst.time)
        }
        Axis::Fwd => {
            src.time == dst.time
                && match (src.object, dst.object) {
                    (Object::Node(n), Object::Edge(e)) => graph.src(e) == n,
                    (Object::Edge(e), Object::Node(n)) => graph.tgt(e) == n,
                    _ => false,
                }
        }
        Axis::Bwd => {
            src.time == dst.time
                && match (src.object, dst.object) {
                    (Object::Node(n), Object::Edge(e)) => graph.tgt(e) == n,
                    (Object::Edge(e), Object::Node(n)) => graph.src(e) == n,
                    _ => false,
                }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{Interval, ItpgBuilder, NodeId};

    /// A single node that exists over the whole domain — the shape of the ITPGs used
    /// in the paper's hardness reductions.
    fn single_node(domain_end: u64) -> Itpg {
        let mut b = ItpgBuilder::new();
        let v = b.add_node("v", "l").unwrap();
        b.add_existence(v, Interval::of(0, domain_end)).unwrap();
        b.domain(Interval::of(0, domain_end)).build().unwrap()
    }

    fn at(t: u64) -> TemporalObject {
        TemporalObject::new(Object::Node(NodeId(0)), t)
    }

    #[test]
    fn exact_repetition_counts_time_steps() {
        let g = single_node(20);
        // N[5,5] moves exactly 5 steps forward.
        let p = Path::axis(Axis::Next).repeat(5, 5);
        assert!(eval_contains_full(&p, &g, at(3), at(8)));
        assert!(!eval_contains_full(&p, &g, at(3), at(7)));
        assert!(!eval_contains_full(&p, &g, at(3), at(9)));
        // Out of domain.
        assert!(!eval_contains_full(&p, &g, at(18), at(23)));
    }

    #[test]
    fn ranged_repetition() {
        let g = single_node(20);
        let p = Path::axis(Axis::Next).repeat(2, 6);
        for d in 0..=10u64 {
            let expected = (2..=6).contains(&d);
            assert_eq!(eval_contains_full(&p, &g, at(1), at(1 + d)), expected, "delta {d}");
        }
    }

    #[test]
    fn unsatisfiable_indicator_is_empty() {
        // N[3,1] relates nothing — no panic, no spurious matches, even nested.
        let g = single_node(10);
        let p = Path::axis(Axis::Next).repeat(3, 1);
        for d in 0..=5u64 {
            assert!(!eval_contains_full(&p, &g, at(0), at(d)), "delta {d}");
        }
        let nested = Path::axis(Axis::Next).repeat(3, 1).or(Path::axis(Axis::Next).repeat(1, 1));
        assert!(eval_contains_full(&nested, &g, at(0), at(1)));
        assert!(!eval_contains_full(&nested, &g, at(0), at(2)));
        let seq = Path::test(TestExpr::Exists).then(Path::axis(Axis::Next).repeat(2, 0));
        assert!(!eval_contains_full(&seq, &g, at(0), at(0)));
    }

    #[test]
    fn unbounded_repetition_reaches_everything_forward() {
        let g = single_node(12);
        let p = Path::axis(Axis::Next).repeat_at_least(3);
        assert!(eval_contains_full(&p, &g, at(0), at(3)));
        assert!(eval_contains_full(&p, &g, at(0), at(12)));
        assert!(!eval_contains_full(&p, &g, at(0), at(2)));
    }

    #[test]
    fn subset_sum_style_choice_expression() {
        // The NP-hardness reduction of Theorem D.1 uses expressions of the form
        // (N[a1,a1] + N[0,0]) / … / (N[an,an] + N[0,0]) to encode subset-sum.
        // A = {3, 5, 7}, S = 12 = 5 + 7 is solvable; S = 4 is not.
        let g = single_node(16);
        let choice =
            |a: u32| Path::axis(Axis::Next).repeat(a, a).or(Path::axis(Axis::Next).repeat(0, 0));
        let r = choice(3).then(choice(5)).then(choice(7));
        assert!(eval_contains_full(&r, &g, at(0), at(12)));
        assert!(eval_contains_full(&r, &g, at(0), at(15)));
        assert!(eval_contains_full(&r, &g, at(0), at(0)));
        assert!(!eval_contains_full(&r, &g, at(0), at(4)));
        assert!(!eval_contains_full(&r, &g, at(0), at(1)));
    }

    #[test]
    fn bit_testing_expression_from_the_pspace_reduction() {
        // r_i = ?( P[2^i, 2^i][0,_] / (< 2^i ∧ ¬ < 2^(i-1)) ) holds at (v, t) iff the
        // i-th bit of t is 1 (Appendix C-D, Step 1).
        let g = single_node(31);
        let bit = |i: u32| {
            let step = 1u32 << i;
            TestExpr::path_test(Path::axis(Axis::Prev).repeat(step, step).repeat_at_least(0).then(
                Path::test(TestExpr::TimeLt(1 << i).and(TestExpr::TimeLt(1 << (i - 1)).not())),
            ))
        };
        // The paper indexes bits from 1, so bit i of t is (t >> (i - 1)) & 1.
        for t in 0..=15u64 {
            let expr = Path::test(bit(1));
            let expected = t & 1 == 1;
            assert_eq!(eval_contains_full(&expr, &g, at(t), at(t)), expected, "bit 1 of {t}");
            let expr3 = Path::test(bit(3));
            let expected3 = (t >> 2) & 1 == 1;
            assert_eq!(eval_contains_full(&expr3, &g, at(t), at(t)), expected3, "bit 3 of {t}");
        }
    }

    #[test]
    fn structural_axes_and_tests_still_work() {
        let mut b = ItpgBuilder::new();
        let a = b.add_node("a", "Person").unwrap();
        let c = b.add_node("c", "Person").unwrap();
        let m = b.add_edge("m", "meets", a, c).unwrap();
        b.add_existence(a, Interval::of(0, 5)).unwrap();
        b.add_existence(c, Interval::of(0, 5)).unwrap();
        b.add_existence(m, Interval::of(1, 2)).unwrap();
        let g = b.domain(Interval::of(0, 5)).build().unwrap();
        let p = Path::test(TestExpr::label("Person").and(TestExpr::Exists))
            .then(Path::axis(Axis::Fwd))
            .then(Path::test(TestExpr::label("meets").and(TestExpr::Exists)))
            .then(Path::axis(Axis::Fwd))
            .then(Path::test(TestExpr::Node));
        let src = TemporalObject::new(Object::Node(a), 1);
        let dst = TemporalObject::new(Object::Node(c), 1);
        assert!(eval_contains_full(&p, &g, src, dst));
        let dst_wrong_time = TemporalObject::new(Object::Node(c), 2);
        assert!(!eval_contains_full(&p, &g, src, dst_wrong_time));
        let src_no_edge = TemporalObject::new(Object::Node(a), 4);
        assert!(!eval_contains_full(&p, &g, src_no_edge, TemporalObject::new(Object::Node(c), 4)));
    }
}
