//! The twelve queries Q1–Q12 of Section IV, used throughout the paper's experimental
//! evaluation (Table II and Figures 2–5).
//!
//! Each query is stored as its practical-syntax text (as printed in the paper, with
//! line breaks joined) and can be parsed with [`QueryId::clause`] or compiled into the formal
//! language with [`QueryId::compiled`].  Queries Q10–Q12 contain a temporal navigation operator
//! with a numerical occurrence indicator; [`QueryId::with_temporal_bound`] rebuilds them with a
//! different upper bound, which is what the Figure 4 experiment sweeps.

use crate::error::Result;
use crate::parser::{parse_match, MatchClause};
use crate::rewrite::{rewrite_match, RewrittenQuery};

/// Identifier of one of the paper's benchmark queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryId {
    /// Q1: all people.
    Q1,
    /// Q2: low-risk people.
    Q2,
    /// Q3: low-risk people at time 1.
    Q3,
    /// Q4: low-risk people before time 10.
    Q4,
    /// Q5: low-risk people meeting high-risk people.
    Q5,
    /// Q6: the state immediately before a positive test.
    Q6,
    /// Q7: room visited immediately before a positive test.
    Q7,
    /// Q8: rooms visited at or before the time of a positive test.
    Q8,
    /// Q9: high-risk people who met someone who later tested positive.
    Q9,
    /// Q10: high-risk people who met someone who tested positive up to one hour earlier.
    Q10,
    /// Q11: high-risk people in close contact with an infected person via a shared room.
    Q11,
    /// Q12: union of the meets- and room-based close-contact definitions.
    Q12,
}

impl QueryId {
    /// All query identifiers in order.
    pub const ALL: [QueryId; 12] = [
        QueryId::Q1,
        QueryId::Q2,
        QueryId::Q3,
        QueryId::Q4,
        QueryId::Q5,
        QueryId::Q6,
        QueryId::Q7,
        QueryId::Q8,
        QueryId::Q9,
        QueryId::Q10,
        QueryId::Q11,
        QueryId::Q12,
    ];

    /// The query name as used in the paper, e.g. `"Q7"`.
    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q2 => "Q2",
            QueryId::Q3 => "Q3",
            QueryId::Q4 => "Q4",
            QueryId::Q5 => "Q5",
            QueryId::Q6 => "Q6",
            QueryId::Q7 => "Q7",
            QueryId::Q8 => "Q8",
            QueryId::Q9 => "Q9",
            QueryId::Q10 => "Q10",
            QueryId::Q11 => "Q11",
            QueryId::Q12 => "Q12",
        }
    }

    /// True if the query uses temporal navigation (`NEXT`/`PREV`); queries without
    /// temporal navigation (Q1–Q5) are evaluated purely on the interval representation
    /// and their results stay temporally coalesced (Section VI).
    pub fn uses_temporal_navigation(self) -> bool {
        !matches!(self, QueryId::Q1 | QueryId::Q2 | QueryId::Q3 | QueryId::Q4 | QueryId::Q5)
    }

    /// The query text in the practical syntax of Section IV.
    pub fn text(self) -> &'static str {
        match self {
            QueryId::Q1 => "MATCH (x:Person) ON contact_tracing",
            QueryId::Q2 => "MATCH (x:Person {risk = 'low'}) ON contact_tracing",
            QueryId::Q3 => "MATCH (x:Person {risk = 'low' AND time = '1'}) ON contact_tracing",
            QueryId::Q4 => "MATCH (x:Person {risk = 'low' AND time < '10'}) ON contact_tracing",
            QueryId::Q5 => {
                "MATCH (x:Person {risk = 'low'})-[z:meets]->(y:Person {risk = 'high'}) \
                 ON contact_tracing"
            }
            QueryId::Q6 => "MATCH (x:Person {test = 'pos'})-/PREV/-(y:Person) ON contact_tracing",
            QueryId::Q7 => {
                "MATCH (x:Person {test = 'pos'})-/PREV/FWD/:visits/FWD/-(z:Room) \
                 ON contact_tracing"
            }
            QueryId::Q8 => {
                "MATCH (x:Person {test = 'pos'})-/PREV*/FWD/:visits/FWD/-(z:Room) \
                 ON contact_tracing"
            }
            QueryId::Q9 => {
                "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) \
                 ON contact_tracing"
            }
            QueryId::Q10 => {
                "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/PREV[0,12]/-({test = 'pos'}) \
                 ON contact_tracing"
            }
            QueryId::Q11 => {
                "MATCH (x:Person {risk = 'high'})-\
                 /FWD/:visits/FWD/:Room/BWD/:visits/BWD/NEXT[0,12]/-({test = 'pos'}) \
                 ON contact_tracing"
            }
            QueryId::Q12 => {
                "MATCH (x:Person {risk = 'high'})-\
                 /(FWD/:meets/FWD + FWD/:visits/FWD/:Room/BWD/:visits/BWD)/NEXT[0,12]/-\
                 ({test = 'pos'}) ON contact_tracing"
            }
        }
    }

    /// Parses the query into a [`MatchClause`].
    pub fn clause(self) -> MatchClause {
        parse_match(self.text()).expect("the built-in queries always parse")
    }

    /// Parses and rewrites the query into the formal language.
    pub fn compiled(self) -> RewrittenQuery {
        rewrite_match(&self.clause()).expect("the built-in queries always rewrite")
    }

    /// For Q10–Q12, returns the query with the upper bound of its temporal navigation
    /// indicator replaced by `m` (the x-axis of Figure 4).  Other queries are returned
    /// unchanged.
    pub fn with_temporal_bound(self, m: u32) -> Result<MatchClause> {
        let text = match self {
            QueryId::Q10 => self.text().replace("PREV[0,12]", &format!("PREV[0,{m}]")),
            QueryId::Q11 | QueryId::Q12 => {
                self.text().replace("NEXT[0,12]", &format!("NEXT[0,{m}]"))
            }
            _ => self.text().to_owned(),
        };
        parse_match(&text)
    }
}

/// All twelve queries as `(id, parsed clause)` pairs.
pub fn all_queries() -> Vec<(QueryId, MatchClause)> {
    QueryId::ALL.iter().map(|&id| (id, id.clause())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{classify, Fragment};

    #[test]
    fn every_query_parses_and_rewrites() {
        for (id, clause) in all_queries() {
            assert!(!clause.parts.is_empty(), "{} has no parts", id.name());
            let compiled = id.compiled();
            assert_eq!(compiled.graph, "contact_tracing");
            // None of the benchmark queries needs path conditions; all are evaluable
            // in polynomial time over TPGs.
            let fragment = classify(&compiled.path);
            assert!(
                fragment.is_sub_fragment_of(Fragment::Noi),
                "{} classified as {fragment}",
                id.name()
            );
        }
    }

    #[test]
    fn variable_bindings_match_the_paper() {
        assert_eq!(QueryId::Q1.clause().variables(), vec!["x"]);
        assert_eq!(QueryId::Q5.clause().variables(), vec!["x", "z", "y"]);
        assert_eq!(QueryId::Q6.clause().variables(), vec!["x", "y"]);
        assert_eq!(QueryId::Q7.clause().variables(), vec!["x", "z"]);
        assert_eq!(QueryId::Q8.clause().variables(), vec!["x", "z"]);
        // Q9–Q12 deliberately bind only x (contacts are not stored).
        for id in [QueryId::Q9, QueryId::Q10, QueryId::Q11, QueryId::Q12] {
            assert_eq!(id.clause().variables(), vec!["x"], "{}", id.name());
        }
    }

    #[test]
    fn temporal_navigation_split_matches_section_vi() {
        let without: Vec<_> =
            QueryId::ALL.iter().filter(|q| !q.uses_temporal_navigation()).collect();
        assert_eq!(without.len(), 5);
        assert!(QueryId::Q8.uses_temporal_navigation());
        assert!(!QueryId::Q5.uses_temporal_navigation());
    }

    #[test]
    fn temporal_bound_substitution() {
        let q10 = QueryId::Q10.with_temporal_bound(48).unwrap();
        let text = format!("{:?}", q10);
        assert!(text.contains("48"));
        let q12 = QueryId::Q12.with_temporal_bound(4).unwrap();
        assert!(format!("{q12:?}").contains("4"));
        // Queries without indicators are returned unchanged.
        let q1 = QueryId::Q1.with_temporal_bound(99).unwrap();
        assert_eq!(q1, QueryId::Q1.clause());
    }
}
