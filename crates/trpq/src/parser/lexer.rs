//! Tokenizer for the practical query language of Section IV.

use crate::error::{QueryError, Result};

/// A lexical token of the practical query language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier or keyword (`MATCH`, `ON`, `AND`, `FWD`, variable names, …).
    Ident(String),
    /// A quoted string literal, e.g. `'pos'`.
    Str(String),
    /// An unsigned integer literal.
    Number(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `-`
    Dash,
    /// `/`
    Slash,
    /// `+`
    Plus,
    /// `*`
    Star,
    /// `_`
    Underscore,
}

/// A token together with the byte offset at which it starts, for error reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the first character of the token in the query text.
    pub position: usize,
}

/// Splits the query text into tokens.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => push(&mut tokens, Token::LParen, start, &mut i),
            ')' => push(&mut tokens, Token::RParen, start, &mut i),
            '{' => push(&mut tokens, Token::LBrace, start, &mut i),
            '}' => push(&mut tokens, Token::RBrace, start, &mut i),
            '[' => push(&mut tokens, Token::LBracket, start, &mut i),
            ']' => push(&mut tokens, Token::RBracket, start, &mut i),
            ':' => push(&mut tokens, Token::Colon, start, &mut i),
            ',' => push(&mut tokens, Token::Comma, start, &mut i),
            '=' => push(&mut tokens, Token::Eq, start, &mut i),
            '-' => push(&mut tokens, Token::Dash, start, &mut i),
            '/' => push(&mut tokens, Token::Slash, start, &mut i),
            '+' => push(&mut tokens, Token::Plus, start, &mut i),
            '*' => push(&mut tokens, Token::Star, start, &mut i),
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned { token: Token::Le, position: start });
                    i += 2;
                } else {
                    push(&mut tokens, Token::Lt, start, &mut i);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned { token: Token::Ge, position: start });
                    i += 2;
                } else {
                    push(&mut tokens, Token::Gt, start, &mut i);
                }
            }
            '\'' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(QueryError::Parse {
                        message: "unterminated string literal".to_owned(),
                        position: start,
                    });
                }
                tokens.push(Spanned {
                    token: Token::Str(input[i + 1..j].to_owned()),
                    position: start,
                });
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                let value: u64 = input[i..j].parse().map_err(|_| QueryError::Parse {
                    message: format!("number '{}' is out of range", &input[i..j]),
                    position: start,
                })?;
                tokens.push(Spanned { token: Token::Number(value), position: start });
                i = j;
            }
            '_' => {
                // A lone underscore is the "_" of open-ended occurrence indicators;
                // an underscore starting an identifier is part of the identifier.
                if bytes.get(i + 1).is_none_or(|&b| !(b as char).is_alphanumeric() && b != b'_') {
                    push(&mut tokens, Token::Underscore, start, &mut i);
                } else {
                    let (ident, next) = read_ident(input, i);
                    tokens.push(Spanned { token: Token::Ident(ident), position: start });
                    i = next;
                }
            }
            c if c.is_alphabetic() => {
                let (ident, next) = read_ident(input, i);
                tokens.push(Spanned { token: Token::Ident(ident), position: start });
                i = next;
            }
            other => {
                return Err(QueryError::Parse {
                    message: format!("unexpected character '{other}'"),
                    position: start,
                })
            }
        }
    }
    Ok(tokens)
}

fn push(tokens: &mut Vec<Spanned>, token: Token, start: usize, i: &mut usize) {
    tokens.push(Spanned { token, position: start });
    *i += 1;
}

fn read_ident(input: &str, start: usize) -> (String, usize) {
    let bytes = input.as_bytes();
    let mut j = start;
    while j < bytes.len() {
        let c = bytes[j] as char;
        if c.is_alphanumeric() || c == '_' {
            j += 1;
        } else {
            break;
        }
    }
    (input[start..j].to_owned(), j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        tokenize(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn tokenizes_a_node_pattern() {
        let toks = kinds("(x:Person {risk = 'high'})");
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::Ident("x".into()),
                Token::Colon,
                Token::Ident("Person".into()),
                Token::LBrace,
                Token::Ident("risk".into()),
                Token::Eq,
                Token::Str("high".into()),
                Token::RBrace,
                Token::RParen,
            ]
        );
    }

    #[test]
    fn tokenizes_regex_operators_and_indicators() {
        let toks = kinds("-/FWD/:meets/FWD/NEXT[0,12]/-");
        assert!(toks.contains(&Token::Slash));
        assert!(toks.contains(&Token::LBracket));
        assert!(toks.contains(&Token::Number(12)));
        let toks = kinds("PREV[0,_]* <= >=");
        assert_eq!(
            toks,
            vec![
                Token::Ident("PREV".into()),
                Token::LBracket,
                Token::Number(0),
                Token::Comma,
                Token::Underscore,
                Token::RBracket,
                Token::Star,
                Token::Le,
                Token::Ge,
            ]
        );
    }

    #[test]
    fn underscore_identifiers_are_not_confused_with_wildcards() {
        assert_eq!(kinds("_name"), vec![Token::Ident("_name".into())]);
        assert_eq!(kinds("x_time"), vec![Token::Ident("x_time".into())]);
        assert_eq!(kinds("_"), vec![Token::Underscore]);
    }

    #[test]
    fn errors_are_reported_with_positions() {
        let err = tokenize("(x:Person {risk = 'high})  @").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
        let err = tokenize("abc @ def").unwrap_err();
        match err {
            QueryError::Parse { position, .. } => assert_eq!(position, 4),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn numbers_and_positions() {
        let toks = tokenize("time < '10'").unwrap();
        assert_eq!(toks[0].token, Token::Ident("time".into()));
        assert_eq!(toks[1].token, Token::Lt);
        assert_eq!(toks[2].token, Token::Str("10".into()));
        assert_eq!(toks[2].position, 7);
        assert_eq!(kinds("42"), vec![Token::Number(42)]);
    }
}
