//! Parser for the practical query language of Section IV: the temporal extension of
//! the `MATCH` clause,
//!
//! ```text
//! MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-(y:Person {test = 'pos'})
//! ON contact_tracing
//! ```
//!
//! A pattern is a sequence of node patterns connected either by conventional edge
//! patterns `-[z:meets]->` or by temporal regular expressions `-/…/-` combining the
//! structural operators `FWD`/`BWD`, the temporal operators `NEXT`/`PREV`, label and
//! property tests, concatenation `/`, union `+`, the Kleene star `*` and numerical
//! occurrence indicators `[n, m]` / `[n, _]`.

pub mod lexer;

use tgraph::{Time, Value};

use crate::ast::Axis;
use crate::error::{QueryError, Result};
use lexer::{tokenize, Spanned, Token};

/// Comparison operators usable in property constraints on the reserved word `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A single constraint inside curly braces, e.g. `risk = 'high'` or `time < '10'`.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// A property equality constraint `p = v`.
    Prop(String, Value),
    /// A constraint on the reserved word `time`.
    Time(CmpOp, Time),
}

/// A node pattern `(x:Person {risk = 'high'})`; every component is optional.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    /// The variable bound to the node, if any.
    pub var: Option<String>,
    /// The required node label, if any.
    pub label: Option<String>,
    /// Property and time constraints.
    pub constraints: Vec<Constraint>,
}

/// Direction of a conventional edge pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `-[…]->`: the edge goes from the pattern on the left to the pattern on the
    /// right.
    Out,
    /// `<-[…]-`: the edge goes from the pattern on the right to the pattern on the
    /// left.
    In,
}

/// A conventional edge pattern `-[z:meets]->`.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePattern {
    /// The variable bound to the edge, if any.
    pub var: Option<String>,
    /// The required edge label, if any.
    pub label: Option<String>,
    /// Property and time constraints.
    pub constraints: Vec<Constraint>,
    /// Direction of the edge.
    pub direction: Direction,
}

/// Repetition attached to a regular-expression item: `(min, max)` where `max` is
/// `None` for open-ended indicators (`*` is `(0, None)`).
pub type Repetition = (u32, Option<u32>);

/// An atom of a temporal regular expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RegexAtom {
    /// A navigation operator `FWD`, `BWD`, `NEXT` or `PREV`.
    Axis(Axis),
    /// A label test `:Person`.
    Label(String),
    /// A property/time test `{test = 'pos'}`.
    Props(Vec<Constraint>),
    /// A parenthesised sub-expression.
    Group(Box<Regex>),
}

/// An atom with an optional repetition postfix.
#[derive(Debug, Clone, PartialEq)]
pub struct RegexItem {
    /// The atom.
    pub atom: RegexAtom,
    /// The repetition postfix (`*`, `[n, m]` or `[n, _]`), if any.
    pub repeat: Option<Repetition>,
}

/// A concatenation of items separated by `/`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegexSeq {
    /// The concatenated items, in order.
    pub items: Vec<RegexItem>,
}

/// A union (`+`) of concatenations — a full temporal regular expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regex {
    /// The alternatives of the union; a single alternative means no union.
    pub alternatives: Vec<RegexSeq>,
}

/// One element of a `MATCH` pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternPart {
    /// A node pattern.
    Node(NodePattern),
    /// A conventional edge pattern connecting the neighbouring node patterns.
    Edge(EdgePattern),
    /// A temporal regular expression connecting the neighbouring node patterns.
    Regex(Regex),
}

/// A parsed `MATCH … ON graph` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchClause {
    /// The pattern elements, alternating node patterns and connectors.
    pub parts: Vec<PatternPart>,
    /// The name of the graph given after `ON`.
    pub graph: String,
}

impl MatchClause {
    /// The variables bound by the pattern, left to right.
    pub fn variables(&self) -> Vec<&str> {
        self.parts
            .iter()
            .filter_map(|p| match p {
                PatternPart::Node(n) => n.var.as_deref(),
                PatternPart::Edge(e) => e.var.as_deref(),
                PatternPart::Regex(_) => None,
            })
            .collect()
    }
}

/// Parses a complete `MATCH … ON graph` clause.
pub fn parse_match(input: &str) -> Result<MatchClause> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0, len: input.len() };
    let clause = parser.match_clause()?;
    parser.expect_end()?;
    Ok(clause)
}

/// Parses a bare temporal regular expression (the part between `-/` and `/-`).
pub fn parse_regex(input: &str) -> Result<Regex> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0, len: input.len() };
    let regex = parser.regex()?;
    parser.expect_end()?;
    Ok(regex)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|s| &s.token)
    }

    fn position(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.len, |s| s.position)
    }

    fn advance(&mut self) -> Option<Token> {
        let tok = self.tokens.get(self.pos).map(|s| s.token.clone());
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(QueryError::Parse { message: message.into(), position: self.position() })
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<()> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            other => self.error(format!("expected {what}, found {other:?}")),
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.error("unexpected trailing input")
        }
    }

    fn keyword(&mut self, word: &str) -> Result<()> {
        match self.peek() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(word) => {
                self.pos += 1;
                Ok(())
            }
            other => self.error(format!("expected keyword {word}, found {other:?}")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            other => self.error(format!("expected {what}, found {other:?}")),
        }
    }

    fn match_clause(&mut self) -> Result<MatchClause> {
        self.keyword("MATCH")?;
        let mut parts = Vec::new();
        parts.push(PatternPart::Node(self.node_pattern()?));
        while let Some(Token::Dash | Token::Lt) = self.peek() {
            let connector = self.connector()?;
            parts.push(connector);
            parts.push(PatternPart::Node(self.node_pattern()?));
        }
        self.keyword("ON")?;
        let graph = self.ident("graph name after ON")?;
        Ok(MatchClause { parts, graph })
    }

    fn node_pattern(&mut self) -> Result<NodePattern> {
        self.expect(&Token::LParen, "'(' starting a node pattern")?;
        let mut pattern = NodePattern::default();
        if let Some(Token::Ident(_)) = self.peek() {
            if let Some(Token::Ident(name)) = self.advance() {
                pattern.var = Some(name);
            }
        }
        if self.peek() == Some(&Token::Colon) {
            self.pos += 1;
            pattern.label = Some(self.ident("node label after ':'")?);
        }
        if self.peek() == Some(&Token::LBrace) {
            pattern.constraints = self.constraints()?;
        }
        self.expect(&Token::RParen, "')' closing a node pattern")?;
        Ok(pattern)
    }

    fn constraints(&mut self) -> Result<Vec<Constraint>> {
        self.expect(&Token::LBrace, "'{'")?;
        let mut out = Vec::new();
        loop {
            out.push(self.constraint()?);
            match self.peek() {
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("and") => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
        self.expect(&Token::RBrace, "'}' closing the property constraints")?;
        Ok(out)
    }

    fn constraint(&mut self) -> Result<Constraint> {
        let name = self.ident("property name")?;
        let op = match self.advance() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => return self.error(format!("expected a comparison operator, found {other:?}")),
        };
        let literal = self.advance();
        if name.eq_ignore_ascii_case("time") {
            // The reserved word `time` compares the time point of the temporal object.
            let value = match literal {
                Some(Token::Number(n)) => n,
                Some(Token::Str(s)) => s.trim().parse::<Time>().map_err(|_| QueryError::Parse {
                    message: format!("'{s}' is not a valid time point"),
                    position: self.position(),
                })?,
                other => return self.error(format!("expected a time literal, found {other:?}")),
            };
            Ok(Constraint::Time(op, value))
        } else {
            if op != CmpOp::Eq {
                return self.error("only '=' comparisons are supported on property values");
            }
            let value = match literal {
                Some(Token::Str(s)) => Value::Str(s),
                Some(Token::Number(n)) => Value::Int(n as i64),
                other => return self.error(format!("expected a literal value, found {other:?}")),
            };
            Ok(Constraint::Prop(name, value))
        }
    }

    fn connector(&mut self) -> Result<PatternPart> {
        // `<-[…]-` starts with '<'; `-[…]->` and `-/…/-` start with '-'.
        if self.peek() == Some(&Token::Lt) {
            self.pos += 1;
            self.expect(&Token::Dash, "'-' after '<'")?;
            let mut edge = self.edge_body()?;
            edge.direction = Direction::In;
            self.expect(&Token::Dash, "'-' closing an incoming edge pattern")?;
            return Ok(PatternPart::Edge(edge));
        }
        self.expect(&Token::Dash, "'-' starting a connector")?;
        match self.peek() {
            Some(Token::LBracket) => {
                let edge = self.edge_body()?;
                self.expect(&Token::Dash, "'-' of '->' closing an edge pattern")?;
                self.expect(&Token::Gt, "'>' of '->' closing an edge pattern")?;
                Ok(PatternPart::Edge(edge))
            }
            Some(Token::Slash) => {
                self.pos += 1;
                let regex = self.regex()?;
                self.expect(&Token::Slash, "'/' closing a path expression")?;
                self.expect(&Token::Dash, "'-' closing a path expression")?;
                Ok(PatternPart::Regex(regex))
            }
            other => self.error(format!("expected '[' or '/' after '-', found {other:?}")),
        }
    }

    fn edge_body(&mut self) -> Result<EdgePattern> {
        self.expect(&Token::LBracket, "'[' starting an edge pattern")?;
        let mut edge = EdgePattern {
            var: None,
            label: None,
            constraints: Vec::new(),
            direction: Direction::Out,
        };
        if let Some(Token::Ident(_)) = self.peek() {
            if let Some(Token::Ident(name)) = self.advance() {
                edge.var = Some(name);
            }
        }
        if self.peek() == Some(&Token::Colon) {
            self.pos += 1;
            edge.label = Some(self.ident("edge label after ':'")?);
        }
        if self.peek() == Some(&Token::LBrace) {
            edge.constraints = self.constraints()?;
        }
        self.expect(&Token::RBracket, "']' closing an edge pattern")?;
        Ok(edge)
    }

    fn regex(&mut self) -> Result<Regex> {
        let mut alternatives = vec![self.regex_seq()?];
        while self.peek() == Some(&Token::Plus) {
            self.pos += 1;
            alternatives.push(self.regex_seq()?);
        }
        Ok(Regex { alternatives })
    }

    fn regex_seq(&mut self) -> Result<RegexSeq> {
        let mut items = vec![self.regex_item()?];
        loop {
            // A '/' continues the concatenation unless it is the '/' of the closing
            // '/-' delimiter (i.e. followed by '-').
            if self.peek() == Some(&Token::Slash) && self.peek_at(1) != Some(&Token::Dash) {
                self.pos += 1;
                items.push(self.regex_item()?);
            } else {
                break;
            }
        }
        Ok(RegexSeq { items })
    }

    fn regex_item(&mut self) -> Result<RegexItem> {
        let atom = match self.peek() {
            Some(Token::Ident(word)) => {
                let axis = match word.to_ascii_uppercase().as_str() {
                    "FWD" => Some(Axis::Fwd),
                    "BWD" => Some(Axis::Bwd),
                    "NEXT" => Some(Axis::Next),
                    "PREV" => Some(Axis::Prev),
                    _ => None,
                };
                match axis {
                    Some(a) => {
                        self.pos += 1;
                        RegexAtom::Axis(a)
                    }
                    None => {
                        return self.error(format!(
                            "unknown navigation operator '{word}' (expected FWD, BWD, NEXT or PREV)"
                        ))
                    }
                }
            }
            Some(Token::Colon) => {
                self.pos += 1;
                RegexAtom::Label(self.ident("label after ':'")?)
            }
            Some(Token::LBrace) => RegexAtom::Props(self.constraints()?),
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.regex()?;
                self.expect(&Token::RParen, "')' closing a grouped path expression")?;
                RegexAtom::Group(Box::new(inner))
            }
            other => {
                return self.error(format!("expected a path expression atom, found {other:?}"))
            }
        };
        let repeat = self.repetition()?;
        Ok(RegexItem { atom, repeat })
    }

    fn repetition(&mut self) -> Result<Option<Repetition>> {
        match self.peek() {
            Some(Token::Star) => {
                self.pos += 1;
                Ok(Some((0, None)))
            }
            Some(Token::LBracket) => {
                self.pos += 1;
                let lo = match self.advance() {
                    Some(Token::Number(n)) => n,
                    other => {
                        return self
                            .error(format!("expected a repetition lower bound, found {other:?}"))
                    }
                };
                self.expect(&Token::Comma, "',' in a numerical occurrence indicator")?;
                let hi = match self.advance() {
                    Some(Token::Number(n)) => Some(n),
                    Some(Token::Underscore) => None,
                    other => {
                        return self.error(format!(
                            "expected a repetition upper bound or '_', found {other:?}"
                        ))
                    }
                };
                self.expect(&Token::RBracket, "']' closing a numerical occurrence indicator")?;
                let lo = u32::try_from(lo).map_err(|_| QueryError::Parse {
                    message: "repetition lower bound is too large".to_owned(),
                    position: self.position(),
                })?;
                let hi = match hi {
                    Some(h) => Some(u32::try_from(h).map_err(|_| QueryError::Parse {
                        message: "repetition upper bound is too large".to_owned(),
                        position: self.position(),
                    })?),
                    None => None,
                };
                // An indicator with `lo > hi` is grammatically valid; its repetition
                // range is empty, so the expression relates nothing (the rewrite and
                // the evaluators give it the empty semantics).
                Ok(Some((lo, hi)))
            }
            _ => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1_simple_node_pattern() {
        let q = parse_match("MATCH (x:Person) ON contact_tracing").unwrap();
        assert_eq!(q.graph, "contact_tracing");
        assert_eq!(q.parts.len(), 1);
        match &q.parts[0] {
            PatternPart::Node(n) => {
                assert_eq!(n.var.as_deref(), Some("x"));
                assert_eq!(n.label.as_deref(), Some("Person"));
                assert!(n.constraints.is_empty());
            }
            other => panic!("unexpected part {other:?}"),
        }
        assert_eq!(q.variables(), vec!["x"]);
    }

    #[test]
    fn parses_property_and_time_constraints() {
        let q = parse_match("MATCH (x:Person {risk = 'low' AND time = '1'}) ON contact_tracing")
            .unwrap();
        match &q.parts[0] {
            PatternPart::Node(n) => {
                assert_eq!(n.constraints.len(), 2);
                assert_eq!(n.constraints[0], Constraint::Prop("risk".into(), Value::str("low")));
                assert_eq!(n.constraints[1], Constraint::Time(CmpOp::Eq, 1));
            }
            other => panic!("unexpected part {other:?}"),
        }
        let q4 = parse_match("MATCH (x:Person {risk = 'low' AND time < '10'}) ON g").unwrap();
        match &q4.parts[0] {
            PatternPart::Node(n) => assert_eq!(n.constraints[1], Constraint::Time(CmpOp::Lt, 10)),
            other => panic!("unexpected part {other:?}"),
        }
    }

    #[test]
    fn parses_edge_patterns() {
        let q = parse_match(
            "MATCH (x:Person {risk = 'low'})-[z:meets]->(y:Person {risk = 'high'}) ON g",
        )
        .unwrap();
        assert_eq!(q.parts.len(), 3);
        match &q.parts[1] {
            PatternPart::Edge(e) => {
                assert_eq!(e.var.as_deref(), Some("z"));
                assert_eq!(e.label.as_deref(), Some("meets"));
                assert_eq!(e.direction, Direction::Out);
            }
            other => panic!("unexpected part {other:?}"),
        }
        assert_eq!(q.variables(), vec!["x", "z", "y"]);

        let q = parse_match("MATCH (a)<-[:visits]-(b) ON g").unwrap();
        match &q.parts[1] {
            PatternPart::Edge(e) => {
                assert_eq!(e.direction, Direction::In);
                assert_eq!(e.label.as_deref(), Some("visits"));
                assert_eq!(e.var, None);
            }
            other => panic!("unexpected part {other:?}"),
        }
    }

    #[test]
    fn parses_the_contact_tracing_regex() {
        let q = parse_match(
            "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-(y:Person {test = 'pos'}) \
             ON contact_tracing",
        )
        .unwrap();
        assert_eq!(q.parts.len(), 3);
        match &q.parts[1] {
            PatternPart::Regex(r) => {
                assert_eq!(r.alternatives.len(), 1);
                let items = &r.alternatives[0].items;
                assert_eq!(items.len(), 4);
                assert_eq!(items[0].atom, RegexAtom::Axis(Axis::Fwd));
                assert_eq!(items[1].atom, RegexAtom::Label("meets".into()));
                assert_eq!(items[2].atom, RegexAtom::Axis(Axis::Fwd));
                assert_eq!(items[3].atom, RegexAtom::Axis(Axis::Next));
                assert_eq!(items[3].repeat, Some((0, None)));
            }
            other => panic!("unexpected part {other:?}"),
        }
    }

    #[test]
    fn parses_numerical_occurrence_indicators_and_unions() {
        let q = parse_match(
            "MATCH (x:Person {risk = 'high'})-\
             /(FWD/:meets/FWD + FWD/:visits/FWD/:Room/BWD/:visits/BWD)/NEXT[0,12]/-\
             ({test = 'pos'}) ON contact_tracing",
        )
        .unwrap();
        match &q.parts[1] {
            PatternPart::Regex(r) => {
                assert_eq!(r.alternatives.len(), 1);
                let items = &r.alternatives[0].items;
                assert_eq!(items.len(), 2);
                match &items[0].atom {
                    RegexAtom::Group(inner) => {
                        assert_eq!(inner.alternatives.len(), 2);
                        assert_eq!(inner.alternatives[0].items.len(), 3);
                        assert_eq!(inner.alternatives[1].items.len(), 7);
                    }
                    other => panic!("unexpected atom {other:?}"),
                }
                assert_eq!(items[1].atom, RegexAtom::Axis(Axis::Next));
                assert_eq!(items[1].repeat, Some((0, Some(12))));
            }
            other => panic!("unexpected part {other:?}"),
        }
        // The last node pattern has only a property constraint.
        match &q.parts[2] {
            PatternPart::Node(n) => {
                assert_eq!(n.var, None);
                assert_eq!(n.label, None);
                assert_eq!(n.constraints.len(), 1);
            }
            other => panic!("unexpected part {other:?}"),
        }
    }

    #[test]
    fn parses_open_ended_indicators() {
        let r = parse_regex("PREV[2,_]/FWD").unwrap();
        assert_eq!(r.alternatives[0].items[0].repeat, Some((2, None)));
        assert_eq!(r.alternatives[0].items.len(), 2);
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_match("MATCH (x:Person) contact_tracing").is_err());
        assert!(parse_match("MATCH x:Person ON g").is_err());
        assert!(parse_match("MATCH (x:Person {risk > 'low'}) ON g").is_err());
        assert!(parse_match("MATCH (x)-/UP/-(y) ON g").is_err());
        assert!(parse_match("MATCH (x)-/NEXT/-(y) ON g extra").is_err());
        assert!(parse_regex("FWD/").is_err());
    }

    #[test]
    fn unsatisfiable_indicators_parse() {
        // [n, m] with n > m is grammatically valid; its semantics (the union over an
        // empty set of repetition counts) is the empty relation, decided downstream.
        let r = parse_regex("NEXT[5,2]").unwrap();
        assert_eq!(r.alternatives[0].items[0].repeat, Some((5, Some(2))));
        assert!(parse_match("MATCH (x)-/FWD[3,1]/-(y) ON g").is_ok());
    }

    #[test]
    fn multi_hop_patterns_alternate_nodes_and_connectors() {
        let q = parse_match(
            "MATCH (x:Person {test = 'pos'})-/PREV/-(y:Person)-[:visits]->(z:Room) ON g",
        )
        .unwrap();
        assert_eq!(q.parts.len(), 5);
        assert!(matches!(q.parts[0], PatternPart::Node(_)));
        assert!(matches!(q.parts[1], PatternPart::Regex(_)));
        assert!(matches!(q.parts[2], PatternPart::Node(_)));
        assert!(matches!(q.parts[3], PatternPart::Edge(_)));
        assert!(matches!(q.parts[4], PatternPart::Node(_)));
        assert_eq!(q.variables(), vec!["x", "y", "z"]);
    }
}
