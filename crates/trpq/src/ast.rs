//! Abstract syntax of `NavL[PC,NOI]`, the formal temporal regular path query language
//! of Section V.A.
//!
//! The grammar (2)–(4) of the paper is:
//!
//! ```text
//! path ::= test | axis | (path/path) | (path + path) | path[n, m] | path[n, _]
//! test ::= Node | Edge | ℓ | p ↦ v | < k | ∃ | (?path) | (test ∨ test) | (test ∧ test) | (¬test)
//! axis ::= F | B | N | P
//! ```
//!
//! [`Path`] and [`TestExpr`] mirror this grammar one-to-one.  Constructors and
//! combinator methods are provided so that queries can be written fluently in Rust;
//! [`std::fmt::Display`] renders expressions back in the paper's notation.

use std::fmt;

use serde::{Deserialize, Serialize};
use tgraph::{Time, Value};

/// A navigation axis: single-step structural or temporal movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// `F` / `FWD`: move forward along an edge (node → edge → target node), staying at
    /// the same time point.
    Fwd,
    /// `B` / `BWD`: move backward against an edge (node → edge → source node), staying
    /// at the same time point.
    Bwd,
    /// `N` / `NEXT`: move one unit of time into the future on the same object.
    Next,
    /// `P` / `PREV`: move one unit of time into the past on the same object.
    Prev,
}

impl Axis {
    /// True for the structural axes `F` and `B`.
    pub fn is_structural(self) -> bool {
        matches!(self, Axis::Fwd | Axis::Bwd)
    }

    /// True for the temporal axes `N` and `P`.
    pub fn is_temporal(self) -> bool {
        !self.is_structural()
    }

    /// The axis navigating in the opposite direction.
    pub fn inverse(self) -> Axis {
        match self {
            Axis::Fwd => Axis::Bwd,
            Axis::Bwd => Axis::Fwd,
            Axis::Next => Axis::Prev,
            Axis::Prev => Axis::Next,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Axis::Fwd => "F",
            Axis::Bwd => "B",
            Axis::Next => "N",
            Axis::Prev => "P",
        };
        f.write_str(s)
    }
}

/// A condition on a temporal object `(o, t)` (grammar (3) of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TestExpr {
    /// `Node`: the object is a node.
    Node,
    /// `Edge`: the object is an edge.
    Edge,
    /// `ℓ`: the label of the object is `ℓ`.
    Label(String),
    /// `p ↦ v`: property `p` of the object has value `v` at the current time point.
    Prop(String, Value),
    /// `∃`: the object exists at the current time point (`ξ(o, t) = true`).
    Exists,
    /// `< k`: the current time point is strictly less than `k`.
    TimeLt(Time),
    /// `(?path)`: a path conforming to `path` starts at the current temporal object.
    PathTest(Box<Path>),
    /// Conjunction of two tests.
    And(Box<TestExpr>, Box<TestExpr>),
    /// Disjunction of two tests.
    Or(Box<TestExpr>, Box<TestExpr>),
    /// Negation of a test.
    Not(Box<TestExpr>),
}

impl TestExpr {
    /// The label test `ℓ`.
    pub fn label(l: impl Into<String>) -> Self {
        TestExpr::Label(l.into())
    }

    /// The property test `p ↦ v`.
    pub fn prop(p: impl Into<String>, v: impl Into<Value>) -> Self {
        TestExpr::Prop(p.into(), v.into())
    }

    /// The derived equality test `= k`, expressed as `(< k+1 ∧ ¬(< k))` exactly as
    /// suggested in Section V.A.
    pub fn time_eq(k: Time) -> Self {
        TestExpr::TimeLt(k + 1).and(TestExpr::TimeLt(k).not())
    }

    /// The derived test `≤ k`, i.e. `< k+1`.
    pub fn time_le(k: Time) -> Self {
        TestExpr::TimeLt(k + 1)
    }

    /// The derived test `> k`, i.e. `¬(< k+1)`.
    pub fn time_gt(k: Time) -> Self {
        TestExpr::TimeLt(k + 1).not()
    }

    /// The derived test `≥ k`, i.e. `¬(< k)`.
    pub fn time_ge(k: Time) -> Self {
        TestExpr::TimeLt(k).not()
    }

    /// A path condition `(?path)`.
    pub fn path_test(path: Path) -> Self {
        TestExpr::PathTest(Box::new(path))
    }

    /// Conjunction combinator.
    pub fn and(self, other: TestExpr) -> Self {
        TestExpr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction combinator.
    pub fn or(self, other: TestExpr) -> Self {
        TestExpr::Or(Box::new(self), Box::new(other))
    }

    /// Negation combinator.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        TestExpr::Not(Box::new(self))
    }

    /// Conjunction of an iterator of tests; `∃ ∨ ¬∃` (a tautology) for an empty input.
    pub fn all<I: IntoIterator<Item = TestExpr>>(tests: I) -> Self {
        let mut iter = tests.into_iter();
        match iter.next() {
            None => TestExpr::Exists.or(TestExpr::Exists.not()),
            Some(first) => iter.fold(first, TestExpr::and),
        }
    }

    /// True if the test contains a path condition `(?path)` anywhere.
    pub fn has_path_condition(&self) -> bool {
        match self {
            TestExpr::PathTest(_) => true,
            TestExpr::And(a, b) | TestExpr::Or(a, b) => {
                a.has_path_condition() || b.has_path_condition()
            }
            TestExpr::Not(a) => a.has_path_condition(),
            _ => false,
        }
    }

    /// True if the test contains a numerical occurrence indicator inside a path
    /// condition.
    pub fn has_occurrence_indicator(&self) -> bool {
        match self {
            TestExpr::PathTest(p) => p.has_occurrence_indicator(),
            TestExpr::And(a, b) | TestExpr::Or(a, b) => {
                a.has_occurrence_indicator() || b.has_occurrence_indicator()
            }
            TestExpr::Not(a) => a.has_occurrence_indicator(),
            _ => false,
        }
    }

    /// Wraps the test into a path expression.
    pub fn into_path(self) -> Path {
        Path::Test(self)
    }
}

impl fmt::Display for TestExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestExpr::Node => f.write_str("Node"),
            TestExpr::Edge => f.write_str("Edge"),
            TestExpr::Label(l) => write!(f, "{l}"),
            TestExpr::Prop(p, v) => write!(f, "{p} -> {v}"),
            TestExpr::Exists => f.write_str("exists"),
            TestExpr::TimeLt(k) => write!(f, "< {k}"),
            TestExpr::PathTest(p) => write!(f, "(? {p})"),
            TestExpr::And(a, b) => write!(f, "({a} and {b})"),
            TestExpr::Or(a, b) => write!(f, "({a} or {b})"),
            TestExpr::Not(a) => write!(f, "(not {a})"),
        }
    }
}

/// A temporal regular path query (grammar (2) of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Path {
    /// A test: stays on the current temporal object if the test is satisfied.
    Test(TestExpr),
    /// A single navigation step.
    Axis(Axis),
    /// Concatenation `path1 / path2`.
    Seq(Box<Path>, Box<Path>),
    /// Union `path1 + path2`.
    Alt(Box<Path>, Box<Path>),
    /// Bounded or unbounded repetition: `path[n, m]` when the upper bound is `Some(m)`
    /// and `path[n, _]` when it is `None`.  The Kleene star is `path[0, _]`.
    Repeat(Box<Path>, u32, Option<u32>),
}

impl Path {
    /// A test path.
    pub fn test(test: TestExpr) -> Self {
        Path::Test(test)
    }

    /// A single-axis path.
    pub fn axis(axis: Axis) -> Self {
        Path::Axis(axis)
    }

    /// Concatenation combinator: `self / other`.
    pub fn then(self, other: Path) -> Self {
        Path::Seq(Box::new(self), Box::new(other))
    }

    /// Union combinator: `self + other`.
    pub fn or(self, other: Path) -> Self {
        Path::Alt(Box::new(self), Box::new(other))
    }

    /// Bounded repetition `self[n, m]`.
    pub fn repeat(self, n: u32, m: u32) -> Self {
        Path::Repeat(Box::new(self), n, Some(m))
    }

    /// Lower-bounded repetition `self[n, _]`.
    pub fn repeat_at_least(self, n: u32) -> Self {
        Path::Repeat(Box::new(self), n, None)
    }

    /// Kleene star: `self[0, _]`.
    pub fn star(self) -> Self {
        self.repeat_at_least(0)
    }

    /// One-or-more: `self[1, _]`.
    pub fn plus(self) -> Self {
        self.repeat_at_least(1)
    }

    /// Zero-or-one: `self[0, 1]`.
    pub fn optional(self) -> Self {
        self.repeat(0, 1)
    }

    /// Concatenation of an iterator of paths; the empty concatenation is the identity
    /// (a tautological test).
    pub fn seq_all<I: IntoIterator<Item = Path>>(paths: I) -> Self {
        let mut iter = paths.into_iter();
        match iter.next() {
            None => Path::Test(TestExpr::all([])),
            Some(first) => iter.fold(first, Path::then),
        }
    }

    /// Union of an iterator of paths.  Panics on an empty iterator because the empty
    /// union (the always-empty relation) is not expressible in the grammar.
    pub fn alt_all<I: IntoIterator<Item = Path>>(paths: I) -> Self {
        let mut iter = paths.into_iter();
        let first = iter.next().expect("alt_all requires at least one alternative");
        iter.fold(first, Path::or)
    }

    /// True if the expression contains a path condition `(?path)` anywhere.
    pub fn has_path_condition(&self) -> bool {
        match self {
            Path::Test(t) => t.has_path_condition(),
            Path::Axis(_) => false,
            Path::Seq(a, b) | Path::Alt(a, b) => a.has_path_condition() || b.has_path_condition(),
            Path::Repeat(p, _, _) => p.has_path_condition(),
        }
    }

    /// True if the expression contains a numerical occurrence indicator anywhere.
    pub fn has_occurrence_indicator(&self) -> bool {
        match self {
            Path::Test(t) => t.has_occurrence_indicator(),
            Path::Axis(_) => false,
            Path::Seq(a, b) | Path::Alt(a, b) => {
                a.has_occurrence_indicator() || b.has_occurrence_indicator()
            }
            Path::Repeat(_, _, _) => true,
        }
    }

    /// True if every numerical occurrence indicator is applied directly to an axis
    /// (the `ANOI` restriction of Appendix B/D).
    pub fn occurrence_indicators_only_on_axes(&self) -> bool {
        fn test_ok(t: &TestExpr) -> bool {
            match t {
                TestExpr::PathTest(p) => p.occurrence_indicators_only_on_axes(),
                TestExpr::And(a, b) | TestExpr::Or(a, b) => test_ok(a) && test_ok(b),
                TestExpr::Not(a) => test_ok(a),
                _ => true,
            }
        }
        match self {
            Path::Test(t) => test_ok(t),
            Path::Axis(_) => true,
            Path::Seq(a, b) | Path::Alt(a, b) => {
                a.occurrence_indicators_only_on_axes() && b.occurrence_indicators_only_on_axes()
            }
            Path::Repeat(p, _, _) => matches!(**p, Path::Axis(_)),
        }
    }

    /// The number of AST nodes of the expression (its size `‖path‖` up to a constant
    /// factor), used by complexity-related bounds and tests.
    pub fn size(&self) -> usize {
        match self {
            Path::Test(t) => test_size(t),
            Path::Axis(_) => 1,
            Path::Seq(a, b) | Path::Alt(a, b) => 1 + a.size() + b.size(),
            Path::Repeat(p, _, _) => 1 + p.size(),
        }
    }

    /// An upper bound on the net temporal displacement a single traversal of this
    /// expression can produce, i.e. the number of `N`/`P` axes it can take (treating
    /// unbounded repetition as unbounded).  Used by the memoized `NavL[PC]` evaluator
    /// to bound the intermediate time points of a concatenation (Algorithm 3).
    pub fn max_temporal_steps(&self) -> Option<u64> {
        match self {
            Path::Test(_) => Some(0),
            Path::Axis(a) => Some(if a.is_temporal() { 1 } else { 0 }),
            Path::Seq(a, b) => {
                Some(a.max_temporal_steps()?.saturating_add(b.max_temporal_steps()?))
            }
            Path::Alt(a, b) => Some(a.max_temporal_steps()?.max(b.max_temporal_steps()?)),
            Path::Repeat(p, _, Some(m)) => Some(p.max_temporal_steps()?.saturating_mul(*m as u64)),
            Path::Repeat(p, _, None) => {
                if p.max_temporal_steps()? == 0 {
                    Some(0)
                } else {
                    None
                }
            }
        }
    }
}

fn test_size(test: &TestExpr) -> usize {
    match test {
        TestExpr::PathTest(p) => 1 + p.size(),
        TestExpr::And(a, b) | TestExpr::Or(a, b) => 1 + test_size(a) + test_size(b),
        TestExpr::Not(a) => 1 + test_size(a),
        _ => 1,
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Path::Test(t) => write!(f, "{t}"),
            Path::Axis(a) => write!(f, "{a}"),
            Path::Seq(a, b) => write!(f, "({a} / {b})"),
            Path::Alt(a, b) => write!(f, "({a} + {b})"),
            Path::Repeat(p, n, Some(m)) => write!(f, "{p}[{n}, {m}]"),
            Path::Repeat(p, n, None) => write!(f, "{p}[{n}, _]"),
        }
    }
}

impl From<TestExpr> for Path {
    fn from(test: TestExpr) -> Self {
        Path::Test(test)
    }
}

impl From<Axis> for Path {
    fn from(axis: Axis) -> Self {
        Path::Axis(axis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_properties() {
        assert!(Axis::Fwd.is_structural() && Axis::Bwd.is_structural());
        assert!(Axis::Next.is_temporal() && Axis::Prev.is_temporal());
        assert_eq!(Axis::Fwd.inverse(), Axis::Bwd);
        assert_eq!(Axis::Next.inverse(), Axis::Prev);
    }

    #[test]
    fn q8_expression_builds_and_prints() {
        // (Node ∧ Person ∧ test ↦ pos)/(P/∃)[0,_]/F/(visits ∧ ∃)/F/(Node ∧ Room)
        let q8 = Path::test(
            TestExpr::Node.and(TestExpr::label("Person")).and(TestExpr::prop("test", "pos")),
        )
        .then(Path::axis(Axis::Prev).then(TestExpr::Exists.into_path()).star())
        .then(Path::axis(Axis::Fwd))
        .then(TestExpr::label("visits").and(TestExpr::Exists).into_path())
        .then(Path::axis(Axis::Fwd))
        .then(TestExpr::Node.and(TestExpr::label("Room")).into_path());
        assert!(q8.has_occurrence_indicator());
        assert!(!q8.has_path_condition());
        assert!(q8.size() > 10);
        let shown = q8.to_string();
        assert!(shown.contains("[0, _]"));
        assert!(shown.contains("Person"));
    }

    #[test]
    fn fragment_predicates() {
        let pc = Path::test(TestExpr::path_test(Path::axis(Axis::Next)));
        assert!(pc.has_path_condition());
        assert!(!pc.has_occurrence_indicator());

        let noi = Path::axis(Axis::Next).repeat(0, 5);
        assert!(noi.has_occurrence_indicator());
        assert!(!noi.has_path_condition());
        assert!(noi.occurrence_indicators_only_on_axes());

        let not_anoi = Path::axis(Axis::Next).then(Path::axis(Axis::Fwd)).repeat(1, 2);
        assert!(!not_anoi.occurrence_indicators_only_on_axes());

        let nested = Path::test(TestExpr::path_test(Path::axis(Axis::Next).repeat(2, 3)));
        assert!(nested.has_occurrence_indicator());
    }

    #[test]
    fn derived_time_tests() {
        // = k is (< k+1 ∧ ¬< k).
        match TestExpr::time_eq(10) {
            TestExpr::And(a, b) => {
                assert_eq!(*a, TestExpr::TimeLt(11));
                assert_eq!(*b, TestExpr::TimeLt(10).not());
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert_eq!(TestExpr::time_le(4), TestExpr::TimeLt(5));
    }

    #[test]
    fn max_temporal_steps_bounds() {
        assert_eq!(Path::axis(Axis::Fwd).max_temporal_steps(), Some(0));
        assert_eq!(Path::axis(Axis::Next).max_temporal_steps(), Some(1));
        let q = Path::axis(Axis::Next).then(Path::axis(Axis::Prev)).repeat(0, 12);
        assert_eq!(q.max_temporal_steps(), Some(24));
        assert_eq!(Path::axis(Axis::Next).star().max_temporal_steps(), None);
        assert_eq!(Path::test(TestExpr::Exists).star().max_temporal_steps(), Some(0));
    }

    #[test]
    fn combinators_shape() {
        let p =
            Path::seq_all([Path::axis(Axis::Fwd), Path::axis(Axis::Fwd), Path::axis(Axis::Next)]);
        assert_eq!(p.size(), 5);
        let a = Path::alt_all([Path::axis(Axis::Fwd), Path::axis(Axis::Bwd)]);
        assert!(matches!(a, Path::Alt(_, _)));
        assert!(matches!(Path::axis(Axis::Next).optional(), Path::Repeat(_, 0, Some(1))));
        assert!(matches!(Path::axis(Axis::Next).plus(), Path::Repeat(_, 1, None)));
    }
}
