//! Schedule-exploring model check of the epoch protocol.
//!
//! Every test drives scripted reader/writer threads through
//! [`live::sched::Explorer`], which enumerates **all** interleavings of their
//! pin / publish / unpin / clone operations (the explorer's coverage is the
//! multinomial closed form, asserted exactly per test).  At every quiescent
//! point of every schedule the epoch invariants must hold:
//!
//! * **no lost epoch** — every published snapshot is either retained or
//!   retired (`retained + retired == published`);
//! * **the current epoch always survives** — `current_version()` is retained;
//! * **pin-count balance** — the registry's `pinned_readers` equals the number
//!   of pin guards the scripts actually hold;
//! * **no use-after-retire** — every version held by a live guard is still
//!   retained (and its snapshot readable).
//!
//! A failing invariant panics with the exact `(thread, operation)` trace; the
//! last test seeds a deliberately wrong invariant to prove that counterexample
//! reporting works end to end.

#![cfg(any(debug_assertions, feature = "model-check"))]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use live::epoch::EpochManager;
use live::sched::Explorer;
use live::serve::ServeGraph;
use tgraph::{Batch, Interval};

/// One scripted epoch-protocol operation.  Slot indices refer to the pins the
/// same thread acquired earlier (each `Pin`/`ClonePin` appends a slot), so
/// scripts are self-contained and every operation performs exactly one yield.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Pin the current epoch into the next slot.
    Pin,
    /// Clone the pin in the given slot into the next slot (re-pin).
    ClonePin(usize),
    /// Drop the pin in the given slot.
    Unpin(usize),
    /// Publish a new epoch (the model-check stand-in for an ingest).
    Publish,
}

/// The per-schedule shared state: a fresh manager, the scripts, and the
/// ground-truth bookkeeping the invariants compare the registry against.
struct CheckState {
    manager: Arc<EpochManager>,
    scripts: Vec<Vec<Op>>,
    /// Pin guards currently held across all threads (ground truth for
    /// `pinned_readers`).
    expected_pins: AtomicUsize,
    /// The versions of all currently held guards (ground truth for
    /// use-after-retire).
    held: Mutex<Vec<u64>>,
}

impl CheckState {
    fn new(scripts: Vec<Vec<Op>>) -> Self {
        // The manager outlives its ServeGraph (shared ownership); the scripts
        // drive it directly, so the writer half is not needed here.
        let manager = Arc::clone(ServeGraph::new(Interval::of(1, 10)).epochs());
        CheckState {
            manager,
            scripts,
            expected_pins: AtomicUsize::new(0),
            held: Mutex::new(Vec::new()),
        }
    }
}

fn held(state: &CheckState) -> std::sync::MutexGuard<'_, Vec<u64>> {
    state.held.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs one thread's script.  Bookkeeping happens *after* each operation
/// returns and *before* the next yield point, so at every quiescent point the
/// ground truth matches the registry exactly.
fn run_script(tid: usize, state: &CheckState) {
    let mut slots: Vec<Option<live::PinnedEpoch>> = Vec::new();
    for op in &state.scripts[tid] {
        match *op {
            Op::Pin => {
                let pin = state.manager.pin();
                assert!(state.manager.is_retained(pin.version()), "pinned an unretained epoch");
                state.expected_pins.fetch_add(1, Ordering::SeqCst);
                held(state).push(pin.version());
                slots.push(Some(pin));
            }
            Op::ClonePin(slot) => {
                let pin = slots[slot].as_ref().expect("scripts clone only held pins").clone();
                state.expected_pins.fetch_add(1, Ordering::SeqCst);
                held(state).push(pin.version());
                slots.push(Some(pin));
            }
            Op::Unpin(slot) => {
                let pin = slots[slot].take().expect("scripts unpin only held pins");
                let version = pin.version();
                // The snapshot must still be readable right up to the unpin.
                assert!(pin.relations().stats().nodes == 0, "the empty graph has no nodes");
                drop(pin);
                state.expected_pins.fetch_sub(1, Ordering::SeqCst);
                let mut held = held(state);
                let index = held.iter().position(|&v| v == version).expect("version was recorded");
                held.swap_remove(index);
            }
            Op::Publish => {
                state.manager.republish_for_check();
            }
        }
    }
}

/// The epoch invariants, checked at every quiescent point of every schedule.
fn epoch_invariants(state: &CheckState) -> Result<(), String> {
    let stats = state.manager.stats();
    if stats.retained as u64 + stats.retired != stats.published {
        return Err(format!(
            "lost epoch: {} retained + {} retired != {} published",
            stats.retained, stats.retired, stats.published
        ));
    }
    let current = state.manager.current_version();
    if !state.manager.is_retained(current) {
        return Err(format!("current epoch v{current} is not retained"));
    }
    let expected = state.expected_pins.load(Ordering::SeqCst);
    if stats.pinned_readers != expected {
        return Err(format!(
            "pin-count imbalance: registry says {} pinned readers, scripts hold {expected}",
            stats.pinned_readers
        ));
    }
    for &version in held(state).iter() {
        if !state.manager.is_retained(version) {
            return Err(format!("use after retire: held epoch v{version} was reclaimed"));
        }
    }
    Ok(())
}

/// The end-of-schedule state: every guard released, only the current epoch
/// left alive.
fn clean_end_state(state: &CheckState) -> Result<(), String> {
    epoch_invariants(state)?;
    let stats = state.manager.stats();
    if stats.pinned_readers != 0 {
        return Err(format!("{} pins leaked past the end of the scripts", stats.pinned_readers));
    }
    if stats.retained != 1 {
        return Err(format!(
            "{} epochs retained at the end; only the current one should survive",
            stats.retained
        ));
    }
    Ok(())
}

/// Explores every interleaving of the given scripts and asserts the exact
/// closed-form schedule count (the proof that coverage is complete).
fn check_epoch_protocol(scripts: Vec<Vec<Op>>, expected_schedules: usize) {
    let threads = scripts.len();
    let total_ops: usize = scripts.iter().map(Vec::len).sum();
    let report = Explorer::default().explore(
        threads,
        || CheckState::new(scripts.clone()),
        run_script,
        epoch_invariants,
        clean_end_state,
    );
    assert_eq!(
        report.schedules, expected_schedules,
        "coverage drifted from the closed-form interleaving count"
    );
    assert_eq!(report.steps, expected_schedules * total_ops);
}

/// n! / (k₁! ⋯ kₙ!) for the per-thread op counts — the number of distinct
/// interleavings of the scripts.
fn multinomial(op_counts: &[usize]) -> usize {
    let total: usize = op_counts.iter().sum();
    let mut result = 1usize;
    let mut denominator = 1usize;
    let mut k = 0usize;
    for &count in op_counts {
        for i in 1..=count {
            k += 1;
            result *= k;
            denominator *= i;
        }
    }
    assert_eq!(k, total);
    result / denominator
}

#[test]
fn two_threads_reader_vs_writer_all_interleavings() {
    // A reader pinning and unpinning around a writer publishing three times:
    // all C(5,2) = 10 interleavings, covering pin-before/between/after every
    // publish — including the schedule where the pinned epoch goes stale and
    // must survive until the unpin.
    let scripts = vec![vec![Op::Pin, Op::Unpin(0)], vec![Op::Publish, Op::Publish, Op::Publish]];
    check_epoch_protocol(scripts, multinomial(&[2, 3]));
}

#[test]
fn two_threads_clone_handoff_all_interleavings() {
    // A reader hands its snapshot on by cloning the pin, then releases the
    // original before the clone (the server's response path), against a
    // two-publish writer: C(6,4)·C(4,4)… = 6!/(4!·2!) = 15 interleavings.
    let scripts = vec![
        vec![Op::Pin, Op::ClonePin(0), Op::Unpin(0), Op::Unpin(1)],
        vec![Op::Publish, Op::Publish],
    ];
    check_epoch_protocol(scripts, multinomial(&[4, 2]));
}

#[test]
fn two_threads_interleaved_repins() {
    // A reader that re-pins after every unpin, racing a writer: every pin may
    // land on a different epoch, every unpin may or may not retire one.
    let scripts = vec![
        vec![Op::Pin, Op::Unpin(0), Op::Pin, Op::Unpin(1)],
        vec![Op::Publish, Op::Publish, Op::Publish],
    ];
    check_epoch_protocol(scripts, multinomial(&[4, 3]));
}

#[test]
fn three_threads_two_readers_one_writer() {
    // Two independent readers against a two-publish writer: 6!/(2!·2!·2!) =
    // 90 interleavings, exhaustively (not just bounded).
    let scripts = vec![
        vec![Op::Pin, Op::Unpin(0)],
        vec![Op::Pin, Op::Unpin(0)],
        vec![Op::Publish, Op::Publish],
    ];
    check_epoch_protocol(scripts, multinomial(&[2, 2, 2]));
}

#[test]
fn three_threads_concurrent_publishers() {
    // Publishing is itself concurrent under the registry lock (the model-check
    // republish skips the writer mutex): two publishers racing a cloning
    // reader, 8!/(4!·2!·2!) = 420 interleavings.
    let scripts = vec![
        vec![Op::Pin, Op::ClonePin(0), Op::Unpin(1), Op::Unpin(0)],
        vec![Op::Publish, Op::Publish],
        vec![Op::Publish, Op::Publish],
    ];
    check_epoch_protocol(scripts, multinomial(&[4, 2, 2]));
}

#[test]
fn three_threads_deep_exhaustive() {
    // The densest scenario: 9 operations across three threads — a cloning
    // reader, a plain reader and a three-publish writer — 9!/(4!·2!·3!) =
    // 1260 schedules, all explored.
    let scripts = vec![
        vec![Op::Pin, Op::ClonePin(0), Op::Unpin(0), Op::Unpin(1)],
        vec![Op::Pin, Op::Unpin(0)],
        vec![Op::Publish, Op::Publish, Op::Publish],
    ];
    check_epoch_protocol(scripts, multinomial(&[4, 2, 3]));
}

#[test]
fn serve_graph_ingest_against_concurrent_readers() {
    // The ServeGraph-level protocol: one writer ingesting real batches (the
    // publish yield fires while the writer mutex is held — single-writer
    // discipline keeps that sound) against two pin/unpin readers:
    // 6!/(2!·2!·2!) = 90 interleavings.
    fn batch(epoch: u64) -> Batch {
        let mut b = Batch::new(epoch);
        let person = format!("p{epoch}");
        b.add_node(&person, "Person").add_existence(&person, Interval::of(1, 10));
        b
    }
    struct ServeState {
        graph: ServeGraph,
        expected_pins: AtomicUsize,
        held: Mutex<Vec<u64>>,
    }
    let report = Explorer::default().explore(
        3,
        || ServeState {
            graph: ServeGraph::new(Interval::of(1, 10)),
            expected_pins: AtomicUsize::new(0),
            held: Mutex::new(Vec::new()),
        },
        |tid, state| {
            fn lock_held(held: &Mutex<Vec<u64>>) -> std::sync::MutexGuard<'_, Vec<u64>> {
                held.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
            }
            if tid == 2 {
                for epoch in 1..=2 {
                    state.graph.ingest(&batch(epoch)).expect("the batches are valid");
                }
            } else {
                let pin = state.graph.pin();
                state.expected_pins.fetch_add(1, Ordering::SeqCst);
                lock_held(&state.held).push(pin.version());
                let version = pin.version();
                assert!(state.graph.epochs().is_retained(version));
                drop(pin);
                state.expected_pins.fetch_sub(1, Ordering::SeqCst);
                let mut held = lock_held(&state.held);
                let index = held.iter().position(|&v| v == version).expect("recorded");
                held.swap_remove(index);
            }
        },
        |state| {
            let stats = state.graph.stats();
            if stats.retained as u64 + stats.retired != stats.published {
                return Err(format!("lost epoch: {stats:?}"));
            }
            if !state.graph.epochs().is_retained(state.graph.epochs().current_version()) {
                return Err("current epoch is not retained".to_owned());
            }
            if stats.pinned_readers != state.expected_pins.load(Ordering::SeqCst) {
                return Err(format!("pin-count imbalance: {stats:?}"));
            }
            for &version in
                state.held.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).iter()
            {
                if !state.graph.epochs().is_retained(version) {
                    return Err(format!("use after retire: v{version}"));
                }
            }
            Ok(())
        },
        |state| {
            let stats = state.graph.stats();
            if stats.pinned_readers != 0 || stats.retained != 1 {
                return Err(format!("unclean end state: {stats:?}"));
            }
            if state.graph.batches_applied() != 2 {
                return Err("the writer lost a batch".to_owned());
            }
            Ok(())
        },
    );
    assert_eq!(report.schedules, multinomial(&[2, 2, 2]));
}

#[test]
fn seeded_violation_is_caught_with_a_trace() {
    // Prove the harness catches protocol violations: an (intentionally wrong)
    // invariant claiming no epoch ever retires must fail on the schedule where
    // a publish retires the unpinned initial epoch — with the trace naming the
    // publish that did it.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        Explorer::default().explore(
            2,
            || CheckState::new(vec![vec![Op::Pin, Op::Unpin(0)], vec![Op::Publish]]),
            run_script,
            |state| {
                if state.manager.stats().retired > 0 {
                    Err("an epoch retired (seeded wrong invariant)".to_owned())
                } else {
                    Ok(())
                }
            },
            |_| Ok(()),
        );
    }));
    let payload = outcome.expect_err("the seeded violation must be caught");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&'static str>().map(|s| (*s).to_owned()))
        .expect("panic carries a message");
    assert!(message.contains("model check failed"), "{message}");
    assert!(message.contains("epoch:publish"), "{message}");
    assert!(message.contains("seeded wrong invariant"), "{message}");
}
