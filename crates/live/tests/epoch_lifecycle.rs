//! Deterministic epoch-lifecycle tests for the MVCC layer: pin → apply batch →
//! read the stale snapshot → unpin → retire, proving that
//!
//! * a pinned epoch is never reclaimed, no matter how many batches the writer
//!   publishes over it, and
//! * a reader can never observe a half-applied batch — every pinned snapshot is
//!   canonically identical to a bulk `from_itpg` build of the graph at that
//!   epoch, even while the writer is mid-stream on other threads.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use engine::{ExecutionOptions, GraphRelations};
use live::serve::ServeGraph;
use live::EpochStats;
use tgraph::{Batch, Interval, Itpg};
use workload::{stream_contact_batches, ContactTracingConfig};

fn iv(a: u64, b: u64) -> Interval {
    Interval::of(a, b)
}

/// A three-epoch story: people arrive, then meet, then a test comes back
/// positive.
fn story() -> Vec<Batch> {
    let mut b1 = Batch::new(1);
    b1.add_node("mia", "Person")
        .add_node("eve", "Person")
        .add_existence("mia", iv(1, 10))
        .add_existence("eve", iv(1, 10))
        .set_property("mia", "risk", "high", iv(1, 10));
    let mut b2 = Batch::new(2);
    b2.add_edge("meets1", "meets", "mia", "eve").add_existence("meets1", iv(2, 3));
    let mut b3 = Batch::new(8);
    b3.set_property("eve", "test", "pos", iv(8, 10));
    vec![b1, b2, b3]
}

/// The canonical relations of the graph obtained by replaying a batch prefix
/// over the given initial domain — the from-scratch reference a pinned
/// snapshot must match.
fn reference_at(domain: Interval, batches: &[Batch]) -> engine::CanonicalRelations {
    let mut itpg = Itpg::empty(domain);
    for batch in batches {
        itpg.apply_batch(batch).expect("test batches are valid");
    }
    GraphRelations::from_itpg(&itpg).canonical_snapshot()
}

#[test]
fn pin_apply_read_unpin_retire() {
    let graph = ServeGraph::new(iv(1, 10));
    let batches = story();
    graph.ingest(&batches[0]).unwrap();

    // Pin the epoch of batch 1, then let the writer move two epochs ahead.
    let pin = graph.pin();
    let pinned_version = pin.version();
    assert_eq!(pin.epoch(), Some(1));
    graph.ingest(&batches[1]).unwrap();
    graph.ingest(&batches[2]).unwrap();

    // The pinned epoch is retained and still reads the state of batch 1 —
    // no trace of the meeting or the positive test.
    assert!(graph.epochs().is_retained(pinned_version));
    assert_eq!(pin.relations().canonical_snapshot(), reference_at(iv(1, 10), &batches[..1]));
    assert_eq!(graph.pin().relations().canonical_snapshot(), reference_at(iv(1, 10), &batches));

    // Unpinning retires the stale epoch; the current one stays.
    let before = graph.stats();
    assert_eq!(before.pinned_readers, 1);
    drop(pin);
    assert!(!graph.epochs().is_retained(pinned_version), "unpin retires the stale epoch");
    let after = graph.stats();
    assert_eq!(after.retired, before.retired + 1);
    assert_eq!(after.pinned_readers, 0);
    assert_eq!(after.retained, 1, "only the current epoch remains");
}

#[test]
fn every_epoch_of_a_stream_is_individually_pinnable() {
    let graph = ServeGraph::new(iv(1, 10));
    let batches = story();
    let mut pins = Vec::new();
    for batch in &batches {
        graph.ingest(batch).unwrap();
        pins.push(graph.pin());
    }
    // All three epochs are alive at once, each reading its own prefix.
    for (index, pin) in pins.iter().enumerate() {
        assert_eq!(pin.epoch(), Some(batches[index].epoch));
        assert_eq!(
            pin.relations().canonical_snapshot(),
            reference_at(iv(1, 10), &batches[..=index])
        );
    }
    let stats = graph.stats();
    assert_eq!(stats.pinned_readers, 3);
    assert_eq!(stats.retained, 3, "two stale pinned epochs plus the current one");

    // Dropping the pins oldest-first retires exactly the stale ones.
    let versions: Vec<u64> = pins.iter().map(|p| p.version()).collect();
    for (index, pin) in pins.into_iter().enumerate() {
        drop(pin);
        let stale = index + 1 < versions.len();
        assert_eq!(
            graph.epochs().is_retained(versions[index]),
            !stale,
            "epoch {index} should be retained iff it is current"
        );
    }
    assert_eq!(
        graph.stats(),
        EpochStats { published: 4, retained: 1, retired: 3, pinned_readers: 0 }
    );
}

#[test]
fn registration_publishes_an_epoch_with_the_new_table() {
    let graph = ServeGraph::new(iv(1, 10));
    let before = graph.pin();
    assert_eq!(before.num_queries(), 0);
    let id = graph.register_text("MATCH (x:Person {risk = 'high'}) ON live").unwrap();
    let after = graph.pin();
    assert_eq!(after.num_queries(), 1);
    assert!(before.table(id).is_none(), "the old epoch does not know the new query");
    assert!(after.table(id).unwrap().is_empty());

    // A refresh swaps the table handle; the pinned epoch keeps the old one.
    graph.ingest(&story()[0]).unwrap();
    let refreshed = graph.pin();
    assert_eq!(refreshed.table(id).unwrap().len(), 1, "mia is high-risk");
    assert!(after.table(id).unwrap().is_empty(), "the pinned epoch's answer is immutable");
}

/// The concurrency half: reader threads pin snapshots at arbitrary points while
/// the writer streams the contact-tracing workload, and every pinned snapshot
/// must be canonically identical to a from-scratch build of the graph at that
/// epoch — i.e. a reader can never observe a half-applied batch.
#[test]
fn concurrent_readers_never_observe_half_applied_batches() {
    let config = ContactTracingConfig::with_persons(24)
        .with_seed(17)
        .with_time_points(10)
        .with_positivity_rate(0.25);
    let batches = stream_contact_batches(&config);
    assert!(batches.len() >= 4, "the stream spans several epochs");

    // From-scratch reference per epoch, computed before any concurrency.
    let mut references: BTreeMap<Option<u64>, engine::CanonicalRelations> = BTreeMap::new();
    references.insert(None, reference_at(iv(0, 1), &[]));
    for end in 1..=batches.len() {
        references.insert(Some(batches[end - 1].epoch), reference_at(iv(0, 1), &batches[..end]));
    }

    let graph =
        Arc::new(ServeGraph::with_options(Itpg::empty(iv(0, 1)), ExecutionOptions::sequential()));
    let done = AtomicBool::new(false);
    let verified = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let mut local = 0usize;
                // Keep pinning until the writer finishes, then once more so the
                // final epoch is checked even if the readers started late.
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let pin = graph.pin();
                    let reference = references
                        .get(&pin.epoch())
                        .expect("every pinned epoch corresponds to a batch prefix");
                    assert_eq!(
                        &pin.relations().canonical_snapshot(),
                        reference,
                        "snapshot at epoch {:?} diverged from the from-scratch build",
                        pin.epoch()
                    );
                    local += 1;
                    if finished {
                        break;
                    }
                }
                verified.fetch_add(local, Ordering::Relaxed);
            });
        }
        for batch in &batches {
            graph.ingest(batch).unwrap();
        }
        done.store(true, Ordering::Release);
    });

    assert!(verified.load(Ordering::Relaxed) >= 3, "every reader verified at least one snapshot");
    // The writer was never starved: every batch landed.
    assert_eq!(graph.batches_applied(), batches.len());
    let stats = graph.stats();
    assert_eq!(stats.published as usize, batches.len() + 1);
    assert_eq!(stats.pinned_readers, 0, "all reader pins were released");
    assert_eq!(stats.retained, 1, "only the current epoch outlives the readers");
    assert_eq!(stats.retired as usize, batches.len(), "every stale epoch retired");
}
