//! Deterministic fault-handling tests for the query server: worker-panic
//! containment, abortive close, and graceful shutdown draining.
//!
//! The panic tests submit a request whose execution panics *deterministically*
//! in every build profile: the plan smuggles a `Bind` inside a closure body,
//! which the debug-mode plan audit rejects up front and the release-mode
//! closure evaluator refuses with an `unreachable!` — either way the worker
//! thread unwinds and the server must contain it.

use std::sync::Arc;

use engine::plan::{ClosureOp, ClosureStep, MicroOp};
use engine::{compile, AnswerMode, ExecutionOptions};
use live::serve::{Request, ServeGraph, Server};
use live::LiveError;
use tgraph::{Batch, Interval, Itpg};

fn iv(a: u64, b: u64) -> Interval {
    Interval::of(a, b)
}

const HEALTHY: &str = "MATCH (x:Person) ON live";

fn populated_graph() -> Arc<ServeGraph> {
    let graph =
        Arc::new(ServeGraph::with_options(Itpg::empty(iv(1, 10)), ExecutionOptions::sequential()));
    let mut batch = Batch::new(1);
    batch.add_node("ann", "Person").add_existence("ann", iv(1, 9));
    graph.ingest(&batch).unwrap();
    graph
}

fn healthy_request() -> Request {
    Request::AdHoc { text: HEALTHY.into(), mode: AnswerMode::Materialized }
}

/// A pre-compiled request whose execution panics deterministically (see the
/// module docs).  It must reach the server as `Request::Compiled`: the parser
/// and compiler can never produce this shape, which is exactly why the
/// executor treats it as a hard internal error.
fn panicking_request() -> Request {
    let mut plan = compile(&trpq::parser::parse_match(HEALTHY).unwrap()).unwrap();
    let bad = ClosureOp {
        alternatives: vec![vec![ClosureStep::Micro(MicroOp::Bind(0))]],
        min: 1,
        max: Some(1),
    };
    plan.plans[0].segments[0].ops.push(MicroOp::Closure(bad));
    Request::Compiled { plan: Arc::new(plan), mode: AnswerMode::Materialized }
}

#[test]
fn a_panicking_request_is_contained_and_the_worker_survives() {
    let graph = populated_graph();
    let server = Server::start(Arc::clone(&graph), 1);
    let err = server.submit(panicking_request()).wait().unwrap_err();
    let LiveError::WorkerPanicked(message) = err else {
        panic!("expected WorkerPanicked, got: {err:?}");
    };
    assert!(!message.is_empty(), "the panic payload is carried to the requester");
    // One worker only: the very thread that just unwound must serve this.
    let response = server.submit(healthy_request()).wait().unwrap();
    assert!(!response.answer.rows().unwrap().is_empty());
    server.shutdown();
}

#[test]
fn panicking_requests_do_not_take_down_neighbours() {
    let graph = populated_graph();
    let server = Server::start(Arc::clone(&graph), 2);
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            if i % 2 == 0 {
                server.submit(panicking_request())
            } else {
                server.submit(healthy_request())
            }
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let result = ticket.wait();
        if i % 2 == 0 {
            assert!(matches!(result, Err(LiveError::WorkerPanicked(_))), "ticket {i}: {result:?}");
        } else {
            let response = result.unwrap_or_else(|e| panic!("ticket {i} failed: {e}"));
            assert!(!response.answer.rows().unwrap().is_empty());
        }
    }
    server.shutdown();
}

#[test]
fn close_fails_subsequent_submissions_fast() {
    let graph = populated_graph();
    let server = Server::start(Arc::clone(&graph), 2);
    assert!(!server.is_closed());
    server.close();
    assert!(server.is_closed());
    for _ in 0..3 {
        assert_eq!(server.submit(healthy_request()).wait().unwrap_err(), LiveError::ServerClosed);
    }
    // `close` is idempotent, and shutdown still joins cleanly afterwards.
    server.close();
    server.shutdown();
}

#[test]
fn every_ticket_resolves_across_an_abortive_close() {
    let graph = populated_graph();
    let server = Server::start(Arc::clone(&graph), 1);
    let before: Vec<_> = (0..8).map(|_| server.submit(healthy_request())).collect();
    server.close();
    let after = server.submit(healthy_request());
    // Tickets submitted before the close either executed already or are
    // drained as ServerClosed — none may hang or be dropped silently.
    for (i, ticket) in before.into_iter().enumerate() {
        match ticket.wait() {
            Ok(response) => assert!(!response.answer.rows().unwrap().is_empty()),
            Err(LiveError::ServerClosed) => {}
            Err(other) => panic!("ticket {i}: unexpected error {other:?}"),
        }
    }
    assert_eq!(after.wait().unwrap_err(), LiveError::ServerClosed);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_the_queue() {
    let graph = populated_graph();
    let server = Server::start(Arc::clone(&graph), 1);
    let tickets: Vec<_> = (0..4).map(|_| server.submit(healthy_request())).collect();
    server.shutdown();
    for ticket in tickets {
        assert!(!ticket.wait().unwrap().answer.rows().unwrap().is_empty());
    }
}
