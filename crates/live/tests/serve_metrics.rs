//! Concurrency pins for the observability layer at the server boundary:
//!
//! * a worker pool hammering the process-wide registry produces exactly the
//!   totals a serial replay of the same requests would (no lost updates,
//!   no double counts);
//! * recording from workers — including the epoch bookkeeping that runs while
//!   the manager's `MutexGuard` is live — never acquires the registry lock
//!   (the worker-pool variant of obs's own `recording_does_not_lock` pin);
//! * a `Request::Metrics` scrape served by the same pool is well-formed in
//!   both formats, and every `Response` carries a populated [`ServeHealth`].
//!
//! Everything lives in one test function: the registry is process-global, and
//! a single test per binary keeps the before/after deltas race-free.

use std::sync::Arc;

use engine::{AnswerMode, ExecutionOptions};
use live::serve::{MetricsFormat, Request, ServeGraph, Server};
use tgraph::{Batch, Interval, Itpg};

const QUERY: &str = "MATCH (x:Person) ON live";

fn populated_graph() -> Arc<ServeGraph> {
    let graph = Arc::new(ServeGraph::with_options(
        Itpg::empty(Interval::of(1, 10)),
        ExecutionOptions::sequential(),
    ));
    let mut batch = Batch::new(1);
    batch.add_node("ann", "Person").add_existence("ann", Interval::of(1, 9));
    graph.ingest(&batch).unwrap();
    graph
}

fn request(mode: AnswerMode) -> Request {
    Request::AdHoc { text: QUERY.into(), mode }
}

#[test]
fn worker_pool_recording_matches_serial_replay_without_locking() {
    let reg = obs::global();
    let graph = populated_graph();
    let registered_id = graph.register_text(QUERY).unwrap();

    // The engine's own handles for the same series: get-or-create returns the
    // series the server records into, so deltas observe its behaviour exactly.
    let req_help = "Requests served, by answer mode.";
    let req_full = reg.counter("tpath_serve_requests_total", req_help, &[("mode", "full")]);
    let req_compact = reg.counter("tpath_serve_requests_total", req_help, &[("mode", "compact")]);
    let req_enum = reg.counter("tpath_serve_requests_total", req_help, &[("mode", "enum")]);
    let req_registered =
        reg.counter("tpath_serve_requests_total", req_help, &[("mode", "registered")]);
    let request_seconds =
        reg.latency_histogram("tpath_serve_request_seconds", "End-to-end latency.", &[]);
    let queue_wait = reg.latency_histogram("tpath_serve_queue_wait_seconds", "Queue wait.", &[]);
    let busy = reg.gauge("tpath_serve_busy_workers", "Busy workers.", &[]);
    let depth = reg.gauge("tpath_serve_queue_depth", "Queue depth.", &[]);
    let workers = reg.gauge("tpath_serve_workers", "Workers in the pool.", &[]);

    let server = Server::start(Arc::clone(&graph), 4);
    // Warm-up: one request per code path, so every OnceLock handle set and
    // every registry series exists before the lock baseline is taken.
    server.submit(request(AnswerMode::Materialized)).wait().unwrap();
    server.submit(Request::Registered(registered_id)).wait().unwrap();

    let base_full = req_full.get();
    let base_compact = req_compact.get();
    let base_enum = req_enum.get();
    let base_registered = req_registered.get();
    let base_requests = request_seconds.snapshot().count;
    let base_waits = queue_wait.snapshot().count;
    let base_locks = reg.lock_acquisitions();

    // The hammer: 4 workers racing over 80 mixed-mode requests, with ingests
    // (epoch publish/retire under the manager's lock) interleaved from this
    // thread.  A serial replay of the same workload would count 20 per mode.
    const PER_MODE: u64 = 20;
    let mut tickets = Vec::new();
    for i in 0..PER_MODE {
        tickets.push(server.submit(request(AnswerMode::Materialized)));
        tickets.push(server.submit(request(AnswerMode::Compact)));
        tickets.push(server.submit(request(AnswerMode::Enumerate)));
        tickets.push(server.submit(Request::Registered(registered_id)));
        if i % 5 == 0 {
            let mut batch = Batch::new(i + 2);
            let name = format!("p{i}");
            batch.add_node(&name, "Person").add_existence(&name, Interval::of(1, 9));
            graph.ingest(&batch).unwrap();
        }
    }
    for ticket in tickets {
        let response = ticket.wait().unwrap();
        // Satellite pin: every response carries the health block.
        assert!(response.health.retained_epochs >= 1);
        assert_eq!(response.health.fallback_refreshes, 0, "deltas must not fall back here");
    }

    // Totals match the serial replay exactly — relaxed atomics lose nothing.
    assert_eq!(req_full.get() - base_full, PER_MODE);
    assert_eq!(req_compact.get() - base_compact, PER_MODE);
    assert_eq!(req_enum.get() - base_enum, PER_MODE);
    assert_eq!(req_registered.get() - base_registered, PER_MODE);
    assert_eq!(request_seconds.snapshot().count - base_requests, 4 * PER_MODE);
    assert_eq!(queue_wait.snapshot().count - base_waits, 4 * PER_MODE);
    // The pool is quiescent again: the utilization gauges drained to idle.
    assert_eq!(busy.get(), 0, "busy-worker gauge must drain to zero");
    assert_eq!(depth.get(), 0, "queue-depth gauge must drain to zero");

    // Lock-freedom, worker-pool variant: none of the recording above — spans,
    // counters, the epoch gauges updated while the manager's MutexGuard was
    // live — touched the registry lock.  Only registration and snapshots do.
    assert_eq!(reg.lock_acquisitions(), base_locks, "metric recording acquired the registry lock");

    // A scrape through the same worker pool, while the server is live.
    let response = server.submit(Request::Metrics(MetricsFormat::Prometheus)).wait().unwrap();
    let text = response.answer.metrics().expect("a Metrics request answers with rendered text");
    for family in
        ["tpath_serve_requests_total", "tpath_epoch_retained", "tpath_live_refreshes_total"]
    {
        assert!(text.contains(family), "scrape is missing {family}");
    }
    assert!(text.contains("# TYPE tpath_serve_requests_total counter"));
    assert!(text.contains("mode=\"full\""));
    assert!(response.health.refreshes >= 1, "ingests refreshed the registered query");

    let response = server.submit(Request::Metrics(MetricsFormat::Json)).wait().unwrap();
    let json = response.answer.metrics().unwrap();
    assert!(json.starts_with('[') && json.ends_with(']'), "render_json is one JSON array");
    assert!(json.contains("\"name\":\"tpath_serve_requests_total\""));

    let pool_size = workers.get();
    server.shutdown();
    assert_eq!(workers.get(), pool_size - 4, "joined workers leave the pool gauge");
}
