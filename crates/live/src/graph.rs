//! The live graph handle: batch ingestion, epoch bookkeeping, and the registry
//! of maintained queries.

use engine::bindings::BindingTable;
use engine::plan::PlanSet;
use engine::{
    compile, effective_strategy, DeltaStats, ExecutionOptions, GraphRelations, JoinStrategy,
    TableCursor,
};
use tgraph::{AppliedBatch, Batch, Interval, Itpg};
use trpq::queries::QueryId;

use crate::error::LiveError;
use crate::query::{LiveQueryId, QueryState, RefreshStats};

/// What one [`LiveGraph::apply`] call did: the graph-level outcome plus the
/// row-level delta folded into the engine relations.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestStats {
    /// The graph-level outcome (created and touched objects).
    pub applied: AppliedBatch,
    /// The row-level relation delta.
    pub delta: DeltaStats,
    /// Number of mutations in the batch.
    pub mutations: usize,
}

/// A temporal graph that is fed by an append-only stream of epoched mutation
/// batches and maintains the answers of registered queries.
///
/// The graph owns both representations the engine needs — the succinct
/// [`Itpg`] (the source of truth mutated by batches) and the interval
/// relations ([`GraphRelations`]) kept in sync incrementally — plus one
/// maintained result table per registered query.  `apply` ingests a batch and
/// marks every registered query dirty; `refresh` folds the accumulated deltas
/// into one query's answer (see [`RefreshStats`] for what a refresh reports).
#[derive(Debug, Clone)]
pub struct LiveGraph {
    itpg: Itpg,
    relations: GraphRelations,
    options: ExecutionOptions,
    last_epoch: Option<u64>,
    batches_applied: usize,
    queries: Vec<QueryState>,
}

impl LiveGraph {
    /// An empty live graph over an initial temporal domain (the domain grows
    /// automatically as batches mention later time points), with default
    /// execution options.
    pub fn new(domain: Interval) -> Self {
        LiveGraph::with_options(Itpg::empty(domain), ExecutionOptions::default())
    }

    /// A live graph starting from an existing (bulk-loaded) graph — epoch zero
    /// of the delta log — with explicit execution options.
    pub fn with_options(itpg: Itpg, options: ExecutionOptions) -> Self {
        let relations = GraphRelations::from_itpg(&itpg);
        LiveGraph {
            itpg,
            relations,
            options,
            last_epoch: None,
            batches_applied: 0,
            queries: Vec::new(),
        }
    }

    /// The current graph (the state after every applied batch).
    pub fn itpg(&self) -> &Itpg {
        &self.itpg
    }

    /// The incrementally maintained engine relations.
    pub fn relations(&self) -> &GraphRelations {
        &self.relations
    }

    /// The epoch of the last applied batch, if any.
    pub fn epoch(&self) -> Option<u64> {
        self.last_epoch
    }

    /// The number of batches applied so far.
    pub fn batches_applied(&self) -> usize {
        self.batches_applied
    }

    /// The execution options queries are maintained under.
    pub fn options(&self) -> &ExecutionOptions {
        &self.options
    }

    /// Ingests one batch: validates and applies it to the graph, folds the
    /// row-level delta into the relations, and marks every registered query
    /// dirty.  Epochs must be strictly increasing; a rejected batch leaves
    /// graph, relations and queries untouched.
    pub fn apply(&mut self, batch: &Batch) -> Result<IngestStats, LiveError> {
        let watch = self.options.telemetry.then(obs::Stopwatch::start);
        if let Some(last) = self.last_epoch {
            if batch.epoch <= last {
                return Err(LiveError::NonMonotonicEpoch { last, got: batch.epoch });
            }
        }
        let applied = self.itpg.apply_batch(batch)?;
        let delta = self.relations.apply_delta(&self.itpg, &applied.touched);
        for query in &mut self.queries {
            query.note_touched(&applied.touched);
        }
        self.last_epoch = Some(applied.epoch);
        self.batches_applied += 1;
        if let Some(watch) = watch {
            let metrics = crate::telemetry::live_metrics();
            metrics.batches.inc();
            metrics.mutations.add(batch.mutations.len() as u64);
            metrics.apply_seconds.record(watch.elapsed_nanos());
        }
        Ok(IngestStats { applied, delta, mutations: batch.mutations.len() })
    }

    /// Registers a compiled plan set for maintenance.  The initial answer is
    /// computed immediately (a full evaluation); subsequent [`LiveGraph::refresh`]
    /// calls keep it in sync with applied batches.
    pub fn register(&mut self, plan_set: PlanSet) -> LiveQueryId {
        let strategy = self.strategy_for(&plan_set);
        let state =
            QueryState::build(plan_set, &self.relations, self.options.parallelism, strategy);
        self.queries.push(state);
        LiveQueryId(self.queries.len() - 1)
    }

    /// Registers a query given in the practical `MATCH …` surface syntax.
    pub fn register_text(&mut self, query: &str) -> Result<LiveQueryId, LiveError> {
        let clause = trpq::parser::parse_match(query)?;
        Ok(self.register(compile(&clause)?))
    }

    /// Registers one of the paper's benchmark queries Q1–Q12.
    pub fn register_query(&mut self, id: QueryId) -> LiveQueryId {
        self.register(engine::queries::plan_for(id))
    }

    /// Folds every batch applied since the last refresh into the query's
    /// maintained answer.  A refresh with nothing pending is a cheap no-op.
    pub fn refresh(&mut self, id: LiveQueryId) -> RefreshStats {
        let strategy = self.strategy_for(self.queries[id.0].plan_set());
        let stats = self.queries[id.0].refresh(
            &self.itpg,
            &self.relations,
            self.options.parallelism,
            strategy,
            self.last_epoch,
        );
        if self.options.telemetry {
            let metrics = crate::telemetry::live_metrics();
            if stats.fallback_full {
                metrics.refreshes_full.inc();
            } else {
                metrics.refreshes_delta.inc();
            }
            metrics.refresh_seconds.record(obs::duration_nanos(stats.duration));
            metrics.rows_added.add(stats.rows_added as u64);
            metrics.rows_retracted.add(stats.rows_retracted as u64);
        }
        stats
    }

    /// Refreshes every registered query, returning one stats record per query
    /// in registration order.
    pub fn refresh_all(&mut self) -> Vec<RefreshStats> {
        (0..self.queries.len()).map(|i| self.refresh(LiveQueryId(i))).collect()
    }

    /// The maintained answer of a registered query, current as of its last
    /// refresh.
    pub fn table(&self, id: LiveQueryId) -> &BindingTable {
        self.queries[id.0].table()
    }

    /// A paging cursor over the maintained answer of a registered query —
    /// serving code can hand out pages of the canonical table without cloning
    /// it.  The cursor borrows the table as of the last refresh; refreshing
    /// requires `&mut self`, so a live cursor can never observe a half-updated
    /// answer.
    pub fn cursor(&self, id: LiveQueryId) -> TableCursor<'_> {
        TableCursor::new(self.table(id))
    }

    /// The number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// The compiled plan set of a registered query — what a from-scratch
    /// re-execution of the maintained answer runs.
    pub fn plan_set(&self, id: LiveQueryId) -> &PlanSet {
        self.queries[id.0].plan_set()
    }

    /// Shared handles to every maintained answer table, in registration order.
    /// Cloning a handle is O(1); this is what MVCC epoch snapshots retain so
    /// pinned readers keep the epoch's answers while later refreshes swap in
    /// new tables.
    pub fn table_handles(&self) -> Vec<std::sync::Arc<BindingTable>> {
        self.queries.iter().map(|q| q.table_handle()).collect()
    }

    fn strategy_for(&self, plan_set: &PlanSet) -> JoinStrategy {
        effective_strategy(plan_set, &self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::execute;
    use tgraph::Interval;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::of(a, b)
    }

    /// Replays the tiny contact-tracing story of the executor tests as a stream.
    fn story() -> Vec<Batch> {
        let mut b1 = Batch::new(1);
        b1.add_node("mia", "Person")
            .add_node("eve", "Person")
            .add_node("room", "Room")
            .add_existence("mia", iv(1, 10))
            .add_existence("eve", iv(1, 10))
            .add_existence("room", iv(1, 10))
            .set_property("mia", "risk", "high", iv(1, 10))
            .set_property("eve", "risk", "low", iv(1, 10));
        let mut b2 = Batch::new(2);
        b2.add_edge("meets1", "meets", "mia", "eve")
            .add_existence("meets1", iv(2, 3))
            .add_edge("visits1", "visits", "eve", "room")
            .add_existence("visits1", iv(5, 6));
        let mut b3 = Batch::new(8);
        b3.set_property("eve", "test", "pos", iv(8, 10));
        vec![b1, b2, b3]
    }

    const Q9ISH: &str =
        "MATCH (x:Person {risk = 'high'})-/FWD/:meets/FWD/NEXT*/-({test = 'pos'}) ON live";

    #[test]
    fn maintained_answers_track_the_stream() {
        let mut graph =
            LiveGraph::with_options(Itpg::empty(iv(1, 10)), ExecutionOptions::sequential());
        let q = graph.register_text(Q9ISH).unwrap();
        assert!(graph.table(q).is_empty());

        let batches = story();
        graph.apply(&batches[0]).unwrap();
        let stats = graph.refresh(q);
        assert_eq!(stats.output_rows, 0, "no meetings and no positive test yet");
        assert!(!stats.fallback_full, "a fixed-hop plan never falls back");

        graph.apply(&batches[1]).unwrap();
        let stats = graph.refresh(q);
        assert_eq!(stats.output_rows, 0, "still nobody positive");
        assert!(stats.affected_seeds > 0);

        graph.apply(&batches[2]).unwrap();
        let stats = graph.refresh(q);
        assert_eq!(stats.rows_added, 2, "mia's meeting times 2 and 3 become answers");
        assert_eq!(stats.rows_retracted, 0);
        assert_eq!(graph.table(q).len(), 2);

        // The maintained answer matches a from-scratch execution exactly.
        let scratch = GraphRelations::from_itpg(graph.itpg());
        let clause = trpq::parser::parse_match(Q9ISH).unwrap();
        let expected =
            execute(&compile(&clause).unwrap(), &scratch, &ExecutionOptions::sequential());
        assert_eq!(graph.table(q), &expected.table);
    }

    #[test]
    fn closure_queries_are_maintained_through_the_fallback() {
        let mut graph =
            LiveGraph::with_options(Itpg::empty(iv(1, 10)), ExecutionOptions::sequential());
        let reach =
            graph.register_text("MATCH (x:Person)-/(FWD/:meets/FWD)*/-(y:Person) ON live").unwrap();
        for batch in story() {
            graph.apply(&batch).unwrap();
            let stats = graph.refresh(reach);
            assert!(stats.fallback_full, "closure plans take the conservative path");
            let scratch = GraphRelations::from_itpg(graph.itpg());
            let clause = trpq::parser::parse_match(
                "MATCH (x:Person)-/(FWD/:meets/FWD)*/-(y:Person) ON live",
            )
            .unwrap();
            let expected =
                execute(&compile(&clause).unwrap(), &scratch, &ExecutionOptions::sequential());
            assert_eq!(graph.table(reach), &expected.table);
        }
    }

    #[test]
    fn cursors_page_the_maintained_answer() {
        let mut graph =
            LiveGraph::with_options(Itpg::empty(iv(1, 10)), ExecutionOptions::sequential());
        let q = graph.register_text(Q9ISH).unwrap();
        for batch in story() {
            graph.apply(&batch).unwrap();
        }
        graph.refresh(q);
        let table = graph.table(q);
        assert_eq!(table.len(), 2);
        let mut cursor = graph.cursor(q);
        assert_eq!(cursor.columns(), table.columns.as_slice());
        assert_eq!(cursor.remaining(), 2);
        let first = cursor.page(1);
        assert_eq!(first, &table.rows()[..1]);
        let rest: Vec<_> = cursor.collect();
        assert_eq!(rest, vec![table.rows()[1].as_slice()]);
        // A fresh cursor replays from the start.
        assert_eq!(graph.cursor(q).count(), 2);
    }

    #[test]
    fn epochs_must_increase() {
        let mut graph = LiveGraph::new(iv(1, 5));
        let mut b = Batch::new(3);
        b.add_node("a", "Person").add_existence("a", iv(1, 2));
        graph.apply(&b).unwrap();
        let mut stale = Batch::new(3);
        stale.add_node("b", "Person").add_existence("b", iv(1, 2));
        assert!(matches!(
            graph.apply(&stale),
            Err(LiveError::NonMonotonicEpoch { last: 3, got: 3 })
        ));
        assert_eq!(graph.epoch(), Some(3));
        assert_eq!(graph.batches_applied(), 1);
        stale.epoch = 4;
        graph.apply(&stale).unwrap();
        assert_eq!(graph.relations().stats().nodes, 2);
    }

    #[test]
    fn refresh_without_pending_deltas_is_a_no_op() {
        let mut graph = LiveGraph::new(iv(1, 10));
        let q = graph.register_query(QueryId::Q1);
        let mut b = Batch::new(1);
        b.add_node("p", "Person").add_existence("p", iv(1, 9));
        graph.apply(&b).unwrap();
        let first = graph.refresh(q);
        assert_eq!(first.rows_added, 1);
        let second = graph.refresh(q);
        assert_eq!((second.rows_added, second.rows_retracted, second.affected_seeds), (0, 0, 0));
        assert_eq!(second.output_rows, 1);
    }

    #[test]
    fn registration_after_ingestion_sees_the_current_graph() {
        let mut graph = LiveGraph::new(iv(1, 10));
        for batch in story() {
            graph.apply(&batch).unwrap();
        }
        let q = graph.register_text(Q9ISH).unwrap();
        assert_eq!(graph.table(q).len(), 2);
        // And keeps being maintained afterwards.
        let mut b4 = Batch::new(9);
        b4.add_node("zoe", "Person")
            .add_existence("zoe", iv(1, 10))
            .set_property("zoe", "risk", "high", iv(1, 10))
            .add_edge("meets2", "meets", "zoe", "eve")
            .add_existence("meets2", iv(4, 4));
        graph.apply(&b4).unwrap();
        let stats = graph.refresh(q);
        assert_eq!(stats.rows_added, 1, "zoe's meeting at time 4 reaches the positive test");
        assert_eq!(graph.table(q).len(), 3);
    }
}
