//! # live — streaming ingestion and incremental query maintenance
//!
//! The paper evaluates TRPQs over a frozen graph, but the contact-tracing
//! scenario it motivates is inherently *live*: new contacts and test results
//! arrive continuously.  This crate turns the batch engine into a serving
//! system: a [`LiveGraph`] ingests an append-only sequence of epoched mutation
//! [`Batch`]es (see [`tgraph::delta`]) and *maintains* the answers of registered
//! queries instead of re-running them from scratch.
//!
//! Maintenance is **exact** and works in three layers:
//!
//! 1. **Relation deltas** — every batch is applied to the engine's
//!    interval-timestamped relations in place
//!    ([`engine::GraphRelations::apply_delta`]): rows of touched objects are
//!    retracted and recomputed, rows of untouched objects keep their indices,
//!    and the key-sorted permutations are maintained by a linear
//!    filter-and-union-merge rather than a rebuild.
//! 2. **Delta-seeded evaluation** — for a plan with a statically known hop
//!    count `H` (every plan without a closure fixpoint), a chain seeded at a
//!    node can only observe objects within `H` structural hops of that node, so
//!    a batch can only change the results of seeds within `H` hops of a touched
//!    object.  A refresh re-runs the SPJ pipeline from those seeds alone
//!    ([`engine::run_plan_seeded`]) and splices the per-seed results into the
//!    cached answer.
//! 3. **Conservative fallback** — plans containing a (structural or time-aware)
//!    closure have unbounded reach, so their alternatives are recomputed from
//!    every seed on refresh.  The refresh reports this honestly through
//!    [`RefreshStats::fallback_full`]; the answer is exact either way.
//!
//! On top of the single-threaded [`LiveGraph`], the crate serves queries
//! *concurrently* through epoch-based MVCC ([`epoch`]): each published epoch
//! is an immutable copy-on-write snapshot that readers pin and the writer
//! never waits for, and a [`serve::Server`] worker pool executes registered
//! and ad-hoc queries against pinned snapshots while a single writer ingests
//! batches ([`serve::ServeGraph`]).
//!
//! ```
//! use live::LiveGraph;
//! use tgraph::{Batch, Interval};
//!
//! let mut graph = LiveGraph::new(Interval::of(1, 10));
//! let risky = graph
//!     .register_text("MATCH (x:Person {risk = 'high'}) ON live")
//!     .unwrap();
//!
//! let mut batch = Batch::new(1);
//! batch.add_node("ann", "Person").add_existence("ann", Interval::of(1, 9)).set_property(
//!     "ann",
//!     "risk",
//!     "high",
//!     Interval::of(1, 9),
//! );
//! graph.apply(&batch).unwrap();
//! let stats = graph.refresh(risky);
//! assert_eq!(stats.rows_added, 1);
//! assert_eq!(graph.table(risky).len(), 1);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod error;
pub mod graph;
pub mod query;
pub mod sched;
pub mod serve;
mod telemetry;

pub use epoch::{EpochManager, EpochSnapshot, EpochStats, PinnedEpoch};
pub use error::LiveError;
pub use graph::{IngestStats, LiveGraph};
pub use query::{LiveQueryId, RefreshStats};
pub use serve::{
    IngestReport, MetricsFormat, Request, Response, ServeAnswer, ServeGraph, ServeHealth, Server,
    Ticket,
};
pub use tgraph::{AppliedBatch, Batch, Mutation};
