//! A deterministic schedule explorer (a miniature "loom") for the epoch
//! protocol.
//!
//! [`EpochManager`](crate::epoch::EpochManager) threads a [`yield_point`]
//! through the entry of every protocol operation (`pin`, `unpin`, `publish`,
//! pin cloning).  In ordinary builds the hook is a no-op — release binaries
//! without the `model-check` feature compile it away entirely.  Under
//! `debug_assertions` or `--features model-check`, a per-thread hook can be
//! installed, and the [`Explorer`] uses it to *schedule* real threads: every
//! worker parks at each yield point, and a controller decides, step by step,
//! which thread performs its next operation.
//!
//! Because an operation yields exactly once — at its entry, **never while
//! holding the registry lock** — one scheduling decision corresponds to one
//! atomic protocol operation.  The explorer enumerates the full decision tree
//! depth-first, so for threads performing k₁, …, kₙ operations it covers all
//! `(k₁ + … + kₙ)! / (k₁! ⋯ kₙ!)` distinct interleavings, checks the caller's
//! invariant at every quiescent point of every schedule, and reports the exact
//! counts (which tests assert against the closed form, proving coverage).  A
//! violated invariant panics with the full counterexample trace: the schedule
//! index and the exact sequence of `(thread, operation)` decisions to replay.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

#[cfg(any(debug_assertions, feature = "model-check"))]
use std::cell::RefCell;

/// The scheduling hook installed by an [`Explorer`].  Plain `Box<dyn Fn>`:
/// the hook is created on — and never leaves — its worker thread.
#[cfg(any(debug_assertions, feature = "model-check"))]
type Hook = Box<dyn Fn(&'static str)>;

#[cfg(any(debug_assertions, feature = "model-check"))]
thread_local! {
    /// The scheduling hook of the current thread, if an [`Explorer`] installed
    /// one.
    static HOOK: RefCell<Option<Hook>> = const { RefCell::new(None) };
}

/// A cooperative scheduling point, placed at the entry of every epoch-protocol
/// operation.  No-op (and fully compiled away) unless a schedule explorer has
/// installed a hook on the current thread.
#[inline]
pub fn yield_point(label: &'static str) {
    #[cfg(any(debug_assertions, feature = "model-check"))]
    HOOK.with(|hook| {
        if let Some(hook) = hook.borrow().as_ref() {
            hook(label);
        }
    });
    #[cfg(not(any(debug_assertions, feature = "model-check")))]
    let _ = label;
}

/// How long a worker or the controller waits for the other side before
/// declaring the schedule wedged.  Generous: reached only when a script blocks
/// outside a yield point (e.g. two publishers contending for the `ServeGraph`
/// writer mutex), which is an explorer-usage bug.
const STALL: Duration = Duration::from_secs(10);

/// What one exploration covered: asserted against the closed-form interleaving
/// count by the model-check suite, so "explored everything" is a checked claim
/// rather than a comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreReport {
    /// Distinct schedules (interleavings) executed.
    pub schedules: usize,
    /// Total scheduling decisions across all schedules.
    pub steps: usize,
}

/// One scheduling decision of a counterexample trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Which thread was allowed to run.
    pub thread: usize,
    /// The yield-point label of the operation it performed.
    pub label: &'static str,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Spawned, has not reached its first yield point yet.
    Startup,
    /// Parked at a yield point with this label, waiting for its turn.
    /// Entered only via [`Control::park`], i.e. never in plain release builds.
    #[cfg_attr(not(any(debug_assertions, feature = "model-check")), allow(dead_code))]
    Parked(&'static str),
    /// Currently performing one operation (between being granted a turn and
    /// reaching the next yield point).
    #[cfg_attr(not(any(debug_assertions, feature = "model-check")), allow(dead_code))]
    Running,
    /// Script finished (or panicked — panics are recorded separately).
    Done,
}

struct ControlInner {
    statuses: Vec<Status>,
    /// The thread currently granted a turn, if any.
    turn: Option<usize>,
    /// Panic messages of workers that died mid-schedule.
    panics: Vec<String>,
    /// Set when the controller gives up on the schedule: parked workers run
    /// free (every yield point returns immediately) so the thread scope can
    /// join them before the failure is reported.
    aborted: bool,
}

/// The controller ⇄ worker rendezvous of one schedule run.
struct Control {
    inner: Mutex<ControlInner>,
    changed: Condvar,
}

impl Control {
    fn new(threads: usize) -> Self {
        Control {
            inner: Mutex::new(ControlInner {
                statuses: vec![Status::Startup; threads],
                turn: None,
                panics: Vec::new(),
                aborted: false,
            }),
            changed: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ControlInner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Worker side: park at a yield point until the controller grants a turn
    /// (or the schedule is aborted, in which case yield points deschedule
    /// themselves and the script runs free).
    ///
    /// Only reachable through the hook, so plain release builds (no yield
    /// points) never construct a `Parked`/`Running` status.
    #[cfg_attr(not(any(debug_assertions, feature = "model-check")), allow(dead_code))]
    fn park(&self, tid: usize, label: &'static str) {
        let mut guard = self.lock();
        if guard.aborted {
            return;
        }
        guard.statuses[tid] = Status::Parked(label);
        self.changed.notify_all();
        loop {
            if guard.aborted {
                guard.statuses[tid] = Status::Running;
                return;
            }
            if guard.turn == Some(tid) {
                guard.turn = None;
                guard.statuses[tid] = Status::Running;
                return;
            }
            let (next, timeout) = self
                .changed
                .wait_timeout(guard, STALL)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            guard = next;
            assert!(!timeout.timed_out(), "worker {tid} starved at {label}: controller stalled");
        }
    }

    /// Worker side: mark this thread finished.
    fn finish(&self, tid: usize, panic_message: Option<String>) {
        let mut guard = self.lock();
        guard.statuses[tid] = Status::Done;
        if let Some(message) = panic_message {
            guard.panics.push(format!("thread {tid} panicked: {message}"));
        }
        drop(guard);
        self.changed.notify_all();
    }

    /// Controller side: wait until every thread is parked or done, then return
    /// the parked set (quiescence — no operation is in flight) and whether the
    /// schedule is still clean of worker panics.
    fn wait_quiescent(&self) -> (Vec<(usize, &'static str)>, bool) {
        let mut guard = self.lock();
        loop {
            let busy =
                guard.statuses.iter().any(|s| matches!(s, Status::Startup | Status::Running));
            if !busy && guard.turn.is_none() {
                let parked: Vec<(usize, &'static str)> = guard
                    .statuses
                    .iter()
                    .enumerate()
                    .filter_map(|(tid, s)| match s {
                        Status::Parked(label) => Some((tid, *label)),
                        _ => None,
                    })
                    .collect();
                let clean = guard.panics.is_empty();
                return (parked, clean);
            }
            let (next, timeout) = self
                .changed
                .wait_timeout(guard, STALL)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            guard = next;
            assert!(
                !timeout.timed_out(),
                "schedule stalled: a worker blocked outside a yield point \
                 (scripts must only synchronise through the epoch protocol)"
            );
        }
    }

    /// Controller side: grant the turn to one parked thread.
    fn grant(&self, tid: usize) {
        let mut guard = self.lock();
        debug_assert!(matches!(guard.statuses[tid], Status::Parked(_)));
        guard.turn = Some(tid);
        drop(guard);
        self.changed.notify_all();
    }

    /// Controller side: give up on the schedule and release every parked
    /// worker to run to completion.
    fn abort(&self) {
        self.lock().aborted = true;
        self.changed.notify_all();
    }

    fn drain_panics(&self) -> Vec<String> {
        std::mem::take(&mut self.lock().panics)
    }
}

/// Installs the explorer hook for the lifetime of one worker script and clears
/// it on drop (also on panic, so a dead worker cannot leak a hook into a
/// reused test thread).
#[cfg(any(debug_assertions, feature = "model-check"))]
struct HookGuard;

#[cfg(any(debug_assertions, feature = "model-check"))]
impl HookGuard {
    fn install(hook: Box<dyn Fn(&'static str)>) -> Self {
        HOOK.with(|slot| *slot.borrow_mut() = Some(hook));
        HookGuard
    }
}

#[cfg(any(debug_assertions, feature = "model-check"))]
impl Drop for HookGuard {
    fn drop(&mut self) {
        HOOK.with(|slot| *slot.borrow_mut() = None);
    }
}

/// An exhaustive depth-first schedule explorer over the yield points of the
/// epoch protocol.
///
/// See the module docs for the execution model.  The explorer is deterministic
/// end to end: no randomness, no wall-clock dependence (timeouts only abort
/// schedules that are already wedged), so a failing schedule index reproduces
/// exactly.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Hard bound on the number of schedules, as a runaway backstop; the
    /// explorer panics when it is hit (coverage would be silently partial).
    pub max_schedules: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer { max_schedules: 250_000 }
    }
}

impl Explorer {
    /// Explores every interleaving of `threads` scripted workers.
    ///
    /// Per schedule: `setup()` builds a fresh shared state, each worker `tid`
    /// runs `script(tid, &state)` under the explorer's scheduling hook,
    /// `invariant(&state)` is checked at **every quiescent point** (after each
    /// operation, while no operation is in flight), and `final_check(&state)`
    /// once all workers are done.  Any `Err`, worker panic, or stall panics
    /// with the counterexample trace.
    pub fn explore<S: Sync>(
        &self,
        threads: usize,
        setup: impl Fn() -> S,
        script: impl Fn(usize, &S) + Sync,
        invariant: impl Fn(&S) -> Result<(), String>,
        final_check: impl Fn(&S) -> Result<(), String>,
    ) -> ExploreReport {
        assert!(threads > 0, "an exploration needs at least one thread");
        let mut prefix: Vec<(usize, usize)> = Vec::new();
        let mut schedules = 0usize;
        let mut steps = 0usize;
        loop {
            assert!(
                schedules < self.max_schedules,
                "exceeded max_schedules = {}: bound the scripts or raise the limit",
                self.max_schedules
            );
            let decisions = run_schedule(
                threads,
                &setup,
                &script,
                &invariant,
                &final_check,
                &prefix,
                schedules,
            );
            schedules += 1;
            steps += decisions.len();
            // Advance the decision odometer: bump the deepest decision that
            // still has an unexplored sibling, drop everything after it.
            let mut next = decisions;
            loop {
                match next.last_mut() {
                    None => return ExploreReport { schedules, steps },
                    Some((choice, options)) if *choice + 1 < *options => {
                        *choice += 1;
                        break;
                    }
                    Some(_) => {
                        next.pop();
                    }
                }
            }
            prefix = next;
        }
    }
}

/// Runs one schedule: replays `prefix`, then extends it with first-choice
/// decisions.  Returns the full decision list as `(choice, options)` pairs.
fn run_schedule<S: Sync>(
    threads: usize,
    setup: &impl Fn() -> S,
    script: &(impl Fn(usize, &S) + Sync),
    invariant: &impl Fn(&S) -> Result<(), String>,
    final_check: &impl Fn(&S) -> Result<(), String>,
    prefix: &[(usize, usize)],
    schedule_index: usize,
) -> Vec<(usize, usize)> {
    let state = setup();
    // Arc'd so the 'static thread-local hook can hold it; the workers joined
    // by the scope are its only other owners.
    let control = std::sync::Arc::new(Control::new(threads));
    let mut decisions: Vec<(usize, usize)> = Vec::new();
    let mut trace: Vec<TraceStep> = Vec::new();
    let mut failure: Option<String> = None;
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let control = std::sync::Arc::clone(&control);
            let state = &state;
            scope.spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    #[cfg(any(debug_assertions, feature = "model-check"))]
                    let _hook = {
                        let control = std::sync::Arc::clone(&control);
                        HookGuard::install(Box::new(move |label| {
                            control.park(tid, label);
                        }))
                    };
                    script(tid, state);
                }));
                control.finish(tid, outcome.err().map(render_panic));
            });
        }
        loop {
            let (parked, clean) = control.wait_quiescent();
            if !clean {
                let mut messages = control.drain_panics();
                messages.sort();
                failure = Some(messages.join("; "));
                break;
            }
            if let Err(message) = invariant(&state) {
                failure = Some(format!("invariant violated: {message}"));
                break;
            }
            if parked.is_empty() {
                break;
            }
            let choice = if decisions.len() < prefix.len() { prefix[decisions.len()].0 } else { 0 };
            assert!(
                choice < parked.len(),
                "schedule replay diverged: decision {} picks option {choice} of {}",
                decisions.len(),
                parked.len()
            );
            decisions.push((choice, parked.len()));
            let (tid, label) = parked[choice];
            trace.push(TraceStep { thread: tid, label });
            control.grant(tid);
        }
        // Release any still-parked workers so the scope can join them before
        // the failure (if any) unwinds the controller.
        control.abort();
    });
    if failure.is_none() {
        if let Err(message) = final_check(&state) {
            failure = Some(format!("final check violated: {message}"));
        }
    }
    if let Some(message) = failure {
        panic!(
            "model check failed on schedule {schedule_index}\n  trace: {}\n  {message}",
            render_trace(&trace)
        );
    }
    decisions
}

fn render_trace(trace: &[TraceStep]) -> String {
    if trace.is_empty() {
        return "(empty — violated in the initial state)".to_owned();
    }
    trace
        .iter()
        .map(|step| format!("t{}:{}", step.thread, step.label))
        .collect::<Vec<_>>()
        .join(" → ")
}

fn render_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(all(test, any(debug_assertions, feature = "model-check")))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A two-thread script of n and m yield points explores C(n+m, n)
    /// schedules — the closed form the epoch suite relies on.
    #[test]
    fn explores_the_exact_interleaving_count() {
        for (a, b, expected) in [(1usize, 1usize, 2usize), (2, 2, 6), (3, 2, 10), (3, 3, 20)] {
            let report = Explorer::default().explore(
                2,
                || AtomicUsize::new(0),
                |tid, counter| {
                    let ops = if tid == 0 { a } else { b };
                    for _ in 0..ops {
                        yield_point("op");
                        counter.fetch_add(1, Ordering::SeqCst);
                    }
                },
                |_| Ok(()),
                |counter| {
                    let total = counter.load(Ordering::SeqCst);
                    if total == a + b {
                        Ok(())
                    } else {
                        Err(format!("expected {} ops, saw {total}", a + b))
                    }
                },
            );
            assert_eq!(report.schedules, expected, "({a}, {b})");
            // Every schedule makes exactly a + b decisions.
            assert_eq!(report.steps, expected * (a + b), "({a}, {b})");
        }
    }

    /// Three threads of one op each: 3! = 6 interleavings.
    #[test]
    fn three_threads_enumerate_all_permutations() {
        let report = Explorer::default().explore(
            3,
            || Mutex::new(Vec::new()),
            |tid, order| {
                yield_point("op");
                order.lock().unwrap_or_else(|p| p.into_inner()).push(tid);
            },
            |_| Ok(()),
            |order| {
                let order = order.lock().unwrap_or_else(|p| p.into_inner());
                if order.len() == 3 {
                    Ok(())
                } else {
                    Err(format!("only {} threads ran", order.len()))
                }
            },
        );
        assert_eq!(report.schedules, 6);
        assert_eq!(report.steps, 18);
    }

    /// A violated invariant panics and carries the counterexample trace.
    #[test]
    fn counterexample_traces_are_reported() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Explorer::default().explore(
                2,
                || AtomicUsize::new(0),
                |_, counter| {
                    yield_point("bump");
                    counter.fetch_add(1, Ordering::SeqCst);
                },
                |counter| {
                    if counter.load(Ordering::SeqCst) < 2 {
                        Ok(())
                    } else {
                        Err("the second bump is the seeded bug".to_owned())
                    }
                },
                |_| Ok(()),
            );
        }));
        let message = render_panic(outcome.expect_err("the seeded violation must be caught"));
        assert!(message.contains("schedule 0"), "{message}");
        assert!(message.contains("t0:bump → t1:bump"), "{message}");
        assert!(message.contains("the seeded bug"), "{message}");
    }

    /// A panicking worker is contained and reported with its trace instead of
    /// wedging the exploration.
    #[test]
    fn worker_panics_become_schedule_failures() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Explorer::default().explore(
                2,
                || (),
                |tid, ()| {
                    yield_point("op");
                    assert!(tid != 1, "seeded worker panic");
                },
                |_| Ok(()),
                |_| Ok(()),
            );
        }));
        let message = render_panic(outcome.expect_err("the worker panic must surface"));
        assert!(message.contains("thread 1 panicked"), "{message}");
        assert!(message.contains("seeded worker panic"), "{message}");
    }
}
