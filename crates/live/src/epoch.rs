//! Epoch-based MVCC over the live graph: immutable snapshots, pinned by
//! readers, retired only once unpinned.
//!
//! Every publish (a batch ingested, a query registered) creates a new
//! [`EpochSnapshot`]: a copy-on-write view of the engine relations
//! ([`engine::GraphRelations::snapshot`] — column-level sharing, so a snapshot
//! is a handful of reference-count bumps) plus shared handles to the maintained
//! answer table of every registered query.  Readers [`EpochManager::pin`] the
//! current snapshot and run against it without ever taking the writer's lock;
//! the [`PinnedEpoch`] guard keeps the snapshot retained until dropped.
//!
//! Retirement is *pin-aware*: when a new epoch is published, every older epoch
//! with no pinned readers is retired immediately, and a pinned epoch is kept
//! until its last reader unpins (at which point it retires right away if it is
//! no longer current).  A pinned snapshot is therefore never reclaimed, and a
//! reader can never observe a half-applied batch — it only ever sees fully
//! published epochs.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use engine::bindings::BindingTable;
use engine::GraphRelations;

use crate::query::LiveQueryId;

/// One immutable published state of the live graph: the engine relations at
/// that epoch plus the maintained answer of every registered query.
#[derive(Debug)]
pub struct EpochSnapshot {
    /// The batch epoch this snapshot reflects (`None` before any batch).
    epoch: Option<u64>,
    /// The publish sequence number — unlike batch epochs this also advances on
    /// query registration, so it totally orders every published state.
    version: u64,
    relations: GraphRelations,
    tables: Vec<Arc<BindingTable>>,
}

impl EpochSnapshot {
    /// The epoch of the last batch folded into this snapshot, if any.
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// The publish sequence number of this snapshot.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The immutable relation view — what ad-hoc queries execute against.
    pub fn relations(&self) -> &GraphRelations {
        &self.relations
    }

    /// The maintained answer of a registered query as of this epoch, if the
    /// query was registered when the snapshot was published.
    pub fn table(&self, id: LiveQueryId) -> Option<&Arc<BindingTable>> {
        self.tables.get(id.0)
    }

    /// The number of registered queries this snapshot carries answers for.
    pub fn num_queries(&self) -> usize {
        self.tables.len()
    }
}

/// Bookkeeping counters of an [`EpochManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochStats {
    /// Snapshots published so far (including the initial one).
    pub published: u64,
    /// Snapshots currently retained (the current one plus every pinned one).
    pub retained: usize,
    /// Snapshots retired (freed after their last reader unpinned, or
    /// immediately on publish when unpinned).
    pub retired: u64,
    /// Total pins currently held by readers, across all retained epochs.
    pub pinned_readers: usize,
}

#[derive(Debug)]
struct RetainedEpoch {
    snapshot: Arc<EpochSnapshot>,
    pins: usize,
}

#[derive(Debug)]
struct ManagerInner {
    /// Every retained epoch by version; always contains `current`.
    retained: BTreeMap<u64, RetainedEpoch>,
    /// Version of the currently served epoch.
    current: u64,
    published: u64,
    retired: u64,
}

/// The epoch registry: publishes snapshots, hands out pins, retires epochs
/// once their last reader is gone.
///
/// All bookkeeping hides behind one short-lived mutex; readers hold it only
/// for the O(log epochs) pin/unpin bookkeeping, never during query execution.
#[derive(Debug)]
pub struct EpochManager {
    inner: Mutex<ManagerInner>,
    /// Pre-resolved metric handles when telemetry is on.  Recording through
    /// them is lock-free, so the protocol methods update the epoch gauges
    /// while still holding the bookkeeping mutex — the counters can never
    /// disagree with the state transition they describe.  Gauges move by
    /// deltas, so several managers in one process aggregate.
    metrics: Option<&'static crate::telemetry::EpochMetrics>,
}

impl EpochManager {
    /// A manager whose initial epoch is the given state (version 0).
    pub(crate) fn new(
        epoch: Option<u64>,
        relations: GraphRelations,
        tables: Vec<Arc<BindingTable>>,
        telemetry: bool,
    ) -> Arc<Self> {
        let snapshot = Arc::new(EpochSnapshot { epoch, version: 0, relations, tables });
        let mut retained = BTreeMap::new();
        retained.insert(0, RetainedEpoch { snapshot, pins: 0 });
        let metrics = telemetry.then(crate::telemetry::epoch_metrics);
        if let Some(metrics) = metrics {
            metrics.published.inc();
            metrics.retained.add(1);
        }
        Arc::new(EpochManager {
            inner: Mutex::new(ManagerInner { retained, current: 0, published: 1, retired: 0 }),
            metrics,
        })
    }

    /// Publishes the next epoch and retires every older epoch with no pinned
    /// readers.  Returns the new version.
    pub(crate) fn publish(
        self: &Arc<Self>,
        epoch: Option<u64>,
        relations: GraphRelations,
        tables: Vec<Arc<BindingTable>>,
    ) -> u64 {
        crate::sched::yield_point("epoch:publish");
        let mut inner = self.lock();
        let version = inner.current + 1;
        let snapshot = Arc::new(EpochSnapshot { epoch, version, relations, tables });
        inner.retained.insert(version, RetainedEpoch { snapshot, pins: 0 });
        inner.current = version;
        inner.published += 1;
        let stale: Vec<u64> = inner
            .retained
            .iter()
            .filter(|(&v, e)| v != version && e.pins == 0)
            .map(|(&v, _)| v)
            .collect();
        let retired = stale.len();
        for v in stale {
            inner.retained.remove(&v);
            inner.retired += 1;
        }
        if let Some(metrics) = self.metrics {
            metrics.published.inc();
            metrics.retired.add(retired as u64);
            metrics.retained.add(1 - retired as i64);
        }
        version
    }

    /// Pins the current epoch: the returned guard keeps its snapshot retained
    /// (and its memory alive) until dropped, no matter how many epochs the
    /// writer publishes in the meantime.
    pub fn pin(self: &Arc<Self>) -> PinnedEpoch {
        crate::sched::yield_point("epoch:pin");
        let mut inner = self.lock();
        let current = inner.current;
        // No `.expect()` while the guard is held: a panic here would poison
        // the registry for every other reader.  The current epoch is retained
        // by construction (publish inserts before retiring, unpin never
        // removes the current version), so the miss arm is unreachable — but
        // it releases the guard before saying so.
        let snapshot = match inner.retained.get_mut(&current) {
            Some(entry) => {
                entry.pins += 1;
                Arc::clone(&entry.snapshot)
            }
            None => {
                drop(inner);
                unreachable!("the current epoch is always retained");
            }
        };
        drop(inner);
        if let Some(metrics) = self.metrics {
            metrics.pinned_readers.add(1);
        }
        PinnedEpoch { manager: Arc::clone(self), snapshot }
    }

    /// The bookkeeping counters (for tests, stats endpoints and the bench
    /// harness).
    pub fn stats(&self) -> EpochStats {
        let inner = self.lock();
        EpochStats {
            published: inner.published,
            retained: inner.retained.len(),
            retired: inner.retired,
            pinned_readers: inner.retained.values().map(|e| e.pins).sum(),
        }
    }

    /// True if the given version is still retained (current or pinned).
    pub fn is_retained(&self, version: u64) -> bool {
        self.lock().retained.contains_key(&version)
    }

    /// The version of the currently served epoch.
    pub fn current_version(&self) -> u64 {
        self.lock().current
    }

    /// Republishes the current snapshot's state as a new epoch — the model
    /// checker's stand-in for an ingest, exercising the exact publish/retire
    /// bookkeeping without a writer graph (and without the writer mutex, so
    /// schedule-explorer scripts may run several concurrent publishers).
    #[cfg(any(debug_assertions, feature = "model-check"))]
    #[doc(hidden)]
    pub fn republish_for_check(self: &Arc<Self>) -> u64 {
        let (epoch, relations, tables) = {
            let inner = self.lock();
            let snapshot = match inner.retained.get(&inner.current) {
                Some(entry) => Arc::clone(&entry.snapshot),
                None => {
                    drop(inner);
                    unreachable!("the current epoch is always retained");
                }
            };
            drop(inner);
            (snapshot.epoch, snapshot.relations.snapshot(), snapshot.tables.clone())
        };
        self.publish(epoch, relations, tables)
    }

    fn unpin(&self, version: u64) {
        crate::sched::yield_point("epoch:unpin");
        let mut inner = self.lock();
        // As in `pin`, never panic while holding the guard.  A miss would mean
        // a double-unpin or an unpin of a reclaimed epoch — report it outside
        // the lock in debug builds, keep serving in release.
        let Some(entry) = inner.retained.get_mut(&version) else {
            drop(inner);
            debug_assert!(false, "unpinned version {version} is no longer retained");
            return;
        };
        debug_assert!(entry.pins > 0);
        entry.pins -= 1;
        let retired = entry.pins == 0 && version != inner.current;
        if retired {
            inner.retained.remove(&version);
            inner.retired += 1;
        }
        if let Some(metrics) = self.metrics {
            metrics.pinned_readers.sub(1);
            if retired {
                metrics.retired.inc();
                metrics.retained.sub(1);
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ManagerInner> {
        // A poisoned registry would only mean a reader panicked mid-bookkeeping;
        // the data itself is a plain map, so keep serving.
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader's lease on one epoch: dereferences to the [`EpochSnapshot`] and
/// unpins it on drop.  Cloning the guard pins the same epoch again, so a
/// response can hand the snapshot on without letting it retire.
#[derive(Debug)]
pub struct PinnedEpoch {
    manager: Arc<EpochManager>,
    snapshot: Arc<EpochSnapshot>,
}

impl PinnedEpoch {
    /// The snapshot this pin holds.
    pub fn snapshot(&self) -> &EpochSnapshot {
        &self.snapshot
    }
}

impl std::ops::Deref for PinnedEpoch {
    type Target = EpochSnapshot;

    fn deref(&self) -> &EpochSnapshot {
        &self.snapshot
    }
}

impl Clone for PinnedEpoch {
    fn clone(&self) -> Self {
        crate::sched::yield_point("epoch:clone");
        let mut inner = self.manager.lock();
        // `self` holds a pin, so its version is retained; as in `pin`, the
        // unreachable miss arm still releases the guard before panicking.
        match inner.retained.get_mut(&self.snapshot.version) {
            Some(entry) => entry.pins += 1,
            None => {
                drop(inner);
                unreachable!("a pinned epoch stays retained while its guard is alive");
            }
        }
        drop(inner);
        if let Some(metrics) = self.manager.metrics {
            metrics.pinned_readers.add(1);
        }
        PinnedEpoch { manager: Arc::clone(&self.manager), snapshot: Arc::clone(&self.snapshot) }
    }
}

impl Drop for PinnedEpoch {
    fn drop(&mut self) {
        self.manager.unpin(self.snapshot.version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{Interval, Itpg};

    fn manager() -> Arc<EpochManager> {
        let relations = GraphRelations::from_itpg(&Itpg::empty(Interval::of(1, 10)));
        EpochManager::new(None, relations, Vec::new(), false)
    }

    fn republish(manager: &Arc<EpochManager>, epoch: u64) -> u64 {
        let relations = GraphRelations::from_itpg(&Itpg::empty(Interval::of(1, 10)));
        manager.publish(Some(epoch), relations, Vec::new())
    }

    #[test]
    fn unpinned_epochs_retire_on_publish() {
        let m = manager();
        assert_eq!(
            m.stats(),
            EpochStats { published: 1, retained: 1, retired: 0, pinned_readers: 0 }
        );
        republish(&m, 1);
        republish(&m, 2);
        let stats = m.stats();
        assert_eq!(stats.published, 3);
        assert_eq!(stats.retained, 1, "only the current epoch is retained");
        assert_eq!(stats.retired, 2);
    }

    #[test]
    fn pinned_epochs_survive_publishes_and_retire_on_unpin() {
        let m = manager();
        let pin = m.pin();
        assert_eq!(pin.version(), 0);
        let v1 = republish(&m, 1);
        republish(&m, 2);
        assert!(m.is_retained(0), "a pinned epoch is never reclaimed");
        assert!(!m.is_retained(v1), "the unpinned intermediate epoch retired");
        assert_eq!(m.stats().retained, 2);
        assert_eq!(m.stats().pinned_readers, 1);

        // The pin still reads version 0 state.
        assert_eq!(pin.epoch(), None);
        drop(pin);
        assert!(!m.is_retained(0), "the last unpin retires a stale epoch");
        assert_eq!(
            m.stats(),
            EpochStats { published: 3, retained: 1, retired: 2, pinned_readers: 0 }
        );
    }

    #[test]
    fn cloned_pins_count_separately() {
        let m = manager();
        let a = m.pin();
        let b = a.clone();
        republish(&m, 1);
        assert_eq!(m.stats().pinned_readers, 2);
        drop(a);
        assert!(m.is_retained(0), "the second pin still holds the epoch");
        drop(b);
        assert!(!m.is_retained(0));
    }

    #[test]
    fn pinning_the_current_epoch_never_retires_it() {
        let m = manager();
        let pin = m.pin();
        drop(pin);
        assert!(m.is_retained(0), "the current epoch survives its last unpin");
        assert_eq!(m.stats().retired, 0);
    }
}
